(** Argument parsing for the benchmark harness, split out so malformed
    input is testable: [parse] never raises — bad numbers, unknown flags
    and unknown sections all come back as [Error message] for the driver
    to print alongside {!usage} before exiting 2. *)

type t = {
  trials : int;  (** campaign trials per (protocol, pause) cell *)
  duration : float;  (** seconds simulated per run (reduced scale) *)
  flows : int;  (** concurrent CBR flows *)
  full : bool;  (** paper raw scale: 900 s, 30 flows, 10 trials *)
  quiet : bool;  (** suppress per-run progress lines on stderr *)
  jobs : int;  (** domains for the campaign ({!Sim.Pool.map}) *)
  baseline : string option;
      (** [--check-regression PATH]: compare fresh throughput against the
          committed [perf.events_per_sec_per_job] in PATH; exit 3 when the
          fresh number falls below 75% of the baseline *)
  compare_sequential : bool;
      (** also run the campaign at [jobs = 1] and record the speedup *)
  out : string;  (** where the campaign JSON (with perf member) is written *)
  sections : string list;  (** validated section names, default [["all"]] *)
  resume : string option;
      (** [--resume PATH]: checkpoint journal for the measured campaign —
          resolved cells are appended as they complete and restored (not
          re-run) on the next invocation ({!Sim.Experiment.run}) *)
  cell_timeout : float;  (** wall-clock budget per cell attempt; 0 = none *)
  retries : int;  (** extra attempts before a failing cell is quarantined *)
  fail_fast : bool;  (** abort on the first cell failure (legacy behaviour) *)
  prof : bool;
      (** [--prof]: profile the measured campaign — hot-path spans and
          per-domain GC deltas into a [perf_profile] JSON member plus a
          printed Profile section *)
  prof_out : string option;
      (** [--prof-out PATH]: also export the profile as Prometheus text
          (implies [prof]) *)
  labels : Slr.Label_set.id;
      (** [--labels SET]: the dense label set SRP mints from during the
          campaign sections (default mediant, the paper's construction) *)
  labels_out : string;
      (** [--labels-out PATH]: where the [labels] section writes its
          four-instance comparison JSON *)
  scenario : Sim.Scenario.t;
      (** [--scenario NAME]: workload scenario (mobility + traffic models)
          the campaign sections run under (default: the paper's
          random-waypoint + CBR). Unknown names and the adversarial entry
          come back as [Error] — exit 2 via the driver. *)
  scale : Sim.Config.scale option;
      (** [--scale PRESET]: overlay a kilonode preset (100|1k|5k) on the
          campaign sections. Unknown presets come back as [Error] listing
          the choices — exit 2 via the driver. The scale section ignores
          this and always sweeps all three presets. *)
  channel : Sim.Config.channel;
      (** [--channel grid|naive]: neighbour-sweep path for every measured
          run (default grid; naive is the O(n²) oracle scan) *)
  scale_out : string;
      (** [--scale-out PATH]: where the scale section writes its per-preset
          events/s sweep (default BENCH_scale.json) *)
  scale_baseline : string option;
      (** [--check-scale-regression PATH]: compare the fresh scale sweep
          against the per-preset [events_per_sec] committed in PATH; exit 3
          when any preset falls below 75% of its baseline *)
}

val default : t

(** Section names [parse] accepts (positional arguments). *)
val known_sections : string list

val usage : string

(** [parse argv_tail] — pass [Sys.argv] minus the program name. *)
val parse : string list -> (t, string) result
