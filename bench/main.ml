(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table I, Figs. 3-7), runs label-arithmetic and channel
   micro-benchmarks (E7), and two ablations of design choices called out in
   DESIGN.md (E8). Argument parsing lives in {!Bench_cli} (testable); this
   file only drives the sections.

   The campaign behind table1/fig3..fig7 runs once and is shared, farmed
   over [-j N] domains, and its JSON twin gains a ["perf"] member (wall
   time, engine events, events/s) used by the [--check-regression] gate. *)

module J = Trace.Json

let wants opts section =
  List.mem "all" opts.Bench_cli.sections
  || List.mem section opts.Bench_cli.sections

let wants_campaign opts =
  List.exists (wants opts)
    [ "campaign"; "table1"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7" ]

(* ------------------------------------------------------------------ *)
(* The simulation campaign shared by Table I and Figs. 3-7 *)

let base_config opts =
  let base =
    if opts.Bench_cli.full then { Sim.Config.paper with seed = 1 }
    else
      { Sim.Config.reproduction with
        duration = opts.Bench_cli.duration;
        flows = opts.Bench_cli.flows;
        seed = 1;
      }
  in
  let base = Sim.Config.with_channel base opts.Bench_cli.channel in
  let base =
    match opts.Bench_cli.scale with
    | Some s -> Sim.Config.apply_scale s base
    | None -> base
  in
  Sim.Scenario.apply opts.Bench_cli.scenario
    (Sim.Config.with_labels base opts.Bench_cli.labels)

(* The checkpoint (--resume) only arms on the measured pass: the sequential
   reference pass of --compare-sequential must re-run every cell or its
   wall-clock number is meaningless. *)
let run_campaign ?checkpoint opts ~jobs =
  let base = base_config opts in
  let trials = if opts.Bench_cli.full then 10 else opts.Bench_cli.trials in
  Format.printf
    "campaign: %d nodes, %d flows, %.0f s runs, %d trials x %d pause times x \
     %d protocols, %d job%s@."
    base.Sim.Config.nodes base.Sim.Config.flows base.Sim.Config.duration trials
    (List.length Sim.Config.paper_pause_times)
    (List.length Sim.Config.all_protocols)
    jobs
    (if jobs = 1 then "" else "s");
  if not opts.Bench_cli.full then
    Format.printf
      "(pause times scaled by %.3f to keep the paused-time fraction of the \
       paper's 900 s runs)@."
      (base.Sim.Config.duration /. 900.0);
  let progress =
    if opts.Bench_cli.quiet then fun _ -> () else prerr_endline
  in
  let pause_scale =
    if opts.Bench_cli.full then 1.0 else base.Sim.Config.duration /. 900.0
  in
  let policy =
    if opts.Bench_cli.fail_fast then Sim.Supervisor.fail_fast
    else
      {
        Sim.Supervisor.default with
        Sim.Supervisor.cell_timeout = opts.Bench_cli.cell_timeout;
        retries = opts.Bench_cli.retries;
      }
  in
  let started = Unix.gettimeofday () in
  let campaign =
    Sim.Experiment.run ~policy ?checkpoint
      ?sabotage:(Sim.Sabotage.from_env ()) ~jobs ~pause_scale ~base
      ~protocols:Sim.Config.all_protocols
      ~pauses:Sim.Config.paper_pause_times ~trials ~progress ()
  in
  (campaign, Unix.gettimeofday () -. started)

(* The throughput record appended to the campaign JSON. Normalised
   events/s/job is what the regression gate compares: it is stable across
   differing [-j] settings on the same machine. Since the observability
   layer the member also carries the per-worker-domain ledger (cells run,
   busy wall time, GC deltas) so the bench trajectory localises where a
   speedup — or a slowdown — comes from; the gate reads only
   [events_per_sec_per_job] and so accepts both the old and new shapes. *)
let worker_json (w : Obs.worker) =
  J.Obj
    [
      ("domain", J.Int w.Obs.w_domain);
      ("cells", J.Int w.Obs.w_cells);
      ("busy_seconds", J.Float (float_of_int w.Obs.w_busy_ns /. 1e9));
      ("minor_collections", J.Int w.Obs.w_minor_collections);
      ("major_collections", J.Int w.Obs.w_major_collections);
      ("minor_words", J.Int w.Obs.w_minor_words);
      ("promoted_words", J.Int w.Obs.w_promoted_words);
      ("major_words", J.Int w.Obs.w_major_words);
    ]

let perf_member ~jobs ~wall ~sequential_wall ~workers campaign =
  let events = campaign.Sim.Experiment.engine_events in
  let eps = if wall > 0.0 then float_of_int events /. wall else 0.0 in
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 workers in
  J.Obj
    ([
       ("jobs", J.Int jobs);
       ("wall_seconds", J.Float wall);
       ("engine_events", J.Int events);
       ("events_per_sec", J.Float eps);
       ("events_per_sec_per_job", J.Float (eps /. float_of_int jobs));
       ("workers", J.List (List.map worker_json workers));
       ( "gc",
         J.Obj
           [
             ( "minor_collections",
               J.Int (sum (fun w -> w.Obs.w_minor_collections)) );
             ( "major_collections",
               J.Int (sum (fun w -> w.Obs.w_major_collections)) );
             ("minor_words", J.Int (sum (fun w -> w.Obs.w_minor_words)));
             ("promoted_words", J.Int (sum (fun w -> w.Obs.w_promoted_words)));
             ("major_words", J.Int (sum (fun w -> w.Obs.w_major_words)));
           ] );
     ]
    @
    match sequential_wall with
    | None -> []
    | Some sw ->
        [
          ("sequential_wall_seconds", J.Float sw);
          ("speedup", J.Float (if wall > 0.0 then sw /. wall else 0.0));
        ])

let regression_gate ~baseline_path ~fresh_json =
  let fail msg =
    Format.eprintf "regression gate: %s@." msg;
    exit 2
  in
  let contents =
    try In_channel.with_open_text baseline_path In_channel.input_all
    with Sys_error e -> fail e
  in
  let baseline =
    match J.parse contents with
    | Ok j -> j
    | Error e -> fail (baseline_path ^ ": " ^ e)
  in
  let number path j =
    match J.path path j with
    | Some (J.Float x) -> x
    | Some (J.Int n) -> float_of_int n
    | _ -> fail (baseline_path ^ ": missing " ^ path)
  in
  let base_rate = number "perf.events_per_sec_per_job" baseline in
  let fresh_rate = number "perf.events_per_sec_per_job" fresh_json in
  let floor = 0.75 *. base_rate in
  Format.printf
    "regression gate: fresh %.0f events/s/job vs baseline %.0f (floor %.0f)@."
    fresh_rate base_rate floor;
  if fresh_rate < floor then begin
    Format.eprintf
      "regression gate FAILED: %.0f events/s/job is below 75%% of the \
       committed baseline %.0f@."
      fresh_rate base_rate;
    exit 3
  end

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (E7, Bechamel) *)

let run_micro_tests tests =
  let open Bechamel in
  List.iter
    (fun test ->
      let instances = [ Toolkit.Instance.monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "%-30s %10.1f ns/op@." name est
          | _ -> Format.printf "%-30s (no estimate)@." name)
        results)
    tests

let micro_labels () =
  let module F = Slr.Fraction in
  let module O = Slr.Ordering in
  let open Bechamel in
  let a = F.make ~num:610 ~den:987 in
  let b = F.make ~num:987 ~den:1597 in
  let oa = O.make ~sn:3 ~frac:a in
  let ob = O.make ~sn:3 ~frac:b in
  let big_lo = F.make ~num:1_000_003 ~den:2_000_003 in
  let big_hi = F.make ~num:2_000_005 ~den:3_999_999 in
  let ba = Slr.Bigfrac.of_ints ~num:610 ~den:987 in
  let bb = Slr.Bigfrac.of_ints ~num:987 ~den:1597 in
  Format.printf "@.=== micro: label-arithmetic costs (E7) ===@.";
  run_micro_tests
    [
      Test.make ~name:"Fraction.compare"
        (Staged.stage (fun () -> ignore (F.compare a b)));
      Test.make ~name:"Fraction.mediant"
        (Staged.stage (fun () -> ignore (F.mediant a b)));
      Test.make ~name:"Ordering.precedes"
        (Staged.stage (fun () -> ignore (O.precedes ob oa)));
      Test.make ~name:"New_order.compute"
        (Staged.stage (fun () ->
             ignore (Slr.New_order.compute ~current:oa ~cached:O.unassigned ~adv:ob)));
      Test.make ~name:"Farey.simplest_between"
        (Staged.stage (fun () ->
             ignore (Slr.Farey.simplest_between ~lo:big_lo ~hi:big_hi)));
      Test.make ~name:"Bigfrac.mediant"
        (Staged.stage (fun () -> ignore (Slr.Bigfrac.mediant ba bb)));
    ];
  Format.printf "worst-case mediant splits in 32 bits: %d (paper: 45)@."
    (Slr.Fraction.max_splits ())

(* Channel hot path: one broadcast frame swept over 100 static nodes on the
   paper terrain, naive full scan vs spatial grid, plus the cost of a
   forced grid rebuild. Positions are static so the measurement isolates
   the neighbour sweep from mobility lookups. *)
let micro_channel () =
  let open Bechamel in
  let nodes = 100 in
  let rng = Des.Rng.create 42L in
  let points =
    Array.init nodes (fun _ -> Wireless.Terrain.random_point Wireless.Terrain.paper rng)
  in
  let position i _time = points.(i) in
  let range = Wireless.Radio.default.Wireless.Radio.range in
  let cs_range = Wireless.Radio.default.Wireless.Radio.cs_range in
  let make_channel grid =
    let engine = Des.Engine.create () in
    let ch =
      Wireless.Channel.create ?grid engine ~nodes ~position ~range ~cs_range
    in
    (engine, ch)
  in
  let transmit_case (engine, ch) =
    let src = ref 0 in
    fun () ->
      Wireless.Channel.transmit ch ~src:!src ~duration:1e-4 ();
      Des.Engine.run_all engine;
      src := (!src + 1) mod nodes
  in
  let naive = make_channel None in
  let grid =
    make_channel (Some { Wireless.Channel.max_speed = 0.0; epoch = 1e9 })
  in
  let g =
    Wireless.Grid.create ~nodes ~position ~cell:(cs_range /. 2.0)
      ~max_speed:0.0 ~epoch:1e9
  in
  let rebuild_now = ref 0.0 in
  Format.printf "@.=== micro: channel hot path, %d nodes (E7) ===@." nodes;
  run_micro_tests
    [
      Test.make ~name:"Channel.transmit (naive)"
        (Staged.stage (transmit_case naive));
      Test.make ~name:"Channel.transmit (grid)"
        (Staged.stage (transmit_case grid));
      Test.make ~name:"Grid.rebuild"
        (Staged.stage (fun () ->
             rebuild_now := !rebuild_now +. 1.0;
             Wireless.Grid.rebuild g ~now:!rebuild_now));
    ]

(* ------------------------------------------------------------------ *)
(* Ablations (E8) *)

(* E8a: mediant vs Farey (Stern-Brocot) interpolation under random
   insertions -- the fraction-reduction direction of the paper's §VI. *)
let ablation_farey () =
  let module F = Slr.Fraction in
  Format.printf "@.=== ablation: mediant vs Farey interpolation (E8a) ===@.";
  let run ~use_farey =
    let rng = Des.Rng.create 77L in
    let labels = ref [| F.zero; F.one |] in
    let max_den = ref 1 in
    let inserted = ref 0 in
    (try
       for _ = 1 to 2000 do
         let arr = !labels in
         let i = Des.Rng.int rng (Array.length arr - 1) in
         let j = i + 1 + Des.Rng.int rng (Array.length arr - i - 1) in
         let lo = arr.(i) and hi = arr.(j) in
         if not (F.equal lo hi) then begin
           let next_label =
             if use_farey then Slr.Farey.simplest_between ~lo ~hi
             else F.mediant lo hi
           in
           match next_label with
           | None -> raise Exit
           | Some m ->
               incr inserted;
               if m.F.den > !max_den then max_den := m.F.den;
               (* keep the array sorted: m belongs somewhere in (i, j] *)
               let k = ref (i + 1) in
               while F.(arr.(!k) < m) do
                 incr k
               done;
               let out = Array.make (Array.length arr + 1) m in
               Array.blit arr 0 out 0 !k;
               out.(!k) <- m;
               Array.blit arr !k out (!k + 1) (Array.length arr - !k);
               labels := out
         end
       done
     with Exit -> ());
    (!inserted, !max_den)
  in
  let m_count, m_den = run ~use_farey:false in
  let f_count, f_den = run ~use_farey:true in
  Format.printf "mediant: %4d insertions, max denominator %d@." m_count m_den;
  Format.printf "Farey:   %4d insertions, max denominator %d@." f_count f_den;
  Format.printf
    "(the Farey walk keeps labels far smaller, deferring the sequence-number reset)@."

(* E8b: SRP's tunables under constant mobility. *)
let ablation_srp_knobs opts =
  Format.printf "@.=== ablation: SRP heuristics at pause 0 (E8b) ===@.";
  let base =
    { (base_config opts) with Sim.Config.protocol = Sim.Config.Srp; pause = 0.0 }
  in
  let run name srp =
    let r = Sim.Runner.run { base with Sim.Config.srp } in
    Format.printf "%-24s delivery %5.3f  load %7.3f  latency %6.3f  seqno %5.2f@."
      name r.Sim.Metrics.delivery_ratio r.Sim.Metrics.network_load
      r.Sim.Metrics.latency r.Sim.Metrics.avg_seqno
  in
  let d = Protocols.Srp.default_config in
  run "default (mrh=0)" d;
  run "min_reply_hops=1" { d with Protocols.Srp.min_reply_hops = 1 };
  run "min_reply_hops=2" { d with Protocols.Srp.min_reply_hops = 2 };
  run "probe_on_n=true" { d with Protocols.Srp.probe_on_n = true };
  run "no ordering lie" { d with Protocols.Srp.lie_k = 1 };
  (* §VI future work, implemented: minimal-denominator label splits *)
  let farey = { d with Protocols.Srp.labels = Slr.Label_set.Farey } in
  let r_mediant = Sim.Runner.run { base with Sim.Config.srp = d } in
  let r_farey = Sim.Runner.run { base with Sim.Config.srp = farey } in
  Format.printf
    "label growth in-protocol: mediant max denominator %d vs Farey %d@."
    r_mediant.Sim.Metrics.max_denominator r_farey.Sim.Metrics.max_denominator

(* ------------------------------------------------------------------ *)
(* Label-set showdown (E9): the four dense-set instances on identical
   constant-mobility SRP scenarios (pause 0 maximises label minting).
   Width growth, label-driven resets — and when the first one lands — are
   exactly where the instances differ, so they ride next to the standard
   delivery/load/latency triple in the JSON written to --labels-out. *)

let labels_showdown opts =
  Format.printf "@.=== label-set showdown: SRP at pause 0 (E9) ===@.";
  let base =
    { (base_config opts) with Sim.Config.protocol = Sim.Config.Srp; pause = 0.0 }
  in
  let trials = max 1 opts.Bench_cli.trials in
  Format.printf "%d trial%s x %.0f s per instance@." trials
    (if trials = 1 then "" else "s")
    base.Sim.Config.duration;
  let run_instance ?max_denom id =
    let splits = ref 0 and resets = ref 0 in
    let first_reset = ref infinity in
    let delivery = ref 0.0 and load = ref 0.0 and latency = ref 0.0 in
    let width = ref 0 and max_den = ref 0 and label_resets = ref 0 in
    for k = 0 to trials - 1 do
      let srp =
        match max_denom with
        | None -> base.Sim.Config.srp
        | Some max_denom -> { base.Sim.Config.srp with Protocols.Srp.max_denom }
      in
      let config =
        Sim.Config.with_labels
          { base with Sim.Config.seed = base.Sim.Config.seed + k; srp }
          id
      in
      let trace =
        Trace.callback
          ~clock:(fun () -> 0.0)
          (fun r ->
            match r.Trace.ev with
            | Trace.Label_split _ -> incr splits
            | Trace.Seqno_reset _ ->
                incr resets;
                if r.Trace.time < !first_reset then first_reset := r.Trace.time
            | _ -> ())
      in
      let r = Sim.Runner.run ~trace config in
      delivery := !delivery +. r.Sim.Metrics.delivery_ratio;
      load := !load +. r.Sim.Metrics.network_load;
      latency := !latency +. r.Sim.Metrics.latency;
      width := Stdlib.max !width r.Sim.Metrics.label_width_bits;
      max_den := Stdlib.max !max_den r.Sim.Metrics.max_denominator;
      label_resets := !label_resets + r.Sim.Metrics.label_resets
    done;
    let n = float_of_int trials in
    Format.printf
      "%-8s delivery %5.3f  load %7.3f  latency %6.3f  width %3d bits  \
       splits %5d  resets %3d  first reset %s@."
      (Slr.Label_set.name id) (!delivery /. n) (!load /. n) (!latency /. n)
      !width !splits !label_resets
      (if !first_reset = infinity then "never"
       else Printf.sprintf "%.1f s" !first_reset);
    J.Obj
      [
        ("labels", J.String (Slr.Label_set.name id));
        ("trials", J.Int trials);
        ("delivery", J.Float (!delivery /. n));
        ("network_load", J.Float (!load /. n));
        ("latency", J.Float (!latency /. n));
        ("max_denominator", J.Int !max_den);
        ("label_width_bits", J.Int !width);
        ("label_splits", J.Int !splits);
        ("label_resets", J.Int !label_resets);
        ("seqno_resets", J.Int !resets);
        ( "time_to_first_reset_s",
          if !first_reset = infinity then J.Null else J.Float !first_reset );
      ]
  in
  let instances = List.map run_instance Slr.Label_set.all in
  (* Reset dynamics need MAX_DENOM within reach: at the paper's 1e9 none of
     the instances exhausts in a reduced-scale horizon. A tight threshold
     makes the bounded instances pay their D-bit probe resets while the
     unbounded ones (which ignore the threshold) stay clean. *)
  let tight = 1_000 in
  Format.printf "-- with MAX_DENOM tightened to %d --@." tight;
  let instances_tight =
    List.map (run_instance ~max_denom:tight) Slr.Label_set.all
  in
  let json =
    J.Obj
      [
        ("nodes", J.Int base.Sim.Config.nodes);
        ("duration", J.Float base.Sim.Config.duration);
        ("flows", J.Int base.Sim.Config.flows);
        ("pause", J.Float base.Sim.Config.pause);
        ("trials", J.Int trials);
        ("instances", J.List instances);
        ("tight_max_denom", J.Int tight);
        ("instances_tight_max_denom", J.List instances_tight);
      ]
  in
  let oc = open_out opts.Bench_cli.labels_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "label-set comparison written to %s@." opts.Bench_cli.labels_out

(* ------------------------------------------------------------------ *)
(* Scale sweep (E11): engine throughput at the paper's 100 nodes and the
   1k/5k kilonode presets, one SRP run per preset at pause 0. Simulated
   horizons shrink with the preset so the sweep stays a couple of minutes
   of wall clock while every run still executes millions of events; the
   horizon is part of the committed JSON, so the regression gate always
   compares like with like. *)

(* events/s at t < traffic_start would measure an idle hello mesh; pull
   the flows in so even the shortest horizon is mostly loaded *)
let scale_traffic_start = 5.0

let scale_duration (s : Sim.Config.scale) =
  match s.Sim.Config.scale_name with
  | "100" -> 60.0
  | "1k" -> 20.0
  | _ -> 8.0

let scale_sweep opts =
  Format.printf "@.=== scale sweep: events/s at %s nodes (E11) ===@."
    (String.concat "/" Sim.Config.scale_names);
  let run_preset (s : Sim.Config.scale) =
    let config =
      Sim.Config.apply_scale s
        {
          Sim.Config.reproduction with
          duration = scale_duration s;
          traffic_start = scale_traffic_start;
          seed = 1;
          pause = 0.0;
          protocol = Sim.Config.Srp;
          channel = opts.Bench_cli.channel;
        }
    in
    let config = Sim.Config.with_labels config opts.Bench_cli.labels in
    if not opts.Bench_cli.quiet then
      Format.eprintf "scale %s: %d nodes, %d flows, %.0f s ...@."
        s.Sim.Config.scale_name config.Sim.Config.nodes
        config.Sim.Config.flows config.Sim.Config.duration;
    let started = Unix.gettimeofday () in
    let r = Sim.Runner.run config in
    let wall = Unix.gettimeofday () -. started in
    let events = r.Sim.Metrics.engine_events in
    let eps = if wall > 0.0 then float_of_int events /. wall else 0.0 in
    Format.printf
      "%-4s %5d nodes  %4d flows  %5.0f s sim  %8.1f s wall  %9d events  \
       %8.0f events/s  delivery %5.3f@."
      s.Sim.Config.scale_name config.Sim.Config.nodes config.Sim.Config.flows
      config.Sim.Config.duration wall events eps
      r.Sim.Metrics.delivery_ratio;
    J.Obj
      [
        ("scale", J.String s.Sim.Config.scale_name);
        ("nodes", J.Int config.Sim.Config.nodes);
        ("flows", J.Int config.Sim.Config.flows);
        ("terrain_width", J.Float config.Sim.Config.terrain.Wireless.Terrain.width);
        ("terrain_height", J.Float config.Sim.Config.terrain.Wireless.Terrain.height);
        ("duration", J.Float config.Sim.Config.duration);
        ("traffic_start", J.Float config.Sim.Config.traffic_start);
        ("channel", J.String (Sim.Config.channel_name config.Sim.Config.channel));
        ("engine_events", J.Int events);
        ("wall_seconds", J.Float wall);
        ("events_per_sec", J.Float eps);
        ("delivery_ratio", J.Float r.Sim.Metrics.delivery_ratio);
        ("network_load", J.Float r.Sim.Metrics.network_load);
        ("latency", J.Float r.Sim.Metrics.latency);
      ]
  in
  let sweep = List.map run_preset Sim.Config.scales in
  let json = J.Obj [ ("schema", J.String "bench-scale/1"); ("scales", J.List sweep) ] in
  let oc = open_out opts.Bench_cli.scale_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "scale sweep written to %s@." opts.Bench_cli.scale_out;
  json

(* per-preset twin of {!regression_gate}: every scale's fresh events/s
   must hold 75% of its committed number — a kilonode-only slowdown must
   not hide behind a healthy 100-node figure *)
let scale_regression_gate ~baseline_path ~baseline_contents ~fresh_json =
  let fail msg =
    Format.eprintf "scale regression gate: %s@." msg;
    exit 2
  in
  let baseline =
    match J.parse baseline_contents with
    | Ok j -> j
    | Error e -> fail (baseline_path ^ ": " ^ e)
  in
  let rates who j =
    match J.member "scales" j with
    | Some (J.List presets) ->
        List.filter_map
          (fun p ->
            match (J.member "scale" p, J.member "events_per_sec" p) with
            | Some (J.String name), Some (J.Float eps) -> Some (name, eps)
            | Some (J.String name), Some (J.Int eps) ->
                Some (name, float_of_int eps)
            | _ -> None)
          presets
    | _ -> fail (who ^ ": missing scales list")
  in
  let base_rates = rates baseline_path baseline in
  let fresh_rates = rates "fresh sweep" fresh_json in
  let failed =
    List.filter_map
      (fun (name, base) ->
        match List.assoc_opt name fresh_rates with
        | None -> Some (name, base, 0.0)
        | Some fresh ->
            let floor = 0.75 *. base in
            Format.printf
              "scale regression gate: %s fresh %.0f events/s vs baseline \
               %.0f (floor %.0f)@."
              name fresh base floor;
            if fresh < floor then Some (name, base, fresh) else None)
      base_rates
  in
  match failed with
  | [] -> ()
  | (name, base, fresh) :: _ ->
      Format.eprintf
        "scale regression gate FAILED: %s at %.0f events/s is below 75%% of \
         the committed baseline %.0f@."
        name fresh base;
      exit 3

(* ------------------------------------------------------------------ *)

let () =
  (* same GC posture as manet_sim, so bench figures match CLI runs *)
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 2048 * 1024; space_overhead = 200 };
  let opts =
    match Bench_cli.parse (List.tl (Array.to_list Sys.argv)) with
    | Ok opts -> opts
    | Error msg ->
        prerr_endline ("error: " ^ msg);
        prerr_endline Bench_cli.usage;
        exit 2
  in
  let t0 = Unix.gettimeofday () in
  if wants_campaign opts then begin
    if opts.Bench_cli.prof then Obs.enable ();
    let sequential_wall =
      if opts.Bench_cli.compare_sequential && opts.Bench_cli.jobs > 1 then begin
        Format.printf "sequential reference pass (-j 1):@.";
        let _, wall = run_campaign opts ~jobs:1 in
        Some wall
      end
      else None
    in
    (* the measured pass owns the ledger: spans, counters and per-domain
       GC deltas accumulated by the reference pass must not bleed in *)
    Obs.reset ();
    let campaign, wall =
      run_campaign ?checkpoint:opts.Bench_cli.resume opts
        ~jobs:opts.Bench_cli.jobs
    in
    let snapshot = Obs.snapshot () in
    let ppf = Format.std_formatter in
    let section name render =
      if wants opts name || wants opts "campaign" then begin
        Format.printf "@.";
        render ppf campaign
      end
    in
    section "table1" Sim.Report.table1;
    section "fig3" Sim.Report.fig3;
    section "fig4" Sim.Report.fig4;
    section "fig5" Sim.Report.fig5;
    section "fig6" Sim.Report.fig6;
    section "fig7" Sim.Report.fig7;
    (* machine-readable twin of the tables above, for plotting scripts;
       the perf member rides along for the regression gate but the
       campaign members themselves are byte-identical whatever -j was *)
    let json =
      match Sim.Report.campaign_json campaign with
      | J.Obj members ->
          J.Obj
            (members
            @ [
                ( "perf",
                  perf_member ~jobs:opts.Bench_cli.jobs ~wall ~sequential_wall
                    ~workers:snapshot.Obs.workers campaign );
              ]
            @
            if opts.Bench_cli.prof then
              [ ("perf_profile", Sim.Report.profile_json snapshot) ]
            else [])
      | other -> other
    in
    let oc = open_out opts.Bench_cli.out in
    output_string oc (J.to_string json);
    output_char oc '\n';
    close_out oc;
    Format.printf "@.campaign JSON written to %s@." opts.Bench_cli.out;
    if opts.Bench_cli.prof then
      Format.printf "@.%a" Sim.Report.profile snapshot;
    Option.iter
      (fun path -> Obs.Export.write_prometheus path snapshot)
      opts.Bench_cli.prof_out;
    (match sequential_wall with
    | Some sw ->
        Format.printf "parallel speedup at -j %d: %.2fx (%.1fs -> %.1fs)@."
          opts.Bench_cli.jobs
          (if wall > 0.0 then sw /. wall else 0.0)
          sw wall
    | None -> ());
    match opts.Bench_cli.baseline with
    | Some baseline_path -> regression_gate ~baseline_path ~fresh_json:json
    | None -> ()
  end;
  if wants opts "micro" then begin
    micro_labels ();
    micro_channel ()
  end;
  if wants opts "ablation" then begin
    ablation_farey ();
    ablation_srp_knobs opts
  end;
  if wants opts "labels" then labels_showdown opts;
  if wants opts "scale" then begin
    (* snapshot the baseline before the sweep: --scale-out may point at
       the same file, and the gate must compare against the committed
       figures, not the bytes the sweep just wrote *)
    let baseline =
      Option.map
        (fun baseline_path ->
          match
            try Ok (In_channel.with_open_text baseline_path In_channel.input_all)
            with Sys_error e -> Error e
          with
          | Ok contents -> (baseline_path, contents)
          | Error e ->
              Format.eprintf "scale regression gate: %s@." e;
              exit 2)
        opts.Bench_cli.scale_baseline
    in
    let fresh_json = scale_sweep opts in
    match baseline with
    | Some (baseline_path, baseline_contents) ->
        scale_regression_gate ~baseline_path ~baseline_contents ~fresh_json
    | None -> ()
  end;
  Format.printf "@.total wall time: %.1f s@." (Unix.gettimeofday () -. t0)
