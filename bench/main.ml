(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table I, Figs. 3-7), runs label-arithmetic micro-benchmarks
   (E7), and two ablations of design choices called out in DESIGN.md (E8).

   Usage:
     main.exe [SECTION ...] [--trials N] [--duration S] [--flows N]
              [--full] [--quiet]

   Sections: table1 fig3 fig4 fig5 fig6 fig7 campaign micro ablation all
   (default: all). The campaign behind table1/fig3..fig7 runs once and is
   shared. [--full] switches to the paper's raw scale (900 s, 30 flows,
   10 trials) -- expect hours; the default is a calibrated reduction in the
   same load regime (see EXPERIMENTS.md). *)

let trials = ref 2
let duration = ref 120.0
let flows = ref Sim.Config.reproduction.Sim.Config.flows
let full = ref false
let quiet = ref false
let sections = ref []

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--trials" :: v :: rest -> trials := int_of_string v; go rest
    | "--duration" :: v :: rest -> duration := float_of_string v; go rest
    | "--flows" :: v :: rest -> flows := int_of_string v; go rest
    | "--full" :: rest -> full := true; go rest
    | "--quiet" :: rest -> quiet := true; go rest
    | s :: rest -> sections := s :: !sections; go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  if !sections = [] then sections := [ "all" ]

let wants section = List.mem "all" !sections || List.mem section !sections

let wants_campaign () =
  List.exists wants [ "campaign"; "table1"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7" ]

(* ------------------------------------------------------------------ *)
(* The simulation campaign shared by Table I and Figs. 3-7 *)

let base_config () =
  if !full then { Sim.Config.paper with seed = 1 }
  else
    { Sim.Config.reproduction with duration = !duration; flows = !flows; seed = 1 }

let run_campaign () =
  let base = base_config () in
  let trials = if !full then 10 else !trials in
  Format.printf
    "campaign: %d nodes, %d flows, %.0f s runs, %d trials x %d pause times x %d protocols@."
    base.Sim.Config.nodes base.Sim.Config.flows base.Sim.Config.duration trials
    (List.length Sim.Config.paper_pause_times)
    (List.length Sim.Config.all_protocols);
  if not !full then
    Format.printf
      "(pause times scaled by %.3f to keep the paused-time fraction of the \
       paper's 900 s runs)@."
      (base.Sim.Config.duration /. 900.0);
  let progress = if !quiet then fun _ -> () else prerr_endline in
  let pause_scale =
    if !full then 1.0 else base.Sim.Config.duration /. 900.0
  in
  Sim.Experiment.run ~pause_scale ~base
    ~protocols:Sim.Config.all_protocols
    ~pauses:Sim.Config.paper_pause_times ~trials ~progress

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the label machinery (E7, Bechamel) *)

let micro () =
  let module F = Slr.Fraction in
  let module O = Slr.Ordering in
  let open Bechamel in
  let a = F.make ~num:610 ~den:987 in
  let b = F.make ~num:987 ~den:1597 in
  let oa = O.make ~sn:3 ~frac:a in
  let ob = O.make ~sn:3 ~frac:b in
  let big_lo = F.make ~num:1_000_003 ~den:2_000_003 in
  let big_hi = F.make ~num:2_000_005 ~den:3_999_999 in
  let ba = Slr.Bigfrac.of_ints ~num:610 ~den:987 in
  let bb = Slr.Bigfrac.of_ints ~num:987 ~den:1597 in
  let tests =
    [
      Test.make ~name:"Fraction.compare"
        (Staged.stage (fun () -> ignore (F.compare a b)));
      Test.make ~name:"Fraction.mediant"
        (Staged.stage (fun () -> ignore (F.mediant a b)));
      Test.make ~name:"Ordering.precedes"
        (Staged.stage (fun () -> ignore (O.precedes ob oa)));
      Test.make ~name:"New_order.compute"
        (Staged.stage (fun () ->
             ignore (Slr.New_order.compute ~current:oa ~cached:O.unassigned ~adv:ob)));
      Test.make ~name:"Farey.simplest_between"
        (Staged.stage (fun () ->
             ignore (Slr.Farey.simplest_between ~lo:big_lo ~hi:big_hi)));
      Test.make ~name:"Bigfrac.mediant"
        (Staged.stage (fun () -> ignore (Slr.Bigfrac.mediant ba bb)));
    ]
  in
  Format.printf "@.=== micro: label-arithmetic costs (E7) ===@.";
  List.iter
    (fun test ->
      let instances = [ Toolkit.Instance.monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "%-30s %10.1f ns/op@." name est
          | _ -> Format.printf "%-30s (no estimate)@." name)
        results)
    tests;
  Format.printf "worst-case mediant splits in 32 bits: %d (paper: 45)@."
    (Slr.Fraction.max_splits ())

(* ------------------------------------------------------------------ *)
(* Ablations (E8) *)

(* E8a: mediant vs Farey (Stern-Brocot) interpolation under random
   insertions -- the fraction-reduction direction of the paper's §VI. *)
let ablation_farey () =
  let module F = Slr.Fraction in
  Format.printf "@.=== ablation: mediant vs Farey interpolation (E8a) ===@.";
  let run ~use_farey =
    let rng = Des.Rng.create 77L in
    let labels = ref [| F.zero; F.one |] in
    let max_den = ref 1 in
    let inserted = ref 0 in
    (try
       for _ = 1 to 2000 do
         let arr = !labels in
         let i = Des.Rng.int rng (Array.length arr - 1) in
         let j = i + 1 + Des.Rng.int rng (Array.length arr - i - 1) in
         let lo = arr.(i) and hi = arr.(j) in
         if not (F.equal lo hi) then begin
           let next_label =
             if use_farey then Slr.Farey.simplest_between ~lo ~hi
             else F.mediant lo hi
           in
           match next_label with
           | None -> raise Exit
           | Some m ->
               incr inserted;
               if m.F.den > !max_den then max_den := m.F.den;
               (* keep the array sorted: m belongs somewhere in (i, j] *)
               let k = ref (i + 1) in
               while F.(arr.(!k) < m) do
                 incr k
               done;
               let out = Array.make (Array.length arr + 1) m in
               Array.blit arr 0 out 0 !k;
               out.(!k) <- m;
               Array.blit arr !k out (!k + 1) (Array.length arr - !k);
               labels := out
         end
       done
     with Exit -> ());
    (!inserted, !max_den)
  in
  let m_count, m_den = run ~use_farey:false in
  let f_count, f_den = run ~use_farey:true in
  Format.printf "mediant: %4d insertions, max denominator %d@." m_count m_den;
  Format.printf "Farey:   %4d insertions, max denominator %d@." f_count f_den;
  Format.printf
    "(the Farey walk keeps labels far smaller, deferring the sequence-number reset)@."

(* E8b: SRP's tunables under constant mobility. *)
let ablation_srp_knobs () =
  Format.printf "@.=== ablation: SRP heuristics at pause 0 (E8b) ===@.";
  let base = { (base_config ()) with Sim.Config.protocol = Sim.Config.Srp; pause = 0.0 } in
  let run name srp =
    let r = Sim.Runner.run { base with Sim.Config.srp } in
    Format.printf "%-24s delivery %5.3f  load %7.3f  latency %6.3f  seqno %5.2f@."
      name r.Sim.Metrics.delivery_ratio r.Sim.Metrics.network_load
      r.Sim.Metrics.latency r.Sim.Metrics.avg_seqno
  in
  let d = Protocols.Srp.default_config in
  run "default (mrh=0)" d;
  run "min_reply_hops=1" { d with Protocols.Srp.min_reply_hops = 1 };
  run "min_reply_hops=2" { d with Protocols.Srp.min_reply_hops = 2 };
  run "probe_on_n=true" { d with Protocols.Srp.probe_on_n = true };
  run "no ordering lie" { d with Protocols.Srp.lie_k = 1 };
  (* §VI future work, implemented: minimal-denominator label splits *)
  let farey = { d with Protocols.Srp.farey_splits = true } in
  let r_mediant = Sim.Runner.run { base with Sim.Config.srp = d } in
  let r_farey = Sim.Runner.run { base with Sim.Config.srp = farey } in
  Format.printf
    "label growth in-protocol: mediant max denominator %d vs Farey %d@."
    r_mediant.Sim.Metrics.max_denominator r_farey.Sim.Metrics.max_denominator

(* ------------------------------------------------------------------ *)

let () =
  parse_args ();
  let t0 = Unix.gettimeofday () in
  if wants_campaign () then begin
    let campaign = run_campaign () in
    let ppf = Format.std_formatter in
    let section name render =
      if wants name || wants "campaign" then begin
        Format.printf "@.";
        render ppf campaign
      end
    in
    section "table1" Sim.Report.table1;
    section "fig3" Sim.Report.fig3;
    section "fig4" Sim.Report.fig4;
    section "fig5" Sim.Report.fig5;
    section "fig6" Sim.Report.fig6;
    section "fig7" Sim.Report.fig7;
    (* machine-readable twin of the tables above, for plotting scripts *)
    let oc = open_out "BENCH_campaign.json" in
    output_string oc (Trace.Json.to_string (Sim.Report.campaign_json campaign));
    output_char oc '\n';
    close_out oc;
    Format.printf "@.campaign JSON written to BENCH_campaign.json@."
  end;
  if wants "micro" then micro ();
  if wants "ablation" then begin
    ablation_farey ();
    ablation_srp_knobs ()
  end;
  Format.printf "@.total wall time: %.1f s@." (Unix.gettimeofday () -. t0)
