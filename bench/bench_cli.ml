type t = {
  trials : int;
  duration : float;
  flows : int;
  full : bool;
  quiet : bool;
  jobs : int;
  baseline : string option;
  compare_sequential : bool;
  out : string;
  sections : string list;
  resume : string option;
  cell_timeout : float;
  retries : int;
  fail_fast : bool;
  prof : bool;
  prof_out : string option;
  labels : Slr.Label_set.id;
  labels_out : string;
  scenario : Sim.Scenario.t;
  scale : Sim.Config.scale option;
  channel : Sim.Config.channel;
  scale_out : string;
  scale_baseline : string option;
}

let default =
  {
    trials = 2;
    duration = 120.0;
    flows = Sim.Config.reproduction.Sim.Config.flows;
    full = false;
    quiet = false;
    jobs = 1;
    baseline = None;
    compare_sequential = false;
    out = "BENCH_campaign.json";
    sections = [ "all" ];
    resume = None;
    cell_timeout = 0.0;
    retries = 1;
    fail_fast = false;
    prof = false;
    prof_out = None;
    labels = Slr.Label_set.default;
    labels_out = "BENCH_labels.json";
    scenario = Sim.Scenario.default;
    scale = None;
    channel = Sim.Config.Grid;
    scale_out = "BENCH_scale.json";
    scale_baseline = None;
  }

let known_sections =
  [ "table1"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "campaign"; "micro";
    "ablation"; "labels"; "scale"; "all" ]

let usage =
  "usage: main.exe [SECTION ...] [--trials N] [--duration S] [--flows N]\n\
  \       [--full] [--quiet] [-j N | --jobs N] [--out PATH]\n\
  \       [--check-regression PATH] [--compare-sequential]\n\
  \       [--resume PATH] [--cell-timeout S] [--retries N] [--fail-fast]\n\
  \       [--prof] [--prof-out PATH] [--labels SET] [--labels-out PATH]\n\
  \       [--scenario NAME] [--scale PRESET] [--channel grid|naive]\n\
  \       [--scale-out PATH] [--check-scale-regression PATH]\n\
   sections: " ^ String.concat " " known_sections ^ " (default: all)\n\
   -j N farms campaign cells over N domains; results are byte-identical\n\
   whatever N is. --check-regression compares fresh throughput against the\n\
   perf.events_per_sec_per_job recorded in PATH and exits 3 below 75% of it.\n\
   --resume journals resolved campaign cells to PATH and skips the ones\n\
   already journaled; --cell-timeout/--retries/--fail-fast set the\n\
   supervision policy (crashed or wedged cells retry, then quarantine).\n\
   --prof appends a perf_profile member (hot-path spans, per-domain GC) to\n\
   the campaign JSON and prints a Profile section; --prof-out also writes\n\
   the profile as Prometheus text (implies --prof).\n\
   --labels SET runs the campaign sections with SRP minting labels from the\n\
   given dense set (mediant|farey|bigfrac|lex; default mediant); the labels\n\
   section sweeps all four instances on long-horizon SRP runs and writes\n\
   the comparison to --labels-out (default BENCH_labels.json).\n\
   --scenario NAME pins the campaign sections to a registered workload\n\
   scenario (mobility + traffic models); the adversarial entry is not a\n\
   benchmarkable workload and is rejected.\n\
   --scale PRESET overlays a kilonode preset (100|1k|5k: nodes, terrain\n\
   and flows at the paper's node density) on the campaign sections; the\n\
   scale section ignores it and always sweeps all three presets on SRP\n\
   runs, writing events/s per preset to --scale-out (default\n\
   BENCH_scale.json). --check-scale-regression compares the fresh sweep\n\
   against the per-scale events_per_sec in PATH and exits 3 when any\n\
   preset falls below 75% of its committed number. --channel naive swaps\n\
   the spatial-hash neighbour sweep for the O(n^2) oracle scan."

let ( let* ) = Result.bind

let int_arg flag v =
  match int_of_string_opt v with
  | Some n when n > 0 -> Ok n
  | Some _ -> Error (Printf.sprintf "%s: expected a positive integer, got %s" flag v)
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" flag v)

let float_arg flag v =
  match float_of_string_opt v with
  | Some x when x > 0.0 -> Ok x
  | Some _ -> Error (Printf.sprintf "%s: expected a positive number, got %s" flag v)
  | None -> Error (Printf.sprintf "%s: expected a number, got %S" flag v)

let parse args =
  let rec go acc sections = function
    | [] ->
        Ok { acc with sections = (if sections = [] then [ "all" ] else List.rev sections) }
    | [ flag ]
      when List.mem flag
             [ "--trials"; "--duration"; "--flows"; "--jobs"; "-j";
               "--check-regression"; "--out"; "--resume"; "--cell-timeout";
               "--retries"; "--prof-out"; "--labels"; "--labels-out";
               "--scenario"; "--scale"; "--channel"; "--scale-out";
               "--check-scale-regression" ] ->
        Error (flag ^ ": missing argument")
    | "--trials" :: v :: rest ->
        let* trials = int_arg "--trials" v in
        go { acc with trials } sections rest
    | "--duration" :: v :: rest ->
        let* duration = float_arg "--duration" v in
        go { acc with duration } sections rest
    | "--flows" :: v :: rest ->
        let* flows = int_arg "--flows" v in
        go { acc with flows } sections rest
    | ("--jobs" | "-j") :: v :: rest ->
        let* jobs = int_arg "--jobs" v in
        go { acc with jobs } sections rest
    | "--check-regression" :: v :: rest ->
        go { acc with baseline = Some v } sections rest
    | "--out" :: v :: rest -> go { acc with out = v } sections rest
    | "--resume" :: v :: rest -> go { acc with resume = Some v } sections rest
    | "--cell-timeout" :: v :: rest ->
        let* cell_timeout = float_arg "--cell-timeout" v in
        go { acc with cell_timeout } sections rest
    | "--retries" :: v :: rest -> (
        match int_of_string_opt v with
        | Some retries when retries >= 0 -> go { acc with retries } sections rest
        | Some _ ->
            Error
              (Printf.sprintf "--retries: expected a non-negative integer, got %s" v)
        | None -> Error (Printf.sprintf "--retries: expected an integer, got %S" v))
    | "--fail-fast" :: rest -> go { acc with fail_fast = true } sections rest
    | "--prof" :: rest -> go { acc with prof = true } sections rest
    | "--prof-out" :: v :: rest ->
        go { acc with prof = true; prof_out = Some v } sections rest
    | "--labels" :: v :: rest -> (
        match Slr.Label_set.of_name v with
        | Some labels -> go { acc with labels } sections rest
        | None ->
            Error
              (Printf.sprintf
                 "--labels: unknown label set %S (mediant|farey|bigfrac|lex)" v))
    | "--labels-out" :: v :: rest -> go { acc with labels_out = v } sections rest
    | "--scenario" :: v :: rest -> (
        match Sim.Scenario.find v with
        | Some sc when not (Sim.Scenario.is_adversarial sc) ->
            go { acc with scenario = sc } sections rest
        | Some sc ->
            Error
              (Printf.sprintf
                 "--scenario: %S is adversarial, not a benchmarkable \
                  workload (see manet_sim campaign --scenario)"
                 sc.Sim.Scenario.name)
        | None ->
            Error
              (Printf.sprintf "--scenario: unknown scenario %S (registered: %s)"
                 v
                 (String.concat ", " Sim.Scenario.names)))
    | "--scale" :: v :: rest -> (
        match Sim.Config.scale_of_name v with
        | Some s -> go { acc with scale = Some s } sections rest
        | None ->
            Error
              (Printf.sprintf "--scale: unknown preset %S (choices: %s)" v
                 (String.concat ", " Sim.Config.scale_names)))
    | "--channel" :: v :: rest -> (
        match Sim.Config.channel_of_name v with
        | Some channel -> go { acc with channel } sections rest
        | None ->
            Error
              (Printf.sprintf "--channel: unknown channel %S (grid|naive)" v))
    | "--scale-out" :: v :: rest -> go { acc with scale_out = v } sections rest
    | "--check-scale-regression" :: v :: rest ->
        go { acc with scale_baseline = Some v } sections rest
    | "--compare-sequential" :: rest ->
        go { acc with compare_sequential = true } sections rest
    | "--full" :: rest -> go { acc with full = true } sections rest
    | "--quiet" :: rest -> go { acc with quiet = true } sections rest
    | s :: _ when String.length s > 0 && s.[0] = '-' ->
        Error ("unknown flag " ^ s)
    | s :: rest ->
        if List.mem s known_sections then go acc (s :: sections) rest
        else Error ("unknown section " ^ s)
  in
  go default [] args
