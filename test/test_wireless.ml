(* Tests for the wireless substrate: geometry, mobility, radio timing,
   channel propagation/collisions, and the 802.11-style MAC. *)

module V = Wireless.Vec2
module T = Wireless.Terrain
module W = Wireless.Waypoint
module Radio = Wireless.Radio
module Ch = Wireless.Channel
module Mac = Wireless.Mac80211
module Frame = Wireless.Frame

let vec x y = V.make ~x ~y

(* ------------------------------------------------------------------ *)
(* Geometry and mobility *)

let test_vec2 () =
  Alcotest.(check (float 1e-9)) "dist" 5.0 (V.dist (vec 0.0 0.0) (vec 3.0 4.0));
  Alcotest.(check (float 1e-9)) "norm" 5.0 (V.norm (vec 3.0 4.0));
  let m = V.lerp (vec 0.0 0.0) (vec 10.0 20.0) ~frac:0.25 in
  Alcotest.(check (float 1e-9)) "lerp x" 2.5 m.V.x;
  Alcotest.(check (float 1e-9)) "lerp y" 5.0 m.V.y

let test_terrain () =
  let t = T.make ~width:100.0 ~height:50.0 in
  Alcotest.(check bool) "contains inside" true (T.contains t (vec 50.0 25.0));
  Alcotest.(check bool) "outside" false (T.contains t (vec 101.0 25.0));
  let rng = Des.Rng.create 3L in
  for _ = 1 to 200 do
    Alcotest.(check bool) "random point inside" true
      (T.contains t (T.random_point t rng))
  done;
  Alcotest.check_raises "bad terrain"
    (Invalid_argument "Terrain.make: dimensions must be positive") (fun () ->
      ignore (T.make ~width:0.0 ~height:5.0))

let test_waypoint_stationary () =
  let p = vec 10.0 20.0 in
  let s = W.stationary p in
  Alcotest.(check bool) "fixed" true (V.equal p (W.position s 0.0));
  Alcotest.(check bool) "fixed later" true (V.equal p (W.position s 1e6))

let generate_script ?(pause = 5.0) ?(seed = 11L) () =
  W.generate ~terrain:T.paper
    ~rng:(Des.Rng.create seed)
    ~pause ~speed_min:0.5 ~speed_max:20.0 ~duration:300.0

let test_waypoint_kinematics () =
  let s = generate_script () in
  (* position before the first departure equals the initial point *)
  let p0 = W.position s 0.0 in
  Alcotest.(check bool) "initial pause" true
    (V.equal p0 (W.position s 4.999));
  (* speed is bounded everywhere *)
  let max_speed = ref 0.0 in
  let dt = 0.5 in
  let steps = int_of_float (300.0 /. dt) in
  for k = 0 to steps - 1 do
    let t = float_of_int k *. dt in
    let v = V.dist (W.position s t) (W.position s (t +. dt)) /. dt in
    if v > !max_speed then max_speed := v
  done;
  Alcotest.(check bool)
    (Printf.sprintf "observed speed %.1f <= 20" !max_speed)
    true (!max_speed <= 20.0 +. 1e-6);
  Alcotest.(check bool) "script max speed <= 20" true (W.max_speed s <= 20.0);
  (* all positions stay on the terrain *)
  for k = 0 to steps do
    Alcotest.(check bool) "on terrain" true
      (T.contains T.paper (W.position s (float_of_int k *. dt)))
  done

let test_waypoint_pause_900_is_static () =
  let s =
    W.generate ~terrain:T.paper
      ~rng:(Des.Rng.create 17L)
      ~pause:900.0 ~speed_min:0.5 ~speed_max:20.0 ~duration:900.0
  in
  let p0 = W.position s 0.0 in
  Alcotest.(check bool) "no movement within the run" true
    (V.equal p0 (W.position s 899.9))

(* regression: pause = duration with speed range [0, 0] used to divide by
   zero when picking a leg speed — every position must stay finite,
   in-bounds, and pinned to the initial point *)
let test_waypoint_degenerate_speed () =
  List.iter
    (fun (pause, duration) ->
      let s =
        W.generate ~terrain:T.paper
          ~rng:(Des.Rng.create 23L)
          ~pause ~speed_min:0.0 ~speed_max:0.0 ~duration
      in
      let p0 = W.position s 0.0 in
      Alcotest.(check bool) "initial position finite" true
        (Float.is_finite p0.V.x && Float.is_finite p0.V.y);
      List.iter
        (fun t ->
          let p = W.position s t in
          Alcotest.(check bool) "position finite (no NaN)" true
            (Float.is_finite p.V.x && Float.is_finite p.V.y);
          Alcotest.(check bool) "position on terrain" true
            (T.contains T.paper p);
          Alcotest.(check bool) "zero speed never moves" true (V.equal p0 p))
        [ 0.0; pause /. 2.0; pause; duration; duration +. 10.0 ])
    [ (300.0, 300.0); (0.0, 300.0); (900.0, 100.0) ]

let test_waypoint_deterministic () =
  let a = generate_script ~seed:5L () and b = generate_script ~seed:5L () in
  Alcotest.(check bool) "same seed same trajectory" true
    (List.for_all
       (fun t -> V.equal (W.position a t) (W.position b t))
       [ 0.0; 10.0; 100.0; 299.0 ])

(* ------------------------------------------------------------------ *)
(* Radio timing *)

let test_radio_durations () =
  let r = Radio.default in
  (* 512B payload + 28B MAC header at 2 Mb/s + 192us PLCP *)
  Alcotest.(check (float 1e-9)) "data airtime"
    (192e-6 +. (float_of_int ((512 + 28) * 8) /. 2e6))
    (Radio.tx_duration r ~size:512);
  Alcotest.(check bool) "ack shorter than data" true
    (Radio.ack_duration r < Radio.tx_duration r ~size:512);
  Alcotest.(check bool) "rts short" true
    (Radio.rts_duration r < 0.5e-3)

(* ------------------------------------------------------------------ *)
(* Channel *)

(* fixed positions: nodes on a line, 200 m apart *)
let line_channel engine n =
  let position i _t = vec (float_of_int i *. 200.0) 0.0 in
  Ch.create engine ~nodes:n ~position ~range:250.0 ~cs_range:550.0

let test_channel_delivery () =
  let e = Des.Engine.create () in
  let ch = line_channel e 3 in
  let at_1 = ref [] and at_2 = ref [] in
  Ch.set_receiver ch 1 (fun ~src pdu -> at_1 := (src, pdu) :: !at_1);
  Ch.set_receiver ch 2 (fun ~src pdu -> at_2 := (src, pdu) :: !at_2);
  Ch.transmit ch ~src:0 ~duration:1e-3 "hello";
  Des.Engine.run_all e;
  (* node 1 is 200 m away (in range); node 2 is 400 m away (out of range) *)
  Alcotest.(check (list (pair int string))) "node 1 hears node 0"
    [ (0, "hello") ] !at_1;
  Alcotest.(check (list (pair int string))) "node 2 hears nothing" [] !at_2

let test_channel_collision () =
  let e = Des.Engine.create () in
  (* nodes 0 and 2 are 400 m apart (hidden from each other at rx range but
     both in range of node 1) *)
  let ch = line_channel e 3 in
  let got = ref 0 in
  Ch.set_receiver ch 1 (fun ~src:_ _ -> incr got);
  Ch.transmit ch ~src:0 ~duration:1e-3 "a";
  ignore
    (Des.Engine.schedule e ~delay:1e-4 (fun () ->
         Ch.transmit ch ~src:2 ~duration:1e-3 "b"));
  Des.Engine.run_all e;
  Alcotest.(check int) "both frames corrupted" 0 !got;
  Alcotest.(check bool) "collision counted" true (Ch.collisions ch >= 1);
  Alcotest.(check bool) "at the receiver" true (Ch.collisions_at ch 1 >= 1)

let test_channel_capture () =
  let e = Des.Engine.create () in
  (* receiver at 0; near sender at 50 m; far sender at 400 m: the near frame
     is >3x closer and survives the overlap *)
  let position i _ =
    match i with 0 -> vec 0.0 0.0 | 1 -> vec 50.0 0.0 | _ -> vec 400.0 0.0
  in
  let ch = Ch.create e ~nodes:3 ~position ~range:450.0 ~cs_range:990.0 in
  let got = ref [] in
  Ch.set_receiver ch 0 (fun ~src pdu -> got := (src, pdu) :: !got);
  Ch.transmit ch ~src:2 ~duration:1e-3 "far";
  ignore
    (Des.Engine.schedule e ~delay:1e-4 (fun () ->
         Ch.transmit ch ~src:1 ~duration:1e-3 "near"));
  Des.Engine.run_all e;
  Alcotest.(check (list (pair int string))) "near frame captured"
    [ (1, "near") ] !got

let test_channel_half_duplex () =
  let e = Des.Engine.create () in
  let ch = line_channel e 2 in
  let got = ref 0 in
  Ch.set_receiver ch 1 (fun ~src:_ _ -> incr got);
  (* node 1 is transmitting while node 0's frame arrives *)
  Ch.transmit ch ~src:1 ~duration:2e-3 "mine";
  ignore
    (Des.Engine.schedule e ~delay:1e-4 (fun () ->
         Ch.transmit ch ~src:0 ~duration:1e-3 "theirs"));
  Des.Engine.run_all e;
  Alcotest.(check int) "transmitter hears nothing" 0 !got

let test_channel_carrier_sense () =
  let e = Des.Engine.create () in
  let ch = line_channel e 4 in
  Alcotest.(check bool) "idle" false (Ch.busy ch 1);
  Ch.transmit ch ~src:0 ~duration:1e-3 "x";
  Alcotest.(check bool) "busy in cs range (200 m)" true (Ch.busy ch 1);
  Alcotest.(check bool) "busy at 400 m (within 550 cs)" true (Ch.busy ch 2);
  Alcotest.(check bool) "idle at 600 m" false (Ch.busy ch 3);
  Alcotest.(check bool) "busy_until covers airtime" true
    (Ch.busy_until ch 1 >= 1e-3);
  ignore
    (Des.Engine.schedule e ~delay:2e-3 (fun () ->
         Alcotest.(check bool) "idle after" false (Ch.busy ch 1)));
  Des.Engine.run_all e

let test_channel_neighbors () =
  let e = Des.Engine.create () in
  let ch = line_channel e 5 in
  Alcotest.(check (list int)) "neighbors of 2" [ 1; 3 ] (Ch.neighbors ch 2);
  Alcotest.(check bool) "in_range" true (Ch.in_range ch 0 1);
  Alcotest.(check bool) "not in range" false (Ch.in_range ch 0 2)

(* ------------------------------------------------------------------ *)
(* Spatial hash grid *)

let scatter ~seed n =
  let rng = Des.Rng.create (Int64.of_int seed) in
  Array.init n (fun _ -> T.random_point T.paper rng)

let test_grid_superset () =
  (* with max_speed 0 the inflated radius equals the query radius, and the
     bucket sweep must still cover every node the exact disc contains *)
  let n = 60 in
  let points = scatter ~seed:9 n in
  let g =
    Wireless.Grid.create ~nodes:n
      ~position:(fun i _ -> points.(i))
      ~cell:100.0 ~max_speed:0.0 ~epoch:1.0
  in
  Array.iteri
    (fun c center ->
      List.iter
        (fun radius ->
          let candidates = Hashtbl.create 16 in
          Wireless.Grid.iter g ~now:0.0 ~center ~radius (fun j ->
              Hashtbl.replace candidates j ());
          for j = 0 to n - 1 do
            if V.dist center points.(j) <= radius then
              Alcotest.(check bool)
                (Printf.sprintf "node %d in candidates of query %d" j c)
                true
                (Hashtbl.mem candidates j)
          done)
        [ 50.0; 250.0; 550.0 ])
    points

let test_grid_ascending_order () =
  let n = 80 in
  let points = scatter ~seed:21 n in
  let g =
    Wireless.Grid.create ~nodes:n
      ~position:(fun i _ -> points.(i))
      ~cell:137.5 ~max_speed:20.0 ~epoch:0.25
  in
  Array.iter
    (fun center ->
      List.iter
        (fun radius ->
          let last = ref (-1) in
          Wireless.Grid.iter g ~now:0.5 ~center ~radius (fun j ->
              Alcotest.(check bool) "strictly ascending" true (j > !last);
              last := j))
        [ 100.0; 300.0; 550.0; 2000.0 ])
    points

let test_grid_channel_equivalence () =
  (* the same broadcast schedule through a naive and a grid channel:
     delivery logs and collision counters must agree exactly *)
  let n = 40 in
  let points = scatter ~seed:33 n in
  let position i _ = points.(i) in
  let run grid =
    let e = Des.Engine.create () in
    let ch = Ch.create ?grid e ~nodes:n ~position ~range:250.0 ~cs_range:550.0 in
    let log = ref [] in
    for i = 0 to n - 1 do
      Ch.set_receiver ch i (fun ~src pdu ->
          log := (Des.Engine.now e, i, src, pdu) :: !log)
    done;
    for k = 0 to 19 do
      ignore
        (Des.Engine.schedule_at e
           ~time:(float_of_int k *. 3e-4)
           (fun () -> Ch.transmit ch ~src:(k * 7 mod n) ~duration:1e-3 k))
    done;
    Des.Engine.run_all e;
    (List.rev !log, Ch.collisions ch, List.init n (Ch.collisions_at ch))
  in
  let naive = run None in
  let gridded = run (Some { Ch.max_speed = 0.0; epoch = 0.25 }) in
  let log_n, coll_n, per_n = naive and log_g, coll_g, per_g = gridded in
  Alcotest.(check int) "same delivery count" (List.length log_n)
    (List.length log_g);
  Alcotest.(check bool) "same delivery log" true (log_n = log_g);
  Alcotest.(check int) "same collision total" coll_n coll_g;
  Alcotest.(check (list int)) "same per-node collisions" per_n per_g

(* ------------------------------------------------------------------ *)
(* MAC *)

type Frame.payload += Probe of int

let mac_world n =
  let e = Des.Engine.create () in
  let position i _t = vec (float_of_int i *. 200.0) 0.0 in
  let ch =
    Ch.create e ~nodes:n ~position ~range:250.0 ~cs_range:550.0
  in
  let received = Array.make n [] in
  let failed = ref [] in
  let succeeded = ref [] in
  let macs =
    Array.init n (fun i ->
        Mac.create e Radio.default ch ~id:i
          ~rng:(Des.Rng.create (Int64.of_int (100 + i)))
          {
            Mac.on_receive =
              (fun ~src frame -> received.(i) <- (src, frame) :: received.(i));
            on_unicast_success =
              (fun ~frame:_ ~dst -> succeeded := dst :: !succeeded);
            on_unicast_fail = (fun ~frame:_ ~dst -> failed := dst :: !failed);
          })
  in
  (e, macs, received, failed, succeeded)

let probe_frame ~src ~dst ~size k =
  Frame.make ~src ~dst ~size ~payload:(Probe k)

let test_mac_unicast_success () =
  let e, macs, received, failed, succeeded = mac_world 2 in
  Mac.send macs.(0) (probe_frame ~src:0 ~dst:(Frame.Unicast 1) ~size:512 1);
  Des.Engine.run e ~until:1.0;
  Alcotest.(check int) "delivered" 1 (List.length received.(1));
  Alcotest.(check (list int)) "ack success" [ 1 ] !succeeded;
  Alcotest.(check (list int)) "no failure" [] !failed;
  let s = Mac.stats macs.(0) in
  Alcotest.(check int) "one control tx (probe payload)" 1 s.Mac.tx_control

let test_mac_unicast_fail_when_unreachable () =
  let e, macs, received, failed, _ = mac_world 3 in
  (* node 2 is 400 m from node 0: out of range, so retries exhaust *)
  Mac.send macs.(0) (probe_frame ~src:0 ~dst:(Frame.Unicast 2) ~size:512 1);
  Des.Engine.run e ~until:5.0;
  Alcotest.(check (list int)) "failure reported" [ 2 ] !failed;
  Alcotest.(check int) "nothing delivered" 0 (List.length received.(2));
  Alcotest.(check int) "drop counted" 1 (Mac.drops macs.(0))

let test_mac_broadcast () =
  let e, macs, received, _, _ = mac_world 3 in
  Mac.send macs.(1) (probe_frame ~src:1 ~dst:Frame.Broadcast ~size:64 9);
  Des.Engine.run e ~until:1.0;
  Alcotest.(check int) "node 0 heard" 1 (List.length received.(0));
  Alcotest.(check int) "node 2 heard" 1 (List.length received.(2));
  let s = Mac.stats macs.(1) in
  Alcotest.(check int) "control tx" 1 s.Mac.tx_control

let test_mac_queue_overflow () =
  let e, macs, _, _, _ = mac_world 2 in
  for k = 1 to Radio.default.Radio.queue_limit + 10 do
    Mac.send macs.(0) (probe_frame ~src:0 ~dst:(Frame.Unicast 1) ~size:512 k)
  done;
  let s = Mac.stats macs.(0) in
  Alcotest.(check int) "overflow drops" 10 s.Mac.drop_queue_full;
  Des.Engine.run e ~until:60.0;
  let s = Mac.stats macs.(0) in
  Alcotest.(check int) "rest transmitted" Radio.default.Radio.queue_limit
    s.Mac.tx_control

let test_mac_serialises_contenders () =
  (* two senders in carrier-sense range of each other both unicast to the
     middle node; with carrier sense + RTS/CTS both must get through *)
  let e, macs, received, failed, _ = mac_world 3 in
  for k = 1 to 10 do
    Mac.send macs.(0) (probe_frame ~src:0 ~dst:(Frame.Unicast 1) ~size:512 k);
    Mac.send macs.(2) (probe_frame ~src:2 ~dst:(Frame.Unicast 1) ~size:512 k)
  done;
  Des.Engine.run e ~until:30.0;
  Alcotest.(check (list int)) "no failures" [] !failed;
  Alcotest.(check int) "all 20 delivered" 20 (List.length received.(1))

let test_mac_data_vs_control_classification () =
  let e, macs, _, _, _ = mac_world 2 in
  let data =
    {
      Frame.origin = 0;
      final_dst = 1;
      flow = 0;
      seq = 1;
      sent_at = 0.0;
      hops = 0;
    }
  in
  Mac.send macs.(0)
    (Frame.make ~src:0 ~dst:(Frame.Unicast 1) ~size:532
       ~payload:(Frame.Data data));
  Mac.send macs.(0) (probe_frame ~src:0 ~dst:(Frame.Unicast 1) ~size:64 1);
  Des.Engine.run e ~until:2.0;
  let s = Mac.stats macs.(0) in
  Alcotest.(check int) "one data" 1 s.Mac.tx_data;
  Alcotest.(check int) "one control" 1 s.Mac.tx_control

let test_frame_classification () =
  let data =
    {
      Frame.origin = 0;
      final_dst = 1;
      flow = 0;
      seq = 1;
      sent_at = 0.0;
      hops = 0;
    }
  in
  let f =
    Frame.make ~src:0 ~dst:Frame.Broadcast ~size:10 ~payload:(Frame.Data data)
  in
  Alcotest.(check bool) "data payload is data" true (Frame.is_data f);
  let c = Frame.make ~src:0 ~dst:Frame.Broadcast ~size:10 ~payload:(Probe 1) in
  Alcotest.(check bool) "other payload is control" false (Frame.is_data c);
  let reclassified = Frame.with_cls c Frame.Data_frame in
  Alcotest.(check bool) "reclassified" true (Frame.is_data reclassified)

let () =
  Alcotest.run "wireless"
    [
      ( "geometry",
        [
          Alcotest.test_case "vec2" `Quick test_vec2;
          Alcotest.test_case "terrain" `Quick test_terrain;
        ] );
      ( "waypoint",
        [
          Alcotest.test_case "stationary" `Quick test_waypoint_stationary;
          Alcotest.test_case "kinematics" `Quick test_waypoint_kinematics;
          Alcotest.test_case "pause 900 static" `Quick test_waypoint_pause_900_is_static;
          Alcotest.test_case "degenerate speed range" `Quick
            test_waypoint_degenerate_speed;
          Alcotest.test_case "deterministic" `Quick test_waypoint_deterministic;
        ] );
      ( "radio",
        [ Alcotest.test_case "durations" `Quick test_radio_durations ] );
      ( "channel",
        [
          Alcotest.test_case "delivery and range" `Quick test_channel_delivery;
          Alcotest.test_case "hidden-terminal collision" `Quick test_channel_collision;
          Alcotest.test_case "capture effect" `Quick test_channel_capture;
          Alcotest.test_case "half duplex" `Quick test_channel_half_duplex;
          Alcotest.test_case "carrier sense" `Quick test_channel_carrier_sense;
          Alcotest.test_case "neighbors" `Quick test_channel_neighbors;
        ] );
      ( "grid",
        [
          Alcotest.test_case "candidate superset" `Quick test_grid_superset;
          Alcotest.test_case "ascending iteration" `Quick
            test_grid_ascending_order;
          Alcotest.test_case "naive/grid channel equivalence" `Quick
            test_grid_channel_equivalence;
        ] );
      ( "mac",
        [
          Alcotest.test_case "unicast success" `Quick test_mac_unicast_success;
          Alcotest.test_case "unicast failure" `Quick test_mac_unicast_fail_when_unreachable;
          Alcotest.test_case "broadcast" `Quick test_mac_broadcast;
          Alcotest.test_case "queue overflow" `Quick test_mac_queue_overflow;
          Alcotest.test_case "contention serialisation" `Quick test_mac_serialises_contenders;
          Alcotest.test_case "data/control classification" `Quick
            test_mac_data_vs_control_classification;
          Alcotest.test_case "frame classification" `Quick test_frame_classification;
        ] );
    ]
