(* Fault-injection subsystem: deterministic planning, injector semantics,
   and the robustness regressions — delivery recovers from a flapped relay
   link, and same seed + same fault schedule reproduces the run byte for
   byte. *)

module C = Sim.Config
module Spec = Faults.Spec
module Injector = Faults.Injector

let base_config =
  {
    C.small with
    protocol = C.Srp;
    nodes = 30;
    terrain = Wireless.Terrain.make ~width:900.0 ~height:300.0;
    duration = 40.0;
    flows = 4;
    pause = 900.0;
    seed = 3;
  }

(* ------------------------------------------------------------------ *)
(* Spec *)

let test_plan_deterministic () =
  let plan () =
    Spec.plan Spec.default
      ~rng:(Des.Rng.split (Des.Rng.create 7L) "faults")
      ~nodes:50 ~duration:120.0
  in
  let a = plan () and b = plan () in
  Alcotest.(check bool) "same rng, same plan" true (a = b);
  Alcotest.(check bool) "non-empty" true (a <> []);
  let rec sorted = function
    | x :: (y :: _ as rest) -> x.Spec.at <= y.Spec.at && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "time-sorted" true (sorted a);
  (* every down-type event has its paired up-type event *)
  let count p = List.length (List.filter (fun t -> p t.Spec.ev) a) in
  Alcotest.(check int) "flaps paired"
    (count (function Spec.Link_down _ -> true | _ -> false))
    (count (function Spec.Link_up _ -> true | _ -> false));
  Alcotest.(check int) "crashes paired"
    (count (function Spec.Crash _ -> true | _ -> false))
    (count (function Spec.Restart _ -> true | _ -> false));
  Alcotest.(check int) "two crashes"
    2
    (count (function Spec.Crash _ -> true | _ -> false))

(* ------------------------------------------------------------------ *)
(* Injector *)

let test_injector_semantics () =
  let engine = Des.Engine.create () in
  let crashed = ref [] and restarted = ref [] in
  let plan =
    [
      { Spec.at = 1.0; ev = Spec.Link_down { la = 2; lb = 3 } };
      { Spec.at = 2.0; ev = Spec.Crash { node = 4 } };
      { Spec.at = 3.0; ev = Spec.Link_up { la = 3; lb = 2 } };
      { Spec.at = 4.0; ev = Spec.Restart { node = 4 } };
    ]
  in
  let inj =
    Injector.create engine ~nodes:8
      ~rng:(Des.Rng.create 1L)
      ~plan
      ~on_crash:(fun i -> crashed := i :: !crashed)
      ~on_restart:(fun i -> restarted := i :: !restarted)
  in
  let check_at time f =
    ignore (Des.Engine.schedule_at engine ~time (fun () -> f ()))
  in
  check_at 0.5 (fun () ->
      Alcotest.(check bool) "link up before flap" true
        (Injector.frame_ok inj ~src:2 ~dst:3));
  check_at 1.5 (fun () ->
      Alcotest.(check bool) "flapped link blocked" false
        (Injector.frame_ok inj ~src:2 ~dst:3);
      (* direction-agnostic *)
      Alcotest.(check bool) "reverse blocked too" false
        (Injector.frame_ok inj ~src:3 ~dst:2);
      Alcotest.(check bool) "other links unaffected" true
        (Injector.frame_ok inj ~src:1 ~dst:2));
  check_at 2.5 (fun () ->
      Alcotest.(check bool) "crashed node deaf" false
        (Injector.frame_ok inj ~src:1 ~dst:4);
      Alcotest.(check bool) "crashed node mute" false
        (Injector.frame_ok inj ~src:4 ~dst:1);
      Alcotest.(check bool) "node_up reports down" false (Injector.node_up inj 4));
  check_at 3.5 (fun () ->
      Alcotest.(check bool) "link healed" true
        (Injector.frame_ok inj ~src:2 ~dst:3));
  check_at 4.5 (fun () ->
      Alcotest.(check bool) "node back" true (Injector.node_up inj 4);
      Alcotest.(check bool) "frames flow again" true
        (Injector.frame_ok inj ~src:1 ~dst:4));
  Des.Engine.run engine ~until:5.0;
  Alcotest.(check (list int)) "on_crash fired" [ 4 ] !crashed;
  Alcotest.(check (list int)) "on_restart fired" [ 4 ] !restarted;
  let s = Injector.stats inj in
  Alcotest.(check int) "all events applied" 4 (Injector.event_count s);
  Alcotest.(check bool) "blocked frames counted" true
    (s.Injector.frames_blocked > 0)

(* ------------------------------------------------------------------ *)
(* Robustness regressions *)

(* Flap the first flow's relay link mid-flow (found from a clean white-box
   run over the identical seed; the topology is static at pause 900) and
   assert delivery recovers through rediscovery while the online monitor
   stays silent. *)
let test_relay_flap_recovery () =
  let config = base_config in
  (* the first flow, exactly as the runner will schedule it *)
  let root = Des.Rng.create (Int64.of_int config.C.seed) in
  let flow =
    List.hd
      (Traffic.Cbr.generate
         ~rng:(Des.Rng.split root "traffic")
         ~nodes:config.C.nodes ~concurrent:config.C.flows
         ~from_time:config.C.traffic_start ~until:config.C.duration
         ~mean_duration:config.C.flow_mean_duration)
  in
  let src = flow.Traffic.Cbr.src and dst = flow.Traffic.Cbr.dst in
  (* clean run with white-box agents to learn src's relay toward dst *)
  let srps : Protocols.Srp.t option array = Array.make config.C.nodes None in
  ignore
    (Sim.Runner.run_custom config
       ~build:(fun i ctx ->
         let t, agent = Protocols.Srp.create_full ~config:config.C.srp ctx in
         srps.(i) <- Some t;
         agent)
       ~on_start:(fun _ -> ()));
  let relay =
    match Protocols.Srp.successor_orderings (Option.get srps.(src)) ~dst with
    | (b, _) :: _ -> b
    | [] -> dst (* no live successor at run end: flap the direct link *)
  in
  let faults =
    {
      Spec.none with
      extra =
        [
          { Spec.at = 20.0; ev = Spec.Link_down { la = src; lb = relay } };
          { Spec.at = 28.0; ev = Spec.Link_up { la = src; lb = relay } };
        ];
    }
  in
  match Sim.Loopcheck.run_online { config with faults } ~interval:0.25 with
  | Error message -> Alcotest.failf "loop invariant violated: %s" message
  | Ok (result, checks, _) ->
      Alcotest.(check bool) "monitor exercised" true (checks > 0);
      Alcotest.(check int) "both flap events injected" 2
        result.Sim.Metrics.fault_events;
      Alcotest.(check bool)
        (Printf.sprintf "delivery recovers (got %.3f)"
           result.Sim.Metrics.delivery_ratio)
        true
        (result.Sim.Metrics.delivery_ratio >= 0.85)

(* Same seed + same fault schedule must reproduce the full report byte for
   byte — flaps, crashes and loss bursts all ride deterministic RNG
   substreams. *)
let test_faulted_run_deterministic () =
  let config =
    {
      base_config with
      faults = { Spec.default with flap_rate = 0.3; burst_rate = 0.02 };
    }
  in
  let render () =
    let result = Sim.Runner.run config in
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    Sim.Report.run ppf result;
    Format.pp_print_flush ppf ();
    (result, Buffer.contents buf)
  in
  let a, text_a = render () in
  let b, text_b = render () in
  Alcotest.(check string) "byte-identical report" text_a text_b;
  Alcotest.(check int) "same delivered" a.Sim.Metrics.delivered
    b.Sim.Metrics.delivered;
  Alcotest.(check bool) "faults actually injected" true
    (a.Sim.Metrics.fault_events > 0);
  Alcotest.(check bool) "frames were blocked" true
    (a.Sim.Metrics.fault_frames_blocked > 0)

(* Crashes under the online monitor: the acceptance scenario scaled down.
   Two reboots mid-run, zero violations, nonzero recovery series. *)
let test_crashes_online_monitor () =
  let config =
    {
      base_config with
      duration = 60.0;
      faults = { Spec.none with crashes = 2; crash_down_mean = 12.0 };
    }
  in
  match Sim.Loopcheck.run_online config ~interval:0.25 with
  | Error message -> Alcotest.failf "loop invariant violated: %s" message
  | Ok (result, _, _) ->
      Alcotest.(check bool) "crash events injected" true
        (result.Sim.Metrics.fault_events >= 2);
      Alcotest.(check bool) "still delivering" true
        (result.Sim.Metrics.delivery_ratio >= 0.5)

let () =
  Alcotest.run "faults"
    [
      ( "spec",
        [ Alcotest.test_case "plan deterministic + paired" `Quick
            test_plan_deterministic ] );
      ( "injector",
        [ Alcotest.test_case "event semantics" `Quick test_injector_semantics ]
      );
      ( "robustness",
        [
          Alcotest.test_case "relay link flap: delivery recovers" `Quick
            test_relay_flap_recovery;
          Alcotest.test_case "faulted run deterministic" `Quick
            test_faulted_run_deterministic;
          Alcotest.test_case "crashes under online monitor" `Quick
            test_crashes_online_monitor;
        ] );
    ]
