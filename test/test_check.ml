(* The property-testing engine itself: generator determinism, integrated
   shrinking to minimal counterexamples, byte-for-byte replay of failure
   reports, the fixed-seed catalogue gate, and the van Glabbeek AODV
   sequence-number scenario against the loop monitor. *)

module Gen = Check.Gen
module Runner = Check.Runner
module Frame = Wireless.Frame

(* ------------------------------------------------------------------ *)
(* Generator engine *)

let test_gen_deterministic () =
  let gen =
    Gen.list_size (Gen.int_range 0 12)
      (Gen.pair (Gen.int_range 0 1000) Gen.bool)
  in
  let draw () =
    Gen.Tree.root (Gen.generate gen (Des.Rng.create 77L))
  in
  Alcotest.(check bool) "same seed, same value" true (draw () = draw ());
  let other = Gen.Tree.root (Gen.generate gen (Des.Rng.create 78L)) in
  (* not a law, but with these ranges a collision means a broken split *)
  Alcotest.(check bool) "different seed, different value" true
    (draw () <> other)

let test_shrink_trees_lazy_and_sound () =
  (* every shrink candidate of int_range stays inside the range *)
  let tree = Gen.generate (Gen.int_range 10 1000) (Des.Rng.create 5L) in
  let root = Gen.Tree.root tree in
  Alcotest.(check bool) "root in range" true (root >= 10 && root <= 1000);
  Seq.iter
    (fun child ->
      let v = Gen.Tree.root child in
      Alcotest.(check bool) "child in range" true (v >= 10 && v <= 1000))
    (Gen.Tree.children tree)

(* Threshold predicates must shrink to the exact boundary: the canonical
   integrated-shrinking acceptance test. *)
let test_shrink_int_minimal () =
  let cell =
    Runner.cell ~name:"int-threshold" ~print:string_of_int
      (Gen.int_range 0 100_000)
      (fun x -> if x >= 42 then Error "too big" else Ok ())
  in
  match Runner.run_cell ~seed:11 ~cases:200 cell with
  | Runner.Pass _ -> Alcotest.fail "threshold law should fail"
  | Runner.Fail f ->
      Alcotest.(check string) "shrunk to the boundary" "42" f.Runner.repr

let test_shrink_list_minimal () =
  let print l = "[" ^ String.concat ";" (List.map string_of_int l) ^ "]" in
  let cell =
    Runner.cell ~name:"list-threshold" ~print
      (Gen.list_size (Gen.int_range 0 20) (Gen.int_range 0 1000))
      (fun l ->
        if List.exists (fun x -> x >= 42) l then Error "has a big one"
        else Ok ())
  in
  match Runner.run_cell ~seed:3 ~cases:500 cell with
  | Runner.Pass _ -> Alcotest.fail "list law should fail"
  | Runner.Fail f ->
      Alcotest.(check string) "one element at the boundary" "[42]"
        f.Runner.repr

(* ------------------------------------------------------------------ *)
(* Replay: a failure report must reproduce byte for byte from only the
   (prop, seed, case) triple it prints — exactly what
   `manet_sim fuzz --prop .. --seed .. --replay ..` executes. *)

let test_replay_byte_identical () =
  let cell =
    Runner.cell ~name:"meta-replay" ~print:string_of_int
      (Gen.int_range 0 10_000)
      (fun x -> if x mod 997 = 3 then Error "unlucky residue" else Ok ())
  in
  match Runner.run_cell ~seed:123 ~cases:2000 cell with
  | Runner.Pass _ -> Alcotest.fail "expected a failure to replay"
  | Runner.Fail f ->
      let original = Runner.report (Runner.Fail f) ~name:"meta-replay" in
      Alcotest.(check bool) "report names the replay invocation" true
        (let line =
           Runner.replay_line ~prop:"meta-replay" ~seed:123 ~case:f.Runner.case
         in
         let rec contains i =
           i + String.length line <= String.length original
           && (String.sub original i (String.length line) = line
              || contains (i + 1))
         in
         contains 0);
      (* replay runs exactly one case at the printed index *)
      let replayed =
        Runner.run_cell ~seed:123 ~cases:1 ~start:f.Runner.case cell
      in
      Alcotest.(check string) "byte-for-byte reproduction" original
        (Runner.report replayed ~name:"meta-replay")

(* ------------------------------------------------------------------ *)
(* The fixed-seed catalogue gate (tier 1): every property in both
   catalogues passes at a small budget. *)

let test_catalogue_fixed_seed () =
  let outcomes =
    Runner.run_suite ~seed:42 ~max_cases:30
      (Check.Props.all @ Sim.Fuzz.props)
  in
  Alcotest.(check bool) "catalogue is non-trivial" true
    (List.length outcomes >= 12);
  List.iter
    (fun (name, outcome) ->
      match outcome with
      | Runner.Pass _ -> ()
      | Runner.Fail _ ->
          Alcotest.fail (Runner.report outcome ~name))
    outcomes

(* ------------------------------------------------------------------ *)
(* The van Glabbeek AODV scenario (CONCUR/ESOP analyses of RFC 3561):
   nodes s=0, a=1, d=2; a routes to d through s; the s-d link breaks.
   In the published interleaving, a's stale entry answers s's repair
   request and the two nodes point at each other. Our variant requests a
   strictly fresher sequence number for an invalidated route
   (Aodv.requested_seqno) and bumps the destination sequence number on
   link-layer loss, so the stale intermediate reply is refused and no
   loop forms — the first test pins exactly that guard. The acceptance
   weakness is still present ("accept anything when the current entry is
   invalid"): the second test forges the stale reply directly, watches
   the s<->a cycle appear, and requires the mutation-time monitor to
   flag it. The third runs SRP over the same schedule and keeps the
   reference model green. *)

let s, a, d = (0, 1, 2)

let mk_data ~origin ~dst ~seq ~at =
  {
    Frame.origin;
    final_dst = dst;
    flow = 0;
    seq;
    sent_at = at;
    hops = 0;
  }

(* the monitor: the next-hop graph toward [dst] must stay acyclic *)
let aodv_cycle aodvs ~dst =
  Result.is_error
    (Slr.Dag.acyclic
       ~successors:(fun i ->
         if i = dst then []
         else
           match Protocols.Aodv.next_hop aodvs.(i) ~dst with
           | Some nh -> [ nh ]
           | None -> [])
       (Array.length aodvs))

type aodv_world = {
  engine : Des.Engine.t;
  wire : Check.Wire.t;
  aodvs : Protocols.Aodv.t array;
  agents : Protocols.Routing_intf.agent array;
  mutable flagged : bool;  (** monitor saw a next-hop cycle *)
}

let aodv_world () =
  let engine = Des.Engine.create () in
  let wire =
    Check.Wire.create ~engine ~rng:(Des.Rng.create 99L) ~nodes:3 ()
  in
  let pairs =
    Array.init 3 (fun i ->
        Protocols.Aodv.create_full (Check.Wire.ctx wire i))
  in
  let aodvs = Array.map fst pairs and agents = Array.map snd pairs in
  Array.iteri (fun i agent -> Check.Wire.set_agent wire i agent) agents;
  let w = { engine; wire; aodvs; agents; flagged = false } in
  Array.iter
    (fun t ->
      Protocols.Aodv.on_route_change t (fun dst ->
          if aodv_cycle aodvs ~dst then w.flagged <- true))
    aodvs;
  Check.Wire.add_link wire s a;
  Check.Wire.add_link wire s d;
  w

(* phase A: a discovers d through s; phase B: the s-d link breaks and s
   loses its route through link-layer feedback, then starts local repair *)
let vg_schedule w =
  ignore
    (Des.Engine.schedule_at w.engine ~time:0.1 (fun () ->
         w.agents.(a).Protocols.Routing_intf.originate
           (mk_data ~origin:a ~dst:d ~seq:0 ~at:0.1)
           ~size:512));
  Des.Engine.run w.engine ~until:5.0;
  Alcotest.(check (option int)) "a routes to d through s" (Some s)
    (Protocols.Aodv.next_hop w.aodvs.(a) ~dst:d);
  Alcotest.(check (option int)) "s routes to d directly" (Some d)
    (Protocols.Aodv.next_hop w.aodvs.(s) ~dst:d);
  Check.Wire.remove_link w.wire s d;
  ignore
    (Des.Engine.schedule_at w.engine ~time:5.1 (fun () ->
         w.agents.(s).Protocols.Routing_intf.originate
           (mk_data ~origin:s ~dst:d ~seq:1 ~at:5.1)
           ~size:512));
  Des.Engine.run w.engine ~until:6.0;
  (* the unicast failed: s invalidated the route and bumped its seqno *)
  Alcotest.(check (option int)) "s lost its route" None
    (Protocols.Aodv.next_hop w.aodvs.(s) ~dst:d)

let test_vg_aodv_variant_avoids_loop () =
  let w = aodv_world () in
  vg_schedule w;
  (* while a's stale entry is still alive (route_lifetime 10 s), the
     repair rings must keep failing: a refuses to answer because s
     requests a strictly fresher seqno *)
  Des.Engine.run w.engine ~until:8.0;
  Alcotest.(check (option int)) "a still holds the stale route" (Some s)
    (Protocols.Aodv.next_hop w.aodvs.(a) ~dst:d);
  Alcotest.(check (option int)) "s did not adopt a route through a" None
    (Protocols.Aodv.next_hop w.aodvs.(s) ~dst:d);
  (* and to exhaustion: no interleaving of the remaining retries forms a
     loop either *)
  Des.Engine.run w.engine ~until:120.0;
  Alcotest.(check (option int)) "s never adopted a route through a" None
    (Protocols.Aodv.next_hop w.aodvs.(s) ~dst:d);
  Alcotest.(check bool) "monitor stayed quiet" false w.flagged;
  Alcotest.(check bool) "no next-hop cycle" false (aodv_cycle w.aodvs ~dst:d)

let test_vg_aodv_forged_reply_loops () =
  let w = aodv_world () in
  vg_schedule w;
  (* adversarial replay of the published interleaving: the stale reply a
     would have sent under RFC 3561 semantics, injected verbatim. s's
     entry for d is invalid, so the acceptance rule takes anything. *)
  let stale =
    Frame.with_kind
      (Frame.make ~src:a ~dst:(Frame.Unicast s)
         ~size:Protocols.Aodv.default_config.Protocols.Aodv.rrep_size
         ~payload:
           (Protocols.Aodv.Rrep
              {
                Protocols.Aodv.rp_src = s;
                rp_dst = d;
                rp_dst_seqno = 1;
                rp_hops = 1;
                rp_lifetime = 10.0;
              }))
      "rrep"
  in
  Check.Wire.inject w.wire ~from:a ~at:s stale;
  Alcotest.(check (option int)) "s now routes d through a" (Some a)
    (Protocols.Aodv.next_hop w.aodvs.(s) ~dst:d);
  Alcotest.(check (option int)) "a still routes d through s" (Some s)
    (Protocols.Aodv.next_hop w.aodvs.(a) ~dst:d);
  Alcotest.(check bool) "the monitor flagged the s<->a loop" true w.flagged;
  Alcotest.(check bool) "next-hop cycle present" true
    (aodv_cycle w.aodvs ~dst:d)

let test_vg_srp_same_schedule_loop_free () =
  let engine = Des.Engine.create () in
  let wire =
    Check.Wire.create ~engine ~rng:(Des.Rng.create 99L) ~nodes:3 ()
  in
  let model = Check.Slr_model.create ~nodes:3 in
  let violation = ref None in
  let pairs =
    Array.init 3 (fun i ->
        let t, agent = Protocols.Srp.create_full (Check.Wire.ctx wire i) in
        Protocols.Srp.on_route_change t (fun dst ->
            match
              Check.Slr_model.observe model
                {
                  Check.Slr_model.node = i;
                  dst;
                  order = Protocols.Srp.ordering t ~dst;
                  succs = Protocols.Srp.successor_orderings t ~dst;
                }
            with
            | Ok () -> ()
            | Error m -> if !violation = None then violation := Some m);
        Check.Wire.set_agent wire i agent;
        (t, agent))
  in
  let agents = Array.map snd pairs in
  Check.Wire.add_link wire s a;
  Check.Wire.add_link wire s d;
  ignore
    (Des.Engine.schedule_at engine ~time:0.1 (fun () ->
         agents.(a).Protocols.Routing_intf.originate
           (mk_data ~origin:a ~dst:d ~seq:0 ~at:0.1)
           ~size:512));
  Des.Engine.run engine ~until:5.0;
  Check.Wire.remove_link wire s d;
  ignore
    (Des.Engine.schedule_at engine ~time:5.1 (fun () ->
         agents.(s).Protocols.Routing_intf.originate
           (mk_data ~origin:s ~dst:d ~seq:1 ~at:5.1)
           ~size:512));
  Des.Engine.run engine ~until:40.0;
  (match !violation with
  | Some m -> Alcotest.fail ("reference model violation: " ^ m)
  | None -> ());
  Alcotest.(check bool) "model observed real route activity" true
    (Check.Slr_model.observations model > 0)

let () =
  Alcotest.run "check"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic from seed" `Quick
            test_gen_deterministic;
          Alcotest.test_case "shrink candidates stay in range" `Quick
            test_shrink_trees_lazy_and_sound;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "int threshold shrinks to 42" `Quick
            test_shrink_int_minimal;
          Alcotest.test_case "list shrinks to [42]" `Quick
            test_shrink_list_minimal;
        ] );
      ( "replay",
        [
          Alcotest.test_case "failure report replays byte-for-byte" `Quick
            test_replay_byte_identical;
        ] );
      ( "catalogue",
        [
          Alcotest.test_case "fixed-seed suite passes" `Quick
            test_catalogue_fixed_seed;
        ] );
      ( "van-glabbeek",
        [
          Alcotest.test_case "our AODV variant refuses the stale reply"
            `Quick test_vg_aodv_variant_avoids_loop;
          Alcotest.test_case "forged stale reply forms a flagged loop"
            `Quick test_vg_aodv_forged_reply_loops;
          Alcotest.test_case "SRP on the same schedule stays loop-free"
            `Quick test_vg_srp_same_schedule_loop_free;
        ] );
    ]
