(* White-box tests for the routing agents. Each agent runs against a stub
   context that captures MAC transmissions, deliveries, and drops, so
   individual message handlers can be exercised exactly (SRP's Procedures
   1-4, SDC, Eqs. 9-11; and the baselines' equivalents). *)

module RI = Protocols.Routing_intf
module Frame = Wireless.Frame
module O = Slr.Ordering
module F = Slr.Fraction

type harness = {
  engine : Des.Engine.t;
  ctx : RI.ctx;
  sent : Frame.t list ref;
  delivered : Frame.data list ref;
  dropped : (Frame.data * string) list ref;
}

let harness ?(id = 0) () =
  let engine = Des.Engine.create () in
  let sent = ref [] in
  let delivered = ref [] in
  let dropped = ref [] in
  let ctx =
    {
      RI.id;
      node_count = 16;
      engine;
      rng = Des.Rng.create 99L;
      trace = Trace.null;
      mac_send = (fun f -> sent := f :: !sent);
      deliver = (fun d -> delivered := d :: !delivered);
      drop_data = (fun d ~reason -> dropped := (d, reason) :: !dropped);
    }
  in
  { engine; ctx; sent; delivered; dropped }

let run h = Des.Engine.run h.engine ~until:(Des.Engine.now h.engine +. 1.0)

(* advance just far enough for jittered sends, but not into ring retries *)
let run_short h = Des.Engine.run h.engine ~until:(Des.Engine.now h.engine +. 0.02)

let take_sent h =
  let frames = List.rev !(h.sent) in
  h.sent := [];
  frames

let mk_data ?(origin = 0) ?(dst = 5) ?(seq = 1) () =
  {
    Frame.origin;
    final_dst = dst;
    flow = 0;
    seq;
    sent_at = 0.0;
    hops = 0;
  }

let ord sn num den = O.make ~sn ~frac:(F.make ~num ~den)

(* ------------------------------------------------------------------ *)
(* SRP *)

module Srp = Protocols.Srp

let find_rreq frames =
  List.filter_map
    (fun f -> match f.Frame.payload with Srp.Rreq r -> Some (f, r) | _ -> None)
    frames

let find_rrep frames =
  List.filter_map
    (fun f -> match f.Frame.payload with Srp.Rrep r -> Some (f, r) | _ -> None)
    frames

let test_srp_originate_unassigned () =
  let h = harness () in
  let t, agent = Srp.create_full h.ctx in
  agent.RI.originate (mk_data ()) ~size:512;
  run_short h;
  match find_rreq (take_sent h) with
  | [ (frame, rreq) ] ->
      Alcotest.(check bool) "broadcast" true (frame.Frame.dst = Frame.Broadcast);
      Alcotest.(check bool) "U bit" true rreq.Srp.rq_u;
      Alcotest.(check bool) "no reset" false rreq.Srp.rq_rr;
      Alcotest.(check int) "first ring ttl" 1 rreq.Srp.rq_ttl;
      Alcotest.(check int) "seqno untouched" 1 (Srp.own_seqno t)
  | l -> Alcotest.failf "expected 1 RREQ, got %d" (List.length l)

let test_srp_destination_reply () =
  let h = harness ~id:5 () in
  let t, agent = Srp.create_full h.ctx in
  let rreq =
    {
      Srp.rq_src = 0;
      rq_id = 1;
      rq_dst = 5;
      rq_order = O.unassigned;
      rq_u = true;
      rq_rr = false;
      rq_d = false;
      rq_n = false;
      rq_hops = 2;
      rq_ttl = 5;
      rq_adv = None;
    }
  in
  agent.RI.receive ~src:3
    (Frame.make ~src:3 ~dst:Frame.Broadcast ~size:52 ~payload:(Srp.Rreq rreq));
  run_short h;
  (match find_rrep (take_sent h) with
  | [ (frame, rrep) ] ->
      Alcotest.(check bool) "unicast to last hop" true
        (frame.Frame.dst = Frame.Unicast 3);
      Alcotest.(check int) "advertises itself" 5 rrep.Srp.rp_dst;
      Alcotest.(check int) "destination seqno" 1 rrep.Srp.rp_order.O.sn;
      Alcotest.(check bool) "fraction 0/1" true
        (F.is_zero (O.frac rrep.Srp.rp_order));
      Alcotest.(check int) "distance 0" 0 rrep.Srp.rp_dist
  | l -> Alcotest.failf "expected 1 RREP, got %d" (List.length l));
  (* the last hop RACKs the reply: no retransmissions follow *)
  agent.RI.receive ~src:3
    (Frame.make ~src:3 ~dst:(Frame.Unicast 5) ~size:12
       ~payload:(Srp.Rack { Srp.k_src = 0; k_id = 1 }));
  run h;
  Alcotest.(check int) "acked reply is not retransmitted" 0
    (List.length (find_rrep (take_sent h)));
  (* a reset-required solicitation forces a strictly larger seqno *)
  agent.RI.receive ~src:3
    (Frame.make ~src:3 ~dst:Frame.Broadcast ~size:52
       ~payload:(Srp.Rreq { rreq with rq_id = 2; rq_rr = true }));
  run h;
  Alcotest.(check int) "seqno bumped by T bit" 2 (Srp.own_seqno t)

let feed_rrep h agent ~dst ~via ~order ~dist ~id =
  agent.RI.receive ~src:via
    (Frame.make ~src:via ~dst:(Frame.Unicast h.ctx.RI.id) ~size:44
       ~payload:
         (Srp.Rrep
            {
              rp_src = h.ctx.RI.id;
              rp_id = id;
              rp_dst = dst;
              rp_order = order;
              rp_dist = dist;
              rp_lifetime = 10.0;
              rp_n = false;
            }));
  run_short h

let adopt_route h agent ~dst ~via ~order ~dist =
  (* deliver a terminus RREP so the agent under test adopts a route *)
  agent.RI.originate (mk_data ~dst ()) ~size:512;
  run_short h;
  let id =
    match find_rreq (take_sent h) with
    | (_, r) :: _ -> r.Srp.rq_id
    | [] -> Alcotest.fail "no RREQ emitted"
  in
  feed_rrep h agent ~dst ~via ~order ~dist ~id

let test_srp_adopts_route_and_flushes () =
  let h = harness () in
  let t, agent = Srp.create_full h.ctx in
  adopt_route h agent ~dst:5 ~via:3 ~order:(O.destination ~sn:1) ~dist:0;
  Alcotest.(check bool) "route active" true (Srp.has_active_route t ~dst:5);
  (* NEWORDER case II: next element of the destination's label *)
  Alcotest.(check bool) "own ordering is (1, 1/2)" true
    (O.equal (Srp.ordering t ~dst:5) (ord 1 1 2));
  (* the buffered packet went out to the successor *)
  let datas =
    List.filter (fun f -> Frame.is_data f) (take_sent h)
  in
  (match datas with
  | [ f ] ->
      Alcotest.(check bool) "to successor 3" true
        (f.Frame.dst = Frame.Unicast 3)
  | l -> Alcotest.failf "expected 1 data frame, got %d" (List.length l));
  (* forwarding more data uses the same successor *)
  agent.RI.originate (mk_data ~seq:2 ()) ~size:512;
  run h;
  Alcotest.(check int) "forwarded directly" 1
    (List.length (List.filter Frame.is_data (take_sent h)))

let test_srp_lie_heuristic () =
  let h = harness () in
  let t, agent = Srp.create_full h.ctx in
  adopt_route h agent ~dst:5 ~via:3 ~order:(ord 1 1 3) ~dist:1;
  ignore (take_sent h);
  (* own ordering is split/next of 1/3 -> some p/q; force a rediscovery and
     inspect the solicitation's understated label *)
  let own = Srp.ordering t ~dst:5 in
  Des.Engine.run h.engine ~until:20.0;
  (* route expired (lifetime 10 s) but the label is retained *)
  Alcotest.(check bool) "route expired" false (Srp.has_active_route t ~dst:5);
  agent.RI.originate (mk_data ~seq:3 ()) ~size:512;
  run_short h;
  match find_rreq (take_sent h) with
  | (_, rreq) :: _ ->
      Alcotest.(check bool) "not unassigned" false rreq.Srp.rq_u;
      Alcotest.(check bool) "lied below own ordering" true
        (O.precedes own rreq.Srp.rq_order
         || F.compare (O.frac rreq.Srp.rq_order) (O.frac own) < 0);
      (* (p-1)/(q-1) for own = (1, p/q) with p > 1 *)
      let f = O.frac own in
      if f.F.num > 1 then begin
        let lied = O.frac rreq.Srp.rq_order in
        Alcotest.(check int) "num - 1" (f.F.num - 1) lied.F.num;
        Alcotest.(check int) "den - 1" (f.F.den - 1) lied.F.den
      end
  | [] -> Alcotest.fail "no RREQ"

let test_srp_relay_strengthens () =
  let h = harness ~id:7 () in
  let t, agent = Srp.create_full h.ctx in
  (* give node 7 a good label for destination 5 *)
  adopt_route h agent ~dst:5 ~via:3 ~order:(O.destination ~sn:1) ~dist:0;
  ignore (take_sent h);
  Des.Engine.run h.engine ~until:15.0;
  (* now relay a worse solicitation: Eq. 10 must substitute the path min.
     An expired route means node 7 cannot reply, so it must relay. *)
  Alcotest.(check bool) "route expired" false (Srp.has_active_route t ~dst:5);
  let own = Srp.ordering t ~dst:5 in
  let rreq =
    {
      Srp.rq_src = 1;
      rq_id = 9;
      rq_dst = 5;
      rq_order = ord 1 9 10;
      rq_u = false;
      rq_rr = false;
      rq_d = false;
      rq_n = true;
      rq_hops = 1;
      rq_ttl = 4;
      rq_adv = None;
    }
  in
  agent.RI.receive ~src:2
    (Frame.make ~src:2 ~dst:Frame.Broadcast ~size:52 ~payload:(Srp.Rreq rreq));
  run h;
  match find_rreq (take_sent h) with
  | [ (_, relayed) ] ->
      Alcotest.(check bool) "strengthened to own (lower) ordering" true
        (O.equal relayed.Srp.rq_order (O.min own (ord 1 9 10)));
      Alcotest.(check int) "hops incremented" 2 relayed.Srp.rq_hops;
      Alcotest.(check int) "ttl decremented" 3 relayed.Srp.rq_ttl
  | l -> Alcotest.failf "expected relayed RREQ, got %d frames" (List.length l)

let test_srp_sdc_intermediate_reply () =
  let h = harness ~id:7 () in
  let _, agent = Srp.create_full h.ctx in
  adopt_route h agent ~dst:5 ~via:3 ~order:(O.destination ~sn:1) ~dist:0;
  ignore (take_sent h);
  (* the request's ordering is higher than ours and hops >= min_reply_hops:
     SDC holds, node 7 answers on behalf of the destination *)
  let rreq =
    {
      Srp.rq_src = 1;
      rq_id = 11;
      rq_dst = 5;
      rq_order = ord 1 9 10;
      rq_u = false;
      rq_rr = false;
      rq_d = false;
      rq_n = true;
      rq_hops = 2;
      rq_ttl = 4;
      rq_adv = None;
    }
  in
  agent.RI.receive ~src:2
    (Frame.make ~src:2 ~dst:Frame.Broadcast ~size:52 ~payload:(Srp.Rreq rreq));
  run h;
  (match find_rrep (take_sent h) with
  | ((frame, rrep) :: _) as copies ->
      (* no RACK ever comes back, so the reply is retransmitted with
         backoff until the cap: 1 original + rack_retries resends *)
      Alcotest.(check int) "unacked reply retransmitted to the cap" 3
        (List.length copies);
      Alcotest.(check bool) "unicast back" true
        (frame.Frame.dst = Frame.Unicast 2);
      Alcotest.(check int) "advertises dst 5" 5 rrep.Srp.rp_dst
  | [] -> Alcotest.fail "expected intermediate RREP");
  (* reset-required solicitations suppress intermediate replies *)
  agent.RI.receive ~src:2
    (Frame.make ~src:2 ~dst:Frame.Broadcast ~size:52
       ~payload:(Srp.Rreq { rreq with rq_id = 12; rq_rr = true }));
  run h;
  Alcotest.(check int) "no reply under T bit" 0
    (List.length (find_rrep (take_sent h)))

let test_srp_relay_rr_on_overflow () =
  let h = harness ~id:7 () in
  let _, agent = Srp.create_full h.ctx in
  (* adopting (bound-2)/(bound-1) lands our own label on (bound-1)/bound *)
  let near = F.make ~num:(F.bound - 2) ~den:(F.bound - 1) in
  adopt_route h agent ~dst:5 ~via:3 ~order:(O.make ~sn:1 ~frac:near) ~dist:0;
  ignore (take_sent h);
  (* out-of-order relay whose fraction would overflow on another split:
     Eq. 11 third case demands the T bit *)
  let rreq =
    {
      Srp.rq_src = 1;
      rq_id = 21;
      rq_dst = 5;
      rq_order = O.make ~sn:1 ~frac:(F.make ~num:1 ~den:F.bound);
      rq_u = false;
      rq_rr = false;
      rq_d = false;
      rq_n = true;
      rq_hops = 0;
      rq_ttl = 4;
      rq_adv = None;
    }
  in
  agent.RI.receive ~src:2
    (Frame.make ~src:2 ~dst:Frame.Broadcast ~size:52 ~payload:(Srp.Rreq rreq));
  run h;
  match
    List.filter (fun (_, r) -> r.Srp.rq_id = 21) (find_rreq (take_sent h))
  with
  | [ (_, relayed) ] ->
      Alcotest.(check bool) "T bit set on overflow" true relayed.Srp.rq_rr
  | l -> Alcotest.failf "expected relay, got %d" (List.length l)

let test_srp_successor_elimination () =
  let h = harness () in
  let t, agent = Srp.create_full h.ctx in
  adopt_route h agent ~dst:5 ~via:3 ~order:(ord 1 1 2) ~dist:1;
  ignore (take_sent h);
  (* second, much better advertisement from another neighbour: adopting it
     must eliminate the now out-of-order successor 3 (Algorithm 1 line 13) *)
  feed_rrep h agent ~dst:5 ~via:4 ~order:(O.destination ~sn:2) ~dist:0 ~id:999;
  let succs = List.map fst (Srp.successor_orderings t ~dst:5) in
  Alcotest.(check (list int)) "stale successor eliminated" [ 4 ]
    (List.sort compare succs)

let test_srp_rerr_removes_successor () =
  let h = harness () in
  let t, agent = Srp.create_full h.ctx in
  adopt_route h agent ~dst:5 ~via:3 ~order:(O.destination ~sn:1) ~dist:0;
  ignore (take_sent h);
  agent.RI.receive ~src:3
    (Frame.make ~src:3 ~dst:(Frame.Unicast 0) ~size:32
       ~payload:(Srp.Rerr { re_unreachable = [ 5 ] }));
  Alcotest.(check bool) "route gone" false (Srp.has_active_route t ~dst:5)

let test_srp_link_failure_recovery () =
  let h = harness () in
  let t, agent = Srp.create_full h.ctx in
  adopt_route h agent ~dst:5 ~via:3 ~order:(O.destination ~sn:1) ~dist:0;
  ignore (take_sent h);
  let frame =
    Frame.make ~src:0 ~dst:(Frame.Unicast 3) ~size:532
      ~payload:(Frame.Data (mk_data ~seq:9 ()))
  in
  agent.RI.unicast_failed ~frame ~dst:3;
  run h;
  Alcotest.(check bool) "successor dropped" false
    (Srp.has_active_route t ~dst:5);
  (* the packet-cache heuristic: the data is held and a new discovery runs *)
  Alcotest.(check bool) "rediscovery started" true
    (find_rreq (take_sent h) <> [])

(* Fuzz / failure injection: arbitrary well-formed control traffic and
   link failures must never crash the agent, never raise its label for any
   destination (Eq. 3), and keep every live successor strictly in order
   (Theorem 1 locally). *)

let fuzz_frac_gen =
  let open QCheck2.Gen in
  let* den = int_range 2 50 in
  let* num = int_range 0 den in
  return
    (if num >= den then F.one
     else if num = 0 then F.zero
     else F.make ~num ~den)

let fuzz_ordering_gen =
  let open QCheck2.Gen in
  let* sn = int_range 0 3 in
  let* f = fuzz_frac_gen in
  return (O.make ~sn ~frac:f)

let fuzz_msg_gen =
  let open QCheck2.Gen in
  let node = int_range 0 7 in
  let rreq =
    let* src = node and* dst = node and* id = int_range 0 5 in
    let* order = fuzz_ordering_gen in
    let* rr = bool and* d = bool and* n = bool in
    let* hops = int_range 0 4 and* ttl = int_range 1 6 in
    let* from = node in
    let* adv_order = fuzz_ordering_gen in
    let* with_adv = bool in
    return
      (`Rreq
        ( from,
          {
            Srp.rq_src = src;
            rq_id = id;
            rq_dst = dst;
            rq_order = order;
            rq_u = O.is_unassigned order;
            rq_rr = rr;
            rq_d = d;
            rq_n = n || not with_adv;
            rq_hops = hops;
            rq_ttl = ttl;
            rq_adv =
              (if with_adv then Some { Srp.ra_order = adv_order; ra_dist = hops }
               else None);
          } ))
  in
  let rrep =
    let* src = node and* dst = node and* id = int_range 0 5 in
    let* order = fuzz_ordering_gen in
    let* dist = int_range 0 4 in
    let* from = node and* nbit = bool in
    return
      (`Rrep
        ( from,
          {
            Srp.rp_src = src;
            rp_id = id;
            rp_dst = dst;
            rp_order = order;
            rp_dist = dist;
            rp_lifetime = 10.0;
            rp_n = nbit;
          } ))
  in
  let rerr =
    let* from = node in
    let* dsts = list_size (int_range 1 3) node in
    return (`Rerr (from, { Srp.re_unreachable = dsts }))
  in
  let data =
    let* from = node and* dst = node and* seq = int_range 0 100 in
    return (`Data (from, dst, seq))
  in
  let fail =
    let* hop = node and* dst = node and* seq = int_range 0 100 in
    return (`Fail (hop, dst, seq))
  in
  oneof [ rreq; rrep; rerr; data; fail ]

let prop_srp_fuzz =
  QCheck2.Test.make ~name:"SRP survives arbitrary control traffic" ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) fuzz_msg_gen)
    (fun msgs ->
      let h = harness ~id:0 () in
      let t, agent = Srp.create_full h.ctx in
      let previous : (int, O.t) Hashtbl.t = Hashtbl.create 8 in
      List.for_all
        (fun msg ->
          (match msg with
          | `Rreq (from, rreq) when from <> 0 ->
              agent.RI.receive ~src:from
                (Frame.make ~src:from ~dst:Frame.Broadcast ~size:52
                   ~payload:(Srp.Rreq rreq))
          | `Rreq _ -> ()
          | `Rrep (from, rrep) when from <> 0 ->
              agent.RI.receive ~src:from
                (Frame.make ~src:from ~dst:(Frame.Unicast 0) ~size:44
                   ~payload:(Srp.Rrep rrep))
          | `Rrep _ -> ()
          | `Rerr (from, rerr) when from <> 0 ->
              agent.RI.receive ~src:from
                (Frame.make ~src:from ~dst:(Frame.Unicast 0) ~size:32
                   ~payload:(Srp.Rerr rerr))
          | `Rerr _ -> ()
          | `Data (from, dst, seq) when from <> 0 && dst <> 0 ->
              agent.RI.receive ~src:from
                (Frame.make ~src:from ~dst:(Frame.Unicast 0) ~size:532
                   ~payload:(Frame.Data (mk_data ~origin:from ~dst ~seq ())))
          | `Data _ -> ()
          | `Fail (hop, dst, seq) when hop <> 0 ->
              agent.RI.unicast_failed
                ~frame:
                  (Frame.make ~src:0 ~dst:(Frame.Unicast hop) ~size:532
                     ~payload:(Frame.Data (mk_data ~dst ~seq ())))
                ~dst:hop
          | `Fail _ -> ());
          run_short h;
          (* per-destination invariants after every event *)
          List.for_all
            (fun dst ->
              let own = Srp.ordering t ~dst in
              let monotone =
                match Hashtbl.find_opt previous dst with
                | None -> true
                | Some old -> O.equal old own || O.precedes old own
              in
              Hashtbl.replace previous dst own;
              monotone
              && List.for_all
                   (fun (_, s) -> O.precedes own s)
                   (Srp.successor_orderings t ~dst))
            (List.init 8 (fun i -> i) |> List.filter (fun i -> i <> 0)))
        msgs)

(* ------------------------------------------------------------------ *)
(* AODV *)

module Aodv = Protocols.Aodv

let aodv_rreq frames =
  List.filter_map
    (fun f -> match f.Frame.payload with Aodv.Rreq r -> Some r | _ -> None)
    frames

let aodv_rrep frames =
  List.filter_map
    (fun f -> match f.Frame.payload with Aodv.Rrep r -> Some r | _ -> None)
    frames

let test_aodv_origination_increments_seqno () =
  let h = harness () in
  let t, agent = Aodv.create_full h.ctx in
  Alcotest.(check int) "starts at zero" 0 (Aodv.own_seqno t);
  agent.RI.originate (mk_data ()) ~size:512;
  run_short h;
  Alcotest.(check int) "incremented per RREQ" 1 (Aodv.own_seqno t);
  Alcotest.(check int) "one rreq" 1 (List.length (aodv_rreq (take_sent h)))

let test_aodv_destination_reply () =
  let h = harness ~id:5 () in
  let t, agent = Aodv.create_full h.ctx in
  agent.RI.receive ~src:3
    (Frame.make ~src:3 ~dst:Frame.Broadcast ~size:44
       ~payload:
         (Aodv.Rreq
            {
              rq_src = 0;
              rq_src_seqno = 4;
              rq_id = 1;
              rq_dst = 5;
              rq_dst_seqno = Some 7;
              rq_hops = 2;
              rq_ttl = 5;
            }));
  run h;
  (match aodv_rrep (take_sent h) with
  | [ rrep ] ->
      Alcotest.(check bool) "covers requested seqno" true
        (rrep.Aodv.rp_dst_seqno >= 7)
  | l -> Alcotest.failf "expected RREP, got %d" (List.length l));
  Alcotest.(check bool) "own seqno raised" true (Aodv.own_seqno t >= 7);
  (* reverse route to the originator was installed *)
  Alcotest.(check (option int)) "reverse route" (Some 3)
    (Aodv.next_hop t ~dst:0)

let test_aodv_rrep_builds_forward_route () =
  let h = harness () in
  let t, agent = Aodv.create_full h.ctx in
  agent.RI.originate (mk_data ()) ~size:512;
  run h;
  ignore (take_sent h);
  agent.RI.receive ~src:2
    (Frame.make ~src:2 ~dst:(Frame.Unicast 0) ~size:40
       ~payload:
         (Aodv.Rrep
            {
              rp_src = 0;
              rp_dst = 5;
              rp_dst_seqno = 3;
              rp_hops = 1;
              rp_lifetime = 10.0;
            }));
  Alcotest.(check (option int)) "forward route via 2" (Some 2)
    (Aodv.next_hop t ~dst:5);
  Alcotest.(check (option int)) "seqno recorded" (Some 3)
    (Aodv.route_seqno t ~dst:5);
  run h;
  (* pending data flushed *)
  Alcotest.(check int) "data flushed" 1
    (List.length (List.filter Frame.is_data (take_sent h)))

let test_aodv_stale_rrep_ignored () =
  let h = harness () in
  let t, agent = Aodv.create_full h.ctx in
  let rrep seqno hops via =
    agent.RI.receive ~src:via
      (Frame.make ~src:via ~dst:(Frame.Unicast 0) ~size:40
         ~payload:
           (Aodv.Rrep
              {
                rp_src = 0;
                rp_dst = 5;
                rp_dst_seqno = seqno;
                rp_hops = hops;
                rp_lifetime = 10.0;
              }))
  in
  rrep 5 3 2;
  rrep 4 1 7;
  Alcotest.(check (option int)) "stale seqno rejected" (Some 2)
    (Aodv.next_hop t ~dst:5);
  rrep 5 1 8;
  Alcotest.(check (option int)) "same seqno fewer hops accepted" (Some 8)
    (Aodv.next_hop t ~dst:5)

let test_aodv_rerr () =
  let h = harness () in
  let t, agent = Aodv.create_full h.ctx in
  agent.RI.receive ~src:2
    (Frame.make ~src:2 ~dst:(Frame.Unicast 0) ~size:40
       ~payload:
         (Aodv.Rrep
            {
              rp_src = 0;
              rp_dst = 5;
              rp_dst_seqno = 3;
              rp_hops = 1;
              rp_lifetime = 10.0;
            }));
  Alcotest.(check (option int)) "route up" (Some 2) (Aodv.next_hop t ~dst:5);
  agent.RI.receive ~src:2
    (Frame.make ~src:2 ~dst:Frame.Broadcast ~size:32
       ~payload:(Aodv.Rerr { re_unreachable = [ (5, 4) ] }));
  Alcotest.(check (option int)) "route invalidated" None
    (Aodv.next_hop t ~dst:5)

(* ------------------------------------------------------------------ *)
(* LDR *)

module Ldr = Protocols.Ldr

let test_ldr_feasibility () =
  let l sn fd = { Ldr.sn; fd } in
  Alcotest.(check bool) "fresher sn feasible" true
    (Ldr.feasible ~own:(Some (l 1 3)) ~adv:(l 2 9));
  Alcotest.(check bool) "same sn smaller fd feasible" true
    (Ldr.feasible ~own:(Some (l 1 3)) ~adv:(l 1 2));
  Alcotest.(check bool) "same sn equal fd infeasible" false
    (Ldr.feasible ~own:(Some (l 1 3)) ~adv:(l 1 3));
  Alcotest.(check bool) "older sn infeasible" false
    (Ldr.feasible ~own:(Some (l 2 3)) ~adv:(l 1 0));
  Alcotest.(check bool) "unassigned accepts anything" true
    (Ldr.feasible ~own:None ~adv:(l 0 100))

let test_ldr_destination_reset_only_on_flag () =
  let h = harness ~id:5 () in
  let t, agent = Ldr.create_full h.ctx in
  let rreq reset id =
    agent.RI.receive ~src:3
      (Frame.make ~src:3 ~dst:Frame.Broadcast ~size:48
         ~payload:
           (Ldr.Rreq
              {
                rq_src = 0;
                rq_id = id;
                rq_dst = 5;
                rq_label = None;
                rq_reset = reset;
                rq_hops = 1;
                rq_ttl = 5;
              }))
  in
  rreq false 1;
  Alcotest.(check int) "no reset" 0 (Ldr.own_seqno t);
  rreq true 2;
  Alcotest.(check int) "reset on demand" 1 (Ldr.own_seqno t)

let test_ldr_adoption_updates_fd () =
  let h = harness () in
  let t, agent = Ldr.create_full h.ctx in
  agent.RI.receive ~src:2
    (Frame.make ~src:2 ~dst:(Frame.Unicast 0) ~size:44
       ~payload:
         (Ldr.Rrep
            {
              rp_src = 0;
              rp_id = 1;
              rp_dst = 5;
              rp_label = { Ldr.sn = 1; fd = 2 };
              rp_dist = 2;
              rp_lifetime = 10.0;
            }));
  (match Ldr.label_for t ~dst:5 with
  | Some l ->
      Alcotest.(check int) "sn adopted" 1 l.Ldr.sn;
      Alcotest.(check int) "fd = dist + 1" 3 l.Ldr.fd
  | None -> Alcotest.fail "no label");
  Alcotest.(check (option int)) "next hop" (Some 2) (Ldr.next_hop t ~dst:5);
  (* an infeasible advertisement at the same sn does not regress fd *)
  agent.RI.receive ~src:7
    (Frame.make ~src:7 ~dst:(Frame.Unicast 0) ~size:44
       ~payload:
         (Ldr.Rrep
            {
              rp_src = 0;
              rp_id = 2;
              rp_dst = 5;
              rp_label = { Ldr.sn = 1; fd = 9 };
              rp_dist = 9;
              rp_lifetime = 10.0;
            }));
  Alcotest.(check (option int)) "kept better next hop" (Some 2)
    (Ldr.next_hop t ~dst:5)

(* ------------------------------------------------------------------ *)
(* DSR *)

module Dsr = Protocols.Dsr

let dsr_rrep frames =
  List.filter_map
    (fun f -> match f.Frame.payload with Dsr.Rrep r -> Some r | _ -> None)
    frames

let test_dsr_destination_reply_path () =
  let h = harness ~id:5 () in
  let _, agent = Dsr.create_full h.ctx in
  agent.RI.receive ~src:3
    (Frame.make ~src:3 ~dst:Frame.Broadcast ~size:36
       ~payload:
         (Dsr.Rreq
            { rq_src = 0; rq_id = 1; rq_dst = 5; rq_record = [ 0; 3 ]; rq_ttl = 5 }));
  run h;
  match dsr_rrep (take_sent h) with
  | [ rrep ] ->
      Alcotest.(check (list int)) "complete source route" [ 0; 3; 5 ]
        rrep.Dsr.rp_path;
      Alcotest.(check (list int)) "reverse hops" [ 3; 0 ] rrep.Dsr.rp_back
  | l -> Alcotest.failf "expected RREP, got %d" (List.length l)

let test_dsr_cache_and_send () =
  let h = harness () in
  let t, agent = Dsr.create_full h.ctx in
  (* learn a route via an incoming RREP *)
  agent.RI.receive ~src:3
    (Frame.make ~src:3 ~dst:(Frame.Unicast 0) ~size:40
       ~payload:(Dsr.Rrep { rp_path = [ 0; 3; 5 ]; rp_back = [ 0 ] }));
  Alcotest.(check (option (list int))) "cached" (Some [ 0; 3; 5 ])
    (Dsr.cached_path t ~dst:5);
  agent.RI.originate (mk_data ()) ~size:512;
  run h;
  let datas = List.filter Frame.is_data (take_sent h) in
  (match datas with
  | [ f ] -> (
      Alcotest.(check bool) "first hop 3" true (f.Frame.dst = Frame.Unicast 3);
      match f.Frame.payload with
      | Dsr.Dsr_data dd ->
          Alcotest.(check (list int)) "carries route" [ 0; 3; 5 ]
            dd.Dsr.dd_route
      | _ -> Alcotest.fail "not source-routed")
  | l -> Alcotest.failf "expected 1 data, got %d" (List.length l));
  (* a broken link purges every cached path that uses it *)
  let frame =
    Frame.make ~src:0 ~dst:(Frame.Unicast 3) ~size:560
      ~payload:
        (Dsr.Dsr_data
           { dd_data = mk_data (); dd_route = [ 0; 3; 5 ]; dd_idx = 0;
             dd_salvaged = 0 })
  in
  agent.RI.unicast_failed ~frame ~dst:3;
  Alcotest.(check (option (list int))) "cache purged" None
    (Dsr.cached_path t ~dst:5)

let test_dsr_forwarding () =
  let h = harness ~id:3 () in
  let _, agent = Dsr.create_full h.ctx in
  agent.RI.receive ~src:0
    (Frame.make ~src:0 ~dst:(Frame.Unicast 3) ~size:560
       ~payload:
         (Dsr.Dsr_data
            { dd_data = mk_data (); dd_route = [ 0; 3; 5 ]; dd_idx = 1;
              dd_salvaged = 0 }));
  run h;
  match List.filter Frame.is_data (take_sent h) with
  | [ f ] ->
      Alcotest.(check bool) "forwarded to 5" true (f.Frame.dst = Frame.Unicast 5)
  | l -> Alcotest.failf "expected forward, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* OLSR *)

module Olsr = Protocols.Olsr

let hello ~origin links =
  Frame.make ~src:origin ~dst:Frame.Broadcast ~size:20
    ~payload:(Olsr.Hello { h_origin = origin; h_links = links })

let test_olsr_symmetry_and_mpr () =
  let h = harness () in
  let t, agent = Olsr.create_full h.ctx in
  (* neighbour 1 hears us -> symmetric; it reaches 10 and 11 *)
  agent.RI.receive ~src:1
    (hello ~origin:1 [ (0, true, false); (10, true, false); (11, true, false) ]);
  (* neighbour 2 does not list us -> asymmetric *)
  agent.RI.receive ~src:2 (hello ~origin:2 [ (10, true, false) ]);
  Alcotest.(check (list int)) "only node 1 symmetric" [ 1 ]
    (List.sort compare (Olsr.sym_neighbors t));
  (* routes: 2-hop nodes via node 1 *)
  Alcotest.(check (option int)) "route to 10 via 1" (Some 1)
    (Olsr.next_hop t ~dst:10);
  Alcotest.(check (option int)) "no route to stranger" None
    (Olsr.next_hop t ~dst:12)

let test_olsr_topology_routing () =
  let h = harness () in
  let t, agent = Olsr.create_full h.ctx in
  agent.RI.receive ~src:1
    (hello ~origin:1 [ (0, true, false); (4, true, false) ]);
  (* a TC from node 4 (flooded via 1) says 4 reaches 9 *)
  agent.RI.receive ~src:1
    (Frame.make ~src:1 ~dst:Frame.Broadcast ~size:24
       ~payload:(Olsr.Tc { t_origin = 4; t_ansn = 1; t_advertised = [ 9 ] }));
  Alcotest.(check (option int)) "multi-hop route to 9 via 1" (Some 1)
    (Olsr.next_hop t ~dst:9)

let test_olsr_tc_relay_gated_by_mpr () =
  let h = harness () in
  let _, agent = Olsr.create_full h.ctx in
  (* node 1 selected us as MPR *)
  agent.RI.receive ~src:1 (hello ~origin:1 [ (0, true, true) ]);
  ignore (take_sent h);
  agent.RI.receive ~src:1
    (Frame.make ~src:1 ~dst:Frame.Broadcast ~size:24
       ~payload:(Olsr.Tc { t_origin = 7; t_ansn = 3; t_advertised = [ 1 ] }));
  run h;
  let relayed =
    List.filter
      (fun f ->
        match f.Frame.payload with
        | Olsr.Tc tc -> tc.Olsr.t_origin = 7
        | _ -> false)
      (take_sent h)
  in
  Alcotest.(check int) "TC relayed (we are its MPR)" 1 (List.length relayed);
  (* same TC again: duplicate suppressed *)
  agent.RI.receive ~src:1
    (Frame.make ~src:1 ~dst:Frame.Broadcast ~size:24
       ~payload:(Olsr.Tc { t_origin = 7; t_ansn = 3; t_advertised = [ 1 ] }));
  run h;
  let again =
    List.filter
      (fun f ->
        match f.Frame.payload with
        | Olsr.Tc tc -> tc.Olsr.t_origin = 7
        | _ -> false)
      (take_sent h)
  in
  Alcotest.(check int) "duplicate not relayed" 0 (List.length again)

(* ------------------------------------------------------------------ *)
(* Extra protocol edge cases *)

let test_srp_dbit_probe_relays_forward () =
  let h = harness ~id:7 () in
  let _, agent = Srp.create_full h.ctx in
  adopt_route h agent ~dst:5 ~via:3 ~order:(O.destination ~sn:1) ~dist:0;
  ignore (take_sent h);
  (* a D-bit probe must travel the unicast forward path to the destination
     even though we could answer by SDC *)
  let rreq =
    {
      Srp.rq_src = 1;
      rq_id = 31;
      rq_dst = 5;
      rq_order = ord 1 9 10;
      rq_u = false;
      rq_rr = true;
      rq_d = true;
      rq_n = true;
      rq_hops = 3;
      rq_ttl = 8;
      rq_adv = None;
    }
  in
  agent.RI.receive ~src:2
    (Frame.make ~src:2 ~dst:(Frame.Unicast 7) ~size:52 ~payload:(Srp.Rreq rreq));
  run_short h;
  let sent = take_sent h in
  Alcotest.(check int) "no SDC reply to a probe" 0
    (List.length (find_rrep sent));
  match find_rreq sent with
  | [ (frame, relayed) ] ->
      Alcotest.(check bool) "unicast toward successor" true
        (frame.Frame.dst = Frame.Unicast 3);
      Alcotest.(check bool) "still a probe" true relayed.Srp.rq_d
  | l -> Alcotest.failf "expected probe relay, got %d" (List.length l)

let test_srp_relay_no_route_sends_rerr () =
  let h = harness ~id:7 () in
  let _, agent = Srp.create_full h.ctx in
  agent.RI.receive ~src:2
    (Frame.make ~src:2 ~dst:(Frame.Unicast 7) ~size:532
       ~payload:(Frame.Data (mk_data ~origin:1 ~dst:5 ())));
  let rerrs =
    List.filter
      (fun f -> match f.Frame.payload with Srp.Rerr _ -> true | _ -> false)
      (take_sent h)
  in
  (match rerrs with
  | [ f ] ->
      Alcotest.(check bool) "RERR unicast to the last hop" true
        (f.Frame.dst = Frame.Unicast 2)
  | l -> Alcotest.failf "expected 1 RERR, got %d" (List.length l));
  Alcotest.(check int) "data dropped" 1 (List.length !(h.dropped))

let test_aodv_expanding_ring () =
  let h = harness () in
  let _, agent = Aodv.create_full h.ctx in
  agent.RI.originate (mk_data ()) ~size:512;
  (* ttl-1 attempt times out after 2 * 1 * 0.04 s; the retry uses ttl 3 *)
  Des.Engine.run h.engine ~until:0.2;
  match aodv_rreq (take_sent h) with
  | [ first; second ] ->
      Alcotest.(check int) "first ring" 1 first.Aodv.rq_ttl;
      Alcotest.(check int) "second ring" 3 second.Aodv.rq_ttl
  | l -> Alcotest.failf "expected 2 RREQs, got %d" (List.length l)

let test_dsr_ignores_looping_rreq () =
  let h = harness ~id:3 () in
  let _, agent = Dsr.create_full h.ctx in
  agent.RI.receive ~src:2
    (Frame.make ~src:2 ~dst:Frame.Broadcast ~size:40
       ~payload:
         (Dsr.Rreq
            {
              rq_src = 0;
              rq_id = 4;
              rq_dst = 9;
              (* we already appear in the record: must not process again *)
              rq_record = [ 0; 3; 2 ];
              rq_ttl = 6;
            }));
  run h;
  Alcotest.(check int) "nothing sent" 0 (List.length (take_sent h))

let test_olsr_neighbor_expiry () =
  let h = harness () in
  let t, agent = Olsr.create_full h.ctx in
  agent.RI.receive ~src:1
    (hello ~origin:1 [ (0, true, false); (10, true, false) ]);
  Alcotest.(check (option int)) "route up" (Some 1) (Olsr.next_hop t ~dst:10);
  (* no more HELLOs: after the hold time the neighbour (and routes through
     it) disappear *)
  Des.Engine.run h.engine ~until:7.0;
  ignore (take_sent h);
  Alcotest.(check (list int)) "neighbour expired" []
    (Olsr.sym_neighbors t);
  (* force a recompute via a fresh (asymmetric) hello from someone else *)
  agent.RI.receive ~src:2 (hello ~origin:2 [ (9, true, false) ]);
  Alcotest.(check (option int)) "route gone" None (Olsr.next_hop t ~dst:10)

let test_ldr_request_strengthening () =
  let h = harness ~id:7 () in
  let _, agent = Ldr.create_full h.ctx in
  (* give node 7 a label for dst 5 via an adopted route, then expire it *)
  agent.RI.receive ~src:3
    (Frame.make ~src:3 ~dst:(Frame.Unicast 7) ~size:44
       ~payload:
         (Ldr.Rrep
            {
              rp_src = 7;
              rp_id = 1;
              rp_dst = 5;
              rp_label = { Ldr.sn = 2; fd = 1 };
              rp_dist = 1;
              rp_lifetime = 5.0;
            }));
  Des.Engine.run h.engine ~until:6.0;
  ignore (take_sent h);
  (* relay a request with an older label: ours must replace it *)
  agent.RI.receive ~src:2
    (Frame.make ~src:2 ~dst:Frame.Broadcast ~size:48
       ~payload:
         (Ldr.Rreq
            {
              rq_src = 1;
              rq_id = 9;
              rq_dst = 5;
              rq_label = Some { Ldr.sn = 1; fd = 3 };
              rq_reset = false;
              rq_hops = 1;
              rq_ttl = 4;
            }));
  run_short h;
  let relayed =
    List.filter_map
      (fun f -> match f.Frame.payload with Ldr.Rreq r -> Some r | _ -> None)
      (take_sent h)
  in
  match relayed with
  | [ r ] ->
      Alcotest.(check bool) "label strengthened to the fresher one" true
        (r.Ldr.rq_label = Some { Ldr.sn = 2; fd = 2 })
  | l -> Alcotest.failf "expected relay, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Shared infrastructure *)

let test_seen_cache () =
  let e = Des.Engine.create () in
  let c = Protocols.Seen_cache.create e ~ttl:5.0 in
  Alcotest.(check bool) "first" true (Protocols.Seen_cache.witness c ~origin:1 ~id:1);
  Alcotest.(check bool) "duplicate" false
    (Protocols.Seen_cache.witness c ~origin:1 ~id:1);
  Alcotest.(check bool) "other id" true
    (Protocols.Seen_cache.witness c ~origin:1 ~id:2);
  ignore
    (Des.Engine.schedule e ~delay:6.0 (fun () ->
         Alcotest.(check bool) "expired entries forgotten" true
           (Protocols.Seen_cache.witness c ~origin:1 ~id:1)));
  Des.Engine.run_all e

let test_pending_buffer () =
  let drops = ref 0 in
  let p =
    Protocols.Pending.create ~capacity:2 ~drop:(fun _ ~size:_ ~reason:_ ->
        incr drops)
      ()
  in
  Protocols.Pending.push p ~dst:5 (mk_data ~seq:1 ()) ~size:512;
  Protocols.Pending.push p ~dst:5 (mk_data ~seq:2 ()) ~size:512;
  Protocols.Pending.push p ~dst:5 (mk_data ~seq:3 ()) ~size:512;
  Alcotest.(check int) "oldest dropped at capacity" 1 !drops;
  Alcotest.(check int) "two held" 2 (Protocols.Pending.count p ~dst:5);
  let flushed = Protocols.Pending.take_all p ~dst:5 in
  Alcotest.(check (list int)) "arrival order" [ 2; 3 ]
    (List.map (fun (d, _) -> d.Frame.seq) flushed);
  Alcotest.(check int) "empty after take" 0 (Protocols.Pending.count p ~dst:5)

let test_pending_expiry () =
  let e = Des.Engine.create () in
  let drops = ref [] in
  let p =
    Protocols.Pending.create ~ttl:2.0 ~engine:e ~capacity:8
      ~drop:(fun d ~size:_ ~reason -> drops := (d.Frame.seq, reason) :: !drops)
      ()
  in
  Protocols.Pending.push p ~dst:5 (mk_data ~seq:1 ()) ~size:512;
  ignore
    (Des.Engine.schedule e ~delay:1.0 (fun () ->
         Protocols.Pending.push p ~dst:5 (mk_data ~seq:2 ()) ~size:512));
  (* the sweep timer drains the first packet at its 2 s deadline even
     though nobody touches the buffer again *)
  Des.Engine.run e ~until:2.5;
  Alcotest.(check (list (pair int string)))
    "first expired on time"
    [ (1, "pending-buffer expired") ]
    (List.rev !drops);
  Alcotest.(check int) "second still held" 1 (Protocols.Pending.count p ~dst:5);
  Des.Engine.run e ~until:3.5;
  Alcotest.(check int) "second expired" 2 (List.length !drops);
  Alcotest.(check int) "empty" 0 (Protocols.Pending.count p ~dst:5)

let test_discovery_backoff () =
  let e = Des.Engine.create () in
  let sends = ref [] in
  let failures = ref 0 in
  let d =
    Protocols.Discovery.create e ~ttls:[ 1; 3 ] ~node_traversal:0.04
      ~send:(fun ~dst:_ ~ttl ~attempt -> sends := (ttl, attempt) :: !sends)
      ~give_up:(fun ~dst:_ -> incr failures)
  in
  Protocols.Discovery.start d ~dst:5;
  Alcotest.(check bool) "active" true (Protocols.Discovery.active d ~dst:5);
  (* a second start while active is a no-op *)
  Protocols.Discovery.start d ~dst:5;
  (* ttl 1 times out at 0.08 s; ttl 3 at +0.48 s; then one extra
     network-wide retry (extra_retries = 1) at +0.96 s -> give-up 1.52 s *)
  Des.Engine.run e ~until:2.0;
  Alcotest.(check (list (pair int int))) "ring schedule"
    [ (1, 0); (3, 1); (3, 2) ]
    (List.rev !sends);
  Alcotest.(check int) "gave up once" 1 !failures;
  (* hold-off: an immediate restart after failure is suppressed *)
  sends := [];
  Protocols.Discovery.start d ~dst:5;
  Des.Engine.run e ~until:2.4;
  Alcotest.(check (list (pair int int))) "suppressed during holdoff" []
    (List.rev !sends);
  (* the first-failure holdoff is one second; afterwards it runs again *)
  Des.Engine.run e ~until:2.6;
  Protocols.Discovery.start d ~dst:5;
  Des.Engine.run e ~until:2.7;
  Alcotest.(check bool) "restarted after holdoff" true (!sends <> [])

let () =
  Alcotest.run "protocols"
    [
      ( "srp",
        [
          Alcotest.test_case "originate unassigned (Proc. 1)" `Quick
            test_srp_originate_unassigned;
          Alcotest.test_case "destination reply + T bit" `Quick
            test_srp_destination_reply;
          Alcotest.test_case "route adoption (Proc. 3)" `Quick
            test_srp_adopts_route_and_flushes;
          Alcotest.test_case "ordering lie heuristic" `Quick test_srp_lie_heuristic;
          Alcotest.test_case "relay strengthening (Eq. 10)" `Quick
            test_srp_relay_strengthens;
          Alcotest.test_case "SDC intermediate reply" `Quick
            test_srp_sdc_intermediate_reply;
          Alcotest.test_case "Eq. 11 overflow sets T" `Quick
            test_srp_relay_rr_on_overflow;
          Alcotest.test_case "successor elimination" `Quick
            test_srp_successor_elimination;
          Alcotest.test_case "RERR removes successor" `Quick
            test_srp_rerr_removes_successor;
          Alcotest.test_case "link failure recovery" `Quick
            test_srp_link_failure_recovery;
          QCheck_alcotest.to_alcotest prop_srp_fuzz;
        ] );
      ( "aodv",
        [
          Alcotest.test_case "origination increments seqno" `Quick
            test_aodv_origination_increments_seqno;
          Alcotest.test_case "destination reply" `Quick test_aodv_destination_reply;
          Alcotest.test_case "RREP builds forward route" `Quick
            test_aodv_rrep_builds_forward_route;
          Alcotest.test_case "stale RREP ignored" `Quick test_aodv_stale_rrep_ignored;
          Alcotest.test_case "RERR invalidates" `Quick test_aodv_rerr;
        ] );
      ( "ldr",
        [
          Alcotest.test_case "feasibility rule" `Quick test_ldr_feasibility;
          Alcotest.test_case "destination reset gating" `Quick
            test_ldr_destination_reset_only_on_flag;
          Alcotest.test_case "FD update on adoption" `Quick
            test_ldr_adoption_updates_fd;
        ] );
      ( "dsr",
        [
          Alcotest.test_case "destination reply path" `Quick
            test_dsr_destination_reply_path;
          Alcotest.test_case "cache and source-routed send" `Quick
            test_dsr_cache_and_send;
          Alcotest.test_case "forwarding" `Quick test_dsr_forwarding;
        ] );
      ( "olsr",
        [
          Alcotest.test_case "symmetry and neighbours" `Quick
            test_olsr_symmetry_and_mpr;
          Alcotest.test_case "topology routing" `Quick test_olsr_topology_routing;
          Alcotest.test_case "MPR-gated TC relay" `Quick
            test_olsr_tc_relay_gated_by_mpr;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "SRP D-bit probe relays forward" `Quick
            test_srp_dbit_probe_relays_forward;
          Alcotest.test_case "SRP relay without route sends RERR" `Quick
            test_srp_relay_no_route_sends_rerr;
          Alcotest.test_case "AODV expanding ring" `Quick test_aodv_expanding_ring;
          Alcotest.test_case "DSR ignores looping RREQ" `Quick
            test_dsr_ignores_looping_rreq;
          Alcotest.test_case "OLSR neighbour expiry" `Quick
            test_olsr_neighbor_expiry;
          Alcotest.test_case "LDR request strengthening" `Quick
            test_ldr_request_strengthening;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "seen cache" `Quick test_seen_cache;
          Alcotest.test_case "pending buffer" `Quick test_pending_buffer;
          Alcotest.test_case "pending expiry" `Quick test_pending_expiry;
          Alcotest.test_case "discovery ring + backoff" `Quick
            test_discovery_backoff;
        ] );
    ]
