(* Tests for the observability core: histogram bucket geometry, percentile
   floors, exact snapshot merging (property-tested — associativity and
   commutativity are what let campaign workers be merged in any order), and
   the zero-allocation contract when profiling is disabled. *)

module Gen = Check.Gen
module Runner = Check.Runner

(* Every test leaves the global registry the way it found it: disabled and
   zeroed. Handles persist (they are interned), which is fine — tests use
   distinct metric names. *)
let scrubbed f () =
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* -------------------------------------------------------------------- *)
(* Bucket geometry                                                      *)

let test_bucket_index () =
  let idx = Obs.bucket_index in
  Alcotest.(check int) "zero" 0 (idx 0);
  Alcotest.(check int) "negative" 0 (idx (-17));
  Alcotest.(check int) "one" 1 (idx 1);
  Alcotest.(check int) "two" 2 (idx 2);
  Alcotest.(check int) "three" 2 (idx 3);
  Alcotest.(check int) "four" 3 (idx 4);
  Alcotest.(check int) "1000" 10 (idx 1000);
  Alcotest.(check int) "1024" 11 (idx 1024);
  Alcotest.(check int) "max_int capped" (Obs.bucket_count - 1) (idx max_int)

let test_bucket_floor () =
  Alcotest.(check int) "floor 0" 0 (Obs.bucket_floor 0);
  Alcotest.(check int) "floor 1" 1 (Obs.bucket_floor 1);
  Alcotest.(check int) "floor 2" 2 (Obs.bucket_floor 2);
  Alcotest.(check int) "floor 10" 512 (Obs.bucket_floor 10);
  Alcotest.(check int) "floor 11" 1024 (Obs.bucket_floor 11);
  (* Every representable value lands in the bucket whose floor bounds it
     from below: floor (idx v) <= v < 2 * floor (idx v) for v >= 1. *)
  List.iter
    (fun v ->
      let f = Obs.bucket_floor (Obs.bucket_index v) in
      Alcotest.(check bool)
        (Printf.sprintf "floor bounds %d" v)
        true
        (f <= v && (v < 2 * f || Obs.bucket_index v = Obs.bucket_count - 1)))
    [ 1; 2; 3; 7; 8; 9; 255; 256; 1_000_000; max_int ]

(* -------------------------------------------------------------------- *)
(* Percentiles over recorded spans                                      *)

let find_span snapshot name =
  match
    List.find_opt
      (fun d -> d.Obs.dist_name = name)
      snapshot.Obs.spans
  with
  | Some d -> d
  | None -> Alcotest.failf "span %s missing from snapshot" name

let test_percentile () =
  scrubbed (fun () ->
      Obs.enable ();
      Obs.reset ();
      let sp = Obs.span "test.percentile" in
      (* Three small values and one large one: p50 sits on the small side,
         p99 lands on the outlier's bucket floor. *)
      List.iter (Obs.record_span_ns sp) [ 1; 1; 1; 1024 ];
      let d = find_span (Obs.snapshot ()) "test.percentile" in
      Alcotest.(check int) "count" 4 d.Obs.dist_count;
      Alcotest.(check int) "total" 1027 d.Obs.dist_total;
      Alcotest.(check int) "p50" 1 (Obs.percentile d 0.5);
      Alcotest.(check int) "p99" 1024 (Obs.percentile d 0.99);
      (* Uniform 1..100: rank 50 -> value 50 -> bucket floor 32. *)
      let sp2 = Obs.span "test.percentile.uniform" in
      for v = 1 to 100 do
        Obs.record_span_ns sp2 v
      done;
      let d2 = find_span (Obs.snapshot ()) "test.percentile.uniform" in
      Alcotest.(check int) "uniform p50" 32 (Obs.percentile d2 0.5);
      Alcotest.(check int) "uniform p99" 64 (Obs.percentile d2 0.99))
    ()

let test_percentile_empty () =
  let d =
    {
      Obs.dist_name = "empty";
      dist_count = 0;
      dist_total = 0;
      dist_buckets = Array.make Obs.bucket_count 0;
    }
  in
  Alcotest.(check int) "empty dist" 0 (Obs.percentile d 0.5)

(* -------------------------------------------------------------------- *)
(* Disabled instrumentation is free                                     *)

let test_disabled_no_alloc () =
  scrubbed (fun () ->
      Obs.disable ();
      let sp = Obs.span "test.noalloc.span" in
      let h = Obs.histogram "test.noalloc.hist" in
      (* Warm up: force any lazy domain-local initialisation outside the
         measured window. *)
      Obs.start sp;
      Obs.stop sp;
      Obs.observe h 1;
      let before = Gc.minor_words () in
      for _ = 1 to 10_000 do
        Obs.start sp;
        Obs.stop sp;
        Obs.record_span_ns sp 42;
        Obs.observe h 7
      done;
      let after = Gc.minor_words () in
      Alcotest.(check (float 0.0))
        "no minor words allocated while disabled" 0.0 (after -. before))
    ()

let test_disabled_records_nothing () =
  scrubbed (fun () ->
      Obs.disable ();
      Obs.reset ();
      let sp = Obs.span "test.disabled.span" in
      Obs.record_span_ns sp 99;
      let s = Obs.snapshot () in
      Alcotest.(check bool)
        "no span recorded while disabled" true
        (not (List.exists (fun d -> d.Obs.dist_name = "test.disabled.span") s.Obs.spans)))
    ()

let test_counters_always_on () =
  scrubbed (fun () ->
      Obs.disable ();
      Obs.reset ();
      let c = Obs.counter "test.alwayson" in
      Obs.incr c;
      Obs.add c 4;
      Alcotest.(check int) "counter live while disabled" 5 (Obs.counter_value c);
      let s = Obs.snapshot () in
      Alcotest.(check (option int))
        "counter in snapshot" (Some 5)
        (List.assoc_opt "test.alwayson" s.Obs.counters))
    ()

let test_reset () =
  scrubbed (fun () ->
      Obs.enable ();
      let sp = Obs.span "test.reset" in
      Obs.record_span_ns sp 10;
      Obs.reset ();
      let s = Obs.snapshot () in
      Alcotest.(check bool)
        "reset clears spans" true
        (not (List.exists (fun d -> d.Obs.dist_name = "test.reset") s.Obs.spans)))
    ()

(* -------------------------------------------------------------------- *)
(* Merge laws, property-tested                                          *)

(* Snapshots are plain data, so the laws are checked on synthetic values —
   far denser than anything the instrumented paths would produce. Keys are
   drawn from small fixed sets so collisions (the interesting case for a
   union-merge) are common. *)

let gen_buckets =
  Gen.map
    (fun cells ->
      let a = Array.make Obs.bucket_count 0 in
      List.iter (fun (i, v) -> a.(i) <- a.(i) + v) cells;
      a)
    (Gen.list_size (Gen.int_range 0 4)
       (Gen.pair (Gen.int_range 0 (Obs.bucket_count - 1)) (Gen.int_range 0 1000)))

let gen_dist name =
  Gen.map2
    (fun buckets total ->
      {
        Obs.dist_name = name;
        dist_count = Array.fold_left ( + ) 0 buckets;
        dist_total = total;
        dist_buckets = buckets;
      })
    gen_buckets (Gen.int_range 0 100_000)

(* For each name in a fixed catalogue, independently include a dist or not:
   the result is sorted with unique keys, as [snapshot] guarantees. *)
let gen_dists names =
  List.fold_right
    (fun name acc ->
      Gen.map2
        (fun present rest ->
          match present with Some d -> d :: rest | None -> rest)
        (Gen.map2
           (fun keep d -> if keep then Some d else None)
           Gen.bool (gen_dist name))
        acc)
    names (Gen.pure [])

let gen_assoc names =
  List.fold_right
    (fun name acc ->
      Gen.map2
        (fun v rest ->
          match v with Some n -> (name, n) :: rest | None -> rest)
        (Gen.map2
           (fun keep n -> if keep then Some n else None)
           Gen.bool (Gen.int_range 0 10_000))
        acc)
    names (Gen.pure [])

let gen_worker domain =
  Gen.map2
    (fun (cells, busy) (minor, major) ->
      {
        Obs.w_domain = domain;
        w_cells = cells;
        w_busy_ns = busy;
        w_minor_collections = minor;
        w_major_collections = major;
        w_minor_words = minor * 1000;
        w_promoted_words = major * 10;
        w_major_words = major * 100;
      })
    (Gen.pair (Gen.int_range 1 50) (Gen.int_range 0 1_000_000))
    (Gen.pair (Gen.int_range 0 100) (Gen.int_range 0 10))

let gen_workers =
  List.fold_right
    (fun domain acc ->
      Gen.map2
        (fun v rest -> match v with Some w -> w :: rest | None -> rest)
        (Gen.map2
           (fun keep w -> if keep then Some w else None)
           Gen.bool (gen_worker domain))
        acc)
    [ 0; 1; 2 ] (Gen.pure [])

let gen_snapshot =
  Gen.map2
    (fun (spans, hists) ((counters, gauges), workers) ->
      { Obs.spans; hists; counters; gauges; workers })
    (Gen.pair (gen_dists [ "s.a"; "s.b"; "s.c" ]) (gen_dists [ "h.x"; "h.y" ]))
    (Gen.pair
       (Gen.pair (gen_assoc [ "c.a"; "c.b" ]) (gen_assoc [ "g.a"; "g.b" ]))
       gen_workers)

(* Canonical rendering for equality: covers every field, including bucket
   contents, so a merge that drops or reorders anything is caught. *)
let render_dist d =
  let buckets =
    d.Obs.dist_buckets |> Array.to_list
    |> List.mapi (fun i v -> (i, v))
    |> List.filter (fun (_, v) -> v <> 0)
    |> List.map (fun (i, v) -> Printf.sprintf "%d:%d" i v)
    |> String.concat ","
  in
  Printf.sprintf "%s#%d/%d[%s]" d.Obs.dist_name d.Obs.dist_count
    d.Obs.dist_total buckets

let render_worker w =
  Printf.sprintf "w%d:%d,%d,%d,%d,%d,%d,%d" w.Obs.w_domain w.Obs.w_cells
    w.Obs.w_busy_ns w.Obs.w_minor_collections w.Obs.w_major_collections
    w.Obs.w_minor_words w.Obs.w_promoted_words w.Obs.w_major_words

let render s =
  String.concat "|"
    [
      String.concat ";" (List.map render_dist s.Obs.spans);
      String.concat ";" (List.map render_dist s.Obs.hists);
      String.concat ";"
        (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) s.Obs.counters);
      String.concat ";"
        (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) s.Obs.gauges);
      String.concat ";" (List.map render_worker s.Obs.workers);
    ]

let check_prop name cell =
  match Runner.run_cell ~seed:7 ~cases:300 cell with
  | Runner.Pass _ -> ()
  | Runner.Fail _ as outcome ->
      Alcotest.fail (Runner.report outcome ~name)

let test_merge_commutative () =
  check_prop "merge-commutative"
    (Runner.cell ~name:"merge-commutative"
       ~print:(fun (a, b) -> render a ^ " <> " ^ render b)
       (Gen.pair gen_snapshot gen_snapshot)
       (fun (a, b) ->
         let ab = render (Obs.merge_snapshots a b) in
         let ba = render (Obs.merge_snapshots b a) in
         if ab = ba then Ok ()
         else Error (Printf.sprintf "a+b = %s\nb+a = %s" ab ba)))

let test_merge_associative () =
  check_prop "merge-associative"
    (Runner.cell ~name:"merge-associative"
       ~print:(fun (a, (b, c)) ->
         render a ^ " <> " ^ render b ^ " <> " ^ render c)
       (Gen.pair gen_snapshot (Gen.pair gen_snapshot gen_snapshot))
       (fun (a, (b, c)) ->
         let l =
           render (Obs.merge_snapshots (Obs.merge_snapshots a b) c)
         in
         let r =
           render (Obs.merge_snapshots a (Obs.merge_snapshots b c))
         in
         if l = r then Ok ()
         else Error (Printf.sprintf "(a+b)+c = %s\na+(b+c) = %s" l r)))

let test_merge_identity () =
  let empty =
    { Obs.spans = []; hists = []; counters = []; gauges = []; workers = [] }
  in
  check_prop "merge-identity"
    (Runner.cell ~name:"merge-identity" ~print:render gen_snapshot (fun s ->
         let l = render (Obs.merge_snapshots empty s) in
         let r = render (Obs.merge_snapshots s empty) in
         let orig = render s in
         if l = orig && r = orig then Ok ()
         else Error (Printf.sprintf "empty+s = %s\ns+empty = %s\ns = %s" l r orig)))

(* -------------------------------------------------------------------- *)
(* Prometheus exposition                                                *)

let test_prometheus_shape () =
  scrubbed (fun () ->
      Obs.enable ();
      Obs.reset ();
      let sp = Obs.span "test.prom.span" in
      Obs.record_span_ns sp 500;
      Obs.record_span_ns sp 1500;
      let c = Obs.counter "test.prom.counter" in
      Obs.add c 3;
      let text = Obs.Export.prometheus (Obs.snapshot ()) in
      let lines = String.split_on_char '\n' text in
      (* One # TYPE line per family, no duplicates. *)
      let types =
        List.filter
          (fun l -> String.length l > 7 && String.sub l 0 7 = "# TYPE ")
          lines
      in
      let uniq = List.sort_uniq compare types in
      Alcotest.(check int)
        "no duplicate TYPE lines" (List.length uniq) (List.length types);
      (* Sample names with identical label sets must not repeat. *)
      let samples =
        List.filter
          (fun l -> l <> "" && l.[0] <> '#')
          lines
        |> List.map (fun l ->
               match String.index_opt l ' ' with
               | Some i -> String.sub l 0 i
               | None -> l)
      in
      let uniq_samples = List.sort_uniq compare samples in
      Alcotest.(check int)
        "no duplicate samples" (List.length uniq_samples) (List.length samples);
      Alcotest.(check bool)
        "span family present" true
        (List.exists
           (fun l -> l = "# TYPE manet_span_seconds_total counter")
           lines))
    ()

let () =
  Alcotest.run "obs"
    [
      ( "buckets",
        [
          Alcotest.test_case "index" `Quick test_bucket_index;
          Alcotest.test_case "floor" `Quick test_bucket_floor;
        ] );
      ( "percentiles",
        [
          Alcotest.test_case "known inputs" `Quick test_percentile;
          Alcotest.test_case "empty" `Quick test_percentile_empty;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "zero allocation" `Quick test_disabled_no_alloc;
          Alcotest.test_case "records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "counters always on" `Quick
            test_counters_always_on;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "merge",
        [
          Alcotest.test_case "commutative" `Quick test_merge_commutative;
          Alcotest.test_case "associative" `Quick test_merge_associative;
          Alcotest.test_case "identity" `Quick test_merge_identity;
        ] );
      ( "export",
        [ Alcotest.test_case "prometheus shape" `Quick test_prometheus_shape ] );
    ]
