(* The benchmark harness's argument parser: malformed numbers and unknown
   flags must come back as [Error] (the driver prints usage and exits 2)
   instead of the uncaught [Failure "int_of_string"] the old parser died
   with. *)

let ok args =
  match Bench_cli.parse args with
  | Ok opts -> opts
  | Error msg -> Alcotest.failf "expected Ok, got Error %S" msg

let err args =
  match Bench_cli.parse args with
  | Ok _ -> Alcotest.failf "expected Error for %s" (String.concat " " args)
  | Error msg ->
      Alcotest.(check bool) "non-empty message" true (String.length msg > 0);
      msg

let test_defaults () =
  let opts = ok [] in
  Alcotest.(check int) "trials" 2 opts.Bench_cli.trials;
  Alcotest.(check (float 0.0)) "duration" 120.0 opts.Bench_cli.duration;
  Alcotest.(check int) "jobs" 1 opts.Bench_cli.jobs;
  Alcotest.(check bool) "full" false opts.Bench_cli.full;
  Alcotest.(check string) "out" "BENCH_campaign.json" opts.Bench_cli.out;
  Alcotest.(check (list string)) "sections" [ "all" ] opts.Bench_cli.sections;
  Alcotest.(check bool) "no baseline" true (opts.Bench_cli.baseline = None);
  Alcotest.(check bool) "no resume journal" true (opts.Bench_cli.resume = None);
  Alcotest.(check (float 0.0)) "no cell timeout" 0.0 opts.Bench_cli.cell_timeout;
  Alcotest.(check int) "one retry" 1 opts.Bench_cli.retries;
  Alcotest.(check bool) "supervised by default" false opts.Bench_cli.fail_fast

let test_valid_parse () =
  let opts =
    ok
      [ "micro"; "campaign"; "--trials"; "3"; "--duration"; "60"; "-j"; "4";
        "--quiet"; "--out"; "fresh.json"; "--check-regression"; "base.json";
        "--compare-sequential" ]
  in
  Alcotest.(check int) "trials" 3 opts.Bench_cli.trials;
  Alcotest.(check (float 0.0)) "duration" 60.0 opts.Bench_cli.duration;
  Alcotest.(check int) "jobs" 4 opts.Bench_cli.jobs;
  Alcotest.(check bool) "quiet" true opts.Bench_cli.quiet;
  Alcotest.(check string) "out" "fresh.json" opts.Bench_cli.out;
  Alcotest.(check bool) "baseline" true
    (opts.Bench_cli.baseline = Some "base.json");
  Alcotest.(check bool) "compare-sequential" true
    opts.Bench_cli.compare_sequential;
  Alcotest.(check (list string)) "sections in order" [ "micro"; "campaign" ]
    opts.Bench_cli.sections

let test_supervision_flags () =
  let opts =
    ok
      [ "--resume"; "ckpt.jsonl"; "--cell-timeout"; "30"; "--retries"; "0";
        "--fail-fast" ]
  in
  Alcotest.(check bool) "resume path" true
    (opts.Bench_cli.resume = Some "ckpt.jsonl");
  Alcotest.(check (float 0.0)) "cell timeout" 30.0 opts.Bench_cli.cell_timeout;
  Alcotest.(check int) "retries may be zero" 0 opts.Bench_cli.retries;
  Alcotest.(check bool) "fail-fast" true opts.Bench_cli.fail_fast;
  ignore (err [ "--retries"; "-1" ]);
  ignore (err [ "--retries"; "two" ]);
  ignore (err [ "--cell-timeout"; "soon" ]);
  ignore (err [ "--cell-timeout" ]);
  ignore (err [ "--resume" ])

let test_malformed_numbers () =
  ignore (err [ "--trials"; "three" ]);
  ignore (err [ "--trials"; "0" ]);
  ignore (err [ "--trials"; "-2" ]);
  ignore (err [ "--flows"; "4.5" ]);
  ignore (err [ "--duration"; "fast" ]);
  ignore (err [ "--duration"; "-1" ]);
  ignore (err [ "--jobs"; "0" ]);
  ignore (err [ "-j"; "many" ])

let test_missing_argument () =
  ignore (err [ "--trials" ]);
  ignore (err [ "--out" ]);
  ignore (err [ "--check-regression" ])

let test_scenario_flag () =
  Alcotest.(check string) "default scenario" "default"
    (ok []).Bench_cli.scenario.Sim.Scenario.name;
  let opts = ok [ "--scenario"; "downtown"; "campaign" ] in
  Alcotest.(check string) "named workload accepted" "downtown"
    opts.Bench_cli.scenario.Sim.Scenario.name;
  ignore (err [ "--scenario" ]);
  let unknown = err [ "--scenario"; "nope" ] in
  Alcotest.(check bool) "unknown name lists the registry" true
    (String.length unknown > 0
    && List.for_all
         (fun n ->
           let nl = String.length n and hl = String.length unknown in
           let rec scan i =
             i + nl <= hl && (String.sub unknown i nl = n || scan (i + 1))
           in
           scan 0)
         Sim.Scenario.names);
  let adversarial = err [ "--scenario"; "vg-forged-rrep" ] in
  Alcotest.(check bool) "adversarial entry rejected" true
    (String.length adversarial > 0)

let test_unknown_inputs () =
  let m = err [ "--frobnicate" ] in
  Alcotest.(check bool) "names the flag" true
    (String.length m >= 12 && String.sub m (String.length m - 12) 12 = "--frobnicate");
  ignore (err [ "fig9" ]);
  ignore (err [ "table1"; "nonsense" ])

let () =
  Alcotest.run "bench"
    [
      ( "cli",
        [
          Alcotest.test_case "defaults" `Quick test_defaults;
          Alcotest.test_case "full flag set" `Quick test_valid_parse;
          Alcotest.test_case "supervision flags" `Quick test_supervision_flags;
          Alcotest.test_case "malformed numbers" `Quick test_malformed_numbers;
          Alcotest.test_case "missing argument" `Quick test_missing_argument;
          Alcotest.test_case "unknown flag/section" `Quick test_unknown_inputs;
          Alcotest.test_case "scenario flag" `Quick test_scenario_flag;
        ] );
    ]
