(* The benchmark harness's argument parser: malformed numbers and unknown
   flags must come back as [Error] (the driver prints usage and exits 2)
   instead of the uncaught [Failure "int_of_string"] the old parser died
   with. *)

let ok args =
  match Bench_cli.parse args with
  | Ok opts -> opts
  | Error msg -> Alcotest.failf "expected Ok, got Error %S" msg

let err args =
  match Bench_cli.parse args with
  | Ok _ -> Alcotest.failf "expected Error for %s" (String.concat " " args)
  | Error msg ->
      Alcotest.(check bool) "non-empty message" true (String.length msg > 0);
      msg

let test_defaults () =
  let opts = ok [] in
  Alcotest.(check int) "trials" 2 opts.Bench_cli.trials;
  Alcotest.(check (float 0.0)) "duration" 120.0 opts.Bench_cli.duration;
  Alcotest.(check int) "jobs" 1 opts.Bench_cli.jobs;
  Alcotest.(check bool) "full" false opts.Bench_cli.full;
  Alcotest.(check string) "out" "BENCH_campaign.json" opts.Bench_cli.out;
  Alcotest.(check (list string)) "sections" [ "all" ] opts.Bench_cli.sections;
  Alcotest.(check bool) "no baseline" true (opts.Bench_cli.baseline = None);
  Alcotest.(check bool) "no resume journal" true (opts.Bench_cli.resume = None);
  Alcotest.(check (float 0.0)) "no cell timeout" 0.0 opts.Bench_cli.cell_timeout;
  Alcotest.(check int) "one retry" 1 opts.Bench_cli.retries;
  Alcotest.(check bool) "supervised by default" false opts.Bench_cli.fail_fast

let test_valid_parse () =
  let opts =
    ok
      [ "micro"; "campaign"; "--trials"; "3"; "--duration"; "60"; "-j"; "4";
        "--quiet"; "--out"; "fresh.json"; "--check-regression"; "base.json";
        "--compare-sequential" ]
  in
  Alcotest.(check int) "trials" 3 opts.Bench_cli.trials;
  Alcotest.(check (float 0.0)) "duration" 60.0 opts.Bench_cli.duration;
  Alcotest.(check int) "jobs" 4 opts.Bench_cli.jobs;
  Alcotest.(check bool) "quiet" true opts.Bench_cli.quiet;
  Alcotest.(check string) "out" "fresh.json" opts.Bench_cli.out;
  Alcotest.(check bool) "baseline" true
    (opts.Bench_cli.baseline = Some "base.json");
  Alcotest.(check bool) "compare-sequential" true
    opts.Bench_cli.compare_sequential;
  Alcotest.(check (list string)) "sections in order" [ "micro"; "campaign" ]
    opts.Bench_cli.sections

let test_supervision_flags () =
  let opts =
    ok
      [ "--resume"; "ckpt.jsonl"; "--cell-timeout"; "30"; "--retries"; "0";
        "--fail-fast" ]
  in
  Alcotest.(check bool) "resume path" true
    (opts.Bench_cli.resume = Some "ckpt.jsonl");
  Alcotest.(check (float 0.0)) "cell timeout" 30.0 opts.Bench_cli.cell_timeout;
  Alcotest.(check int) "retries may be zero" 0 opts.Bench_cli.retries;
  Alcotest.(check bool) "fail-fast" true opts.Bench_cli.fail_fast;
  ignore (err [ "--retries"; "-1" ]);
  ignore (err [ "--retries"; "two" ]);
  ignore (err [ "--cell-timeout"; "soon" ]);
  ignore (err [ "--cell-timeout" ]);
  ignore (err [ "--resume" ])

let test_malformed_numbers () =
  ignore (err [ "--trials"; "three" ]);
  ignore (err [ "--trials"; "0" ]);
  ignore (err [ "--trials"; "-2" ]);
  ignore (err [ "--flows"; "4.5" ]);
  ignore (err [ "--duration"; "fast" ]);
  ignore (err [ "--duration"; "-1" ]);
  ignore (err [ "--jobs"; "0" ]);
  ignore (err [ "-j"; "many" ])

let test_missing_argument () =
  ignore (err [ "--trials" ]);
  ignore (err [ "--out" ]);
  ignore (err [ "--check-regression" ])

let test_scenario_flag () =
  Alcotest.(check string) "default scenario" "default"
    (ok []).Bench_cli.scenario.Sim.Scenario.name;
  let opts = ok [ "--scenario"; "downtown"; "campaign" ] in
  Alcotest.(check string) "named workload accepted" "downtown"
    opts.Bench_cli.scenario.Sim.Scenario.name;
  ignore (err [ "--scenario" ]);
  let unknown = err [ "--scenario"; "nope" ] in
  Alcotest.(check bool) "unknown name lists the registry" true
    (String.length unknown > 0
    && List.for_all
         (fun n ->
           let nl = String.length n and hl = String.length unknown in
           let rec scan i =
             i + nl <= hl && (String.sub unknown i nl = n || scan (i + 1))
           in
           scan 0)
         Sim.Scenario.names);
  let adversarial = err [ "--scenario"; "vg-forged-rrep" ] in
  Alcotest.(check bool) "adversarial entry rejected" true
    (String.length adversarial > 0)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let test_scale_flag () =
  Alcotest.(check bool) "no scale overlay by default" true
    ((ok []).Bench_cli.scale = None);
  Alcotest.(check string) "grid is the default channel" "grid"
    (Sim.Config.channel_name (ok []).Bench_cli.channel);
  Alcotest.(check string) "default scale-out" "BENCH_scale.json"
    (ok []).Bench_cli.scale_out;
  List.iter
    (fun (preset, nodes) ->
      match (ok [ "--scale"; preset ]).Bench_cli.scale with
      | Some s ->
          Alcotest.(check string) "preset name" preset s.Sim.Config.scale_name;
          Alcotest.(check int) "preset nodes" nodes s.Sim.Config.scale_nodes
      | None -> Alcotest.failf "--scale %s parsed to no overlay" preset)
    [ ("100", 100); ("1k", 1000); ("5k", 5000) ];
  (* unknown preset: the driver exits 2 with the registered choices *)
  let unknown = err [ "--scale"; "10k" ] in
  Alcotest.(check bool) "names the bad preset" true (contains unknown "10k");
  List.iter
    (fun n ->
      Alcotest.(check bool) ("lists choice " ^ n) true (contains unknown n))
    Sim.Config.scale_names;
  ignore (err [ "--scale" ]);
  (* composes with the other campaign axes *)
  let opts =
    ok
      [ "campaign"; "--scale"; "1k"; "--scenario"; "downtown"; "--labels";
        "farey"; "--channel"; "naive"; "--scale-out"; "fresh_scale.json";
        "--check-scale-regression"; "BENCH_scale.json" ]
  in
  Alcotest.(check bool) "scale survives composition" true
    (match opts.Bench_cli.scale with
    | Some s -> s.Sim.Config.scale_nodes = 1000
    | None -> false);
  Alcotest.(check string) "scenario survives composition" "downtown"
    opts.Bench_cli.scenario.Sim.Scenario.name;
  Alcotest.(check string) "labels survive composition" "farey"
    (Slr.Label_set.name opts.Bench_cli.labels);
  Alcotest.(check string) "naive oracle selectable" "naive"
    (Sim.Config.channel_name opts.Bench_cli.channel);
  Alcotest.(check string) "scale-out" "fresh_scale.json"
    opts.Bench_cli.scale_out;
  Alcotest.(check bool) "scale baseline" true
    (opts.Bench_cli.scale_baseline = Some "BENCH_scale.json");
  let bad_channel = err [ "--channel"; "octree" ] in
  Alcotest.(check bool) "channel error lists both" true
    (contains bad_channel "grid" && contains bad_channel "naive")

let test_unknown_inputs () =
  let m = err [ "--frobnicate" ] in
  Alcotest.(check bool) "names the flag" true
    (String.length m >= 12 && String.sub m (String.length m - 12) 12 = "--frobnicate");
  ignore (err [ "fig9" ]);
  ignore (err [ "table1"; "nonsense" ])

let () =
  Alcotest.run "bench"
    [
      ( "cli",
        [
          Alcotest.test_case "defaults" `Quick test_defaults;
          Alcotest.test_case "full flag set" `Quick test_valid_parse;
          Alcotest.test_case "supervision flags" `Quick test_supervision_flags;
          Alcotest.test_case "malformed numbers" `Quick test_malformed_numbers;
          Alcotest.test_case "missing argument" `Quick test_missing_argument;
          Alcotest.test_case "unknown flag/section" `Quick test_unknown_inputs;
          Alcotest.test_case "scenario flag" `Quick test_scenario_flag;
          Alcotest.test_case "scale and channel flags" `Quick test_scale_flag;
        ] );
    ]
