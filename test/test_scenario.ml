(* Scenario registry: round-trip and apply semantics, per-scenario seed
   determinism (byte-identical JSONL traces), golden equivalence of the
   default scenario against the committed pre-refactor campaign output at
   -j 1 and -j 4, the adversarial van Glabbeek replay (AODV loops, SRP
   stays green), and catalogue presence of the per-model fuzz properties. *)

module C = Sim.Config
module Sc = Sim.Scenario

let workload_scenarios = List.filter (fun sc -> not (Sc.is_adversarial sc)) Sc.all
let scenario name = Option.get (Sc.find name)

(* ------------------------------------------------------------------ *)
(* Registry round-trip *)

let test_registry () =
  Alcotest.(check bool) "at least the issue's scenarios registered" true
    (List.length Sc.all >= 10);
  Alcotest.(check string) "default entry first" "default" Sc.default.Sc.name;
  List.iter
    (fun sc ->
      match Sc.find sc.Sc.name with
      | Some found ->
          Alcotest.(check string) "find round-trips" sc.Sc.name found.Sc.name
      | None -> Alcotest.failf "find %S returned None" sc.Sc.name)
    Sc.all;
  Alcotest.(check (list string))
    "names lists the registry in order"
    (List.map (fun sc -> sc.Sc.name) Sc.all)
    Sc.names;
  Alcotest.(check bool) "unknown name rejected" true (Sc.find "no-such" = None);
  Alcotest.(check int) "exactly one adversarial entry" 1
    (List.length (List.filter Sc.is_adversarial Sc.all))

let test_apply () =
  let base = C.reproduction in
  Alcotest.(check string)
    "default scenario leaves the config byte-identical"
    (Trace.Json.to_string (C.to_json base))
    (Trace.Json.to_string (C.to_json (Sc.apply Sc.default base)));
  let downtown = Sc.apply (scenario "downtown") base in
  Alcotest.(check string) "downtown drives the manhattan grid" "manhattan"
    (Wireless.Mobility.name downtown.C.mobility);
  Alcotest.(check string) "downtown carries bursty traffic" "bursty"
    (Traffic.Model.name downtown.C.traffic);
  let hostile = Sc.apply (scenario "hostile") base in
  Alcotest.(check bool) "hostile arms its fault plan" false
    (Faults.Spec.is_none hostile.C.faults);
  (* an explicitly configured fault spec must win over the scenario plan *)
  let explicit = { Faults.Spec.default with Faults.Spec.crashes = 9 } in
  let kept = Sc.apply (scenario "hostile") { base with C.faults = explicit } in
  Alcotest.(check int) "explicit faults take precedence" 9
    kept.C.faults.Faults.Spec.crashes;
  match Sc.apply (scenario "vg-forged-rrep") base with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "apply on the adversarial entry must raise"

(* ------------------------------------------------------------------ *)
(* Per-scenario seed determinism: same seed, same bytes — report and the
   full JSONL event trace alike. *)

let small_base seed =
  {
    C.reproduction with
    C.nodes = 14;
    terrain = Wireless.Terrain.make ~width:600.0 ~height:300.0;
    duration = 22.0;
    flows = 2;
    pause = 1.0;
    seed;
  }

let run_with_trace config =
  let path = Filename.temp_file "scenario" ".jsonl" in
  let oc = open_out path in
  let trace = Trace.jsonl ~clock:(fun () -> 0.0) oc in
  let result =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Sim.Runner.run ~trace config)
  in
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  (Format.asprintf "%a" Sim.Report.run result, bytes)

let test_scenario_determinism sc () =
  let config = Sc.apply sc (small_base 5) in
  let report1, trace1 = run_with_trace config in
  let report2, trace2 = run_with_trace config in
  Alcotest.(check string) "report byte-identical" report1 report2;
  Alcotest.(check bool) "JSONL trace byte-identical" true (trace1 = trace2);
  Alcotest.(check bool) "trace non-empty" true (String.length trace1 > 0)

(* the determinism check is not vacuous: a different seed moves the trace *)
let test_seed_moves_trace () =
  let sc = Sc.default in
  let _, trace5 = run_with_trace (Sc.apply sc (small_base 5)) in
  let _, trace6 = run_with_trace (Sc.apply sc (small_base 6)) in
  Alcotest.(check bool) "different seed, different trace" false
    (trace5 = trace6)

(* ------------------------------------------------------------------ *)
(* Golden gate: the default scenario reproduces the committed
   pre-refactor campaign bytes (scripts/golden/) at -j 1 and -j 4. *)

(* dune runtest runs from the test build directory, dune exec from the
   workspace root — accept the golden from either vantage point *)
let read_golden name =
  let candidates =
    [
      Filename.concat "../scripts/golden" name;
      Filename.concat "scripts/golden" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> In_channel.with_open_bin path In_channel.input_all
  | None -> Alcotest.failf "golden %s not found" name

let golden_base () =
  (* mirrors `manet_sim campaign --scenario default --nodes 20 --duration 10
     --trials 1 --flows 3 --quiet`, the invocation that minted the goldens *)
  Sim.Config.with_labels
    {
      C.reproduction with
      C.nodes = 20;
      flows = 3;
      pause = 0.0;
      duration = 10.0;
      seed = 1;
      packet_rate = 4.0;
      faults = Faults.Spec.none;
    }
    Slr.Label_set.default

let golden_campaign ~jobs =
  Sim.Experiment.run ~jobs
    ~pause_scale:(Stdlib.min 1.0 (10.0 /. 900.0))
    ~base:(Sc.apply Sc.default (golden_base ())) ~protocols:C.all_protocols
    ~pauses:C.paper_pause_times ~trials:1
    ~progress:(fun _ -> ())
    ()

let test_default_matches_golden ~jobs () =
  (* the goldens were minted before the grid became the default channel;
     matching them from an untouched config proves the promotion changed
     no observable byte *)
  Alcotest.(check string) "campaign runs on the default grid channel" "grid"
    (C.channel_name (Sc.apply Sc.default (golden_base ())).C.channel);
  let campaign = golden_campaign ~jobs in
  Alcotest.(check string) "report matches committed golden"
    (read_golden "campaign_default.txt")
    (Format.asprintf "%a@." Sim.Report.all campaign);
  Alcotest.(check string) "campaign JSON matches committed golden"
    (read_golden "campaign_default.json")
    (Trace.Json.to_string (Sim.Report.campaign_json campaign) ^ "\n")

(* ------------------------------------------------------------------ *)
(* Adversarial replay: the van Glabbeek counterexample plus a forged
   stale advertisement must catch AODV looping while SRP stays green. *)

let test_adversarial_verdicts () =
  let verdicts = Sc.run_adversarial_all () in
  Alcotest.(check int) "one verdict per protocol" 5 (List.length verdicts);
  let verdict p = List.find (fun v -> v.Sc.vprotocol = p) verdicts in
  Alcotest.(check bool) "AODV caught looping" true
    (Sc.loop_detected (verdict C.Aodv));
  Alcotest.(check bool) "AODV online monitor fired" true
    (verdict C.Aodv).Sc.flagged;
  Alcotest.(check bool) "SRP stays loop-free under the forgery" false
    (Sc.loop_detected (verdict C.Srp));
  List.iter
    (fun v ->
      Alcotest.(check bool) "forged frame injected" true v.Sc.forged)
    verdicts;
  let render vs = List.map (Format.asprintf "%a" Sc.pp_verdict) vs in
  Alcotest.(check (list string)) "replay is deterministic" (render verdicts)
    (render (Sc.run_adversarial_all ()))

(* ------------------------------------------------------------------ *)
(* The per-model fuzz properties ride in the shrinking catalogue. *)

let model_props =
  [
    "mobility-positions";
    "manhattan-on-streets";
    "rpgm-group-radius";
    "churn-relocations";
    "waypoint-degenerate";
    "mobility-deterministic";
    "traffic-deterministic";
    "convergecast-sink-conserves";
    "bursty-envelope";
    "flash-crowd-arrival";
  ]

let test_catalogue_registered () =
  let names =
    List.map
      (fun (Check.Runner.Packed c) -> c.Check.Runner.name)
      Check.Props.all
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " in the catalogue") true (List.mem n names))
    model_props

let test_catalogue_passes () =
  let cells =
    List.filter
      (fun (Check.Runner.Packed c) ->
        List.mem c.Check.Runner.name model_props)
      Check.Props.all
  in
  Alcotest.(check int) "all ten cells selected" (List.length model_props)
    (List.length cells);
  let outcomes =
    Check.Runner.run_suite ~map:List.map ~seed:11 ~max_cases:10 cells
  in
  List.iter
    (fun (name, outcome) ->
      match outcome with
      | Check.Runner.Pass _ -> ()
      | Check.Runner.Fail _ ->
          Alcotest.failf "%s failed at seed 11" name)
    outcomes

let () =
  Alcotest.run "scenario"
    [
      ( "registry",
        [
          Alcotest.test_case "round-trip" `Quick test_registry;
          Alcotest.test_case "apply semantics" `Quick test_apply;
        ] );
      ( "determinism",
        Alcotest.test_case "seed moves the trace" `Quick test_seed_moves_trace
        :: List.map
             (fun sc ->
               Alcotest.test_case
                 (sc.Sc.name ^ " byte-deterministic")
                 `Slow
                 (test_scenario_determinism sc))
             workload_scenarios );
      ( "golden",
        [
          Alcotest.test_case "default == pre-refactor bytes (-j 1)" `Slow
            (test_default_matches_golden ~jobs:1);
          Alcotest.test_case "default == pre-refactor bytes (-j 4)" `Slow
            (test_default_matches_golden ~jobs:4);
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "AODV loops, SRP green" `Slow
            test_adversarial_verdicts;
        ] );
      ( "catalogue",
        [
          Alcotest.test_case "model properties registered" `Quick
            test_catalogue_registered;
          Alcotest.test_case "model properties pass" `Slow
            test_catalogue_passes;
        ] );
    ]
