(* Tests for the SLR core: fractions, big naturals, orderings, Algorithm 1,
   Farey interpolation, the abstract split-label rules, and the paper's
   worked examples on the abstract executor. *)

module F = Slr.Fraction
module O = Slr.Ordering

let frac num den = F.make ~num ~den

let check_frac = Alcotest.testable F.pp F.equal

let check_ordering = Alcotest.testable O.pp O.equal

(* ------------------------------------------------------------------ *)
(* Fraction *)

let test_fraction_make_validates () =
  Alcotest.check_raises "zero denominator" (Invalid_argument
    "Fraction.make: denominator must be >= 1") (fun () ->
      ignore (F.make ~num:0 ~den:0));
  Alcotest.check_raises "improper" (Invalid_argument
    "Fraction.make: fraction must be <= 1/1") (fun () ->
      ignore (F.make ~num:3 ~den:2));
  Alcotest.check_raises "non-canonical unit" (Invalid_argument
    "Fraction.make: only 1/1 may have num = den") (fun () ->
      ignore (F.make ~num:4 ~den:4));
  Alcotest.check_raises "over bound" (Invalid_argument
    "Fraction.make: component exceeds 32-bit bound") (fun () ->
      ignore (F.make ~num:1 ~den:(F.bound + 1)))

let test_fraction_order () =
  Alcotest.(check bool) "1/2 < 2/3" true F.(frac 1 2 < frac 2 3);
  Alcotest.(check bool) "2/4 = 1/2" true (F.equal (frac 2 4) (frac 1 2));
  Alcotest.(check bool) "0/1 least" true F.(F.zero < frac 1 1000000);
  Alcotest.(check bool) "1/1 greatest" true F.(frac 999999 1000000 < F.one);
  (* near-bound comparison exercises the 64-bit unsigned path *)
  let big1 = frac (F.bound - 1) F.bound in
  let big2 = frac (F.bound - 2) (F.bound - 1) in
  Alcotest.(check bool) "near-bound order" true F.(big2 < big1)

let test_fraction_mediant () =
  Alcotest.(check (option check_frac)) "mediant 1/2 2/3"
    (Some (frac 3 5))
    (F.mediant (frac 1 2) (frac 2 3));
  Alcotest.(check (option check_frac)) "next 0/1" (Some (frac 1 2))
    (F.next F.zero);
  Alcotest.(check (option check_frac)) "next of greatest" None (F.next F.one);
  let big = frac 1 F.bound in
  Alcotest.(check (option check_frac)) "mediant overflow" None
    (F.mediant big (frac 1 2));
  Alcotest.(check bool) "would_overflow" true (F.would_overflow big (frac 1 2))

let test_fibonacci_bound () =
  (* §III: "the least upper bound ... is found from the Fibonacci sequence
     to be 45 times" *)
  Alcotest.(check int) "45 worst-case splits" 45 (F.max_splits ())

let frac_gen =
  let open QCheck2.Gen in
  let* den = int_range 2 100_000 in
  let* num = int_range 1 (den - 1) in
  return (F.make ~num ~den)

let prop_mediant_between =
  QCheck2.Test.make ~name:"mediant lies strictly between" ~count:500
    QCheck2.Gen.(pair frac_gen frac_gen)
    (fun (a, b) ->
      let lo, hi = if F.(a < b) then (a, b) else (b, a) in
      QCheck2.assume (not (F.equal lo hi));
      match F.mediant lo hi with
      | Some m -> F.(lo < m) && F.(m < hi)
      | None -> false)

let prop_compare_antisym =
  QCheck2.Test.make ~name:"compare is antisymmetric" ~count:500
    QCheck2.Gen.(pair frac_gen frac_gen)
    (fun (a, b) -> compare (F.compare a b) 0 = compare 0 (F.compare b a))

let prop_compare_matches_floats =
  QCheck2.Test.make ~name:"compare agrees with float division" ~count:500
    QCheck2.Gen.(pair frac_gen frac_gen)
    (fun (a, b) ->
      let fa = F.to_float a and fb = F.to_float b in
      (* denominators <= 1e5 so doubles are exact enough *)
      if fa < fb then F.compare a b < 0
      else if fa > fb then F.compare a b > 0
      else F.compare a b = 0)

let prop_next_is_greater =
  QCheck2.Test.make ~name:"next-element is strictly greater" ~count:500
    frac_gen (fun a ->
      match F.next a with Some n -> F.(a < n) | None -> F.is_one a)

(* ------------------------------------------------------------------ *)
(* Bignat / Bigfrac *)

let test_bignat_basics () =
  let n = Slr.Bignat.of_int 123456789 in
  Alcotest.(check string) "to_string" "123456789" (Slr.Bignat.to_string n);
  Alcotest.(check (option int)) "to_int roundtrip" (Some 123456789)
    (Slr.Bignat.to_int n);
  let a = Slr.Bignat.of_string "99999999999999999999999999" in
  let b = Slr.Bignat.of_string "1" in
  Alcotest.(check string) "big add" "100000000000000000000000000"
    (Slr.Bignat.to_string (Slr.Bignat.add a b));
  let sq = Slr.Bignat.mul a a in
  Alcotest.(check string) "big mul"
    "9999999999999999999999999800000000000000000000000001"
    (Slr.Bignat.to_string sq);
  Alcotest.(check int) "compare" 1 (Slr.Bignat.compare a b);
  Alcotest.(check (option int)) "huge to_int" None (Slr.Bignat.to_int sq)

let small_nat_gen = QCheck2.Gen.(map Slr.Bignat.of_int (int_range 0 1_000_000))

let prop_bignat_add_matches_int =
  QCheck2.Test.make ~name:"bignat add matches int" ~count:300
    QCheck2.Gen.(pair (int_range 0 1_000_000_000) (int_range 0 1_000_000_000))
    (fun (a, b) ->
      Slr.Bignat.to_int
        (Slr.Bignat.add (Slr.Bignat.of_int a) (Slr.Bignat.of_int b))
      = Some (a + b))

let prop_bignat_mul_matches_int =
  QCheck2.Test.make ~name:"bignat mul matches int" ~count:300
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))
    (fun (a, b) ->
      Slr.Bignat.to_int
        (Slr.Bignat.mul (Slr.Bignat.of_int a) (Slr.Bignat.of_int b))
      = Some (a * b))

let prop_bignat_string_roundtrip =
  QCheck2.Test.make ~name:"bignat decimal roundtrip" ~count:200 small_nat_gen
    (fun n ->
      Slr.Bignat.equal n (Slr.Bignat.of_string (Slr.Bignat.to_string n)))

let test_bigfrac_dense () =
  let module B = Slr.Bigfrac in
  (* split 300 times between the last two labels: denominators blow far
     past 64 bits, order is preserved throughout *)
  let rec go a b k =
    if k > 0 then begin
      let m = B.mediant a b in
      Alcotest.(check bool) "mediant distinct from operands" true
        (B.compare m a <> 0 && B.compare m b <> 0);
      go b m (k - 1)
    end
  in
  go B.zero B.one 300;
  let half = B.of_ints ~num:1 ~den:2 in
  Alcotest.(check bool) "1/2 < 2/3" true B.(half < B.of_ints ~num:2 ~den:3)

(* ------------------------------------------------------------------ *)
(* Lexlabel: the "lexicographically sorted string" dense set *)

module L = Slr.Lexlabel

let key s = L.of_string s

let test_lexlabel_order () =
  Alcotest.(check bool) "least below everything" true
    (L.compare L.least (key "\x01") < 0);
  Alcotest.(check bool) "top above everything" true
    (L.compare (key "\xff\xff") L.top < 0);
  Alcotest.(check bool) "prefix is smaller" true
    (L.compare (key "ab") (key "abc") < 0);
  Alcotest.check_raises "trailing NUL rejected"
    (Invalid_argument "Lexlabel.of_string: trailing NUL is non-canonical")
    (fun () -> ignore (L.of_string "a\x00"))

let test_lexlabel_next () =
  (match L.next L.least with
  | Some n -> Alcotest.(check bool) "next greater" true (L.compare L.least n < 0)
  | None -> Alcotest.fail "least has a next");
  Alcotest.(check bool) "top has no next" true (L.next L.top = None)

let test_lexlabel_between_cases () =
  let check_between lo hi =
    match L.between ~lo ~hi with
    | Some m ->
        Alcotest.(check bool) "strictly inside" true
          (L.compare lo m < 0 && L.compare m hi < 0)
    | None -> Alcotest.fail "between must exist"
  in
  check_between L.least L.top;
  check_between L.least (key "\x01");
  check_between (key "a") (key "b");
  check_between (key "a") (key "a\x01");
  check_between (key "az") (key "b");
  check_between (key "\xff") L.top;
  check_between (key "abc") (key "abd")

let lexkey_gen =
  QCheck2.Gen.(
    let byte = map Char.chr (int_range 0 255) in
    let last = map Char.chr (int_range 1 255) in
    let* body = string_size ~gen:byte (int_range 0 6) in
    let* tail = last in
    oneof [ return L.least; return (L.of_string (body ^ String.make 1 tail)) ])

let prop_lexlabel_between =
  QCheck2.Test.make ~name:"lexlabel between lies strictly inside" ~count:1000
    QCheck2.Gen.(pair lexkey_gen lexkey_gen)
    (fun (a, b) ->
      let c = L.compare a b in
      QCheck2.assume (c <> 0);
      let lo, hi = if c < 0 then (a, b) else (b, a) in
      match L.between ~lo ~hi with
      | Some m -> L.compare lo m < 0 && L.compare m hi < 0
      | None -> false)

let prop_lexlabel_between_top =
  QCheck2.Test.make ~name:"lexlabel between anything and top" ~count:500
    lexkey_gen
    (fun a ->
      QCheck2.assume (L.compare a L.top < 0);
      match L.between ~lo:a ~hi:L.top with
      | Some m -> L.compare a m < 0 && L.compare m L.top < 0
      | None -> false)

(* the whole abstract protocol runs on string labels too *)
module LexNet = Slr.Simple_net.Make (Slr.Ordinal.Lex_string)

let test_lexlabel_network () =
  let net = LexNet.create ~nodes:6 ~dest:0 in
  List.iter (fun (a, b) -> LexNet.add_link net a b)
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ];
  (match LexNet.request net ~src:5 with
  | LexNet.Routed _ -> ()
  | _ -> Alcotest.fail "no route");
  (match LexNet.check_invariants net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* repair after a mid-chain break *)
  LexNet.break_link net 2 3;
  LexNet.add_link net 1 3;
  (match LexNet.request net ~src:5 with
  | LexNet.Routed _ -> ()
  | _ -> Alcotest.fail "no repair");
  match LexNet.check_invariants net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Ordering (Definitions 4-7) *)

let ord sn num den = O.make ~sn ~frac:(frac num den)

let test_ordering_criteria () =
  (* Definition 5: higher sn, or equal sn and smaller fraction *)
  Alcotest.(check bool) "fresher sn precedes" true
    (O.precedes (ord 1 1 2) (ord 2 9 10));
  Alcotest.(check bool) "smaller fraction precedes" true
    (O.precedes (ord 1 2 3) (ord 1 1 2));
  Alcotest.(check bool) "irreflexive" false
    (O.precedes (ord 1 1 2) (ord 1 1 2));
  Alcotest.(check bool) "unassigned is maximum" true
    (O.precedes O.unassigned (ord 1 1 2));
  Alcotest.(check bool) "destination is minimal at its sn" true
    (O.precedes (ord 1 1 1000000) (O.destination ~sn:1))

let test_ordering_min () =
  let a = ord 1 1 2 and b = ord 1 2 3 in
  (* b has the larger fraction, so a is "lower": min must return a *)
  Alcotest.check check_ordering "min picks lower" a (O.min b a);
  Alcotest.check check_ordering "min picks lower (sym)" a (O.min a b);
  Alcotest.check check_ordering "min with unassigned" a (O.min O.unassigned a)

let test_ordering_add () =
  (* Definition 6 *)
  let o = ord 3 1 2 in
  match O.add o (frac 2 3) with
  | Some o' ->
      Alcotest.check check_ordering "mediant add" (ord 3 3 5) o';
      (* Def. 6: if m/n < p/q then O + p/q ⊑ O *)
      Alcotest.(check bool) "O + p/q precedes O" true (O.precedes o' o)
  | None -> Alcotest.fail "add overflowed unexpectedly"

let ordering_gen =
  let open QCheck2.Gen in
  let* sn = int_range 0 5 in
  let* f = frac_gen in
  return (O.make ~sn ~frac:f)

let prop_precedes_transitive =
  QCheck2.Test.make ~name:"OC relation is transitive" ~count:500
    QCheck2.Gen.(triple ordering_gen ordering_gen ordering_gen)
    (fun (a, b, c) ->
      QCheck2.assume (O.precedes a b && O.precedes b c);
      O.precedes a c)

let prop_precedes_asymmetric =
  QCheck2.Test.make ~name:"OC relation is asymmetric" ~count:500
    QCheck2.Gen.(pair ordering_gen ordering_gen)
    (fun (a, b) -> not (O.precedes a b && O.precedes b a))

(* ------------------------------------------------------------------ *)
(* Algorithm 1 (NEWORDER) *)

module NO = Slr.New_order

let compute ~current ~cached ~adv = NO.compute ~current ~cached ~adv

let test_neworder_cases () =
  (* Case II (line 5): both seqnos stale -> next element of the adv *)
  let r =
    compute ~current:O.unassigned ~cached:O.unassigned
      ~adv:(O.destination ~sn:1)
  in
  Alcotest.(check bool) "case Fresher_next" true (r.NO.case = NO.Fresher_next);
  Alcotest.check check_ordering "adv + 1/1" (ord 1 1 2) r.NO.order;
  (* Case III (line 7): fresher adv, cached at the same sn -> split *)
  let r =
    compute ~current:(ord 1 9 10) ~cached:(ord 2 2 3) ~adv:(ord 2 1 2)
  in
  Alcotest.(check bool) "case Fresher_split" true (r.NO.case = NO.Fresher_split);
  Alcotest.check check_ordering "split fraction" (ord 2 3 5) r.NO.order;
  (* Case IV (line 10): current already satisfies the cached solicitation *)
  let r = compute ~current:(ord 2 1 2) ~cached:(ord 2 2 3) ~adv:(ord 2 1 3) in
  Alcotest.(check bool) "case Keep_current" true (r.NO.case = NO.Keep_current);
  Alcotest.check check_ordering "keeps current" (ord 2 1 2) r.NO.order;
  (* Case V (line 12): equal sn, out-of-order cached -> split *)
  let r = compute ~current:(ord 2 2 3) ~cached:(ord 2 2 3) ~adv:(ord 2 1 2) in
  Alcotest.(check bool) "case Equal_split" true (r.NO.case = NO.Equal_split);
  Alcotest.check check_ordering "split" (ord 2 3 5) r.NO.order;
  (* Case I (line 2): stale advertisement -> infinite *)
  let r = compute ~current:(ord 3 1 2) ~cached:O.unassigned ~adv:(ord 2 1 3) in
  Alcotest.(check bool) "case Infinite" true (r.NO.case = NO.Infinite);
  Alcotest.(check bool) "infinite result" false (O.is_finite r.NO.order)

let test_neworder_overflow () =
  let nearly = frac (F.bound - 1) F.bound in
  let r =
    compute
      ~current:(O.make ~sn:1 ~frac:F.one)
      ~cached:(O.make ~sn:2 ~frac:nearly)
      ~adv:(O.make ~sn:2 ~frac:(frac 1 F.bound))
  in
  Alcotest.(check bool) "overflow -> infinite" true (r.NO.case = NO.Infinite)

let test_neworder_custom_split () =
  (* Farey interpolation drops into Algorithm 1 (the §VI extension):
     between 1/2 and 2/3 both walks give 3/5, but between 3/10 and 1/3 the
     mediant gives 4/13 while the interval's simplest fraction... is also
     4/13; use (1/3, 1/2) where mediant = 2/5 and Farey = 2/5 too — so use
     a wide interval where they differ: (1/10, 9/10): mediant 10/20 = 1/2,
     Farey 1/2 as well. Denominator differences only show on narrow skewed
     intervals: (7/10, 5/7): mediant 12/17, Farey... check strictness and
     denominator no larger instead. *)
  let current = ord 2 9 10 in
  let cached = O.make ~sn:2 ~frac:(frac 5 7) in
  let adv = O.make ~sn:2 ~frac:(frac 7 10) in
  let with_mediant = compute ~current ~cached ~adv in
  let with_farey =
    NO.compute_with ~labels:(module Slr.Label.Farey) ~current ~cached ~adv
  in
  Alcotest.(check bool) "mediant split finite" true
    (O.is_finite with_mediant.NO.order);
  Alcotest.(check bool) "farey split finite" true
    (O.is_finite with_farey.NO.order);
  List.iter
    (fun r ->
      let g = O.frac r.NO.order in
      Alcotest.(check bool) "strictly inside" true
        F.(O.frac adv < g && g < O.frac cached))
    [ with_mediant; with_farey ];
  Alcotest.(check bool) "farey denominator no larger" true
    ((O.frac with_farey.NO.order).F.den <= (O.frac with_mediant.NO.order).F.den)

let test_neworder_degenerate_interval () =
  (* cached and advertisement carrying the same fraction leaves no room:
     Algorithm 1 must refuse rather than fabricate a non-strict label *)
  let r = compute ~current:(ord 2 9 10) ~cached:(ord 2 1 2) ~adv:(ord 2 1 2) in
  Alcotest.(check bool) "no strict label exists" false
    (O.is_finite r.NO.order)

let test_filter_successors () =
  let g = ord 2 1 2 in
  let succs =
    [ (1, ord 2 1 3); (2, ord 2 2 3); (3, ord 3 9 10); (4, ord 1 1 10) ]
  in
  let kept = NO.filter_successors ~order:g succs in
  Alcotest.(check (list int)) "keeps in-order successors" [ 1; 3 ]
    (List.sort compare (List.map fst kept))

(* Theorem 6 unconditionally: for ARBITRARY inputs — including stale and
   reordered packets that violate Lemma 1's protocol invariants — a finite
   result maintains Eqs. 3-5. *)
let prop_neworder_unconditional =
  QCheck2.Test.make ~name:"NEWORDER is safe on arbitrary inputs" ~count:3000
    QCheck2.Gen.(triple ordering_gen ordering_gen ordering_gen)
    (fun (current, cached, adv) ->
      let r = compute ~current ~cached ~adv in
      (not (O.is_finite r.NO.order))
      || NO.maintains_order ~current ~cached ~adv r.NO.order)

(* Theorem 6 as a property: under the protocol invariants (the
   advertisement is feasible for the node and for the cached solicitation),
   a finite result maintains Eqs. 3-5. *)
let prop_neworder_maintains_order =
  QCheck2.Test.make ~name:"NEWORDER maintains order (Theorem 6)" ~count:2000
    QCheck2.Gen.(triple ordering_gen ordering_gen ordering_gen)
    (fun (current, cached, adv) ->
      QCheck2.assume (NO.feasible ~current ~adv);
      QCheck2.assume (O.precedes cached adv);
      let r = compute ~current ~cached ~adv in
      if not (O.is_finite r.NO.order) then true
      else
        let g = r.NO.order in
        (* Eq. 3: G <= current (lower or equal label) *)
        (O.equal g current || O.precedes current g)
        (* Eq. 4: G strictly below the cached solicitation minimum *)
        && O.precedes cached g
        (* Eq. 5: strictly above the advertisement *)
        && O.precedes g adv)

(* ------------------------------------------------------------------ *)
(* Farey *)

let test_farey_simplest () =
  let simplest lo hi = Slr.Farey.simplest_between ~lo ~hi in
  Alcotest.(check (option check_frac)) "(0,1) -> 1/2" (Some (frac 1 2))
    (simplest F.zero F.one);
  Alcotest.(check (option check_frac)) "(1/2,2/3) -> 3/5" (Some (frac 3 5))
    (simplest (frac 1 2) (frac 2 3));
  Alcotest.(check (option check_frac)) "(1/3,1/2) -> 2/5" (Some (frac 2 5))
    (simplest (frac 1 3) (frac 1 2));
  Alcotest.(check (option check_frac)) "(3/10,1/3) -> 4/13"
    (Some (frac 4 13))
    (simplest (frac 3 10) (frac 1 3))

let prop_farey_inside =
  QCheck2.Test.make ~name:"Farey result strictly inside" ~count:500
    QCheck2.Gen.(pair frac_gen frac_gen)
    (fun (a, b) ->
      let lo, hi = if F.(a < b) then (a, b) else (b, a) in
      QCheck2.assume (not (F.equal lo hi));
      match Slr.Farey.simplest_between ~lo ~hi with
      | Some s -> F.(lo < s) && F.(s < hi)
      | None -> false)

let prop_farey_minimal =
  QCheck2.Test.make ~name:"Farey denominator is minimal" ~count:200
    QCheck2.Gen.(
      let* den = int_range 2 60 in
      let* num = int_range 1 (den - 1) in
      let* den2 = int_range 2 60 in
      let* num2 = int_range 1 (den2 - 1) in
      return (F.make ~num ~den, F.make ~num:num2 ~den:den2))
    (fun (a, b) ->
      let lo, hi = if F.(a < b) then (a, b) else (b, a) in
      QCheck2.assume (not (F.equal lo hi));
      match Slr.Farey.simplest_between ~lo ~hi with
      | None -> false
      | Some s ->
          (* brute force: no fraction with a smaller denominator fits *)
          let fits q =
            let rec try_num p = p < q && ((F.(lo < frac p q) && F.(frac p q < hi)) || try_num (p + 1)) in
            try_num 1
          in
          let rec smaller q = q < s.F.den && (fits q || smaller (q + 1)) in
          not (smaller 1))

let prop_farey_never_wider_than_mediant =
  QCheck2.Test.make ~name:"Farey denominator <= mediant denominator"
    ~count:500
    QCheck2.Gen.(pair frac_gen frac_gen)
    (fun (a, b) ->
      let lo, hi = if F.(a < b) then (a, b) else (b, a) in
      QCheck2.assume (not (F.equal lo hi));
      match (Slr.Farey.simplest_between ~lo ~hi, F.mediant lo hi) with
      | Some s, Some m -> s.F.den <= m.F.den
      | Some _, None -> true
      | None, _ -> false)

(* ------------------------------------------------------------------ *)
(* Split_label rules + Simple_net (the paper's worked examples) *)

module Rules = Slr.Split_label.Make (Slr.Ordinal.Bounded_fraction)
module Net = Slr.Simple_net.Make (Slr.Ordinal.Bounded_fraction)

let test_choose_label () =
  (* infeasible: advertisement not below the current label *)
  Alcotest.(check (option check_frac)) "infeasible" None
    (Rules.choose_label ~current:(frac 1 2) ~cached_min:F.one ~adv:(frac 2 3));
  (* keep current when it already satisfies Eq. 4 *)
  Alcotest.(check (option check_frac)) "keep" (Some (frac 1 2))
    (Rules.choose_label ~current:(frac 1 2) ~cached_min:(frac 2 3)
       ~adv:(frac 1 3));
  (* next element when it fits below the cached minimum *)
  Alcotest.(check (option check_frac)) "next" (Some (frac 1 2))
    (Rules.choose_label ~current:F.one ~cached_min:F.one ~adv:F.zero);
  (* split when the next element does not fit *)
  Alcotest.(check (option check_frac)) "split" (Some (frac 3 5))
    (Rules.choose_label ~current:(frac 2 3) ~cached_min:(frac 2 3)
       ~adv:(frac 1 2))

let test_successor_max () =
  Alcotest.check check_frac "empty -> least" F.zero (Rules.successor_max []);
  Alcotest.check check_frac "max" (frac 2 3)
    (Rules.successor_max [ (1, frac 1 2); (2, frac 2 3); (3, frac 1 3) ])

let test_example1 () =
  (* Fig. 1: T-A-B-C-D-E, request from E *)
  let net = Net.create ~nodes:6 ~dest:0 in
  List.iter (fun (a, b) -> Net.add_link net a b)
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ];
  (match Net.request net ~src:5 with
  | Net.Routed { replier; _ } -> Alcotest.(check int) "T replies" 0 replier
  | _ -> Alcotest.fail "no route");
  List.iteri
    (fun i expected ->
      Alcotest.check check_frac
        (Printf.sprintf "label of node %d" i)
        expected (Net.label net i))
    [ frac 0 1; frac 1 2; frac 2 3; frac 3 4; frac 4 5; frac 5 6 ];
  match Net.check_invariants net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_example2 () =
  (* Fig. 2: stale nodes F, G, H relabel via splitting *)
  let net = Net.create ~nodes:9 ~dest:0 in
  List.iter (fun (a, b) -> Net.add_link net a b)
    [ (0, 1); (1, 2); (2, 6); (6, 7); (7, 8) ];
  (match Net.request net ~src:2 with Net.Routed _ -> () | _ -> assert false);
  Net.seed_label net 6 (frac 2 3);
  Net.seed_label net 7 (frac 2 3);
  Net.seed_label net 8 (frac 3 4);
  (match Net.request net ~src:8 with
  | Net.Routed { replier; _ } -> Alcotest.(check int) "A replies" 1 replier
  | _ -> Alcotest.fail "no route");
  List.iter
    (fun (i, expected) ->
      Alcotest.check check_frac
        (Printf.sprintf "label of node %d" i)
        expected (Net.label net i))
    [ (8, frac 3 4); (7, frac 2 3); (6, frac 5 8); (2, frac 3 5);
      (1, frac 1 2); (0, frac 0 1) ];
  match Net.check_invariants net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_simple_net_no_route () =
  let net = Net.create ~nodes:4 ~dest:0 in
  Net.add_link net 2 3;
  (match Net.request net ~src:3 with
  | Net.No_route -> ()
  | _ -> Alcotest.fail "expected No_route");
  Alcotest.(check bool) "still unlabeled" true
    (F.is_one (Net.label net 3))

let test_simple_net_break_and_repair () =
  let net = Net.create ~nodes:5 ~dest:0 in
  (* diamond: 0-1-3, 0-2-3, plus 3-4 *)
  List.iter (fun (a, b) -> Net.add_link net a b)
    [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ];
  (match Net.request net ~src:4 with Net.Routed _ -> () | _ -> assert false);
  let first_path = Option.get (Net.route_to_dest net ~src:4) in
  (* break the first hop the route uses after node 3 *)
  (match first_path with
  | _ :: _ :: via :: _ -> Net.break_link net 3 via
  | _ -> Alcotest.fail "unexpected path shape");
  (match Net.request net ~src:4 with
  | Net.Routed _ -> ()
  | _ -> Alcotest.fail "repair failed");
  (match Net.route_to_dest net ~src:4 with
  | Some path -> Alcotest.(check int) "path ends at dest" 0 (List.hd (List.rev path))
  | None -> Alcotest.fail "no route after repair");
  match Net.check_invariants net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* Theorem 3 on the abstract machine: arbitrary graphs and random
   request/break schedules never violate topological order or create a
   cycle. *)
let prop_simple_net_loop_free =
  QCheck2.Test.make ~name:"abstract SLR is loop-free under random schedules"
    ~count:100
    QCheck2.Gen.(
      let* nodes = int_range 4 12 in
      let* edges =
        list_size (int_range nodes (3 * nodes))
          (pair (int_range 0 (nodes - 1)) (int_range 0 (nodes - 1)))
      in
      let* ops =
        list_size (int_range 5 40)
          (oneof
             [
               map (fun s -> `Request s) (int_range 0 (nodes - 1));
               map (fun (a, b) -> `Break (a, b))
                 (pair (int_range 0 (nodes - 1)) (int_range 0 (nodes - 1)));
             ])
      in
      return (nodes, edges, ops))
    (fun (nodes, edges, ops) ->
      let net = Net.create ~nodes ~dest:0 in
      List.iter (fun (a, b) -> if a <> b then Net.add_link net a b) edges;
      List.for_all
        (fun op ->
          (match op with
          | `Request src -> ignore (Net.request net ~src)
          | `Break (a, b) -> if a <> b then Net.break_link net a b);
          match Net.check_invariants net with Ok () -> true | Error _ -> false)
        ops)

(* Same property on the unbounded label set. *)
module UNet = Slr.Simple_net.Make (Slr.Ordinal.Unbounded_fraction)

let prop_unbounded_net_loop_free =
  QCheck2.Test.make ~name:"unbounded SLR is loop-free under random schedules"
    ~count:50
    QCheck2.Gen.(
      let* nodes = int_range 4 10 in
      let* requests = list_size (int_range 5 30) (int_range 0 (nodes - 1)) in
      return (nodes, requests))
    (fun (nodes, requests) ->
      let net = UNet.create ~nodes ~dest:0 in
      (* ring plus chords *)
      for i = 0 to nodes - 1 do
        UNet.add_link net i ((i + 1) mod nodes)
      done;
      UNet.add_link net 0 (nodes / 2);
      List.for_all
        (fun src ->
          ignore (UNet.request net ~src);
          match UNet.check_invariants net with
          | Ok () -> true
          | Error _ -> false)
        requests)

(* ------------------------------------------------------------------ *)
(* Dag *)

let test_dag () =
  let successors = function 0 -> [] | 1 -> [ 0 ] | 2 -> [ 1; 0 ] | _ -> [ 2 ] in
  (match Slr.Dag.acyclic ~successors 4 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "acyclic graph reported cyclic");
  let cyclic = function 0 -> [ 1 ] | 1 -> [ 2 ] | _ -> [ 0 ] in
  (match Slr.Dag.acyclic ~successors:cyclic 3 with
  | Ok () -> Alcotest.fail "cycle not detected"
  | Error cycle ->
      Alcotest.(check bool) "witness closes" true
        (List.length cycle >= 2 && List.hd cycle = List.hd (List.rev cycle)));
  Alcotest.(check bool) "reaches" true
    (Slr.Dag.reaches ~successors ~src:3 ~dst:0 4);
  Alcotest.(check bool) "does not reach" false
    (Slr.Dag.reaches ~successors ~src:0 ~dst:3 4)

let test_topological_order () =
  let labels = [| 0; 5; 3; 7 |] in
  let successors = function 1 -> [ 2 ] | 2 -> [ 0 ] | 3 -> [ 1 ] | _ -> [] in
  (match
     Slr.Dag.topological_order ~compare:Int.compare
       ~label:(fun i -> labels.(i))
       ~successors 4
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "valid order rejected");
  let bad = function 2 -> [ 1 ] | _ -> [] in
  match
    Slr.Dag.topological_order ~compare:Int.compare
      ~label:(fun i -> labels.(i))
      ~successors:bad 4
  with
  | Ok () -> Alcotest.fail "violation not caught"
  | Error (i, j) ->
      Alcotest.(check (pair int int)) "offending edge" (2, 1) (i, j)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "slr"
    [
      ( "fraction",
        [
          Alcotest.test_case "make validates" `Quick test_fraction_make_validates;
          Alcotest.test_case "order" `Quick test_fraction_order;
          Alcotest.test_case "mediant and next" `Quick test_fraction_mediant;
          Alcotest.test_case "Fibonacci 45-split bound" `Quick test_fibonacci_bound;
          qtest prop_mediant_between;
          qtest prop_compare_antisym;
          qtest prop_compare_matches_floats;
          qtest prop_next_is_greater;
        ] );
      ( "bignat",
        [
          Alcotest.test_case "basics" `Quick test_bignat_basics;
          Alcotest.test_case "bigfrac density" `Quick test_bigfrac_dense;
          qtest prop_bignat_add_matches_int;
          qtest prop_bignat_mul_matches_int;
          qtest prop_bignat_string_roundtrip;
        ] );
      ( "lexlabel",
        [
          Alcotest.test_case "order" `Quick test_lexlabel_order;
          Alcotest.test_case "next" `Quick test_lexlabel_next;
          Alcotest.test_case "between cases" `Quick test_lexlabel_between_cases;
          Alcotest.test_case "abstract SLR on strings" `Quick test_lexlabel_network;
          qtest prop_lexlabel_between;
          qtest prop_lexlabel_between_top;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "criteria (Def. 5)" `Quick test_ordering_criteria;
          Alcotest.test_case "min" `Quick test_ordering_min;
          Alcotest.test_case "addition (Def. 6)" `Quick test_ordering_add;
          qtest prop_precedes_transitive;
          qtest prop_precedes_asymmetric;
        ] );
      ( "neworder",
        [
          Alcotest.test_case "all five cases" `Quick test_neworder_cases;
          Alcotest.test_case "overflow" `Quick test_neworder_overflow;
          Alcotest.test_case "custom splitter (§VI)" `Quick
            test_neworder_custom_split;
          Alcotest.test_case "degenerate interval" `Quick
            test_neworder_degenerate_interval;
          Alcotest.test_case "successor elimination" `Quick test_filter_successors;
          qtest prop_neworder_maintains_order;
          qtest prop_neworder_unconditional;
        ] );
      ( "farey",
        [
          Alcotest.test_case "simplest fractions" `Quick test_farey_simplest;
          qtest prop_farey_inside;
          qtest prop_farey_minimal;
          qtest prop_farey_never_wider_than_mediant;
        ] );
      ( "split-label",
        [
          Alcotest.test_case "choose_label" `Quick test_choose_label;
          Alcotest.test_case "successor_max" `Quick test_successor_max;
        ] );
      ( "simple-net",
        [
          Alcotest.test_case "paper Example 1 (Fig. 1)" `Quick test_example1;
          Alcotest.test_case "paper Example 2 (Fig. 2)" `Quick test_example2;
          Alcotest.test_case "partitioned request" `Quick test_simple_net_no_route;
          Alcotest.test_case "break and repair" `Quick test_simple_net_break_and_repair;
          qtest prop_simple_net_loop_free;
          qtest prop_unbounded_net_loop_free;
        ] );
      ( "dag",
        [
          Alcotest.test_case "acyclicity" `Quick test_dag;
          Alcotest.test_case "topological order" `Quick test_topological_order;
        ] );
    ]
