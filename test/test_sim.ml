(* Integration tests: traffic generation, metrics accounting, end-to-end
   simulations for every protocol, determinism, the campaign/report layer,
   and the headline property — SRP's loop-freedom under mobility. *)

module C = Sim.Config

let quick_config protocol =
  {
    C.small with
    protocol;
    nodes = 30;
    terrain = Wireless.Terrain.make ~width:900.0 ~height:300.0;
    duration = 40.0;
    flows = 4;
    pause = 900.0;
    seed = 3;
  }

(* ------------------------------------------------------------------ *)
(* Traffic *)

let test_cbr_generation () =
  let rng = Des.Rng.create 4L in
  let flows =
    Traffic.Cbr.generate ~rng ~nodes:20 ~concurrent:5 ~from_time:10.0
      ~until:100.0 ~mean_duration:30.0
  in
  Alcotest.(check bool) "at least one flow per slot" true
    (List.length flows >= 5);
  List.iter
    (fun f ->
      Alcotest.(check bool) "src <> dst" true Traffic.Cbr.(f.src <> f.dst);
      Alcotest.(check bool) "window" true
        Traffic.Cbr.(f.start >= 10.0 && f.stop <= 100.0))
    flows;
  (* each slot covers the window back-to-back *)
  let slot0 =
    List.filter (fun f -> f.Traffic.Cbr.id mod 5 = 0) flows
  in
  ignore slot0;
  let total = Traffic.Cbr.packet_count ~flows ~rate:4.0 in
  Alcotest.(check bool) "plausible packet count" true
    (total > 5 * 80 && total <= 5 * 4 * 91)

let test_cbr_schedule_counts () =
  let engine = Des.Engine.create () in
  let rng = Des.Rng.create 4L in
  let flows =
    Traffic.Cbr.generate ~rng ~nodes:20 ~concurrent:3 ~from_time:0.0
      ~until:30.0 ~mean_duration:10.0
  in
  let sent = ref 0 in
  Traffic.Cbr.schedule engine ~flows ~rate:4.0 ~size:512
    ~send:(fun ~src:_ data ~size ->
      Alcotest.(check int) "size" 512 size;
      Alcotest.(check bool) "stamped" true (data.Wireless.Frame.sent_at >= 0.0);
      incr sent);
  Des.Engine.run_all engine;
  Alcotest.(check bool) "packets emitted" true (!sent > 0);
  Alcotest.(check bool) "bounded by count" true
    (!sent <= Traffic.Cbr.packet_count ~flows ~rate:4.0)

let test_cbr_deterministic () =
  let gen () =
    Traffic.Cbr.generate
      ~rng:(Des.Rng.create 8L)
      ~nodes:10 ~concurrent:4 ~from_time:0.0 ~until:50.0 ~mean_duration:20.0
  in
  Alcotest.(check bool) "same seed, same script" true (gen () = gen ())

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_accounting () =
  let m = Sim.Metrics.create () in
  let data seq =
    { Wireless.Frame.origin = 0; final_dst = 1; flow = 0; seq; sent_at = 1.0;
      hops = 0 }
  in
  Sim.Metrics.on_sent m (data 1);
  Sim.Metrics.on_sent m (data 2);
  Sim.Metrics.on_delivered m ~now:1.5 (data 1);
  (* duplicate delivery of the same packet must not double count *)
  Sim.Metrics.on_delivered m ~now:1.6 (data 1);
  Sim.Metrics.on_dropped m ~now:2.0 (data 2) ~reason:"test";
  (* the flow delivers again 0.7 s after its first drop: one recovery *)
  Sim.Metrics.on_delivered m ~now:2.7 (data 3);
  let gauges =
    [ { Protocols.Routing_intf.own_seqno = 4; max_denominator = 7;
        seqno_resets = 1; route_entries = 2; pending_packets = 0;
        label_width_bits = 13; label_resets = 1 };
      { Protocols.Routing_intf.own_seqno = 0; max_denominator = 3;
        seqno_resets = 0; route_entries = 1; pending_packets = 3;
        label_width_bits = 7; label_resets = 0 } ]
  in
  let r =
    Sim.Metrics.finalize m ~control_tx:10 ~data_tx:5 ~drop_queue_full:1
      ~drop_retry:2 ~mac_drops:3 ~collisions:4 ~nodes:2 ~gauges ~fault_events:0
      ~fault_frames_blocked:0 ~engine_events:1234
  in
  Alcotest.(check int) "sent" 2 r.Sim.Metrics.sent;
  Alcotest.(check int) "delivered" 2 r.Sim.Metrics.delivered;
  Alcotest.(check int) "label width is the gauge max" 13
    r.Sim.Metrics.label_width_bits;
  Alcotest.(check int) "label resets summed" 1 r.Sim.Metrics.label_resets;
  Alcotest.(check (float 1e-9)) "ratio" 1.0 r.Sim.Metrics.delivery_ratio;
  Alcotest.(check (float 1e-9)) "load" 5.0 r.Sim.Metrics.network_load;
  Alcotest.(check (float 1e-9)) "latency" 1.1 r.Sim.Metrics.latency;
  Alcotest.(check int) "one recovery" 1 r.Sim.Metrics.recoveries;
  Alcotest.(check (float 1e-9)) "recovery time" 0.7 r.Sim.Metrics.recovery_mean;
  Alcotest.(check (float 1e-9)) "drops per node" 1.5 r.Sim.Metrics.mac_drops_per_node;
  Alcotest.(check (float 1e-9)) "avg seqno" 2.0 r.Sim.Metrics.avg_seqno;
  Alcotest.(check int) "max denom" 7 r.Sim.Metrics.max_denominator;
  Alcotest.(check int) "resets" 1 r.Sim.Metrics.seqno_resets;
  Alcotest.(check (list (pair string int))) "drop reasons" [ ("test", 1) ]
    r.Sim.Metrics.drop_reasons

(* ------------------------------------------------------------------ *)
(* End-to-end runs *)

let test_protocol_delivers protocol () =
  let r = Sim.Runner.run (quick_config protocol) in
  Alcotest.(check bool)
    (Printf.sprintf "%s delivers >= 0.85 (got %.3f)"
       (C.protocol_name protocol) r.Sim.Metrics.delivery_ratio)
    true
    (r.Sim.Metrics.delivery_ratio >= 0.85);
  Alcotest.(check bool) "some control traffic" true (r.Sim.Metrics.control_tx > 0)

let test_run_deterministic () =
  let a = Sim.Runner.run (quick_config C.Srp) in
  let b = Sim.Runner.run (quick_config C.Srp) in
  Alcotest.(check int) "same delivered" a.Sim.Metrics.delivered
    b.Sim.Metrics.delivered;
  Alcotest.(check int) "same control" a.Sim.Metrics.control_tx
    b.Sim.Metrics.control_tx;
  Alcotest.(check (float 1e-12)) "same latency" a.Sim.Metrics.latency
    b.Sim.Metrics.latency

let test_seed_changes_outcome () =
  let a = Sim.Runner.run (quick_config C.Srp) in
  let b = Sim.Runner.run { (quick_config C.Srp) with C.seed = 4 } in
  Alcotest.(check bool) "different seeds differ somewhere" true
    (a.Sim.Metrics.delivered <> b.Sim.Metrics.delivered
    || a.Sim.Metrics.control_tx <> b.Sim.Metrics.control_tx)

let test_srp_zero_seqno_static () =
  let r = Sim.Runner.run (quick_config C.Srp) in
  Alcotest.(check (float 0.0)) "SRP seqno identically zero" 0.0
    r.Sim.Metrics.avg_seqno;
  Alcotest.(check bool) "denominator far below the bound" true
    (r.Sim.Metrics.max_denominator < 1_000_000)

let test_srp_farey_splits_variant () =
  let mobile =
    { (quick_config C.Srp) with C.pause = 0.0; duration = 40.0; flows = 5 }
  in
  let mediant = Sim.Runner.run mobile in
  let farey = Sim.Runner.run (C.with_labels mobile Slr.Label_set.Farey) in
  Alcotest.(check bool) "farey variant still delivers" true
    (farey.Sim.Metrics.delivery_ratio >= 0.7);
  Alcotest.(check bool)
    (Printf.sprintf "farey labels no wider (%d vs %d)"
       farey.Sim.Metrics.max_denominator mediant.Sim.Metrics.max_denominator)
    true
    (farey.Sim.Metrics.max_denominator <= mediant.Sim.Metrics.max_denominator)

let test_srp_farey_loop_free () =
  let config =
    C.with_labels
      { (quick_config C.Srp) with C.pause = 0.0; duration = 30.0; flows = 5 }
      Slr.Label_set.Farey
  in
  match Sim.Loopcheck.run config ~interval:0.5 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_srp_loop_free_static () =
  match Sim.Loopcheck.run (quick_config C.Srp) ~interval:1.0 with
  | Ok (_, sweeps, edges) ->
      Alcotest.(check bool) "swept" true (sweeps >= 30);
      Alcotest.(check bool) "edges inspected" true (edges > 0)
  | Error e -> Alcotest.fail e

let test_srp_loop_free_mobile () =
  let config =
    { (quick_config C.Srp) with C.pause = 0.0; duration = 60.0; flows = 5 }
  in
  match Sim.Loopcheck.run config ~interval:0.5 with
  | Ok (_, sweeps, _) -> Alcotest.(check bool) "swept" true (sweeps >= 100)
  | Error e -> Alcotest.fail e

let test_srp_loop_free_mobile_seeds () =
  List.iter
    (fun seed ->
      let config =
        {
          (quick_config C.Srp) with
          C.pause = 0.0;
          duration = 30.0;
          flows = 6;
          seed;
        }
      in
      match Sim.Loopcheck.run config ~interval:0.5 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "seed %d: %s" seed e)
    [ 11; 12; 13 ]

(* ------------------------------------------------------------------ *)
(* Campaign + report *)

let test_campaign_and_report () =
  let base =
    {
      (quick_config C.Srp) with
      C.duration = 20.0;
      nodes = 25;
      flows = 3;
    }
  in
  let campaign =
    Sim.Experiment.run ~jobs:1 ~pause_scale:1.0 ~base
      ~protocols:[ C.Srp; C.Aodv ]
      ~pauses:[ 0.0; 900.0 ] ~trials:2
      ~progress:(fun _ -> ()) ()
  in
  let cell = Sim.Experiment.cell campaign C.Srp 0.0 in
  Alcotest.(check int) "two trials per cell" 2
    (Stats.Summary.count cell.Sim.Experiment.delivery);
  let delivery, load, latency = Sim.Experiment.overall campaign C.Srp in
  Alcotest.(check int) "overall pools both pauses" 4
    (Stats.Summary.count delivery);
  Alcotest.(check bool) "load non-negative" true (Stats.Summary.mean load >= 0.0);
  Alcotest.(check bool) "latency non-negative" true
    (Stats.Summary.mean latency >= 0.0);
  (* the report renders every artifact without raising *)
  let rendered = Format.asprintf "%a" Sim.Report.all campaign in
  let contains needle =
    let nl = String.length needle and hl = String.length rendered in
    let rec scan i = i + nl <= hl && (String.sub rendered i nl = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains needle))
    [ "Table I"; "Fig. 3"; "Fig. 4"; "Fig. 5"; "Fig. 6"; "Fig. 7"; "SRP"; "AODV" ]

(* ------------------------------------------------------------------ *)
(* Worker pool + parallel equivalence *)

let test_pool_map_order () =
  let items = Array.init 37 Fun.id in
  let f x = (x * x) + 1 in
  let sequential = Sim.Pool.map ~jobs:1 f items in
  let parallel = Sim.Pool.map ~jobs:4 f items in
  Alcotest.(check (array int)) "jobs=1 matches Array.map" (Array.map f items)
    sequential;
  Alcotest.(check (array int)) "jobs=4 preserves order" sequential parallel;
  Alcotest.(check (array int)) "empty input" [||] (Sim.Pool.map ~jobs:4 f [||]);
  Alcotest.(check (array int)) "jobs beyond length" (Array.map f items)
    (Sim.Pool.map ~jobs:64 f items)

let test_pool_propagates_exception () =
  let boom x = if x = 5 then failwith "boom" else x in
  match Sim.Pool.map ~jobs:4 boom (Array.init 20 Fun.id) with
  | _ -> Alcotest.fail "expected the worker's exception to re-raise"
  | exception Sim.Pool.Cell_error { cell; exn = Failure msg } ->
      Alcotest.(check string) "failing cell identified" "#5" cell;
      Alcotest.(check string) "original exception carried" "boom" msg
  | exception e ->
      Alcotest.failf "expected Cell_error, got %s" (Printexc.to_string e)

(* The tentpole gate: a same-seed campaign renders byte-identical reports
   and JSON whether it ran on one domain or four. *)
let test_campaign_parallel_equivalence () =
  let base =
    { (quick_config C.Srp) with C.duration = 15.0; nodes = 20; flows = 3 }
  in
  let campaign jobs =
    Sim.Experiment.run ~jobs ~pause_scale:1.0 ~base
      ~protocols:[ C.Srp; C.Aodv ]
      ~pauses:[ 0.0; 900.0 ] ~trials:2
      ~progress:(fun _ -> ()) ()
  in
  let seq = campaign 1 in
  let par = campaign 4 in
  Alcotest.(check int) "same engine event total"
    seq.Sim.Experiment.engine_events par.Sim.Experiment.engine_events;
  Alcotest.(check string) "report bytes identical"
    (Format.asprintf "%a" Sim.Report.all seq)
    (Format.asprintf "%a" Sim.Report.all par);
  Alcotest.(check string) "campaign JSON bytes identical"
    (Trace.Json.to_string (Sim.Report.campaign_json seq))
    (Trace.Json.to_string (Sim.Report.campaign_json par));
  (* Profiling is wall-clock side-state: even with spans enabled, the
     campaign envelope itself must not change by a byte (the profile is
     appended by the CLI layer, never by campaign_json). *)
  let profiled =
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Obs.reset ())
      (fun () ->
        Obs.enable ();
        campaign 4)
  in
  Alcotest.(check string) "profiled campaign JSON bytes identical"
    (Trace.Json.to_string (Sim.Report.campaign_json seq))
    (Trace.Json.to_string (Sim.Report.campaign_json profiled))

(* ------------------------------------------------------------------ *)
(* Supervisor: crash isolation, retry/backoff, timeout, fail-fast *)

let quick_policy =
  { Sim.Supervisor.default with Sim.Supervisor.backoff = 0.01 }

let sup_name x = Printf.sprintf "item-%d" x

let test_supervisor_retry_then_succeed () =
  let attempts_seen = Array.make 4 0 in
  let run ~attempt ~deadline:_ x =
    attempts_seen.(x) <- attempt;
    if x = 2 && attempt = 1 then failwith "flaky" else x * 10
  in
  let outcomes =
    Sim.Supervisor.map ~jobs:1 ~policy:quick_policy ~name:sup_name ~run
      (Array.init 4 Fun.id)
  in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Ok v -> Alcotest.(check int) (sup_name i ^ " result") (i * 10) v
      | Error _ -> Alcotest.failf "%s should have succeeded" (sup_name i))
    outcomes;
  Alcotest.(check int) "flaky cell retried once" 2 attempts_seen.(2);
  Alcotest.(check int) "healthy cell ran once" 1 attempts_seen.(1)

let test_supervisor_quarantines_persistent_crash () =
  let run ~attempt:_ ~deadline:_ x =
    if x = 1 then failwith "always broken" else x
  in
  let outcomes =
    Sim.Supervisor.map ~jobs:2 ~policy:quick_policy ~name:sup_name ~run
      (Array.init 3 Fun.id)
  in
  (match outcomes.(1) with
  | Error f ->
      Alcotest.(check int) "initial attempt + 1 retry" 2 f.Sim.Supervisor.attempts;
      Alcotest.(check bool) "not a timeout" false f.Sim.Supervisor.timed_out;
      Alcotest.(check bool) "error captured" true
        (f.Sim.Supervisor.error <> "")
  | Ok _ -> Alcotest.fail "persistently crashing cell must be quarantined");
  (match outcomes.(0) with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "sibling cells must be unaffected");
  match outcomes.(2) with
  | Ok 2 -> ()
  | _ -> Alcotest.fail "sibling cells must be unaffected"

let test_supervisor_times_out_hung_cell () =
  let policy =
    { quick_policy with Sim.Supervisor.cell_timeout = 0.2; retries = 0 }
  in
  let run ~attempt:_ ~deadline x =
    if x = 1 then
      (* a wedged event loop: only the cooperative deadline can stop it *)
      while true do
        Sim.Supervisor.check_deadline deadline;
        Unix.sleepf 0.002
      done;
    x
  in
  let outcomes =
    Sim.Supervisor.map ~jobs:1 ~policy ~name:sup_name ~run (Array.init 2 Fun.id)
  in
  (match outcomes.(1) with
  | Error f ->
      Alcotest.(check bool) "flagged as timeout" true f.Sim.Supervisor.timed_out;
      Alcotest.(check int) "no retries configured" 1 f.Sim.Supervisor.attempts
  | Ok _ -> Alcotest.fail "hung cell must time out");
  match outcomes.(0) with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "healthy cell unaffected by the sibling timeout"

let test_supervisor_fail_fast_reraises () =
  let run ~attempt:_ ~deadline:_ x =
    if x = 3 then failwith "boom" else x
  in
  match
    Sim.Supervisor.map ~jobs:1 ~policy:Sim.Supervisor.fail_fast ~name:sup_name
      ~run (Array.init 5 Fun.id)
  with
  | _ -> Alcotest.fail "fail-fast policy must re-raise"
  | exception Sim.Pool.Cell_error { cell; exn = Failure msg } ->
      Alcotest.(check string) "cell named" "item-3" cell;
      Alcotest.(check string) "original exception" "boom" msg
  | exception e ->
      Alcotest.failf "expected Cell_error, got %s" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Supervised campaigns: sabotage, quarantine reporting, resume *)

let sabotage_spec s =
  match Sim.Sabotage.of_string s with
  | Ok t -> t
  | Error m -> Alcotest.failf "bad sabotage spec in test: %s" m

let small_campaign_base () =
  { (quick_config C.Srp) with C.duration = 15.0; nodes = 20; flows = 3 }

let run_small_campaign ?policy ?checkpoint ?sabotage ~jobs () =
  Sim.Experiment.run ?policy ?checkpoint ?sabotage ~jobs ~pause_scale:1.0
    ~base:(small_campaign_base ())
    ~protocols:[ C.Srp; C.Aodv ]
    ~pauses:[ 0.0; 900.0 ] ~trials:2
    ~progress:(fun _ -> ())
    ()

let test_campaign_survives_sabotaged_cell () =
  let sabotage = sabotage_spec "crash:AODV:0:1" in
  let policy = { quick_policy with Sim.Supervisor.retries = 0 } in
  let campaign = run_small_campaign ~policy ~sabotage ~jobs:2 () in
  (match campaign.Sim.Experiment.failures with
  | [ (key, f) ] ->
      Alcotest.(check string) "protocol" "AODV"
        (C.protocol_name key.Sim.Experiment.protocol);
      Alcotest.(check (float 0.0)) "pause" 0.0 key.Sim.Experiment.pause;
      Alcotest.(check int) "trial" 1 key.Sim.Experiment.trial;
      Alcotest.(check bool) "crash, not timeout" false
        f.Sim.Supervisor.timed_out
  | fs -> Alcotest.failf "expected exactly one failure, got %d" (List.length fs));
  (* the quarantined cell contributes nothing to the aggregates *)
  let aodv0 = Sim.Experiment.cell campaign C.Aodv 0.0 in
  Alcotest.(check int) "one AODV pause-0 trial survives" 1
    (Stats.Summary.count aodv0.Sim.Experiment.delivery);
  let rendered = Format.asprintf "%a" Sim.Report.all campaign in
  let contains needle =
    let nl = String.length needle and hl = String.length rendered in
    let rec scan i = i + nl <= hl && (String.sub rendered i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "report announces the quarantine" true
    (contains "quarantined");
  match
    Trace.Json.member "failures" (Sim.Report.campaign_json campaign)
  with
  | Some (Trace.Json.List [ _ ]) -> ()
  | _ -> Alcotest.fail "campaign JSON must list the quarantined cell"

let test_campaign_sabotage_heals_on_retry () =
  (* the injected crash hits only attempt 1; one retry heals it, and the
     healed campaign is byte-identical to an unsabotaged one *)
  let sabotage = sabotage_spec "crash:SRP:0:0@1" in
  let clean = run_small_campaign ~jobs:1 () in
  let healed =
    run_small_campaign ~policy:quick_policy ~sabotage ~jobs:1 ()
  in
  Alcotest.(check bool) "no failures recorded" true
    (healed.Sim.Experiment.failures = []);
  Alcotest.(check string) "report bytes identical to a clean run"
    (Format.asprintf "%a" Sim.Report.all clean)
    (Format.asprintf "%a" Sim.Report.all healed)

let test_campaign_fail_fast_aborts () =
  let sabotage = sabotage_spec "crash:AODV:0:1" in
  match run_small_campaign ~sabotage ~jobs:2 () with
  | _ -> Alcotest.fail "default (fail-fast) policy must abort the campaign"
  | exception Sim.Pool.Cell_error _ -> ()

let campaign_fingerprint c =
  Format.asprintf "%a" Sim.Report.all c
  ^ Trace.Json.to_string (Sim.Report.campaign_json c)

let test_campaign_resume_equivalence () =
  let path = Filename.temp_file "manet_ckpt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let straight = run_small_campaign ~jobs:1 () in
      let journaled = run_small_campaign ~checkpoint:path ~jobs:2 () in
      Alcotest.(check string) "journaled run matches straight-through"
        (campaign_fingerprint straight)
        (campaign_fingerprint journaled);
      (* truncate the journal to header + 3 cells + a torn fragment, as a
         kill mid-append would leave it *)
      let lines =
        In_channel.with_open_text path In_channel.input_lines
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "journal holds header + 8 cells" 9
        (List.length lines);
      let keep = List.filteri (fun i _ -> i < 4) lines in
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) keep;
          Out_channel.output_string oc "{\"cell\":{\"proto");
      let resumed = run_small_campaign ~checkpoint:path ~jobs:2 () in
      Alcotest.(check string) "resumed run byte-identical"
        (campaign_fingerprint straight)
        (campaign_fingerprint resumed);
      (* a fully journaled campaign restores without running anything *)
      let restored = run_small_campaign ~checkpoint:path ~jobs:1 () in
      Alcotest.(check string) "full restore byte-identical"
        (campaign_fingerprint straight)
        (campaign_fingerprint restored))

let test_campaign_resume_rejects_foreign_journal () =
  let path = Filename.temp_file "manet_ckpt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore (run_small_campaign ~checkpoint:path ~jobs:1 ());
      (* same journal, different campaign shape: must refuse, not graft *)
      match
        Sim.Experiment.run ~checkpoint:path ~jobs:1 ~pause_scale:1.0
          ~base:(small_campaign_base ())
          ~protocols:[ C.Srp ] ~pauses:[ 0.0 ] ~trials:1
          ~progress:(fun _ -> ())
          ()
      with
      | _ -> Alcotest.fail "foreign journal must raise Resume_error"
      | exception Sim.Experiment.Resume_error _ -> ())

let test_config_presets () =
  Alcotest.(check int) "paper nodes" 100 C.paper.C.nodes;
  Alcotest.(check int) "paper flows" 30 C.paper.C.flows;
  Alcotest.(check (float 0.0)) "paper duration" 900.0 C.paper.C.duration;
  Alcotest.(check int) "reproduction scales flows" 12 C.reproduction.C.flows;
  Alcotest.(check int) "eight pause times" 8 (List.length C.paper_pause_times);
  Alcotest.(check (list string)) "all protocols named"
    [ "SRP"; "LDR"; "AODV"; "DSR"; "OLSR" ]
    (List.map C.protocol_name C.all_protocols)

let () =
  Alcotest.run "sim"
    [
      ( "traffic",
        [
          Alcotest.test_case "generation" `Quick test_cbr_generation;
          Alcotest.test_case "schedule" `Quick test_cbr_schedule_counts;
          Alcotest.test_case "deterministic" `Quick test_cbr_deterministic;
        ] );
      ( "metrics",
        [ Alcotest.test_case "accounting" `Quick test_metrics_accounting ] );
      ( "end-to-end",
        [
          Alcotest.test_case "SRP delivers" `Slow (test_protocol_delivers C.Srp);
          Alcotest.test_case "LDR delivers" `Slow (test_protocol_delivers C.Ldr);
          Alcotest.test_case "AODV delivers" `Slow (test_protocol_delivers C.Aodv);
          Alcotest.test_case "DSR delivers" `Slow (test_protocol_delivers C.Dsr);
          Alcotest.test_case "OLSR delivers" `Slow (test_protocol_delivers C.Olsr);
          Alcotest.test_case "deterministic runs" `Slow test_run_deterministic;
          Alcotest.test_case "seed sensitivity" `Slow test_seed_changes_outcome;
          Alcotest.test_case "SRP zero seqno" `Slow test_srp_zero_seqno_static;
          Alcotest.test_case "Farey-split variant (§VI)" `Slow
            test_srp_farey_splits_variant;
        ] );
      ( "loop-freedom",
        [
          Alcotest.test_case "static network" `Slow test_srp_loop_free_static;
          Alcotest.test_case "constant mobility" `Slow test_srp_loop_free_mobile;
          Alcotest.test_case "mobility, extra seeds" `Slow
            test_srp_loop_free_mobile_seeds;
          Alcotest.test_case "Farey-split variant stays loop-free" `Slow
            test_srp_farey_loop_free;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "experiment + report" `Slow test_campaign_and_report;
          Alcotest.test_case "config presets" `Quick test_config_presets;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "pool preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "pool re-raises worker errors" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "-j 4 campaign byte-identical to -j 1" `Slow
            test_campaign_parallel_equivalence;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "crash retries then succeeds" `Quick
            test_supervisor_retry_then_succeed;
          Alcotest.test_case "persistent crash quarantined" `Quick
            test_supervisor_quarantines_persistent_crash;
          Alcotest.test_case "hung cell times out" `Quick
            test_supervisor_times_out_hung_cell;
          Alcotest.test_case "fail-fast re-raises" `Quick
            test_supervisor_fail_fast_reraises;
          Alcotest.test_case "sabotaged campaign completes" `Slow
            test_campaign_survives_sabotaged_cell;
          Alcotest.test_case "sabotage heals on retry" `Slow
            test_campaign_sabotage_heals_on_retry;
          Alcotest.test_case "fail-fast campaign aborts" `Slow
            test_campaign_fail_fast_aborts;
          Alcotest.test_case "resume byte-identical" `Slow
            test_campaign_resume_equivalence;
          Alcotest.test_case "foreign journal rejected" `Slow
            test_campaign_resume_rejects_foreign_journal;
        ] );
    ]
