(* Telemetry subsystem tests: the hand-rolled JSON codec, the trace sinks,
   and the two determinism guarantees the PR promises — same-seed traced
   runs emit byte-identical JSONL, and tracing never perturbs the
   simulation's results. *)

module J = Trace.Json
module C = Sim.Config

let quick_config protocol =
  {
    C.small with
    protocol;
    nodes = 25;
    terrain = Wireless.Terrain.make ~width:900.0 ~height:300.0;
    duration = 35.0;
    flows = 4;
    pause = 0.0;
    seed = 7;
  }

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let test_json_encode () =
  let j =
    J.Obj
      [
        ("a", J.Int 1);
        ("b", J.Float 2.5);
        ("c", J.String "x\"y\n");
        ("d", J.List [ J.Bool true; J.Null ]);
        ("e", J.Float 3.0);
      ]
  in
  Alcotest.(check string)
    "deterministic encoding"
    "{\"a\":1,\"b\":2.5,\"c\":\"x\\\"y\\n\",\"d\":[true,null],\"e\":3.0}"
    (J.to_string j)

let test_json_float_format () =
  Alcotest.(check string) "integral floats get .0" "5.0" (J.float_str 5.0);
  Alcotest.(check string) "negative zero" "-0.0" (J.float_str (-0.0));
  Alcotest.(check string) "nan is null" "null" (J.float_str Float.nan);
  Alcotest.(check string) "inf is null" "null" (J.float_str Float.infinity);
  Alcotest.(check string) "short decimal" "0.25" (J.float_str 0.25)

let test_json_roundtrip () =
  let j =
    J.Obj
      [
        ("nested", J.Obj [ ("k", J.List [ J.Int 1; J.Int 2 ]) ]);
        ("s", J.String "caf\xc3\xa9 \\ / tab\t");
        ("f", J.Float 0.001234);
        ("n", J.Int (-42));
      ]
  in
  match J.parse (J.to_string j) with
  | Ok j' ->
      Alcotest.(check string) "parse inverts encode" (J.to_string j)
        (J.to_string j')
  | Error msg -> Alcotest.fail msg

let test_json_parse_errors () =
  let bad s =
    match J.parse s with Ok _ -> Alcotest.fail ("accepted " ^ s) | Error _ -> ()
  in
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "tru";
  bad "\"unterminated";
  bad "1 2"

let test_json_path () =
  match J.parse "{\"a\":{\"b\":{\"c\":7}},\"x\":1}" with
  | Error msg -> Alcotest.fail msg
  | Ok j -> (
      (match J.path "a.b.c" j with
      | Some (J.Int 7) -> ()
      | _ -> Alcotest.fail "a.b.c should be 7");
      match J.path "a.z" j with
      | None -> ()
      | Some _ -> Alcotest.fail "a.z should be absent")

(* ------------------------------------------------------------------ *)
(* Sinks *)

let test_ring_keeps_last () =
  let clock = ref 0.0 in
  let t = Trace.ring ~clock:(fun () -> !clock) ~capacity:3 in
  for i = 1 to 5 do
    clock := float_of_int i;
    Trace.seqno_reset t ~node:i ~seqno:i
  done;
  let records = Trace.ring_contents t in
  Alcotest.(check int) "capacity bounds the ring" 3 (List.length records);
  Alcotest.(check (list int))
    "oldest first, last capacity kept" [ 3; 4; 5 ]
    (List.map (fun r -> r.Trace.node) records)

let test_null_is_disabled () =
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  (* emitting into the null sink is a no-op, not an error *)
  Trace.mac_collision Trace.null ~node:0;
  Alcotest.(check (list reject)) "no contents" []
    (Trace.ring_contents Trace.null)

(* ------------------------------------------------------------------ *)
(* Checkpoint journal *)

let with_temp_journal f =
  let path = Filename.temp_file "journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let append_raw path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let test_journal_roundtrip () =
  with_temp_journal (fun path ->
      let r1 = J.Obj [ ("i", J.Int 1); ("f", J.Float 0.5) ] in
      let r2 = J.Obj [ ("i", J.Int 2) ] in
      (match Trace.Journal.resume path with
      | Ok ([], j) ->
          Trace.Journal.append j r1;
          Trace.Journal.append j r2;
          Trace.Journal.close j
      | Ok _ -> Alcotest.fail "fresh journal should be empty"
      | Error e -> Alcotest.fail e);
      match Trace.Journal.load path with
      | Ok records ->
          Alcotest.(check (list string))
            "records round-trip in order"
            [ J.to_string r1; J.to_string r2 ]
            (List.map J.to_string records)
      | Error e -> Alcotest.fail e)

let test_journal_drops_torn_tail () =
  with_temp_journal (fun path ->
      let r1 = J.Obj [ ("i", J.Int 1) ] in
      (match Trace.Journal.resume path with
      | Ok ([], j) ->
          Trace.Journal.append j r1;
          Trace.Journal.close j
      | _ -> Alcotest.fail "fresh journal should be empty");
      (* a kill mid-append leaves an unterminated fragment *)
      append_raw path "{\"i\":2,\"trunca";
      (match Trace.Journal.resume path with
      | Ok (records, j) ->
          Trace.Journal.close j;
          Alcotest.(check (list string))
            "valid prefix survives, torn tail dropped"
            [ J.to_string r1 ]
            (List.map J.to_string records)
      | Error e -> Alcotest.fail e);
      (* resume rewrote the file: the fragment is gone for good *)
      match Trace.Journal.load path with
      | Ok records ->
          Alcotest.(check int) "file rewritten clean" 1 (List.length records)
      | Error e -> Alcotest.fail e)

let test_journal_rejects_corrupt_middle () =
  with_temp_journal (fun path ->
      append_raw path "{\"i\":1}\nnot json at all\n{\"i\":2}\n";
      (match Trace.Journal.resume path with
      | Ok _ -> Alcotest.fail "mid-file corruption must be an error"
      | Error _ -> ());
      match Trace.Journal.load path with
      | Ok _ -> Alcotest.fail "load must reject mid-file corruption too"
      | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Determinism *)

let jsonl_of_run config =
  let path = Filename.temp_file "trace" ".jsonl" in
  let oc = open_out path in
  let trace = Trace.jsonl ~clock:(fun () -> 0.0) oc in
  let result = Sim.Runner.run ~trace ~sample_every:5.0 config in
  close_out oc;
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (result, contents)

let test_traced_runs_byte_identical () =
  let config = quick_config C.Srp in
  let r1, bytes1 = jsonl_of_run config in
  let r2, bytes2 = jsonl_of_run config in
  Alcotest.(check bool) "trace is non-trivial" true
    (String.length bytes1 > 1000);
  Alcotest.(check string) "same seed, same bytes" bytes1 bytes2;
  Alcotest.(check bool) "same results" true (r1 = r2)

let test_tracing_does_not_perturb () =
  let config = quick_config C.Srp in
  let untraced = Sim.Runner.run config in
  (* ring sink, no sampler: the event schedule is untouched, so every
     field of the result — engine_events included — must match exactly *)
  let clock = ref 0.0 in
  let trace = Trace.ring ~clock:(fun () -> !clock) ~capacity:4096 in
  let traced = Sim.Runner.run ~trace config in
  Alcotest.(check bool) "tracing is invisible" true (untraced = traced);
  (* with the periodic sampler armed, only the sampler's own engine ticks
     may differ; the paper metrics must not move *)
  let oc = open_out Filename.null in
  let sampled =
    Sim.Runner.run ~trace:(Trace.jsonl ~clock:(fun () -> 0.0) oc)
      ~sample_every:5.0 config
  in
  close_out oc;
  Alcotest.(check bool) "sampler only adds its own ticks" true
    (untraced = { sampled with Sim.Metrics.engine_events = untraced.Sim.Metrics.engine_events });
  Alcotest.(check bool) "sampler ticks were executed" true
    (sampled.Sim.Metrics.engine_events > untraced.Sim.Metrics.engine_events)

let test_trace_has_lifecycle_events () =
  let config = quick_config C.Srp in
  let _, bytes = jsonl_of_run config in
  let lines = String.split_on_char '\n' (String.trim bytes) in
  List.iter
    (fun line ->
      match J.parse line with
      | Ok json ->
          List.iter
            (fun k ->
              if J.member k json = None then
                Alcotest.fail (Printf.sprintf "record lacks %S: %s" k line))
            [ "t"; "node"; "ev" ]
      | Error msg -> Alcotest.fail (line ^ ": " ^ msg))
    lines;
  let has ev =
    List.exists
      (fun line ->
        match J.parse line with
        | Ok json -> J.member "ev" json = Some (J.String ev)
        | Error _ -> false)
      lines
  in
  List.iter
    (fun ev ->
      Alcotest.(check bool) (ev ^ " present") true (has ev))
    [
      "pkt-originate"; "pkt-enqueue"; "pkt-tx"; "pkt-rx"; "pkt-forward";
      "pkt-deliver"; "ctl-tx"; "ctl-rx"; "route-add"; "mac-backoff"; "gauge";
    ]

(* ------------------------------------------------------------------ *)
(* JSON export of results *)

let test_result_json_fields () =
  let config = quick_config C.Aodv in
  let result = Sim.Runner.run config in
  let envelope = Sim.Report.run_json config result in
  (match J.path "schema" envelope with
  | Some (J.String "manet-sim/run-v1") -> ()
  | _ -> Alcotest.fail "schema marker missing");
  List.iter
    (fun p ->
      if J.path p envelope = None then
        Alcotest.fail (Printf.sprintf "missing %s" p))
    [
      "config.protocol"; "config.seed"; "config.nodes";
      "result.sent"; "result.delivered"; "result.delivery_ratio";
      "result.network_load"; "result.latency"; "result.engine_events";
    ];
  (* the export round-trips through the parser *)
  match J.parse (J.to_string envelope) with
  | Ok j ->
      Alcotest.(check string) "round trip" (J.to_string envelope)
        (J.to_string j)
  | Error msg -> Alcotest.fail msg

let () =
  Alcotest.run "trace"
    [
      ( "json",
        [
          Alcotest.test_case "encode" `Quick test_json_encode;
          Alcotest.test_case "float format" `Quick test_json_float_format;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "path" `Quick test_json_path;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "ring keeps last" `Quick test_ring_keeps_last;
          Alcotest.test_case "null disabled" `Quick test_null_is_disabled;
        ] );
      ( "journal",
        [
          Alcotest.test_case "append/load roundtrip" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "torn tail dropped" `Quick
            test_journal_drops_torn_tail;
          Alcotest.test_case "corrupt middle rejected" `Quick
            test_journal_rejects_corrupt_middle;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same-seed JSONL bytes" `Slow
            test_traced_runs_byte_identical;
          Alcotest.test_case "tracing does not perturb" `Slow
            test_tracing_does_not_perturb;
          Alcotest.test_case "lifecycle events present" `Slow
            test_trace_has_lifecycle_events;
        ] );
      ( "export",
        [
          Alcotest.test_case "run json fields" `Slow test_result_json_fields;
        ] );
    ]
