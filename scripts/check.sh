#!/usr/bin/env sh
# CI gate: full build, the whole test suite, then a faults-enabled smoke
# run — a 50-node simulation with link flaps, crashes and loss bursts must
# complete under the online loop-freedom monitor with zero violations.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

dune exec bin/manet_sim.exe -- check --nodes 50 --duration 60 --faults
echo "check.sh: all green"
