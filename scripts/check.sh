#!/usr/bin/env sh
# CI gate: full build, the whole test suite, then a faults-enabled smoke
# run — a 50-node simulation with link flaps, crashes and loss bursts must
# complete under the online loop-freedom monitor with zero violations.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

dune exec bin/manet_sim.exe -- check --nodes 50 --duration 60 --faults

# telemetry smoke: a traced run must emit parseable JSONL and a --json
# result file with the documented keys, and same-seed traces must agree
# byte for byte
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
dune exec bin/manet_sim.exe -- run --nodes 30 --duration 30 \
  --trace-file "$tmp/a.jsonl" --sample-every 5 --json "$tmp/run.json" \
  > "$tmp/out_a.txt" 2> /dev/null
dune exec bin/manet_sim.exe -- run --nodes 30 --duration 30 \
  --trace-file "$tmp/b.jsonl" --sample-every 5 \
  > "$tmp/out_b.txt" 2> /dev/null
cmp "$tmp/a.jsonl" "$tmp/b.jsonl"
cmp "$tmp/out_a.txt" "$tmp/out_b.txt"
dune exec bin/manet_sim.exe -- trace "$tmp/a.jsonl" --validate
dune exec bin/manet_sim.exe -- trace "$tmp/run.json" --validate \
  --require schema --require config.protocol --require config.seed \
  --require result.delivery_ratio --require result.network_load \
  --require result.latency --require result.engine_events

# fuzz smoke: the property-based suite (label arithmetic, Algorithm 1,
# abstract SLR executions, SRP-vs-reference-model, packet conservation,
# spatial-grid/naive channel equivalence) on a fixed seed must pass with
# zero violations
dune exec bin/manet_sim.exe -- fuzz --max-cases 200 --seed 7

# parallel-determinism smoke: the same seeded campaign on 2 worker domains
# must produce byte-identical stdout and JSON to the sequential run
dune exec bin/manet_sim.exe -- campaign --nodes 20 --duration 10 \
  --trials 1 --flows 3 --quiet -j 1 --json "$tmp/campaign_j1.json" \
  > "$tmp/campaign_j1.txt" 2> /dev/null
dune exec bin/manet_sim.exe -- campaign --nodes 20 --duration 10 \
  --trials 1 --flows 3 --quiet -j 2 --json "$tmp/campaign_j2.json" \
  > "$tmp/campaign_j2.txt" 2> /dev/null
cmp "$tmp/campaign_j1.json" "$tmp/campaign_j2.json"
cmp "$tmp/campaign_j1.txt" "$tmp/campaign_j2.txt"

# label-set smoke: the default (mediant) campaign must stay byte-identical
# to the committed pre-refactor golden at -j 1 and -j 4 — the LABEL
# abstraction is free on the paper's instance — and every other dense-set
# instance must complete the same campaign and tag its JSON
cmp "$tmp/campaign_j1.json" scripts/golden/campaign_default.json
cmp "$tmp/campaign_j1.txt" scripts/golden/campaign_default.txt
dune exec bin/manet_sim.exe -- campaign --nodes 20 --duration 10 \
  --trials 1 --flows 3 --quiet -j 4 --json "$tmp/campaign_j4.json" \
  > "$tmp/campaign_j4.txt" 2> /dev/null
cmp "$tmp/campaign_j4.json" scripts/golden/campaign_default.json
cmp "$tmp/campaign_j4.txt" scripts/golden/campaign_default.txt
for set in farey bigfrac lex; do
  dune exec bin/manet_sim.exe -- campaign --nodes 20 --duration 10 \
    --trials 1 --flows 3 --quiet -j 2 --labels "$set" \
    --json "$tmp/campaign_$set.json" > /dev/null 2> /dev/null
  grep -q "\"labels\":\"$set\"" "$tmp/campaign_$set.json"
done
# ... and the fixed-seed fuzz catalogue must hold with scenarios pinned to
# a non-default instance (the identical Ordering-Criteria oracle applies)
dune exec bin/manet_sim.exe -- fuzz --max-cases 25 --seed 7 --labels bigfrac

# scenario smoke: the default scenario must reproduce the committed golden
# bytes (the registry refactor is free on the paper's workload), an unknown
# name must exit 2 with the registry listing, and every workload scenario
# must complete a small campaign plus an SRP run under the online
# loop-freedom monitor
dune exec bin/manet_sim.exe -- campaign --scenario default --nodes 20 \
  --duration 10 --trials 1 --flows 3 --quiet \
  --json "$tmp/campaign_scenario.json" > "$tmp/campaign_scenario.txt" \
  2> /dev/null
cmp "$tmp/campaign_scenario.json" scripts/golden/campaign_default.json
cmp "$tmp/campaign_scenario.txt" scripts/golden/campaign_default.txt
if dune exec bin/manet_sim.exe -- run --scenario no-such-scenario \
  > /dev/null 2> "$tmp/scenario_err.txt"; then
  echo "check.sh: unknown --scenario did not fail" >&2
  exit 1
fi
grep -q "registered scenarios:" "$tmp/scenario_err.txt"
for scenario in manhattan rpgm churn bursty convergecast flash-crowd \
  downtown hostile; do
  dune exec bin/manet_sim.exe -- campaign --scenario "$scenario" --nodes 16 \
    --duration 18 --trials 1 --flows 2 --quiet \
    --json "$tmp/campaign_scenario.json" > /dev/null 2> /dev/null
  grep -q '"protocol"' "$tmp/campaign_scenario.json"
  dune exec bin/manet_sim.exe -- check --scenario "$scenario" --nodes 20 \
    --duration 25 --flows 3 > /dev/null
done
# ... the fixed-seed fuzz catalogue must hold with simulation cells pinned
# to a non-default scenario's mobility + traffic models
dune exec bin/manet_sim.exe -- fuzz --max-cases 25 --seed 7 \
  --scenario downtown

# adversarial smoke: the van Glabbeek replay plus forged stale route reply
# must catch AODV looping while SRP stays green under its reference model
dune exec bin/manet_sim.exe -- campaign --scenario vg-forged-rrep \
  > "$tmp/adversarial.txt" 2> /dev/null
grep -q "^AODV  LOOP" "$tmp/adversarial.txt"
grep -q "^SRP   ok" "$tmp/adversarial.txt"

# throughput regression gate: rerun the committed baseline's reduced
# campaign (same flags as the BENCH_campaign.json snapshot) and fail when
# perf.events_per_sec_per_job drops below 75% of the committed number
dune exec bench/main.exe -- campaign --trials 1 --duration 20 --flows 6 \
  --quiet -j 4 --out "$tmp/bench_fresh.json" \
  --check-regression BENCH_campaign.json > "$tmp/bench_out.txt" 2> /dev/null
grep "regression gate" "$tmp/bench_out.txt"

# kill-and-resume smoke: SIGTERM a journaled campaign mid-sweep, resume it
# from the checkpoint, and demand stdout and JSON byte-identical to the
# uninterrupted reference run above (the binary is invoked directly:
# `dune exec` may not forward the signal)
SIM=_build/default/bin/manet_sim.exe
"$SIM" campaign --nodes 20 --duration 10 --trials 1 --flows 3 --quiet \
  -j 2 --resume "$tmp/ckpt.jsonl" --json "$tmp/campaign_resumed.json" \
  > "$tmp/campaign_killed.txt" 2> /dev/null &
victim=$!
sleep 3
kill -TERM "$victim" 2> /dev/null || true
wait "$victim" || true
"$SIM" campaign --nodes 20 --duration 10 --trials 1 --flows 3 --quiet \
  -j 2 --resume "$tmp/ckpt.jsonl" --json "$tmp/campaign_resumed.json" \
  > "$tmp/campaign_resumed.txt" 2> "$tmp/campaign_resumed.log"
cmp "$tmp/campaign_j1.json" "$tmp/campaign_resumed.json"
cmp "$tmp/campaign_j1.txt" "$tmp/campaign_resumed.txt"

# supervision smoke: an injected crash must quarantine one cell, annotate
# it in the report and the JSON failures list, and still exit 0 ...
"$SIM" campaign --nodes 20 --duration 10 --trials 1 --flows 3 --quiet \
  --sabotage crash:AODV:0:0 --retries 0 --json "$tmp/campaign_crash.json" \
  > "$tmp/campaign_crash.txt" 2> /dev/null
grep -q "quarantined" "$tmp/campaign_crash.txt"
"$SIM" trace "$tmp/campaign_crash.json" --validate --require failures
# ... a wedged cell must hit the --cell-timeout and quarantine the same way
"$SIM" campaign --nodes 20 --duration 10 --trials 1 --flows 3 --quiet \
  --sabotage hang:DSR:0:0 --cell-timeout 1 --retries 0 \
  > "$tmp/campaign_hang.txt" 2> /dev/null
grep -q "quarantined" "$tmp/campaign_hang.txt"
# ... and --fail-fast must restore the historical abort-on-first-error
if "$SIM" campaign --nodes 20 --duration 10 --trials 1 --flows 3 --quiet \
  --sabotage crash:AODV:0:0 --fail-fast > /dev/null 2> /dev/null; then
  echo "check.sh: --fail-fast did not abort the sabotaged campaign" >&2
  exit 1
fi

# observability smoke: --prof must append a perf_profile member with the
# expected hot-path span names, and the Prometheus export must be
# well-formed (one # TYPE per family, no duplicate sample series)
"$SIM" run --nodes 20 --duration 30 --prof --json "$tmp/run_prof.json" \
  --prof-out "$tmp/run_prof.prom" > "$tmp/run_prof.txt" 2> /dev/null
"$SIM" trace "$tmp/run_prof.json" --validate --require perf_profile
grep -q '"name":"channel.transmit.grid"' "$tmp/run_prof.json"
grep -q '"name":"event.mac.backoff"' "$tmp/run_prof.json"
grep -q '"name":"proto.srp.receive"' "$tmp/run_prof.json"
grep -q "Profile (wall-clock spans" "$tmp/run_prof.txt"
awk '/^# TYPE /{if (seen[$3]++) {print "duplicate TYPE: " $3; exit 1}}' \
  "$tmp/run_prof.prom"
awk '!/^#/ && NF { if (seen[$1]++) { print "duplicate sample: " $1; exit 1 } }' \
  "$tmp/run_prof.prom"
grep -q '^# TYPE manet_span_seconds_total counter$' "$tmp/run_prof.prom"

# ... a profiled campaign must carry the profile too (plus worker ledger),
# while the unprofiled JSON above stays the determinism reference
"$SIM" campaign --nodes 20 --duration 10 --trials 1 --flows 3 --quiet \
  -j 2 --prof --json "$tmp/campaign_prof.json" > /dev/null 2> /dev/null
"$SIM" trace "$tmp/campaign_prof.json" --validate --require perf_profile
grep -q '"workers"' "$tmp/campaign_prof.json"

# ... and bench --prof must extend the perf member with workers + gc while
# keeping the gate-readable shape
dune exec bench/main.exe -- campaign --trials 1 --duration 10 --flows 3 \
  --quiet -j 2 --prof --out "$tmp/bench_prof.json" > /dev/null 2> /dev/null
"$SIM" trace "$tmp/bench_prof.json" --validate --require perf_profile
grep -q '"workers"' "$tmp/bench_prof.json"
grep -q '"gc"' "$tmp/bench_prof.json"

# scale smoke: a kilonode world on a tiny horizon must complete under the
# default grid channel, and an unknown preset must exit 2 listing the
# registered choices
"$SIM" run --scale 1k --duration 17 > /dev/null 2> /dev/null
if "$SIM" run --scale 10k > /dev/null 2> "$tmp/scale_err.txt"; then
  echo "check.sh: unknown --scale did not fail" >&2
  exit 1
fi
grep -q "scale presets:" "$tmp/scale_err.txt"

# events/s regression gate: rerun the committed BENCH_scale.json sweep
# (100/1k/5k presets, reduced horizons) and fail when any preset's
# events_per_sec drops below 75% of its committed number
dune exec bench/main.exe -- scale --quiet --out "$tmp/bench_scale_campaign.json" \
  --scale-out "$tmp/bench_scale.json" \
  --check-scale-regression BENCH_scale.json > "$tmp/scale_out.txt" 2> /dev/null
grep "scale regression gate" "$tmp/scale_out.txt"

echo "check.sh: all green"
