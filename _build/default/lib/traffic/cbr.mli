(** CBR traffic exactly as the paper models it: a fixed number of
    simultaneous flows; each flow picks a random source and sink, sends
    fixed-size packets at a constant rate, and lasts an exponentially
    distributed time (mean 60 s), whereupon a fresh flow replaces it.

    Flows are generated off-line from a seed shared across protocols
    (the paper's "off-line generated packet generation scripts"). *)

type flow = { id : int; src : int; dst : int; start : float; stop : float }

(** [generate ~rng ~nodes ~concurrent ~from_time ~until ~mean_duration]
    builds the flow script: [concurrent] slots, each a back-to-back chain of
    flows covering [\[from_time, until)]. Sources and sinks are distinct
    uniform nodes. *)
val generate :
  rng:Des.Rng.t ->
  nodes:int ->
  concurrent:int ->
  from_time:float ->
  until:float ->
  mean_duration:float ->
  flow list

(** [schedule engine ~flows ~rate ~size ~send] schedules every packet of
    every flow: flow [f] sends at [f.start + k /. rate] while before
    [f.stop]. [send] runs at each packet time with a fresh data record
    (stamped with the current simulated time) and the payload [size]. *)
val schedule :
  Des.Engine.t ->
  flows:flow list ->
  rate:float ->
  size:int ->
  send:(src:int -> Wireless.Frame.data -> size:int -> unit) ->
  unit

(** Total packets the script will emit (for sanity checks). *)
val packet_count : flows:flow list -> rate:float -> int
