lib/traffic/cbr.mli: Des Wireless
