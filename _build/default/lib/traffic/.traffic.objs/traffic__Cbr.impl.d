lib/traffic/cbr.ml: Des Int64 List Stdlib Wireless
