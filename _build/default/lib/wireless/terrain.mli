(** Rectangular simulation terrain with the origin at the south-west corner.
    The paper uses 2200 m × 600 m. *)

type t = { width : float; height : float }

(** @raise Invalid_argument on non-positive dimensions. *)
val make : width:float -> height:float -> t

(** The paper's terrain: 2200 m × 600 m. *)
val paper : t

val contains : t -> Vec2.t -> bool

(** Uniformly random point inside the terrain. *)
val random_point : t -> Des.Rng.t -> Vec2.t

val diagonal : t -> float
