(** Radio and MAC timing parameters. Defaults follow the paper's setup:
    2 Mbps channel, ~250 m nominal range, 802.11 DSSS DCF constants. *)

type t = {
  bitrate : float;  (** bit/s *)
  range : float;  (** metres, unit-disk reception radius *)
  cs_range : float;  (** carrier-sense / interference radius (~2.2x range) *)
  slot : float;  (** s *)
  sifs : float;  (** s *)
  difs : float;  (** s *)
  cw_min : int;  (** initial contention window (slots - 1) *)
  cw_max : int;
  retry_limit : int;  (** unicast retransmissions before link-loss report *)
  queue_limit : int;  (** interface queue capacity (packets) *)
  phy_overhead : float;  (** PLCP preamble + header airtime, s *)
  mac_header : int;  (** bytes added to every frame *)
  ack_size : int;  (** bytes of an ACK frame *)
  rts_size : int;  (** bytes of an RTS frame *)
  cts_size : int;  (** bytes of a CTS frame *)
  rts_threshold : int;
      (** unicast frames larger than this use RTS/CTS; the paper-era ns-2 /
          GloMoSim comparisons ran with RTS on for data frames *)
}

(** Airtime of an RTS. *)
val rts_duration : t -> float

(** Airtime of a CTS. *)
val cts_duration : t -> float

val default : t

(** Airtime of a frame whose network-layer size is [size] bytes (adds the
    MAC header and PHY overhead). *)
val tx_duration : t -> size:int -> float

(** Airtime of an ACK. *)
val ack_duration : t -> float
