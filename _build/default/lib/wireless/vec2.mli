(** 2D points/vectors in metres. *)

type t = { x : float; y : float }

val make : x:float -> y:float -> t

val zero : t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val dist : t -> t -> float

val dist_sq : t -> t -> float

val norm : t -> float

(** [lerp a b ~frac] is the point a fraction [frac] of the way from
    [a] to [b]. *)
val lerp : t -> t -> frac:float -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
