type t = { x : float; y : float }

let make ~x ~y = { x; y }

let zero = { x = 0.0; y = 0.0 }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }

let scale k v = { x = k *. v.x; y = k *. v.y }

let dist_sq a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let dist a b = sqrt (dist_sq a b)

let norm v = sqrt ((v.x *. v.x) +. (v.y *. v.y))

let lerp a b ~frac = add a (scale frac (sub b a))

let equal a b = a.x = b.x && a.y = b.y

let pp ppf v = Format.fprintf ppf "(%.1f, %.1f)" v.x v.y
