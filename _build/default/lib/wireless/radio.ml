type t = {
  bitrate : float;
  range : float;
  cs_range : float;
  slot : float;
  sifs : float;
  difs : float;
  cw_min : int;
  cw_max : int;
  retry_limit : int;
  queue_limit : int;
  phy_overhead : float;
  mac_header : int;
  ack_size : int;
  rts_size : int;
  cts_size : int;
  rts_threshold : int;
}

(* 802.11 DSSS constants; PLCP long preamble is 192 us at 1 Mbit/s. *)
let default =
  {
    bitrate = 2e6;
    range = 250.0;
    cs_range = 550.0;
    slot = 20e-6;
    sifs = 10e-6;
    difs = 50e-6;
    cw_min = 31;
    cw_max = 1023;
    retry_limit = 7;
    queue_limit = 50;
    phy_overhead = 192e-6;
    mac_header = 28;
    ack_size = 14;
    rts_size = 20;
    cts_size = 14;
    rts_threshold = 128;
  }

let tx_duration t ~size =
  t.phy_overhead +. (float_of_int ((size + t.mac_header) * 8) /. t.bitrate)

let ack_duration t =
  t.phy_overhead +. (float_of_int (t.ack_size * 8) /. t.bitrate)

let rts_duration t =
  t.phy_overhead +. (float_of_int (t.rts_size * 8) /. t.bitrate)

let cts_duration t =
  t.phy_overhead +. (float_of_int (t.cts_size * 8) /. t.bitrate)
