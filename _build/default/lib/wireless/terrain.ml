type t = { width : float; height : float }

let make ~width ~height =
  if width <= 0.0 || height <= 0.0 then
    invalid_arg "Terrain.make: dimensions must be positive";
  { width; height }

let paper = make ~width:2200.0 ~height:600.0

let contains t p =
  p.Vec2.x >= 0.0 && p.Vec2.x <= t.width && p.Vec2.y >= 0.0
  && p.Vec2.y <= t.height

let random_point t rng =
  Vec2.make ~x:(Des.Rng.float rng t.width) ~y:(Des.Rng.float rng t.height)

let diagonal t = sqrt ((t.width *. t.width) +. (t.height *. t.height))
