lib/wireless/waypoint.mli: Des Terrain Vec2
