lib/wireless/channel.mli: Des Vec2
