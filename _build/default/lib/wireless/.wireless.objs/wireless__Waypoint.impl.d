lib/wireless/waypoint.ml: Array Des List Stdlib Terrain Vec2
