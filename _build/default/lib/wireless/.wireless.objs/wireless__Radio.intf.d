lib/wireless/radio.mli:
