lib/wireless/terrain.mli: Des Vec2
