lib/wireless/mac80211.ml: Channel Des Frame Hashtbl Queue Radio Stdlib
