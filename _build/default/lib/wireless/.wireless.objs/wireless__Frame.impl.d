lib/wireless/frame.ml: Format
