lib/wireless/mac80211.mli: Channel Des Frame Radio
