lib/wireless/channel.ml: Array Des List Stdlib Vec2
