lib/wireless/vec2.ml: Format
