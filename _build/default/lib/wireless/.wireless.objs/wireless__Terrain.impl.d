lib/wireless/terrain.ml: Des Vec2
