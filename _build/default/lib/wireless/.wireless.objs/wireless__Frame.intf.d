lib/wireless/frame.mli: Format
