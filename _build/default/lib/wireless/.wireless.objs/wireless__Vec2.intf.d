lib/wireless/vec2.mli: Format
