lib/wireless/radio.ml:
