(** Builds a complete simulated world from a {!Config.t} — mobility scripts,
    channel, one MAC and one routing agent per node, CBR traffic — runs it,
    and returns the paper's metrics.

    Mobility and traffic scripts depend only on [config.seed], never on the
    protocol, so different protocols in the same trial face identical node
    movement and packet demands (the paper's methodology). *)

(** Run one simulation to completion. *)
val run : Config.t -> Metrics.result

(** Like {!run} but also exposes the per-node agent gauges (for tests). *)
val run_detailed :
  Config.t -> Metrics.result * Protocols.Routing_intf.gauges list

(** [run_custom config ~build ~on_start] runs with caller-supplied agents
    ([build node_id ctx]) and a hook invoked with the engine before the
    simulation starts (for scheduling instrumentation such as the
    loop-freedom sweeps of {!Loopcheck}). *)
val run_custom :
  Config.t ->
  build:(int -> Protocols.Routing_intf.ctx -> Protocols.Routing_intf.agent) ->
  on_start:(Des.Engine.t -> unit) ->
  Metrics.result
