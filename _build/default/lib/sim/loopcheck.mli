(** Runtime verification of SRP's loop-freedom (Theorem 3).

    [run config ~interval] executes a simulation with white-box SRP agents
    and, every [interval] simulated seconds, asserts for every destination
    that (a) every live successor edge descends in the Ordering Criteria
    sense — [O_A ⊑ O_B] for each successor B of A — and (b) the global
    successor graph is acyclic.

    Returns [Ok (metrics, sweeps, edges)] — the run's metrics, the number
    of whole-network invariant sweeps, and the total successor edges
    inspected — or [Error description] on the first violation. *)
val run :
  Config.t -> interval:float -> (Metrics.result * int * int, string) result
