lib/sim/runner.ml: Array Config Des Int64 Metrics Printf Protocols Traffic Wireless
