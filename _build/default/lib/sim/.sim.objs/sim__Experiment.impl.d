lib/sim/experiment.ml: Config Format Hashtbl List Metrics Runner Stats Unix
