lib/sim/runner.mli: Config Des Metrics Protocols
