lib/sim/report.ml: Config Experiment Format List Slr Stats Stdlib
