lib/sim/experiment.mli: Config Hashtbl Stats
