lib/sim/loopcheck.ml: Array Config Des Format List Option Protocols Runner Slr
