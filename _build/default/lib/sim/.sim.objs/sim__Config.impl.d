lib/sim/config.ml: Protocols Wireless
