lib/sim/metrics.ml: Format Hashtbl List Option Protocols Stats Stdlib Wireless
