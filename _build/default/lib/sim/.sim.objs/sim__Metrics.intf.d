lib/sim/metrics.mli: Format Protocols Wireless
