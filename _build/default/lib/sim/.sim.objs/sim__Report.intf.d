lib/sim/report.mli: Experiment Format
