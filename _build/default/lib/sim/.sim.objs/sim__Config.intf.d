lib/sim/config.mli: Protocols Wireless
