lib/sim/loopcheck.mli: Config Metrics
