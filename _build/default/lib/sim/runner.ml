module Frame = Wireless.Frame

let build_agent (config : Config.t) ctx =
  match config.protocol with
  | Config.Srp -> Protocols.Srp.create ~config:config.srp ctx
  | Config.Ldr -> Protocols.Ldr.create ~config:config.ldr ctx
  | Config.Aodv -> Protocols.Aodv.create ~config:config.aodv ctx
  | Config.Dsr -> Protocols.Dsr.create ~config:config.dsr ctx
  | Config.Olsr -> Protocols.Olsr.create ~config:config.olsr ctx

let run_custom_detailed (config : Config.t) ~build ~on_start =
  let engine = Des.Engine.create () in
  let root = Des.Rng.create (Int64.of_int config.seed) in
  (* protocol-independent substreams: identical across protocols *)
  let mobility_rng = Des.Rng.split root "mobility" in
  let traffic_rng = Des.Rng.split root "traffic" in
  let scripts =
    Array.init config.nodes (fun i ->
        Wireless.Waypoint.generate ~terrain:config.terrain
          ~rng:(Des.Rng.split mobility_rng (string_of_int i))
          ~pause:config.pause ~speed_min:config.speed_min
          ~speed_max:config.speed_max ~duration:config.duration)
  in
  let position i time = Wireless.Waypoint.position scripts.(i) time in
  let channel =
    Wireless.Channel.create engine ~nodes:config.nodes ~position
      ~range:config.radio.Wireless.Radio.range
      ~cs_range:config.radio.Wireless.Radio.cs_range
  in
  let metrics = Metrics.create () in
  let agents : Protocols.Routing_intf.agent option array =
    Array.make config.nodes None
  in
  let agent i =
    match agents.(i) with
    | Some a -> a
    | None -> invalid_arg "Runner: agent not wired"
  in
  let macs =
    Array.init config.nodes (fun i ->
        Wireless.Mac80211.create engine config.radio channel ~id:i
          ~rng:(Des.Rng.split root (Printf.sprintf "mac-%d" i))
          {
            Wireless.Mac80211.on_receive =
              (fun ~src frame -> (agent i).Protocols.Routing_intf.receive ~src frame);
            on_unicast_success =
              (fun ~frame ~dst ->
                (agent i).Protocols.Routing_intf.unicast_ok ~frame ~dst);
            on_unicast_fail =
              (fun ~frame ~dst ->
                (agent i).Protocols.Routing_intf.unicast_failed ~frame ~dst);
          })
  in
  for i = 0 to config.nodes - 1 do
    let ctx =
      {
        Protocols.Routing_intf.id = i;
        node_count = config.nodes;
        engine;
        rng = Des.Rng.split root (Printf.sprintf "agent-%d" i);
        mac_send = (fun frame -> Wireless.Mac80211.send macs.(i) frame);
        deliver =
          (fun data ->
            Metrics.on_delivered metrics ~now:(Des.Engine.now engine) data);
        drop_data = (fun data ~reason -> Metrics.on_dropped metrics data ~reason);
      }
    in
    agents.(i) <- Some (build i ctx)
  done;
  on_start engine;
  let flows =
    Traffic.Cbr.generate ~rng:traffic_rng ~nodes:config.nodes
      ~concurrent:config.flows ~from_time:config.traffic_start
      ~until:config.duration ~mean_duration:config.flow_mean_duration
  in
  Traffic.Cbr.schedule engine ~flows ~rate:config.packet_rate
    ~size:config.packet_size ~send:(fun ~src data ~size ->
      Metrics.on_sent metrics data;
      (agent src).Protocols.Routing_intf.originate data ~size);
  Des.Engine.run engine ~until:config.duration;
  let control_tx =
    Array.fold_left
      (fun acc mac -> acc + (Wireless.Mac80211.stats mac).Wireless.Mac80211.tx_control)
      0 macs
  in
  let mac_drops =
    Array.fold_left (fun acc mac -> acc + Wireless.Mac80211.drops mac) 0 macs
  in
  let sum_stat f =
    Array.fold_left (fun acc mac -> acc + f (Wireless.Mac80211.stats mac)) 0 macs
  in
  let gauges =
    Array.to_list
      (Array.map
         (fun a ->
           match a with
           | Some agent -> agent.Protocols.Routing_intf.gauges ()
           | None -> Protocols.Routing_intf.no_gauges)
         agents)
  in
  let result =
    Metrics.finalize metrics ~control_tx
      ~data_tx:(sum_stat (fun s -> s.Wireless.Mac80211.tx_data))
      ~drop_queue_full:(sum_stat (fun s -> s.Wireless.Mac80211.drop_queue_full))
      ~drop_retry:(sum_stat (fun s -> s.Wireless.Mac80211.drop_retry))
      ~mac_drops
      ~collisions:(Wireless.Channel.collisions channel)
      ~nodes:config.nodes ~gauges
  in
  (result, gauges)

let run_detailed config =
  run_custom_detailed config
    ~build:(fun _ ctx -> build_agent config ctx)
    ~on_start:(fun _ -> ())

let run_custom config ~build ~on_start =
  fst (run_custom_detailed config ~build ~on_start)

let run config = fst (run_detailed config)
