module Ordering = Slr.Ordering

exception Violation of string

let run (config : Config.t) ~interval =
  if config.protocol <> Config.Srp then
    invalid_arg "Loopcheck.run: only SRP exposes label state";
  let nodes = config.nodes in
  let srps : Protocols.Srp.t option array = Array.make nodes None in
  let sweeps = ref 0 in
  let edges = ref 0 in
  (* one whole-network invariant sweep: every destination's successor
     graph must descend in label order and be acyclic *)
  let sweep () =
    incr sweeps;
    let srp i = Option.get srps.(i) in
    for dst = 0 to nodes - 1 do
      let successor_ids = Array.make nodes [] in
      for a = 0 to nodes - 1 do
        if a <> dst then begin
          let own = Protocols.Srp.ordering (srp a) ~dst in
          let succs = Protocols.Srp.successor_orderings (srp a) ~dst in
          successor_ids.(a) <- List.map fst succs;
          List.iter
            (fun (b, _) ->
              incr edges;
              let b_now = Protocols.Srp.ordering (srp b) ~dst in
              if not (Ordering.precedes own b_now) then
                raise
                  (Violation
                     (Format.asprintf
                        "dst %d: edge %d->%d out of order: %a not ⊑ %a" dst a
                        b Ordering.pp own Ordering.pp b_now)))
            succs
        end
      done;
      match Slr.Dag.acyclic ~successors:(fun i -> successor_ids.(i)) nodes with
      | Ok () -> ()
      | Error cycle ->
          raise
            (Violation
               (Format.asprintf "dst %d: successor cycle %a" dst
                  (Format.pp_print_list
                     ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "->")
                     Format.pp_print_int)
                  cycle))
    done
  in
  try
    let result =
      Runner.run_custom config
        ~build:(fun i ctx ->
          let t, agent = Protocols.Srp.create_full ~config:config.srp ctx in
          srps.(i) <- Some t;
          agent)
        ~on_start:(fun engine ->
          let rec tick time =
            if time < config.duration then
              ignore
                (Des.Engine.schedule_at engine ~time (fun () ->
                     sweep ();
                     tick (time +. interval)))
          in
          tick interval)
    in
    Ok (result, !sweeps, !edges)
  with Violation message -> Error message
