type 'a entry = { key : float; tie : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let initial_capacity = 64

let create () = { data = [||]; size = 0 }

let size t = t.size

let is_empty t = t.size = 0

let lt a b = a.key < b.key || (a.key = b.key && a.tie < b.tie)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let capacity = Array.length t.data in
  if t.size >= capacity then begin
    let new_capacity = max initial_capacity (2 * capacity) in
    (* the dummy cell is never read: size bounds all accesses *)
    let dummy = t.data.(0) in
    let data = Array.make new_capacity dummy in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let add t ~key ~tie value =
  let entry = { key; tie; value } in
  if Array.length t.data = 0 then t.data <- Array.make initial_capacity entry
  else grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    let e = t.data.(0) in
    Some (e.key, e.tie, e.value)

let pop t =
  if t.size = 0 then invalid_arg "Heap.pop: empty heap";
  let e = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  (e.key, e.tie, e.value)

let to_sorted_list t =
  let copy = { data = Array.copy t.data; size = t.size } in
  let rec drain acc =
    if is_empty copy then List.rev acc else drain (pop copy :: acc)
  in
  drain []
