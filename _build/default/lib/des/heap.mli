(** Array-backed binary min-heap, specialised to [(float, int)] priorities.

    Elements are ordered by [key] first and, for equal keys, by the integer
    [tie] (insertion sequence in the scheduler), which makes event ordering
    deterministic. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> key:float -> tie:int -> 'a -> unit

(** [peek t] is the minimum element, or [None] when empty. *)
val peek : 'a t -> (float * int * 'a) option

(** [pop t] removes and returns the minimum element.
    @raise Invalid_argument when empty. *)
val pop : 'a t -> float * int * 'a

(** [to_sorted_list t] drains a copy of the heap in ascending order (for
    tests; does not mutate [t]). *)
val to_sorted_list : 'a t -> (float * int * 'a) list
