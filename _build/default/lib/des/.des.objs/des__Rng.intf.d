lib/des/rng.mli:
