lib/des/heap.mli:
