lib/des/engine.mli:
