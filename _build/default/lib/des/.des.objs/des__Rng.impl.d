lib/des/rng.ml: Array Char Int64 String
