(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every simulation component draws from its own substream derived with
    {!split}, so adding draws in one component never perturbs another — the
    property the paper relies on when comparing protocols over identical
    mobility and traffic scripts. *)

type t

(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)
val create : int64 -> t

(** [split t tag] derives an independent substream labelled by [tag].
    Deterministic in [(seed of t, tag)] and independent of draws made on
    [t] so far. *)
val split : t -> string -> t

(** [copy t] duplicates the generator including its current position. *)
val copy : t -> t

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [uniform t ~lo ~hi] is uniform in [\[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** [exponential t ~mean] draws from Exp(1/mean). *)
val exponential : t -> mean:float -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [pick t arr] is a uniformly chosen element of [arr].
    @raise Invalid_argument on an empty array. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
