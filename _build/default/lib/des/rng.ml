type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(* FNV-1a over the tag, folded into the parent's seed; draws nothing from
   the parent stream so substream identity depends only on (seed, tag). *)
let split t tag =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    tag;
  create (mix64 (Int64.add t.state (mix64 !h)))

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  (* 53 random bits into [0,1) *)
  let mantissa = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float mantissa /. 9007199254740992.0 *. bound

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let exponential t ~mean =
  let u = float t 1.0 in
  (* 1 - u is in (0, 1], so log is finite *)
  -.mean *. log (1.0 -. u)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
