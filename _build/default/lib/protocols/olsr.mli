(** OLSR baseline (Clausen et al. — draft-ietf-manet-olsr-06), simplified:
    periodic HELLOs for link sensing and neighbour discovery, greedy MPR
    (multipoint relay) selection covering the two-hop neighbourhood, TC
    messages flooded through MPRs only, and proactive shortest-path route
    computation over the learned topology.

    As in the paper, OLSR does {e not} use link-layer loss detection — links
    die only by HELLO timeout — which costs delivery under mobility while
    its always-ready routes buy the lowest latency. Its schedule-driven
    control traffic is mobility-independent (flat line in Fig. 5). *)

type config = {
  hello_interval : float;
  tc_interval : float;
  neighbor_hold : float;  (** neighbour validity (3 × hello) *)
  topology_hold : float;  (** topology-entry validity (3 × tc) *)
  jitter : float;  (** max random shortening of each period *)
  data_ttl : int;
  hello_base_size : int;
  tc_base_size : int;
  per_entry_bytes : int;
  ip_overhead : int;
}

val default_config : config

type hello = {
  h_origin : int;
  h_links : (int * bool * bool) list;
      (** (neighbour, symmetric?, chosen-as-MPR?) *)
}

type tc = { t_origin : int; t_ansn : int; t_advertised : int list }

type Wireless.Frame.payload += Hello of hello | Tc of tc

val create : ?config:config -> Routing_intf.ctx -> Routing_intf.agent

(** {2 White-box inspection for tests} *)

type t

val create_full :
  ?config:config -> Routing_intf.ctx -> t * Routing_intf.agent

(** Current symmetric neighbours. *)
val sym_neighbors : t -> int list

(** Current MPR set. *)
val mprs : t -> int list

val next_hop : t -> dst:int -> int option
