type t = {
  capacity : int;
  drop : Wireless.Frame.data -> size:int -> reason:string -> unit;
  queues : (int, (Wireless.Frame.data * int) Queue.t) Hashtbl.t;
}

let create ~capacity ~drop = { capacity; drop; queues = Hashtbl.create 16 }

let queue_for t dst =
  match Hashtbl.find_opt t.queues dst with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues dst q;
      q

let push t ~dst data ~size =
  let q = queue_for t dst in
  if Queue.length q >= t.capacity then begin
    let old_data, old_size = Queue.pop q in
    t.drop old_data ~size:old_size ~reason:"pending-buffer overflow"
  end;
  Queue.add (data, size) q

let take_all t ~dst =
  match Hashtbl.find_opt t.queues dst with
  | None -> []
  | Some q ->
      let items = List.of_seq (Queue.to_seq q) in
      Queue.clear q;
      items

let drop_all t ~dst ~reason =
  List.iter (fun (data, size) -> t.drop data ~size ~reason) (take_all t ~dst)

let count t ~dst =
  match Hashtbl.find_opt t.queues dst with
  | None -> 0
  | Some q -> Queue.length q
