lib/protocols/discovery.mli: Des
