lib/protocols/aodv.mli: Routing_intf Wireless
