lib/protocols/srp.ml: Des Discovery Hashtbl List Pending Routing_intf Seen_cache Slr Stdlib Wireless
