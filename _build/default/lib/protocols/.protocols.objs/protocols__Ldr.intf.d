lib/protocols/ldr.mli: Routing_intf Wireless
