lib/protocols/discovery.ml: Array Des Hashtbl Stdlib
