lib/protocols/olsr.ml: Des Hashtbl List Option Queue Routing_intf Seen_cache Wireless
