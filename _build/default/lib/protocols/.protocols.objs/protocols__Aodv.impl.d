lib/protocols/aodv.ml: Des Discovery Hashtbl List Pending Routing_intf Seen_cache Stdlib Wireless
