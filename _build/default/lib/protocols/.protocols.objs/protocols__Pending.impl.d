lib/protocols/pending.ml: Hashtbl List Queue Wireless
