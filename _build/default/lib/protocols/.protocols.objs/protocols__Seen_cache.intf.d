lib/protocols/seen_cache.mli: Des
