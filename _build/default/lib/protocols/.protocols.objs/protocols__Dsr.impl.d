lib/protocols/dsr.ml: Des Discovery List Pending Routing_intf Seen_cache Wireless
