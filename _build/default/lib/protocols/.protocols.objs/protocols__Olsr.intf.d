lib/protocols/olsr.mli: Routing_intf Wireless
