lib/protocols/dsr.mli: Routing_intf Wireless
