lib/protocols/pending.mli: Wireless
