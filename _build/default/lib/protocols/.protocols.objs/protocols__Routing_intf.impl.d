lib/protocols/routing_intf.ml: Des Wireless
