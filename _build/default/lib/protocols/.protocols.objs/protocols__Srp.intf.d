lib/protocols/srp.mli: Routing_intf Slr Wireless
