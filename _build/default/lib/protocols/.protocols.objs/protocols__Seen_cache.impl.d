lib/protocols/seen_cache.ml: Des Hashtbl List
