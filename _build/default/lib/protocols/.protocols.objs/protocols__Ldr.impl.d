lib/protocols/ldr.ml: Des Discovery Hashtbl List Option Pending Routing_intf Seen_cache Stdlib Wireless
