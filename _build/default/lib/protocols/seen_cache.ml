type t = {
  engine : Des.Engine.t;
  ttl : float;
  entries : (int * int, float) Hashtbl.t;
  mutable last_sweep : float;
}

let create engine ~ttl =
  { engine; ttl; entries = Hashtbl.create 64; last_sweep = 0.0 }

(* Amortised cleanup: sweep at most once per ttl. *)
let sweep t =
  let now = Des.Engine.now t.engine in
  if now -. t.last_sweep >= t.ttl then begin
    t.last_sweep <- now;
    let dead =
      Hashtbl.fold
        (fun key expiry acc -> if expiry <= now then key :: acc else acc)
        t.entries []
    in
    List.iter (Hashtbl.remove t.entries) dead
  end

let mem t ~origin ~id =
  match Hashtbl.find_opt t.entries (origin, id) with
  | Some expiry -> expiry > Des.Engine.now t.engine
  | None -> false

let witness t ~origin ~id =
  sweep t;
  if mem t ~origin ~id then false
  else begin
    Hashtbl.replace t.entries (origin, id)
      (Des.Engine.now t.engine +. t.ttl);
    true
  end

let size t =
  sweep t;
  let now = Des.Engine.now t.engine in
  Hashtbl.fold
    (fun _ expiry acc -> if expiry > now then acc + 1 else acc)
    t.entries 0
