(** Per-destination buffer for data packets awaiting route discovery, with a
    bounded capacity and a drop callback, shared by all on-demand agents. *)

type t

val create :
  capacity:int ->
  drop:(Wireless.Frame.data -> size:int -> reason:string -> unit) ->
  t

(** [push t ~dst data ~size] buffers a packet; the oldest buffered packet
    for [dst] is dropped (via the callback) when the buffer is full. *)
val push : t -> dst:int -> Wireless.Frame.data -> size:int -> unit

(** [take_all t ~dst] removes and returns buffered packets in arrival
    order. *)
val take_all : t -> dst:int -> (Wireless.Frame.data * int) list

(** [drop_all t ~dst ~reason] flushes the buffer through the drop callback
    (route discovery failed). *)
val drop_all : t -> dst:int -> reason:string -> unit

val count : t -> dst:int -> int
