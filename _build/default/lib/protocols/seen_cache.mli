(** Duplicate-suppression cache for flooded packets keyed by
    [(originator, id)], with entry expiry. Every on-demand protocol uses one
    to process each route request exactly once. *)

type t

(** [create engine ~ttl] — entries expire [ttl] seconds after insertion. *)
val create : Des.Engine.t -> ttl:float -> t

(** [witness t ~origin ~id] returns [true] the first time a live pair is
    seen (and records it), [false] for a duplicate. *)
val witness : t -> origin:int -> id:int -> bool

val mem : t -> origin:int -> id:int -> bool

(** Number of live entries (compacts internally). *)
val size : t -> int
