(** Minimal-denominator interpolation via the Stern–Brocot tree — the
    fraction-reduction direction the paper names as future work (§VI,
    "walking a Farey tree").

    The plain mediant of relatively prime fractions grows denominators along
    a Fibonacci worst case; {!simplest_between} instead returns the unique
    fraction with the smallest denominator strictly inside an interval,
    slowing label growth dramatically (see the ablation bench). *)

(** [simplest_between ~lo ~hi] is the minimal-denominator fraction strictly
    between [lo] and [hi], or [None] if it exceeds the 32-bit bound (only
    possible for adjacent Farey neighbours at the bound).
    @raise Invalid_argument unless [lo < hi]. *)
val simplest_between : lo:Fraction.t -> hi:Fraction.t -> Fraction.t option

(** [simplest_ints ~lo:(a, b) ~hi:(c, d)] is the minimal-denominator pair
    [(p, q)] with [a/b < p/q < c/d] over unbounded integers.
    @raise Invalid_argument unless [a/b < c/d]. *)
val simplest_ints : lo:int * int -> hi:int * int -> int * int
