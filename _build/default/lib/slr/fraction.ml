type t = { num : int; den : int }

let bound = (1 lsl 32) - 1

let make ~num ~den =
  if den < 1 then invalid_arg "Fraction.make: denominator must be >= 1";
  if num < 0 then invalid_arg "Fraction.make: numerator must be >= 0";
  if num > bound || den > bound then
    invalid_arg "Fraction.make: component exceeds 32-bit bound";
  if num > den then invalid_arg "Fraction.make: fraction must be <= 1/1";
  if num = den && num <> 1 && num <> 0 then
    invalid_arg "Fraction.make: only 1/1 may have num = den";
  { num; den }

let zero = { num = 0; den = 1 }

let one = { num = 1; den = 1 }

let is_zero t = t.num = 0

let is_one t = t.num = t.den

(* Cross products of 32-bit components need up to 64 unsigned bits; native
   ints have 63, so multiply in Int64 (wrapping is exact as unsigned) and
   compare unsigned. *)
let compare a b =
  let left = Int64.mul (Int64.of_int a.num) (Int64.of_int b.den) in
  let right = Int64.mul (Int64.of_int b.num) (Int64.of_int a.den) in
  Int64.unsigned_compare left right

let equal a b = compare a b = 0

let ( < ) a b = compare a b < 0

let ( <= ) a b = compare a b <= 0

let mediant a b =
  let num = a.num + b.num and den = a.den + b.den in
  if num > bound || den > bound then None else Some { num; den }

let next a = if is_one a then None else mediant a one

let would_overflow a b = a.num + b.num > bound || a.den + b.den > bound

let to_float t = float_of_int t.num /. float_of_int t.den

let pp ppf t = Format.fprintf ppf "%d/%d" t.num t.den

let to_string t = Format.asprintf "%a" pp t

(* Worst case: always split the mediant against the endpoint with the larger
   denominator, so denominators follow the Fibonacci sequence (the paper's
   derivation of the 45-split bound). *)
let max_splits () =
  let rec loop a b splits =
    match mediant a b with
    | None -> splits
    | Some m ->
        let keep = if Stdlib.( >= ) a.den b.den then a else b in
        loop keep m (splits + 1)
  in
  loop zero one 0
