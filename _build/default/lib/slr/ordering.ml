type t = { sn : int; frac : Fraction.t }

let unassigned = { sn = 0; frac = Fraction.one }

let make ~sn ~frac =
  if sn < 0 then invalid_arg "Ordering.make: negative sequence number";
  { sn; frac }

let destination ~sn =
  if sn <= 0 then invalid_arg "Ordering.destination: sn must be positive";
  { sn; frac = Fraction.zero }

let is_finite t = not (Fraction.is_one t.frac)

let is_unassigned t = t.sn = 0 && Fraction.is_one t.frac

let precedes a b =
  a.sn < b.sn || (a.sn = b.sn && Fraction.(b.frac < a.frac))

let min a b = if precedes a b then b else a

let equal a b = a.sn = b.sn && Fraction.equal a.frac b.frac

let add t f =
  match Fraction.mediant t.frac f with
  | None -> None
  | Some frac -> Some { t with frac }

let next t = add t Fraction.one

let split_would_overflow a b = Fraction.would_overflow a.frac b.frac

let pp ppf t = Format.fprintf ppf "(%d, %a)" t.sn Fraction.pp t.frac

let to_string t = Format.asprintf "%a" pp t
