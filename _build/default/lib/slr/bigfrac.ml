type t = { num : Bignat.t; den : Bignat.t }

let make ~num ~den =
  if Bignat.is_zero den then invalid_arg "Bigfrac.make: zero denominator";
  let c = Bignat.compare num den in
  if c > 0 then invalid_arg "Bigfrac.make: fraction must be <= 1/1";
  if c = 0 && not (Bignat.equal num Bignat.one) then
    invalid_arg "Bigfrac.make: only 1/1 may have num = den";
  { num; den }

let of_ints ~num ~den = make ~num:(Bignat.of_int num) ~den:(Bignat.of_int den)

let zero = { num = Bignat.zero; den = Bignat.one }

let one = { num = Bignat.one; den = Bignat.one }

let is_zero t = Bignat.is_zero t.num

let is_one t = Bignat.equal t.num t.den

let compare a b =
  Bignat.compare (Bignat.mul a.num b.den) (Bignat.mul b.num a.den)

let equal a b = compare a b = 0

let ( < ) a b = compare a b < 0

let mediant a b =
  { num = Bignat.add a.num b.num; den = Bignat.add a.den b.den }

let next a = if is_one a then None else Some (mediant a one)

let width_bits t = Bignat.bits t.num + Bignat.bits t.den

let to_float t =
  match (Bignat.to_int t.num, Bignat.to_int t.den) with
  | Some n, Some d -> float_of_int n /. float_of_int d
  | _ ->
      (* fall back to a decimal-string approximation for huge labels *)
      let approx s =
        float_of_string (if String.length s > 15 then String.sub s 0 15 else s)
        *. (10.0 ** float_of_int (max 0 (String.length s - 15)))
      in
      approx (Bignat.to_string t.num) /. approx (Bignat.to_string t.den)

let pp ppf t = Format.fprintf ppf "%a/%a" Bignat.pp t.num Bignat.pp t.den
