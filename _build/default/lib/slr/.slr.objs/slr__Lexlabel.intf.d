lib/slr/lexlabel.mli: Format
