lib/slr/farey.mli: Fraction
