lib/slr/ordering.ml: Format Fraction
