lib/slr/bigfrac.ml: Bignat Format String
