lib/slr/dag.mli:
