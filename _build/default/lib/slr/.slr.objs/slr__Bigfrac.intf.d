lib/slr/bigfrac.mli: Bignat Format
