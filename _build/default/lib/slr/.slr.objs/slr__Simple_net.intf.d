lib/slr/simple_net.mli: Format Ordinal
