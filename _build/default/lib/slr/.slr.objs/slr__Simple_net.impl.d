lib/slr/simple_net.ml: Array Dag Format Fun Int List Ordinal Queue Set Split_label
