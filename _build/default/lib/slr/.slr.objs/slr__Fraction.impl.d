lib/slr/fraction.ml: Format Int64 Stdlib
