lib/slr/new_order.ml: Fraction List Ordering
