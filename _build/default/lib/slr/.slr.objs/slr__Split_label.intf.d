lib/slr/split_label.mli: Ordinal
