lib/slr/split_label.ml: List Ordinal
