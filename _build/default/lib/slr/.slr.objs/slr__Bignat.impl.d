lib/slr/bignat.ml: Array Buffer Char Format List Stdlib String
