lib/slr/bignat.mli: Format
