lib/slr/farey.ml: Fraction Int64
