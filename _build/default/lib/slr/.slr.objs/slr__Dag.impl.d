lib/slr/dag.ml: Array List
