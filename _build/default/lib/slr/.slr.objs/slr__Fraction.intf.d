lib/slr/fraction.mli: Format
