lib/slr/ordering.mli: Format Fraction
