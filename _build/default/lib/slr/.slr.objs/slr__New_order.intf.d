lib/slr/new_order.mli: Fraction Ordering
