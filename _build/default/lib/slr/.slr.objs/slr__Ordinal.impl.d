lib/slr/ordinal.ml: Bigfrac Format Fraction Lexlabel
