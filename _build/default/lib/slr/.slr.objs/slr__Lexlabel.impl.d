lib/slr/lexlabel.ml: Buffer Char Format String
