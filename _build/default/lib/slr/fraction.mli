(** Proper fractions [m/n] with 32-bit-unsigned-bounded components — the
    feasible-distance fraction of SRP (paper §III).

    The value range is the closed interval [\[0/1, 1/1\]]: the paper extends
    the open interval of proper fractions with the least element [0/1]
    (the destination's label) and the greatest element [1/1] (the label of an
    unassigned node). The mediant (Eq. 1) splits any two fractions; the
    next-element operator (Eq. 2) is the mediant with [1/1]. Components are
    bounded by [2^32 - 1]; a mediant whose denominator would exceed the bound
    is an {e overflow}, which SRP masks with a sequence-number path reset. *)

type t = private { num : int; den : int }

(** Largest representable numerator/denominator: [2^32 - 1]. *)
val bound : int

(** [make ~num ~den] validates [0 <= num <= den], [den >= 1], [num <= bound],
    [den <= bound].
    @raise Invalid_argument otherwise. Note [1/1] and [0/1] are allowed;
    any other [num = den] is rejected as non-canonical. *)
val make : num:int -> den:int -> t

(** The destination's label [0/1] — the least element. *)
val zero : t

(** The unassigned label [1/1] — the greatest element. *)
val one : t

val is_zero : t -> bool

val is_one : t -> bool

(** Strict numerical order by cross-multiplication (Definition 4), exact for
    all bounded components. *)
val compare : t -> t -> int

val equal : t -> t -> bool

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

(** [mediant a b] is [(a.num + b.num) / (a.den + b.den)] (Eq. 1), or [None]
    when a component would exceed {!bound}. When [a < b] the mediant lies
    strictly between them. *)
val mediant : t -> t -> t option

(** [next a] is the next-element [(m+1)/(n+1)] (Eq. 2) — the mediant with
    [1/1]. [None] on overflow or when [a] is [1/1] (the greatest element has
    no next element). *)
val next : t -> t option

(** [would_overflow a b] is [true] when [mediant a b] is [None] — the test
    Eq. 11 and Algorithm 1 apply to denominator sums. *)
val would_overflow : t -> t -> bool

val to_float : t -> float

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Number of mediant splits of the worst-case chain starting from
    [(0/1, 1/1)] before overflow; the paper derives 45 from the Fibonacci
    sequence. Computed, not hard-coded, so the test is meaningful. *)
val max_splits : unit -> int
