let topological_order ~compare ~label ~successors n =
  let rec check_node i =
    if i >= n then Ok ()
    else
      let rec check_edges = function
        | [] -> check_node (i + 1)
        | j :: rest ->
            if compare (label j) (label i) < 0 then check_edges rest
            else Error (i, j)
      in
      check_edges (successors i)
  in
  check_node 0

type mark = White | Grey | Black

let acyclic ~successors n =
  let marks = Array.make n White in
  let exception Cycle of int list in
  let rec visit path i =
    match marks.(i) with
    | Black -> ()
    | Grey ->
        (* the path from the previous occurrence of [i] is a cycle *)
        let rec cut acc = function
          | [] -> acc
          | x :: rest -> if x = i then x :: acc else cut (x :: acc) rest
        in
        raise (Cycle (cut [ i ] path))
    | White ->
        marks.(i) <- Grey;
        List.iter (visit (i :: path)) (successors i);
        marks.(i) <- Black
  in
  try
    for i = 0 to n - 1 do
      visit [] i
    done;
    Ok ()
  with Cycle c -> Error c

let reaches ~successors ~src ~dst n =
  let seen = Array.make n false in
  let rec go i =
    i = dst
    || if seen.(i) then false
       else begin
         seen.(i) <- true;
         List.exists go (successors i)
       end
  in
  go src
