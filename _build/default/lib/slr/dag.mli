(** Invariant checkers for per-destination successor graphs: topological
    order of labels (the paper's loop-freedom invariant, Theorem 3) and
    direct acyclicity by depth-first search (an independent oracle the
    property tests compare against). Nodes are integers in [0, n). *)

(** [topological_order ~label ~successors n] verifies that every successor
    edge [(i, j)] satisfies [label j < label i] under [compare]. Returns the
    offending edge on failure. *)
val topological_order :
  compare:('l -> 'l -> int) ->
  label:(int -> 'l) ->
  successors:(int -> int list) ->
  int ->
  (unit, int * int) result

(** [acyclic ~successors n] is [Ok ()] when the directed graph has no cycle,
    or [Error cycle] with a witness cycle (first node repeated at the end). *)
val acyclic : successors:(int -> int list) -> int -> (unit, int list) result

(** [reaches ~successors ~src ~dst n] — can [src] reach [dst] following
    successor edges? *)
val reaches : successors:(int -> int list) -> src:int -> dst:int -> int -> bool
