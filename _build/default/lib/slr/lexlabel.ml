type t = Top | Key of string

let least = Key ""

let top = Top

let canonical s =
  String.length s = 0 || s.[String.length s - 1] <> '\000'

let of_string s =
  if not (canonical s) then
    invalid_arg "Lexlabel.of_string: trailing NUL is non-canonical";
  Key s

let compare a b =
  match (a, b) with
  | Top, Top -> 0
  | Top, Key _ -> 1
  | Key _, Top -> -1
  | Key x, Key y -> String.compare x y

let equal a b = compare a b = 0

let next = function
  | Top -> None
  | Key s -> Some (Key (s ^ "\001"))

(* Digit-wise midpoint of the base-256 fractions 0.lo and 0.hi: walk the
   digits; at the first position where they differ by >= 2 take the floor
   midpoint (strictly inside, canonical since it is non-zero); when they
   differ by exactly 1 the answer is lo extended by one minimal digit,
   zero-padded to the current position. *)
let between ~lo ~hi =
  if compare lo hi >= 0 then invalid_arg "Lexlabel.between: requires lo < hi";
  match (lo, hi) with
  | Top, _ -> assert false
  | Key l, hi_label ->
      let digit s i = if i < String.length s then Char.code s.[i] else 0 in
      let hi_digit i =
        match hi_label with
        | Top -> if i = 0 then 256 else assert false
        | Key h -> digit h i
      in
      let buf = Buffer.create (String.length l + 1) in
      let rec walk i =
        let a = digit l i in
        let b = hi_digit i in
        if b - a >= 2 then begin
          Buffer.add_char buf (Char.chr ((a + b) / 2));
          Key (Buffer.contents buf)
        end
        else if b = a + 1 then begin
          (* lo, zero-padded through position i, extended minimally *)
          Buffer.add_char buf (Char.chr a);
          let rest =
            if i + 1 < String.length l then
              String.sub l (i + 1) (String.length l - i - 1)
            else ""
          in
          Buffer.add_string buf rest;
          Buffer.add_char buf '\001';
          Key (Buffer.contents buf)
        end
        else begin
          (* equal digits: keep walking; lo < hi guarantees a difference
             (or hi = Top, handled at i = 0) *)
          Buffer.add_char buf (Char.chr a);
          walk (i + 1)
        end
      in
      if hi_label = Top then begin
        let a = digit l 0 in
        if a <= 254 then Some (Key (String.make 1 (Char.chr ((a + 256) / 2))))
        else Some (Key (l ^ "\001"))
      end
      else Some (walk 0)

let width = function Top -> 0 | Key s -> String.length s

let pp ppf = function
  | Top -> Format.pp_print_string ppf "<top>"
  | Key "" -> Format.pp_print_string ppf "<least>"
  | Key s ->
      Format.pp_print_string ppf "0x";
      String.iter (fun c -> Format.fprintf ppf "%02x" (Char.code c)) s
