(* Classic continued-fraction descent: the simplest fraction strictly inside
   (a/b, c/d). A zero denominator on the high side encodes +infinity, which
   arises when the low endpoint is an exact integer. *)
let rec descend a b c d =
  let ia = a / b in
  let candidate = ia + 1 in
  (* candidate is strictly greater than a/b by construction of the floor;
     it is strictly below the high end iff candidate < c/d. *)
  if d = 0 || candidate * d < c then (candidate, 1)
  else
    let p, q = descend d (c - (ia * d)) b (a - (ia * b)) in
    ((ia * p) + q, p)

let simplest_ints ~lo:(a, b) ~hi:(c, d) =
  if b <= 0 || d <= 0 then invalid_arg "Farey.simplest_ints: bad denominator";
  let cross x y = Int64.mul (Int64.of_int x) (Int64.of_int y) in
  if Int64.compare (cross a d) (cross c b) >= 0 then
    invalid_arg "Farey.simplest_ints: empty interval";
  descend a b c d

let simplest_between ~lo ~hi =
  if not Fraction.(lo < hi) then
    invalid_arg "Farey.simplest_between: requires lo < hi";
  let p, q =
    descend lo.Fraction.num lo.Fraction.den hi.Fraction.num hi.Fraction.den
  in
  if p > Fraction.bound || q > Fraction.bound then None
  else Some (Fraction.make ~num:p ~den:q)
