(** The dense ordinal label set of SLR (paper §II).

    [L] must be dense with a greatest element, a strict linear order, and a
    next-element operator. Bounded implementations (SRP's 32-bit fractions)
    may fail to produce a label — [next]/[between] return [None] — which the
    protocol masks with a destination-controlled sequence-number reset. *)

module type S = sig
  type t

  (** Strict linear order. *)
  val compare : t -> t -> int

  val equal : t -> t -> bool

  (** Natural label for the destination (not required by the paper to exist,
      but convenient: "it is convenient if the set also has a smallest
      element"). *)
  val least : t

  (** The label of an unassigned node; not the next-element of any label. *)
  val greatest : t

  (** [next a] is a label strictly greater than [a]; [None] for
      [greatest] or on overflow of a bounded set. *)
  val next : t -> t option

  (** [between ~lo ~hi] is a label strictly inside the open interval
      ([lo], [hi]); requires [lo < hi]. [None] only for bounded sets that
      cannot split further. *)
  val between : lo:t -> hi:t -> t option

  val pp : Format.formatter -> t -> unit
end

(** SRP's bounded proper fractions: dense up to 32-bit overflow. *)
module Bounded_fraction : S with type t = Fraction.t = struct
  type t = Fraction.t

  let compare = Fraction.compare

  let equal = Fraction.equal

  let least = Fraction.zero

  let greatest = Fraction.one

  let next = Fraction.next

  let between ~lo ~hi =
    assert (Fraction.(lo < hi));
    Fraction.mediant lo hi

  let pp = Fraction.pp
end

(** Lexicographic byte strings (§I's "lexicographically sorted string"):
    dense, infinite, cheap to compare; labels grow at most a byte per
    worst-case split. *)
module Lex_string : S with type t = Lexlabel.t = struct
  type t = Lexlabel.t

  let compare = Lexlabel.compare

  let equal = Lexlabel.equal

  let least = Lexlabel.least

  let greatest = Lexlabel.top

  let next = Lexlabel.next

  let between ~lo ~hi = Lexlabel.between ~lo ~hi

  let pp = Lexlabel.pp
end

(** The idealised unbounded set of §II: splitting never fails. *)
module Unbounded_fraction : S with type t = Bigfrac.t = struct
  type t = Bigfrac.t

  let compare = Bigfrac.compare

  let equal = Bigfrac.equal

  let least = Bigfrac.zero

  let greatest = Bigfrac.one

  let next = Bigfrac.next

  let between ~lo ~hi =
    assert (Bigfrac.(lo < hi));
    Some (Bigfrac.mediant lo hi)

  let pp = Bigfrac.pp
end
