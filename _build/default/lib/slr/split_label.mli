(** The abstract Split Label Routing rules (paper §II) over any dense ordinal
    set: Definition 1 (Maintain Order, Eqs. 3–6) and the label-choice
    strategy the paper narrates — keep the current label when it already
    satisfies predecessor order, otherwise take the advertisement's
    next-element, otherwise split the interval. *)

module Make (L : Ordinal.S) : sig
  (** [maintains_order ~candidate ~current ~cached_min ~adv ~succ_max] checks
      Eqs. 3–6 of Definition 1:
      [candidate <= current] (3), [candidate < cached_min] (4),
      [adv < candidate] (5), [succ_max < candidate] (6).
      [succ_max] is the maximum successor label, or [L.least] when the
      successor table is empty. *)
  val maintains_order :
    candidate:L.t ->
    current:L.t ->
    cached_min:L.t ->
    adv:L.t ->
    succ_max:L.t ->
    bool

  (** [choose_label ~current ~cached_min ~adv] picks a label satisfying
      Eqs. 3–5 for an advertisement labelled [adv], given the node's current
      label and the cached minimum predecessor label [M_i]:
      - [None] when the advertisement is infeasible ([adv >= current]) or no
        label fits (bounded-set overflow, or [adv >= cached_min]);
      - keep [current] when [current < cached_min] (Example 2's nodes G, H);
      - else the next-element of [adv] when it stays below the bound;
      - else a split strictly between [adv] and [cached_min].

      Eq. 6 is the caller's burden: drop successors not below the new label
      (the paper's "eliminate certain existing successors"). *)
  val choose_label : current:L.t -> cached_min:L.t -> adv:L.t -> L.t option

  (** [filter_successors ~label succs] keeps successors with labels strictly
      below [label] (restores Eq. 6 after relabeling). *)
  val filter_successors : label:L.t -> ('a * L.t) list -> ('a * L.t) list

  (** Maximum successor label per §II: [L.least] for an empty table. *)
  val successor_max : ('a * L.t) list -> L.t
end
