module Make (L : Ordinal.S) = struct
  let lt a b = L.compare a b < 0

  let le a b = L.compare a b <= 0

  let maintains_order ~candidate ~current ~cached_min ~adv ~succ_max =
    le candidate current
    && lt candidate cached_min
    && lt adv candidate
    && lt succ_max candidate

  let choose_label ~current ~cached_min ~adv =
    if not (lt adv current) then None
    else if lt current cached_min then Some current
    else if not (lt adv cached_min) then None
    else begin
      match L.next adv with
      | Some n when lt n cached_min -> Some n
      | Some _ | None -> L.between ~lo:adv ~hi:cached_min
    end

  let filter_successors ~label succs =
    List.filter (fun (_, s) -> lt s label) succs

  let successor_max = function
    | [] -> L.least
    | (_, s) :: rest ->
        List.fold_left (fun acc (_, x) -> if lt acc x then x else acc) s rest
end
