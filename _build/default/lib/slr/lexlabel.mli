(** Dense labels as lexicographically ordered byte strings — the other
    sub-divisible feasible distance the paper names (§I: "such as a
    lexicographically sorted string or a subset of the real numbers").

    A label is a finite byte string with no trailing [\x00] (the canonical
    form under which lexicographic order coincides with the value of the
    base-256 fraction [0.s]), or the distinguished greatest element
    {!top}. The set is dense and infinite: {!between} always succeeds,
    at the cost of labels growing one byte per worst-case split —
    the same width-versus-reset trade-off as {!Bigfrac}, but with cheap
    ordering (a [memcmp]) and a compact wire format. *)

type t = private Top | Key of string

(** The empty string — the least label, naturally the destination's. *)
val least : t

(** The greatest element; not the next-element of anything. *)
val top : t

(** [of_string s] validates canonicity.
    @raise Invalid_argument on a trailing [\x00]. *)
val of_string : string -> t

val compare : t -> t -> int

val equal : t -> t -> bool

(** [next t] is a label strictly greater: [t ^ "\x01"]. [None] for {!top}. *)
val next : t -> t option

(** [between ~lo ~hi] is a canonical label strictly inside ([lo], [hi]).
    Total for this set: always [Some] when [lo < hi].
    @raise Invalid_argument unless [lo < hi]. *)
val between : lo:t -> hi:t -> t option

(** Bytes of the label (0 for {!least}; the set's growth measure). *)
val width : t -> int

val pp : Format.formatter -> t -> unit
