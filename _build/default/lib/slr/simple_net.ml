module IntSet = Set.Make (Int)

module Make (L : Ordinal.S) = struct
  module Rules = Split_label.Make (L)

  type t = {
    nodes : int;
    dest : int;
    labels : L.t array;
    adjacency : IntSet.t array;
    succs : (int * L.t) list array;
  }

  let create ~nodes ~dest =
    if nodes <= 0 then invalid_arg "Simple_net.create: need at least one node";
    if dest < 0 || dest >= nodes then invalid_arg "Simple_net.create: bad dest";
    let labels = Array.make nodes L.greatest in
    labels.(dest) <- L.least;
    {
      nodes;
      dest;
      labels;
      adjacency = Array.make nodes IntSet.empty;
      succs = Array.make nodes [];
    }

  let node_count t = t.nodes

  let dest t = t.dest

  let check_node t i name =
    if i < 0 || i >= t.nodes then invalid_arg ("Simple_net: bad node in " ^ name)

  let add_link t a b =
    check_node t a "add_link";
    check_node t b "add_link";
    if a = b then invalid_arg "Simple_net.add_link: self-link";
    t.adjacency.(a) <- IntSet.add b t.adjacency.(a);
    t.adjacency.(b) <- IntSet.add a t.adjacency.(b)

  let remove_link t a b =
    check_node t a "remove_link";
    check_node t b "remove_link";
    t.adjacency.(a) <- IntSet.remove b t.adjacency.(a);
    t.adjacency.(b) <- IntSet.remove a t.adjacency.(b)

  let linked t a b = IntSet.mem b t.adjacency.(a)

  let label t i =
    check_node t i "label";
    t.labels.(i)

  let successors t i =
    check_node t i "successors";
    t.succs.(i)

  let has_route t i = i = t.dest || successors t i <> []

  type outcome =
    | Routed of { replier : int; reply_path : int list }
    | No_route
    | Label_exhausted of int

  let lt a b = L.compare a b < 0

  let min_label a b = if lt a b then a else b

  (* Labels are non-increasing with time (Eq. 3); enforce it here so any
     rule violation trips immediately rather than as a distant loop. *)
  let set_label t i g =
    assert (L.compare g t.labels.(i) <= 0);
    t.labels.(i) <- g

  let adopt_successor t i ~via ~adv =
    let others = List.remove_assoc via t.succs.(i) in
    t.succs.(i) <- (via, adv) :: others

  (* Breadth-first flood carrying the running minimum label; [carried.(i)]
     is M_i, the minimum predecessor label as received (the requester's own
     cache is the greatest element per §II). Returns the replier and the
     parent map of the flood tree. *)
  let flood t ~src =
    let visited = Array.make t.nodes false in
    let parent = Array.make t.nodes (-1) in
    let carried = Array.make t.nodes L.greatest in
    visited.(src) <- true;
    let queue = Queue.create () in
    (* the requester places its current label in the request *)
    Queue.add (src, t.labels.(src)) queue;
    let replier = ref None in
    (try
       while not (Queue.is_empty queue) do
         let node, request_label = Queue.pop queue in
         let relayed = min_label request_label t.labels.(node) in
         IntSet.iter
           (fun neighbour ->
             if not visited.(neighbour) then begin
               visited.(neighbour) <- true;
               parent.(neighbour) <- node;
               carried.(neighbour) <- relayed;
               if
                 neighbour = t.dest
                 || (lt t.labels.(neighbour) relayed
                    && t.succs.(neighbour) <> [])
               then begin
                 replier := Some neighbour;
                 raise Exit
               end
               else Queue.add (neighbour, relayed) queue
             end)
           t.adjacency.(node)
       done
     with Exit -> ());
    (!replier, parent, carried)

  let request t ~src =
    check_node t src "request";
    if src = t.dest then Routed { replier = src; reply_path = [] }
    else begin
      match flood t ~src with
      | None, _, _ -> No_route
      | Some replier, parent, carried ->
          (* reply retraces the flood tree back to the requester *)
          let rec walk node adv acc =
            if node = src then Ok (List.rev (node :: acc))
            else
              let next = parent.(node) in
              assert (next >= 0);
              let cached =
                if next = src then L.greatest else carried.(next)
              in
              match
                Rules.choose_label ~current:t.labels.(next)
                  ~cached_min:cached ~adv
              with
              | None -> Error next
              | Some g ->
                  set_label t next g;
                  adopt_successor t next ~via:node ~adv;
                  t.succs.(next) <-
                    Rules.filter_successors ~label:g t.succs.(next);
                  walk next g (node :: acc)
          in
          let adv = t.labels.(replier) in
          (match walk replier adv [] with
          | Ok path -> Routed { replier; reply_path = path }
          | Error node -> Label_exhausted node)
    end

  let seed_label t i l =
    check_node t i "seed_label";
    t.labels.(i) <- l

  let break_link t a b =
    remove_link t a b;
    t.succs.(a) <- List.remove_assoc b t.succs.(a);
    t.succs.(b) <- List.remove_assoc a t.succs.(b)

  let check_invariants t =
    let succ_ids i = List.map fst t.succs.(i) in
    match
      Dag.topological_order ~compare:L.compare
        ~label:(fun i -> t.labels.(i))
        ~successors:succ_ids t.nodes
    with
    | Error (i, j) ->
        Error
          (Format.asprintf "edge (%d -> %d) violates label order: %a >= %a" i
             j L.pp t.labels.(j) L.pp t.labels.(i))
    | Ok () -> (
        match Dag.acyclic ~successors:succ_ids t.nodes with
        | Error cycle ->
            Error
              (Format.asprintf "successor cycle: %a"
                 (Format.pp_print_list
                    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
                    Format.pp_print_int)
                 cycle)
        | Ok () -> Ok ())

  let route_to_dest t ~src =
    let rec follow node acc steps =
      if node = t.dest then Some (List.rev (node :: acc))
      else if steps > t.nodes then None
      else begin
        match t.succs.(node) with
        | [] -> None
        | (first, first_label) :: rest ->
            (* pick the least-labelled successor *)
            let best, _ =
              List.fold_left
                (fun (b, bl) (s, sl) -> if lt sl bl then (s, sl) else (b, bl))
                (first, first_label) rest
            in
            follow best (node :: acc) (steps + 1)
      end
    in
    follow src [] 0

  let pp_labels ppf t =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf i -> Format.fprintf ppf "%d:%a" i L.pp t.labels.(i))
      ppf
      (List.init t.nodes Fun.id)
end
