(** An abstract, message-less executor for SLR route computations over a
    static graph (paper §II): request floods breadth-first, a reply walks the
    reverse path, and each node relabels with {!Split_label.Make.choose_label}.

    This is the idealised protocol used to state Theorems 1–4; the full
    message-passing implementation with losses and mobility is SRP
    (see [Protocols.Srp]). The executor reproduces the paper's Examples 1–2
    exactly and backs the loop-freedom property tests. *)

module Make (L : Ordinal.S) : sig
  type t

  (** [create ~nodes ~dest] — all nodes unlabeled (greatest label) except
      [dest], which takes the least label. No links, no successor paths. *)
  val create : nodes:int -> dest:int -> t

  val node_count : t -> int

  val dest : t -> int

  (** Bidirectional link management. Self-links are rejected. *)
  val add_link : t -> int -> int -> unit

  val remove_link : t -> int -> int -> unit

  val linked : t -> int -> int -> bool

  val label : t -> int -> L.t

  (** Successor entries with the advertised label recorded at adoption. *)
  val successors : t -> int -> (int * L.t) list

  (** A node has an active route iff its successor set is non-empty. *)
  val has_route : t -> int -> bool

  type outcome =
    | Routed of { replier : int; reply_path : int list }
        (** [reply_path] runs from the replier to the requester inclusive. *)
    | No_route  (** the flood reached no node able to reply *)
    | Label_exhausted of int
        (** the bounded label set could not be split at this node —
            SRP's cue for a sequence-number path reset *)

  (** [request t ~src] runs one route computation for [src] toward the
      destination. No-op ([Routed] with an empty path) when [src] is the
      destination itself. *)
  val request : t -> src:int -> outcome

  (** [break_link t a b] removes the link and both nodes' successor entries
      through it. *)
  val break_link : t -> int -> int -> unit

  (** [seed_label t i l] forces a node's label, bypassing the protocol —
      for tests and demos that re-create the paper's figures, where nodes
      "once knew a route" and carry stale labels. Never use it mid-request. *)
  val seed_label : t -> int -> L.t -> unit

  (** Checks Theorem 3's invariants: every successor edge descends in label
      order, and the successor graph is acyclic. *)
  val check_invariants : t -> (unit, string) result

  (** Follow least-label successors from [src]; [None] when no route. For
      demos and tests. *)
  val route_to_dest : t -> src:int -> int list option

  val pp_labels : Format.formatter -> t -> unit
end
