(** Unbounded proper fractions over {!Bignat} — the idealised dense ordinal
    set of SLR §II, where a label always exists between any two labels and no
    path reset is ever required (at the cost of unbounded label width). *)

type t = private { num : Bignat.t; den : Bignat.t }

(** @raise Invalid_argument unless [0 <= num <= den] and [den >= 1], with
    [num = den] only for [1/1]. *)
val make : num:Bignat.t -> den:Bignat.t -> t

val of_ints : num:int -> den:int -> t

(** Least element [0/1]. *)
val zero : t

(** Greatest element [1/1]. *)
val one : t

val is_zero : t -> bool

val is_one : t -> bool

(** Exact numerical order by cross-multiplication. *)
val compare : t -> t -> int

val equal : t -> t -> bool

val ( < ) : t -> t -> bool

(** Mediant — always defined; this set is truly dense. *)
val mediant : t -> t -> t

(** Next-element [(m+1)/(n+1)]; [None] only for [1/1]. *)
val next : t -> t option

(** Total bit width of the label (numerator plus denominator), the growth
    the paper trades against path resets. *)
val width_bits : t -> int

val to_float : t -> float

val pp : Format.formatter -> t -> unit
