(** Running univariate summary statistics (Welford's online algorithm) and
    Student-t confidence intervals, as used for the paper's
    "95% confidence interval over 10 trials" error bars. *)

type t

val create : unit -> t

(** [add t x] folds one observation in. *)
val add : t -> float -> unit

(** Merge all observations of [other] into [t] (order-insensitive). *)
val merge : t -> t -> unit

val count : t -> int

(** Mean of the observations; 0.0 when empty. *)
val mean : t -> float

(** Unbiased sample variance; 0.0 for fewer than two observations. *)
val variance : t -> float

val stddev : t -> float

val min : t -> float

val max : t -> float

(** Standard error of the mean. *)
val std_error : t -> float

(** Half-width of the 95% Student-t confidence interval for the mean
    (0.0 for fewer than two observations). *)
val ci95 : t -> float

(** Two-sided Student-t critical value at 95% for [df] degrees of freedom
    (table lookup, asymptotes to 1.96). @raise Invalid_argument if [df < 1]. *)
val t_critical_95 : int -> float

(** [overlap a b] is [true] when the 95% CIs of [a] and [b] intersect —
    the paper's criterion for "statistically identical". *)
val overlap : t -> t -> bool

val pp : Format.formatter -> t -> unit
