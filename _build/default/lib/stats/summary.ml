type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

(* Chan et al. parallel-merge formulas. *)
let merge t other =
  if other.n > 0 then
    if t.n = 0 then begin
      t.n <- other.n;
      t.mean <- other.mean;
      t.m2 <- other.m2;
      t.min <- other.min;
      t.max <- other.max
    end
    else begin
      let n_total = t.n + other.n in
      let delta = other.mean -. t.mean in
      let mean =
        t.mean +. (delta *. float_of_int other.n /. float_of_int n_total)
      in
      let m2 =
        t.m2 +. other.m2
        +. delta *. delta
           *. float_of_int t.n *. float_of_int other.n
           /. float_of_int n_total
      in
      t.n <- n_total;
      t.mean <- mean;
      t.m2 <- m2;
      if other.min < t.min then t.min <- other.min;
      if other.max > t.max then t.max <- other.max
    end

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.min

let max t = t.max

let std_error t =
  if t.n < 1 then 0.0 else stddev t /. sqrt (float_of_int t.n)

(* Two-sided 0.975 quantiles of Student's t. *)
let t_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_critical_95 df =
  if df < 1 then invalid_arg "Summary.t_critical_95: df must be >= 1";
  if df <= Array.length t_table then t_table.(df - 1)
  else if df <= 40 then 2.021
  else if df <= 60 then 2.000
  else if df <= 120 then 1.980
  else 1.960

let ci95 t =
  if t.n < 2 then 0.0 else t_critical_95 (t.n - 1) *. std_error t

let overlap a b =
  let lo_a = mean a -. ci95 a and hi_a = mean a +. ci95 a in
  let lo_b = mean b -. ci95 b and hi_b = mean b +. ci95 b in
  lo_a <= hi_b && lo_b <= hi_a

let pp ppf t =
  Format.fprintf ppf "%.3f ± %.3f (n=%d)" (mean t) (ci95 t) t.n
