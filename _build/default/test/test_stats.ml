(* Tests for the statistics library: Welford summaries, merging,
   Student-t confidence intervals. *)

module S = Stats.Summary

let add_all s xs = List.iter (S.add s) xs

let test_mean_variance () =
  let s = S.create () in
  add_all s [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (S.mean s);
  (* population variance is 4; sample variance = 32/7 *)
  Alcotest.(check (float 1e-9)) "sample variance" (32.0 /. 7.0) (S.variance s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (S.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (S.max s);
  Alcotest.(check int) "count" 8 (S.count s)

let test_empty_and_single () =
  let s = S.create () in
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (S.mean s);
  Alcotest.(check (float 0.0)) "empty variance" 0.0 (S.variance s);
  Alcotest.(check (float 0.0)) "empty ci" 0.0 (S.ci95 s);
  S.add s 3.5;
  Alcotest.(check (float 1e-9)) "single mean" 3.5 (S.mean s);
  Alcotest.(check (float 0.0)) "single variance" 0.0 (S.variance s);
  Alcotest.(check (float 0.0)) "single ci" 0.0 (S.ci95 s)

let test_t_table () =
  Alcotest.(check (float 1e-6)) "df=1" 12.706 (S.t_critical_95 1);
  Alcotest.(check (float 1e-6)) "df=9 (paper's 10 trials)" 2.262
    (S.t_critical_95 9);
  Alcotest.(check (float 1e-6)) "df large" 1.960 (S.t_critical_95 1000);
  Alcotest.check_raises "df=0"
    (Invalid_argument "Summary.t_critical_95: df must be >= 1") (fun () ->
      ignore (S.t_critical_95 0))

let test_ci95 () =
  let s = S.create () in
  add_all s [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  (* stddev = sqrt(2.5), se = sqrt(0.5), t(4) = 2.776 *)
  Alcotest.(check (float 1e-6)) "ci95"
    (2.776 *. sqrt 0.5)
    (S.ci95 s)

let test_overlap () =
  let a = S.create () and b = S.create () and c = S.create () in
  add_all a [ 1.0; 1.1; 0.9 ];
  add_all b [ 1.05; 1.15; 0.95 ];
  add_all c [ 5.0; 5.1; 4.9 ];
  Alcotest.(check bool) "close distributions overlap" true (S.overlap a b);
  Alcotest.(check bool) "distant ones do not" false (S.overlap a c)

let prop_merge_equals_pooled =
  QCheck2.Test.make ~name:"merge equals pooled observations" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 50) (float_bound_inclusive 100.0))
        (list_size (int_range 0 50) (float_bound_inclusive 100.0)))
    (fun (xs, ys) ->
      let a = S.create () and b = S.create () and pooled = S.create () in
      add_all a xs;
      add_all b ys;
      add_all pooled (xs @ ys);
      S.merge a b;
      let close u v = abs_float (u -. v) < 1e-6 in
      S.count a = S.count pooled
      && close (S.mean a) (S.mean pooled)
      && close (S.variance a) (S.variance pooled))

let prop_mean_within_bounds =
  QCheck2.Test.make ~name:"mean lies within [min, max]" ~count:300
    QCheck2.Gen.(list_size (int_range 1 100) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = S.create () in
      add_all s xs;
      S.mean s >= S.min s -. 1e-9 && S.mean s <= S.max s +. 1e-9)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "empty and single" `Quick test_empty_and_single;
          Alcotest.test_case "t table" `Quick test_t_table;
          Alcotest.test_case "ci95" `Quick test_ci95;
          Alcotest.test_case "overlap" `Quick test_overlap;
          qtest prop_merge_equals_pooled;
          qtest prop_mean_within_bounds;
        ] );
    ]
