test/test_stats.ml: Alcotest List QCheck2 QCheck_alcotest Stats
