test/test_slr.ml: Alcotest Array Char Int List Option Printf QCheck2 QCheck_alcotest Slr String
