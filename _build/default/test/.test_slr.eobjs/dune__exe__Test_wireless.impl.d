test/test_wireless.ml: Alcotest Array Des Int64 List Printf Wireless
