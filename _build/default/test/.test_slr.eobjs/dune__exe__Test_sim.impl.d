test/test_sim.ml: Alcotest Des Format List Printf Protocols Sim Stats String Traffic Wireless
