test/test_des.ml: Alcotest Array Des List Printf QCheck2 QCheck_alcotest
