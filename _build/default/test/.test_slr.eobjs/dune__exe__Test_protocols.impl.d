test/test_protocols.ml: Alcotest Des Hashtbl List Protocols QCheck2 QCheck_alcotest Slr Wireless
