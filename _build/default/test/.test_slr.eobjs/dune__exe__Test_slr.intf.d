test/test_slr.mli:
