(* Tests for the discrete-event engine: heap, scheduler, RNG. *)

module H = Des.Heap
module E = Des.Engine
module R = Des.Rng

let test_heap_basic () =
  let h = H.create () in
  Alcotest.(check bool) "empty" true (H.is_empty h);
  H.add h ~key:3.0 ~tie:0 "c";
  H.add h ~key:1.0 ~tie:1 "a";
  H.add h ~key:2.0 ~tie:2 "b";
  Alcotest.(check int) "size" 3 (H.size h);
  let _, _, v = H.pop h in
  Alcotest.(check string) "min first" "a" v;
  let _, _, v = H.pop h in
  Alcotest.(check string) "then b" "b" v;
  let _, _, v = H.pop h in
  Alcotest.(check string) "then c" "c" v;
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop: empty heap")
    (fun () -> ignore (H.pop h))

let test_heap_tie_break () =
  let h = H.create () in
  for i = 9 downto 0 do
    H.add h ~key:1.0 ~tie:i i
  done;
  let order = List.map (fun (_, _, v) -> v) (H.to_sorted_list h) in
  Alcotest.(check (list int)) "ties by insertion sequence"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] order

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 200) (float_bound_inclusive 1000.0))
    (fun keys ->
      let h = H.create () in
      List.iteri (fun i k -> H.add h ~key:k ~tie:i ()) keys;
      let drained = List.map (fun (k, _, _) -> k) (H.to_sorted_list h) in
      drained = List.sort compare keys)

let test_engine_ordering () =
  let e = E.create () in
  let log = ref [] in
  ignore (E.schedule e ~delay:2.0 (fun () -> log := "b" :: !log));
  ignore (E.schedule e ~delay:1.0 (fun () -> log := "a" :: !log));
  ignore (E.schedule e ~delay:3.0 (fun () -> log := "c" :: !log));
  E.run e ~until:2.5;
  Alcotest.(check (list string)) "ran a b" [ "b"; "a" ] !log;
  Alcotest.(check (float 1e-9)) "clock capped at until" 2.5 (E.now e);
  E.run e ~until:10.0;
  Alcotest.(check (list string)) "then c" [ "c"; "b"; "a" ] !log;
  Alcotest.(check int) "executed" 3 (E.executed e)

let test_engine_cancel () =
  let e = E.create () in
  let fired = ref false in
  let h = E.schedule e ~delay:1.0 (fun () -> fired := true) in
  Alcotest.(check int) "pending" 1 (E.pending e);
  E.cancel h;
  Alcotest.(check bool) "cancelled" true (E.cancelled h);
  Alcotest.(check int) "pending after cancel" 0 (E.pending e);
  E.run_all e;
  Alcotest.(check bool) "never fired" false !fired;
  (* double cancel is a no-op *)
  E.cancel h;
  Alcotest.(check int) "pending stable" 0 (E.pending e)

let test_engine_nested_schedule () =
  let e = E.create () in
  let times = ref [] in
  ignore
    (E.schedule e ~delay:1.0 (fun () ->
         times := E.now e :: !times;
         ignore (E.schedule e ~delay:0.5 (fun () -> times := E.now e :: !times))));
  E.run_all e;
  Alcotest.(check (list (float 1e-9))) "nested event time" [ 1.5; 1.0 ] !times

let test_engine_same_time_fifo () =
  let e = E.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (E.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  E.run_all e;
  Alcotest.(check (list int)) "FIFO at equal time" [ 4; 3; 2; 1; 0 ] !log

let test_engine_rejects_past () =
  let e = E.create () in
  ignore (E.schedule e ~delay:1.0 (fun () -> ()));
  E.run_all e;
  Alcotest.(check bool) "schedule_at past raises" true
    (try
       ignore (E.schedule_at e ~time:0.5 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_rng_determinism () =
  let a = R.create 42L and b = R.create 42L in
  let xs = List.init 100 (fun _ -> R.bits64 a) in
  let ys = List.init 100 (fun _ -> R.bits64 b) in
  Alcotest.(check bool) "same seed, same stream" true (xs = ys);
  let c = R.create 43L in
  Alcotest.(check bool) "different seed differs" true
    (R.bits64 c <> List.hd xs)

let test_rng_split_independent () =
  let root = R.create 7L in
  let s1 = R.split root "mobility" in
  (* drawing from the root must not perturb the substream definition *)
  let root2 = R.create 7L in
  ignore (R.bits64 root2);
  ignore (R.bits64 root2);
  let s1' = R.split (R.create 7L) "mobility" in
  Alcotest.(check bool) "substream depends only on (seed, tag)" true
    (R.bits64 s1 = R.bits64 s1');
  let s2 = R.split (R.create 7L) "traffic" in
  Alcotest.(check bool) "different tags differ" true
    (R.bits64 (R.split (R.create 7L) "mobility") <> R.bits64 s2)

let test_rng_ranges () =
  let r = R.create 1L in
  for _ = 1 to 1000 do
    let v = R.int r 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let f = R.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5);
    let u = R.uniform r ~lo:(-1.0) ~hi:1.0 in
    Alcotest.(check bool) "uniform in range" true (u >= -1.0 && u < 1.0)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (R.int r 0))

let test_rng_exponential_mean () =
  let r = R.create 5L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. R.exponential r ~mean:60.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "exponential mean ~60 (got %.2f)" mean)
    true
    (mean > 57.0 && mean < 63.0)

let prop_shuffle_is_permutation =
  QCheck2.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck2.Gen.(list_size (int_range 0 50) int)
    (fun xs ->
      let arr = Array.of_list xs in
      R.shuffle (R.create 9L) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "des"
    [
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "tie break" `Quick test_heap_tie_break;
          qtest prop_heap_sorts;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "same-time FIFO" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          qtest prop_shuffle_is_permutation;
        ] );
    ]
