(* The dense-label-set party trick (paper §II): inserting nodes into an
   existing DAG without relabeling any predecessor — plus SLR's built-in
   multipath, and the bounded-set exhaustion that SRP masks with its
   sequence number.

   Run with: dune exec examples/multipath_insertion.exe *)

module F = Slr.Fraction
module Net = Slr.Simple_net.Make (Slr.Ordinal.Bounded_fraction)

(* Part 1: splice fresh relays into a live path, one per round. The path
   endpoint labels never change; each newcomer squeezes strictly between
   its neighbours' labels (Eq. 1's mediant). *)
let insertion_demo () =
  Format.printf "=== inserting relays without relabeling predecessors ===@.";
  let rounds = 8 in
  let nodes = rounds + 3 in
  (* 0 = destination T, 1 = first relay A, 2 = endpoint Q, 3.. = splices *)
  let net = Net.create ~nodes ~dest:0 in
  Net.add_link net 0 1;
  Net.add_link net 1 2;
  (match Net.request net ~src:2 with Net.Routed _ -> () | _ -> assert false);
  Format.printf "initial chain: Q=%a -> A=%a -> T=%a@." F.pp (Net.label net 2)
    F.pp (Net.label net 1) F.pp (Net.label net 0);
  let q_before = Net.label net 2 in
  let current_successor = ref 1 in
  for round = 0 to rounds - 1 do
    let k = 3 + round in
    (* splice k between Q and Q's current successor *)
    Net.add_link net k !current_successor;
    Net.add_link net k 2;
    Net.break_link net 2 !current_successor;
    (match Net.request net ~src:2 with
    | Net.Routed _ -> ()
    | Net.No_route | Net.Label_exhausted _ -> assert false);
    (match Net.check_invariants net with
    | Ok () -> ()
    | Error e -> failwith e);
    Format.printf "round %d: new relay gets label %a (Q still %a, A still %a)@."
      (round + 1) F.pp (Net.label net k) F.pp (Net.label net 2) F.pp
      (Net.label net 1);
    current_successor := k
  done;
  assert (F.equal q_before (Net.label net 2));
  Format.printf "Q's label never moved: %a.@.@." F.pp (Net.label net 2)

(* Part 2: multipath. Give Q two disjoint feasible successors; both stay in
   its successor set, per §II "SLR inherently provides multiple paths". *)
let multipath_demo () =
  Format.printf "=== multipath successor sets ===@.";
  (* 0 = T, 1 = P1, 2 = P2, 3 = Q;  T-P1, T-P2, Q adjacent to both *)
  let net = Net.create ~nodes:4 ~dest:0 in
  Net.add_link net 0 1;
  Net.add_link net 0 2;
  Net.add_link net 1 3;
  (match Net.request net ~src:3 with Net.Routed _ -> () | _ -> assert false);
  (* now bring up the second path and route once more *)
  Net.break_link net 1 3;
  Net.add_link net 2 3;
  (match Net.request net ~src:3 with Net.Routed _ -> () | _ -> assert false);
  Net.add_link net 1 3;
  (match Net.request net ~src:3 with Net.Routed _ -> () | _ -> assert false);
  let succs = Net.successors net 3 in
  Format.printf "Q's successor set: %s@."
    (String.concat ", "
       (List.map
          (fun (i, l) -> Format.asprintf "node %d with label %a" i F.pp l)
          succs));
  Format.printf "losing either successor leaves a working route — no new \
                 route computation needed.@.@."

(* Part 3: the worst-case Fibonacci splitting chain. Bounded 32-bit
   fractions run dry after exactly 45 splits (the paper's bound); the
   Bignat-backed unbounded set never does, trading label width instead. *)
let exhaustion_demo () =
  Format.printf "=== label exhaustion: bounded vs unbounded ===@.";
  Format.printf "32-bit fractions: worst-case splits before overflow = %d@."
    (F.max_splits ());
  let module B = Slr.Bigfrac in
  (* always split the last two labels: denominators follow Fibonacci *)
  let rec chase a b k widest =
    if k = 0 then widest
    else
      let m = B.mediant a b in
      chase b m (k - 1) (Stdlib.max widest (B.width_bits m))
  in
  let widest = chase B.zero B.one 200 0 in
  Format.printf
    "unbounded fractions after 200 worst-case splits: still splitting, \
     widest label %d bits (vs 64 for SRP's bounded pair).@."
    widest;
  Format.printf
    "SRP's answer: keep the 64-bit label and let the destination's sequence \
     number reset the ordering on the rare overflow.@."

let () =
  insertion_demo ();
  multipath_demo ();
  exhaustion_demo ()
