(* Quickstart: the paper's Examples 1 and 2 (Figs. 1-2), executed on the
   abstract SLR machine with the proper-fraction label set, then one real
   SRP simulation.

   Run with: dune exec examples/quickstart.exe *)

module Net = Slr.Simple_net.Make (Slr.Ordinal.Bounded_fraction)

(* Node numbering used throughout: T=0 A=1 B=2 C=3 D=4 E=5 F=6 G=7 H=8 *)
let name = [| "T"; "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H" |]

let print_labels net ids =
  List.iter
    (fun i ->
      Format.printf "  %s: %a%s@." name.(i) Slr.Fraction.pp (Net.label net i)
        (if Net.has_route net i then "" else "  (no route)"))
    ids

let () =
  Format.printf "=== Example 1 (Fig. 1): initial labeling of a line ===@.";
  (* T - A - B - C - D - E *)
  let net = Net.create ~nodes:9 ~dest:0 in
  List.iter
    (fun (a, b) -> Net.add_link net a b)
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ];
  (match Net.request net ~src:5 with
  | Net.Routed { replier; reply_path } ->
      Format.printf "E requested a route; %s replied; reply path %s@."
        name.(replier)
        (String.concat "->" (List.map (fun i -> name.(i)) reply_path))
  | Net.No_route -> Format.printf "no route?!@."
  | Net.Label_exhausted i -> Format.printf "label exhausted at %d?!@." i);
  Format.printf "labels after the computation (paper: 5/6 4/5 3/4 2/3 1/2 0/1):@.";
  print_labels net [ 5; 4; 3; 2; 1; 0 ];
  (match Net.check_invariants net with
  | Ok () -> Format.printf "topological order verified: loop-free.@."
  | Error e -> Format.printf "INVARIANT VIOLATION: %s@." e);

  Format.printf "@.=== Example 2 (Fig. 2): inserting nodes F, G, H ===@.";
  (* F, G, H once knew routes to T, so they carry labels but no successors.
     The paper gives them labels 2/3, 2/3 and 3/4. *)
  let net2 = Net.create ~nodes:9 ~dest:0 in
  List.iter
    (fun (a, b) -> Net.add_link net2 a b)
    [ (0, 1); (1, 2); (2, 6); (6, 7); (7, 8) ];
  (* replay history so A and B hold the Fig. 2 labels 1/2 and 2/3 *)
  (match Net.request net2 ~src:2 with
  | Net.Routed _ -> ()
  | _ -> assert false);
  (* F, G and H "once knew a route to T, so they have node labels" —
     seed the stale labels Fig. 2 starts from *)
  Net.seed_label net2 6 (Slr.Fraction.make ~num:2 ~den:3);
  Net.seed_label net2 7 (Slr.Fraction.make ~num:2 ~den:3);
  Net.seed_label net2 8 (Slr.Fraction.make ~num:3 ~den:4);
  Format.printf "stale labels before H's request:@.";
  print_labels net2 [ 8; 7; 6; 2; 1; 0 ];
  (match Net.request net2 ~src:8 with
  | Net.Routed { replier; _ } ->
      Format.printf "H requested; %s replied (A is the first in-order node).@."
        name.(replier)
  | _ -> Format.printf "request failed?!@.");
  Format.printf
    "labels after re-labeling (paper: H 3/4, G 2/3, F 5/8, B 3/5, A 1/2):@.";
  print_labels net2 [ 8; 7; 6; 2; 1; 0 ];
  (match Net.check_invariants net2 with
  | Ok () -> Format.printf "topological order verified: loop-free.@."
  | Error e -> Format.printf "INVARIANT VIOLATION: %s@." e);

  Format.printf "@.=== A real SRP run (20 nodes, light traffic) ===@.";
  let config =
    {
      Sim.Config.small with
      nodes = 20;
      terrain = Wireless.Terrain.make ~width:800.0 ~height:400.0;
      flows = 3;
      duration = 30.0;
      pause = 900.0;
      protocol = Sim.Config.Srp;
    }
  in
  let result = Sim.Runner.run config in
  Format.printf "%a@." Sim.Metrics.pp_result result;
  Format.printf
    "(SRP's average sequence number is %.2f — the destination never needed \
     to reset a path.)@."
    result.Sim.Metrics.avg_seqno
