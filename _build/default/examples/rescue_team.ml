(* Rescue-team scenario (the paper's motivating example: "emergency rescue
   workers rapidly establishing temporary networks").

   Forty responders sweep a 1 km x 400 m disaster strip at walking-to-running
   speeds with no pauses, while six command-post flows stream telemetry.
   We run the identical scripted scenario under SRP and under AODV and
   compare delivery, overhead, and how hard each protocol leans on its
   sequence numbers.

   Run with: dune exec examples/rescue_team.exe *)

let scenario protocol =
  {
    Sim.Config.reproduction with
    protocol;
    nodes = 40;
    terrain = Wireless.Terrain.make ~width:1000.0 ~height:400.0;
    pause = 0.0;
    speed_min = 1.0;
    speed_max = 6.0;
    duration = 120.0;
    flows = 6;
    seed = 7;
  }

let () =
  Format.printf
    "Rescue team: 40 nodes, 1000x400 m, 1-6 m/s constant motion, 6 flows, \
     120 s@.@.";
  let srp = Sim.Runner.run (scenario Sim.Config.Srp) in
  let aodv = Sim.Runner.run (scenario Sim.Config.Aodv) in
  let row name (r : Sim.Metrics.result) =
    Format.printf "%-5s delivery %5.3f   load %6.3f   latency %6.3fs   avg \
                   seqno %6.2f@."
      name r.Sim.Metrics.delivery_ratio r.Sim.Metrics.network_load
      r.Sim.Metrics.latency r.Sim.Metrics.avg_seqno
  in
  row "SRP" srp;
  row "AODV" aodv;
  Format.printf
    "@.Same mobility, same traffic. SRP repaired every broken path by \
     splitting labels locally (sequence numbers untouched: %.2f); AODV had \
     to re-flood and re-number (average sequence number %.2f).@."
    srp.Sim.Metrics.avg_seqno aodv.Sim.Metrics.avg_seqno;
  Format.printf
    "Control traffic: SRP %d packets vs AODV %d. (At this light load both \
     are cheap; SRP's overhead advantage appears as load rises toward \
     saturation — see the fig5 bench.)@."
    srp.Sim.Metrics.control_tx aodv.Sim.Metrics.control_tx
