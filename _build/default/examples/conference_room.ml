(* Conference-room scenario (the paper's other motivating example: "laptops
   or PDAs with wireless interfaces in a meeting room").

   Twenty-five stationary devices in a 300 x 200 m hall — every node hears
   almost every other — exchanging many short flows. The interesting SRP
   behaviour here is label stability: routes are one or two hops, labels are
   assigned once, and the destination-controlled sequence number never
   moves. We also run the loop-freedom verifier throughout.

   Run with: dune exec examples/conference_room.exe *)

let () =
  let config =
    {
      Sim.Config.reproduction with
      protocol = Sim.Config.Srp;
      nodes = 25;
      terrain = Wireless.Terrain.make ~width:300.0 ~height:200.0;
      pause = 900.0;
      duration = 90.0;
      flows = 8;
      flow_mean_duration = 15.0;
      seed = 11;
    }
  in
  Format.printf
    "Conference room: 25 static nodes, 300x200 m, 8 churned flows, 90 s@.";
  match Sim.Loopcheck.run config ~interval:1.0 with
  | Ok (result, sweeps, edges) ->
      Format.printf "%a@." Sim.Metrics.pp_result result;
      Format.printf
        "loop-freedom invariant held through %d sweeps (%d successor edges \
         checked) — Theorem 3 in action.@."
        sweeps edges;
      Format.printf
        "max feasible-distance denominator: %d (32-bit bound %d; no reset \
         needed).@."
        result.Sim.Metrics.max_denominator Slr.Fraction.bound
  | Error violation -> Format.printf "VIOLATION: %s@." violation
