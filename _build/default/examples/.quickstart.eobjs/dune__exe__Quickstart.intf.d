examples/quickstart.mli:
