examples/multipath_insertion.ml: Format List Slr Stdlib String
