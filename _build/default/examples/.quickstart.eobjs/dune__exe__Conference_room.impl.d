examples/conference_room.ml: Format Sim Slr Wireless
