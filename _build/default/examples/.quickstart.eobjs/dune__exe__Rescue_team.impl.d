examples/rescue_team.ml: Format Sim Wireless
