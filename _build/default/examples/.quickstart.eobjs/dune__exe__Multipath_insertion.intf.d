examples/multipath_insertion.mli:
