examples/conference_room.mli:
