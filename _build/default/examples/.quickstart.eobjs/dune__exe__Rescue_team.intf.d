examples/rescue_team.mli:
