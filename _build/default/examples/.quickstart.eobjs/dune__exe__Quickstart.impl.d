examples/quickstart.ml: Array Format List Sim Slr String Wireless
