(* manet_sim — run single simulations, campaigns, or the SRP loop-freedom
   verifier from the command line. *)

open Cmdliner

let protocol_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "srp" -> Ok Sim.Config.Srp
    | "ldr" -> Ok Sim.Config.Ldr
    | "aodv" -> Ok Sim.Config.Aodv
    | "dsr" -> Ok Sim.Config.Dsr
    | "olsr" -> Ok Sim.Config.Olsr
    | _ -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))
  in
  let print ppf p = Format.pp_print_string ppf (Sim.Config.protocol_name p) in
  Arg.conv (parse, print)

let config_term =
  let open Term.Syntax in
  let+ nodes =
    Arg.(value & opt int 100 & info [ "nodes" ] ~doc:"Number of nodes.")
  and+ flows =
    Arg.(
      value
      & opt int Sim.Config.reproduction.Sim.Config.flows
      & info [ "flows" ] ~doc:"Concurrent CBR flows (paper: 30).")
  and+ pause =
    Arg.(
      value & opt float 0.0
      & info [ "pause" ] ~doc:"Random-waypoint pause time in seconds.")
  and+ duration =
    Arg.(
      value & opt float 120.0
      & info [ "duration" ] ~doc:"Simulated seconds (paper: 900).")
  and+ seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Trial seed.")
  and+ packet_rate =
    Arg.(
      value & opt float 4.0
      & info [ "rate" ] ~doc:"Packets per second per flow.")
  in
  {
    Sim.Config.reproduction with
    nodes;
    flows;
    pause;
    duration;
    seed;
    packet_rate;
  }

let run_cmd =
  let doc = "Run one simulation and print the paper's metrics." in
  let term =
    let open Term.Syntax in
    let+ config = config_term
    and+ protocol =
      Arg.(
        value
        & opt protocol_conv Sim.Config.Srp
        & info [ "protocol"; "p" ] ~doc:"Routing protocol.")
    in
    let result = Sim.Runner.run { config with protocol } in
    Format.printf "%a@." Sim.Metrics.pp_result result;
    List.iter
      (fun (reason, count) -> Format.printf "  drop[%s] = %d@." reason count)
      result.Sim.Metrics.drop_reasons
  in
  Cmd.v (Cmd.info "run" ~doc) term

let campaign_cmd =
  let doc =
    "Run the full campaign (protocols x pause times x trials) and print \
     Table I and Figures 3-7."
  in
  let term =
    let open Term.Syntax in
    let+ config = config_term
    and+ trials =
      Arg.(value & opt int 3 & info [ "trials" ] ~doc:"Trials per point.")
    and+ quiet =
      Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress.")
    in
    let progress = if quiet then fun _ -> () else prerr_endline in
    let pause_scale = Stdlib.min 1.0 (config.Sim.Config.duration /. 900.0) in
    let campaign =
      Sim.Experiment.run ~pause_scale ~base:config
        ~protocols:Sim.Config.all_protocols
        ~pauses:Sim.Config.paper_pause_times ~trials ~progress
    in
    Format.printf "%a@." Sim.Report.all campaign
  in
  Cmd.v (Cmd.info "campaign" ~doc) term

let check_cmd =
  let doc =
    "Run SRP under the loop-freedom verifier (Theorem 3): every successor \
     edge must descend in label order and every successor graph must stay \
     acyclic."
  in
  let term =
    let open Term.Syntax in
    let+ config = config_term
    and+ interval =
      Arg.(
        value & opt float 1.0
        & info [ "interval" ] ~doc:"Seconds between invariant sweeps.")
    in
    match
      Sim.Loopcheck.run { config with protocol = Sim.Config.Srp } ~interval
    with
    | Ok (result, sweeps, edges) ->
        Format.printf
          "loop-freedom verified: %d sweeps, %d successor edges checked@.%a@."
          sweeps edges Sim.Metrics.pp_result result
    | Error message ->
        Format.printf "VIOLATION: %s@." message;
        exit 1
  in
  Cmd.v (Cmd.info "check" ~doc) term

let labels_cmd =
  let doc = "Show SLR label arithmetic: mediants, splits, the 45-split bound." in
  let show () =
    let module F = Slr.Fraction in
    Format.printf "32-bit proper fractions: bound = %d@." F.bound;
    Format.printf "worst-case mediant splits before overflow: %d@."
      (F.max_splits ());
    let a = F.make ~num:1 ~den:2 and b = F.make ~num:2 ~den:3 in
    (match F.mediant a b with
    | Some m -> Format.printf "mediant(%a, %a) = %a@." F.pp a F.pp b F.pp m
    | None -> ());
    match Slr.Farey.simplest_between ~lo:a ~hi:b with
    | Some s ->
        Format.printf "simplest fraction in (%a, %a) = %a (Farey)@." F.pp a
          F.pp b F.pp s
    | None -> ()
  in
  let term = Term.(const show $ const ()) in
  Cmd.v (Cmd.info "labels" ~doc) term

let () =
  let doc =
    "Reproduction of 'Loop-Free Routing Using a Dense Label Set in Wireless \
     Networks' (ICDCS 2004)."
  in
  let info = Cmd.info "manet_sim" ~doc ~version:"1.0.0" in
  exit (Cmd.eval (Cmd.group info [ run_cmd; campaign_cmd; check_cmd; labels_cmd ]))
