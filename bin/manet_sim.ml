(* manet_sim — run single simulations, campaigns, or the SRP loop-freedom
   verifier from the command line. *)

open Cmdliner

let protocol_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "srp" -> Ok Sim.Config.Srp
    | "ldr" -> Ok Sim.Config.Ldr
    | "aodv" -> Ok Sim.Config.Aodv
    | "dsr" -> Ok Sim.Config.Dsr
    | "olsr" -> Ok Sim.Config.Olsr
    | _ -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))
  in
  let print ppf p = Format.pp_print_string ppf (Sim.Config.protocol_name p) in
  Arg.conv (parse, print)

let labels_conv =
  let parse s =
    match Slr.Label_set.of_name s with
    | Some id -> Ok id
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown label set %S (mediant|farey|bigfrac|lex)"
                s))
  in
  let print ppf id = Format.pp_print_string ppf (Slr.Label_set.name id) in
  Arg.conv (parse, print)

let labels_term =
  Arg.(
    value
    & opt labels_conv Slr.Label_set.default
    & info [ "labels" ] ~docv:"SET"
        ~doc:
          "Dense label set SRP mints feasible distances from: $(b,mediant) \
           (the paper's bounded 32-bit fractions, default), $(b,farey) \
           (minimal-denominator splits), $(b,bigfrac) (unbounded fractions \
           — wider labels, never resets), or $(b,lex) (lexicographic byte \
           strings). Other protocols ignore it.")

let channel_conv =
  let parse s =
    match Sim.Config.channel_of_name s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown channel %S (grid|naive)" s))
  in
  let print ppf c = Format.pp_print_string ppf (Sim.Config.channel_name c) in
  Arg.conv (parse, print)

let channel_term =
  Arg.(
    value
    & opt channel_conv Sim.Config.Grid
    & info [ "channel" ] ~docv:"PATH"
        ~doc:
          "Neighbour-sweep implementation: $(b,grid) (spatial hash, the \
           default) or $(b,naive) (the O(n²) full scan kept as the \
           property-tested oracle). The two are observationally identical; \
           only wall-clock speed differs.")

(* --scenario and --scale stay plain strings: unknown names must exit 2
   with the registry listing (an Arg.conv parse failure would exit 124). *)
let scenario_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:
          "Named workload: one name bundles a mobility model, a traffic \
           model and an optional fault or adversary plan into a seeded, \
           reproducible scenario. $(b,default) is byte-identical to \
           running with no scenario at all. An unknown name lists the \
           registry and exits 2.")

let scale_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "scale" ] ~docv:"PRESET"
        ~doc:
          "Scale preset: node count, terrain and flow count at the paper's \
           node density ($(b,100), $(b,1k) or $(b,5k)). Overrides --nodes \
           and --flows; composes with --scenario and --labels. An unknown \
           preset lists the choices and exits 2.")

let resolve_scale cmd name =
  match Sim.Config.scale_of_name name with
  | Some s -> s
  | None ->
      Printf.eprintf "%s: unknown scale %S\nscale presets: %s\n" cmd name
        (String.concat ", " Sim.Config.scale_names);
      exit 2

let apply_scale cmd scale config =
  match scale with
  | None -> config
  | Some name -> Sim.Config.apply_scale (resolve_scale cmd name) config

let resolve_scenario cmd name =
  match Sim.Scenario.find name with
  | Some sc -> sc
  | None ->
      Printf.eprintf
        "%s: unknown scenario %S\nregistered scenarios: %s\n" cmd name
        (String.concat ", " Sim.Scenario.names);
      exit 2

(* workload-only commands (check, fuzz) reject the adversarial entry *)
let workload_scenario cmd name =
  let sc = resolve_scenario cmd name in
  if Sim.Scenario.is_adversarial sc then begin
    Printf.eprintf
      "%s: scenario %S is adversarial; use `run --scenario` or `campaign \
       --scenario` to replay it\n"
      cmd sc.Sim.Scenario.name;
    exit 2
  end;
  sc

(* --faults switches the whole subsystem on; the knobs below tune it and
   are inert without it. Defaults mirror Faults.Spec.default. *)
let faults_term =
  let open Term.Syntax in
  let d = Faults.Spec.default in
  let+ enabled =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Enable fault injection: link flaps, node crashes, partitions \
             and packet-loss bursts on a dedicated RNG substream.")
  and+ flap_rate =
    Arg.(
      value
      & opt float d.Faults.Spec.flap_rate
      & info [ "flap-rate" ] ~doc:"Link flaps per second, network-wide.")
  and+ flap_down =
    Arg.(
      value
      & opt float d.Faults.Spec.flap_down_mean
      & info [ "flap-down" ] ~doc:"Mean seconds a flapped link stays down.")
  and+ crashes =
    Arg.(
      value
      & opt int d.Faults.Spec.crashes
      & info [ "crashes" ] ~doc:"Node crashes over the run.")
  and+ crash_down =
    Arg.(
      value
      & opt float d.Faults.Spec.crash_down_mean
      & info [ "crash-down" ] ~doc:"Mean seconds a crashed node stays down.")
  and+ partitions =
    Arg.(
      value
      & opt int d.Faults.Spec.partitions
      & info [ "partitions" ] ~doc:"Network partitions over the run.")
  and+ partition_down =
    Arg.(
      value
      & opt float d.Faults.Spec.partition_mean
      & info [ "partition-down" ] ~doc:"Mean seconds a partition lasts.")
  and+ burst_rate =
    Arg.(
      value
      & opt float d.Faults.Spec.burst_rate
      & info [ "burst-rate" ] ~doc:"Packet-loss bursts per second.")
  and+ burst_down =
    Arg.(
      value
      & opt float d.Faults.Spec.burst_mean
      & info [ "burst-down" ] ~doc:"Mean seconds a loss burst lasts.")
  and+ burst_drop =
    Arg.(
      value
      & opt float d.Faults.Spec.burst_drop_p
      & info [ "burst-drop" ]
          ~doc:"Per-frame drop probability during a burst.")
  in
  if not enabled then Faults.Spec.none
  else
    {
      Faults.Spec.flap_rate;
      flap_down_mean = flap_down;
      crashes;
      crash_down_mean = crash_down;
      partitions;
      partition_mean = partition_down;
      burst_rate;
      burst_mean = burst_down;
      burst_drop_p = burst_drop;
      extra = [];
    }

let config_term =
  let open Term.Syntax in
  let+ nodes =
    Arg.(value & opt int 100 & info [ "nodes" ] ~doc:"Number of nodes.")
  and+ flows =
    Arg.(
      value
      & opt int Sim.Config.reproduction.Sim.Config.flows
      & info [ "flows" ] ~doc:"Concurrent CBR flows (paper: 30).")
  and+ pause =
    Arg.(
      value & opt float 0.0
      & info [ "pause" ] ~doc:"Random-waypoint pause time in seconds.")
  and+ duration =
    Arg.(
      value & opt float 120.0
      & info [ "duration" ] ~doc:"Simulated seconds (paper: 900).")
  and+ seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Trial seed.")
  and+ packet_rate =
    Arg.(
      value & opt float 4.0
      & info [ "rate" ] ~doc:"Packets per second per flow.")
  and+ faults = faults_term
  and+ labels = labels_term
  and+ channel = channel_term
  in
  Sim.Config.with_labels
    {
      Sim.Config.reproduction with
      nodes;
      flows;
      pause;
      duration;
      seed;
      packet_rate;
      faults;
      channel;
    }
    labels

let jobs_term ~doc =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* --prof / --prof-out: wall-clock profiling of the real hot paths. The
   snapshot is taken after the work completes; simulated behaviour is
   untouched (spans are wall-clock side-state outside the DES), so a
   profiled run computes the exact same results. *)
let prof_term =
  let open Term.Syntax in
  let+ prof =
    Arg.(
      value & flag
      & info [ "prof" ]
          ~doc:
            "Profile the run: wall-clock span timers on the hot paths \
             (event dispatch by kind, channel transmit, grid rebuilds, \
             protocol handlers, trace writes) plus per-worker-domain GC \
             deltas. Appends a perf_profile member to --json output and a \
             Profile section to the report. Simulated results are \
             unchanged.")
  and+ prof_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prof-out" ] ~docv:"FILE"
          ~doc:
            "Write the profile as Prometheus text exposition to $(docv) \
             (implies --prof).")
  in
  (prof || prof_out <> None, prof_out)

(* append the profile to the envelope, print the human section, export
   Prometheus text — the one place every profiled command funnels through *)
let emit_profile snapshot ~prof_out envelope =
  Format.printf "@.%a" Sim.Report.profile snapshot;
  Option.iter
    (fun path -> Obs.Export.write_prometheus path snapshot)
    prof_out;
  Option.map (fun j -> Sim.Report.add_profile j snapshot) envelope

let write_json path json =
  let oc = open_out path in
  output_string oc (Trace.Json.to_string json);
  output_char oc '\n';
  close_out oc

let run_cmd =
  let doc = "Run one simulation and print the paper's metrics." in
  let term =
    let open Term.Syntax in
    let+ config = config_term
    and+ protocol =
      Arg.(
        value
        & opt protocol_conv Sim.Config.Srp
        & info [ "protocol"; "p" ] ~doc:"Routing protocol.")
    and+ trace_file =
      Arg.(
        value
        & opt (some string) None
        & info [ "trace-file" ]
            ~doc:
              "Stream the structured event trace (packet lifecycle, routing \
               control, MAC, faults) to $(docv) as JSONL, one record per \
               line. Same seed, same bytes.")
    and+ sample_every =
      Arg.(
        value & opt float 0.0
        & info [ "sample-every" ]
            ~doc:
              "With --trace-file: also sample whole-network gauges (route \
               tables, pending buffers, MAC queues, engine liveness) every \
               $(docv) simulated seconds.")
    and+ json_file =
      Arg.(
        value
        & opt (some string) None
        & info [ "json" ]
            ~doc:"Write the run's config and metrics to $(docv) as JSON.")
    and+ jobs =
      jobs_term
        ~doc:
          "Worker domains. A single run is one sequential event loop, so \
           this is accepted for interface symmetry with $(b,campaign) and \
           $(b,fuzz) but values above 1 change nothing here."
    and+ prof, prof_out = prof_term
    and+ scenario = scenario_term
    and+ scale = scale_term
    in
    ignore (jobs : int);
    if prof then Obs.enable ();
    let config = { config with Sim.Config.protocol } in
    let config = apply_scale "run" scale config in
    match Option.map (resolve_scenario "run") scenario with
    | Some sc when Sim.Scenario.is_adversarial sc ->
        (* replay the van Glabbeek attack for this protocol only: the
           verdict is the output; exit 1 when the monitor saw a loop *)
        let v = Sim.Scenario.run_adversarial ~protocol in
        Format.printf "scenario %s: %s@.%a@." sc.Sim.Scenario.name
          sc.Sim.Scenario.summary Sim.Scenario.pp_verdict v;
        if Sim.Scenario.loop_detected v then exit 1
    | sc ->
    let config =
      match sc with Some sc -> Sim.Scenario.apply sc config | None -> config
    in
    let trace_oc = Option.map open_out trace_file in
    let trace =
      match trace_oc with
      | Some oc -> Trace.jsonl ~clock:(fun () -> 0.0) oc
      | None -> Trace.null
    in
    let started = Unix.gettimeofday () in
    let result =
      (* close the trace channel even when the run aborts, so a crashed
         run still leaves a valid JSONL prefix on disk *)
      Fun.protect
        ~finally:(fun () -> Option.iter close_out trace_oc)
        (fun () -> Sim.Runner.run ~trace ~sample_every config)
    in
    let wall = Unix.gettimeofday () -. started in
    Format.printf "%a" Sim.Report.run result;
    (* engine stats go to stderr: stdout stays byte-identical across
       traced/untraced runs of the same seed *)
    Format.eprintf "%s@."
      (Obs.Export.engine_line ~events:result.Sim.Metrics.engine_events ~wall);
    let envelope =
      match json_file with
      | Some _ -> Some (Sim.Report.run_json config result)
      | None -> None
    in
    let envelope =
      if prof then emit_profile (Obs.snapshot ()) ~prof_out envelope
      else envelope
    in
    Option.iter
      (fun path -> write_json path (Option.get envelope))
      json_file
  in
  Cmd.v (Cmd.info "run" ~doc) term

let campaign_cmd =
  let doc =
    "Run the full campaign (protocols x pause times x trials) and print \
     Table I and Figures 3-7."
  in
  let term =
    let open Term.Syntax in
    let+ config = config_term
    and+ trials =
      Arg.(value & opt int 3 & info [ "trials" ] ~doc:"Trials per point.")
    and+ quiet =
      Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress.")
    and+ json_file =
      Arg.(
        value
        & opt (some string) None
        & info [ "json" ]
            ~doc:
              "Write the campaign (per-cell metric summaries over the \
               protocol and pause axes) to $(docv) as JSON.")
    and+ jobs =
      jobs_term
        ~doc:
          "Run (protocol, pause, trial) cells on $(docv) worker domains. \
           Per-cell results are merged in canonical order, so the report \
           and --json output are byte-identical to -j 1; only stderr \
           progress interleaving varies."
    and+ resume =
      Arg.(
        value
        & opt (some string) None
        & info [ "resume" ] ~docv:"FILE"
            ~doc:
              "Journal every resolved cell to $(docv) (append-only JSONL) \
               and, when the file already holds cells of this exact \
               campaign, restore them instead of re-running. A resumed \
               campaign's report and --json output are byte-identical to a \
               straight-through run.")
    and+ cell_timeout =
      Arg.(
        value & opt float 0.0
        & info [ "cell-timeout" ] ~docv:"SEC"
            ~doc:
              "Wall-clock budget per cell attempt; a cell past its budget \
               is aborted (cooperatively, at the next engine watchdog \
               check) and handled like a crash. 0 disables the timeout.")
    and+ retries =
      Arg.(
        value & opt int 1
        & info [ "retries" ] ~docv:"N"
            ~doc:
              "Re-run a crashed or timed-out cell up to $(docv) more times \
               (deterministic exponential backoff) before quarantining it.")
    and+ fail_fast =
      Arg.(
        value & flag
        & info [ "fail-fast" ]
            ~doc:
              "Abort the whole campaign on the first cell failure instead \
               of retrying and quarantining.")
    and+ sabotage =
      Arg.(
        value
        & opt (some string) None
        & info [ "sabotage" ] ~docv:"SPEC"
            ~doc:
              "Deterministic failure injection for testing the supervisor: \
               MODE:PROTOCOL:PAUSE:TRIAL[@FAILS] with MODE crash or hang \
               (e.g. crash:AODV:0:1, or crash:SRP:0:0@1 to fail only the \
               first attempt). Also read from MANET_SABOTAGE.")
    and+ prof, prof_out = prof_term
    and+ scenario = scenario_term
    and+ scale = scale_term
    in
    if prof then Obs.enable ();
    let config = apply_scale "campaign" scale config in
    match Option.map (resolve_scenario "campaign") scenario with
    | Some sc when Sim.Scenario.is_adversarial sc ->
        (* adversarial campaign: replay the attack against every protocol
           and print one verdict per line. The suite fails (exit 1) only
           when SRP — provably loop-free — is caught looping. *)
        Format.printf "scenario %s: %s@." sc.Sim.Scenario.name
          sc.Sim.Scenario.summary;
        let verdicts = Sim.Scenario.run_adversarial_all () in
        List.iter
          (fun v -> Format.printf "%a@." Sim.Scenario.pp_verdict v)
          verdicts;
        let srp_looped =
          List.exists
            (fun v ->
              v.Sim.Scenario.vprotocol = Sim.Config.Srp
              && Sim.Scenario.loop_detected v)
            verdicts
        in
        if srp_looped then exit 1
    | sc ->
    let config =
      match sc with Some sc -> Sim.Scenario.apply sc config | None -> config
    in
    (* live meter only on an interactive stderr: piped/redirected runs
       (CI byte-comparisons included) see exactly the historical stream *)
    let meter =
      if (not quiet) && Unix.isatty Unix.stderr then
        Some
          (Obs.Progress.create
             ~total:
               (List.length Sim.Config.all_protocols
               * List.length Sim.Config.paper_pause_times
               * trials)
             ())
      else None
    in
    let progress =
      if quiet then fun _ -> ()
      else
        match meter with
        | Some m -> Obs.Progress.interject m
        | None -> prerr_endline
    in
    let pause_scale = Stdlib.min 1.0 (config.Sim.Config.duration /. 900.0) in
    let policy =
      if fail_fast then Sim.Supervisor.fail_fast
      else
        {
          Sim.Supervisor.default with
          Sim.Supervisor.cell_timeout;
          retries = Stdlib.max 0 retries;
        }
    in
    let sabotage =
      match sabotage with
      | Some spec -> (
          match Sim.Sabotage.of_string spec with
          | Ok t -> Some t
          | Error m ->
              prerr_endline ("campaign: " ^ m);
              exit 2)
      | None -> Sim.Sabotage.from_env ()
    in
    match
      Fun.protect
        ~finally:(fun () -> Option.iter Obs.Progress.finish meter)
        (fun () ->
          Sim.Experiment.run ~policy ?checkpoint:resume ?sabotage ?meter
            ~jobs ~pause_scale ~base:config
            ~protocols:Sim.Config.all_protocols
            ~pauses:Sim.Config.paper_pause_times ~trials ~progress ())
    with
    | campaign ->
        Format.printf "%a@." Sim.Report.all campaign;
        let envelope =
          match json_file with
          | Some _ -> Some (Sim.Report.campaign_json campaign)
          | None -> None
        in
        let envelope =
          if prof then emit_profile (Obs.snapshot ()) ~prof_out envelope
          else envelope
        in
        Option.iter
          (fun path -> write_json path (Option.get envelope))
          json_file
    | exception Sim.Pool.Cell_error { cell; exn } ->
        Format.eprintf "campaign: aborted by cell %s: %s@." cell
          (Printexc.to_string exn);
        exit 1
    | exception Sim.Experiment.Resume_error m ->
        Format.eprintf "campaign: %s@." m;
        exit 2
  in
  Cmd.v (Cmd.info "campaign" ~doc) term

let check_cmd =
  let doc =
    "Run SRP under the loop-freedom verifier (Theorem 3): every successor \
     edge must descend in label order and every successor graph must stay \
     acyclic."
  in
  let term =
    let open Term.Syntax in
    let+ config = config_term
    and+ interval =
      Arg.(
        value & opt float 1.0
        & info [ "interval" ] ~doc:"Seconds between invariant sweeps.")
    and+ scenario = scenario_term
    and+ scale = scale_term
    in
    let config = apply_scale "check" scale config in
    let config =
      match Option.map (workload_scenario "check") scenario with
      | Some sc -> Sim.Scenario.apply sc config
      | None -> config
    in
    (* faulted runs use the online monitor: per-mutation checks against the
       stored successor orderings, robust to post-crash label regression *)
    let faulted = not (Faults.Spec.is_none config.Sim.Config.faults) in
    let verify =
      if faulted then Sim.Loopcheck.run_online else Sim.Loopcheck.run
    in
    match verify { config with protocol = Sim.Config.Srp } ~interval with
    | Ok (result, checks, edges) ->
        Format.printf
          "loop-freedom verified (%s): %d %s, %d successor edges checked@.%a"
          (if faulted then "online monitor" else "periodic sweeps")
          checks
          (if faulted then "checks" else "sweeps")
          edges Sim.Report.run result
    | Error message ->
        Format.printf "VIOLATION: %s@." message;
        exit 1
  in
  Cmd.v (Cmd.info "check" ~doc) term

(* --------------------------------------------------------------------- *)
(* trace: flight recorder and JSON validator over emitted files           *)

let read_lines path =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | line -> loop (if String.trim line = "" then acc else line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  loop []

let parse_follow s =
  match String.index_opt s ':' with
  | None -> (
      match int_of_string_opt s with
      | Some flow -> Ok (flow, None)
      | None -> Error (`Msg (Printf.sprintf "bad flow spec %S" s)))
  | Some i -> (
      let flow = String.sub s 0 i in
      let seq = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt flow, int_of_string_opt seq) with
      | Some flow, Some seq -> Ok (flow, Some seq)
      | _ -> Error (`Msg (Printf.sprintf "bad flow spec %S" s)))

let follow_conv =
  Arg.conv
    ( parse_follow,
      fun ppf (flow, seq) ->
        match seq with
        | None -> Format.fprintf ppf "%d" flow
        | Some s -> Format.fprintf ppf "%d:%d" flow s )

(* A record is on the packet's flight path when its flow (and, if given,
   seq) members match. Gauge/fault/MAC records carry no flow and never
   match. *)
let record_matches ~flow ~seq json =
  let module J = Trace.Json in
  let int_member name =
    match J.member name json with Some (J.Int i) -> Some i | _ -> None
  in
  int_member "flow" = Some flow
  && match seq with None -> true | Some s -> int_member "seq" = Some s

let pp_trace_record ppf json =
  let module J = Trace.Json in
  let num = function
    | J.Int i -> string_of_int i
    | J.Float f -> J.float_str f
    | J.String s -> s
    | j -> J.to_string j
  in
  let t = match J.member "t" json with Some j -> num j | None -> "?" in
  let node = match J.member "node" json with Some j -> num j | None -> "?" in
  let ev = match J.member "ev" json with Some j -> num j | None -> "?" in
  Format.fprintf ppf "%10s  node %4s  %-13s" t node ev;
  (match json with
  | J.Obj members ->
      List.iter
        (fun (k, v) ->
          if k <> "t" && k <> "node" && k <> "ev" then
            Format.fprintf ppf " %s=%s" k (num v))
        members
  | _ -> ());
  Format.fprintf ppf "@."

let trace_cmd =
  let doc =
    "Inspect emitted telemetry: replay one packet's hop-by-hop path from a \
     JSONL trace (--follow), or validate that a JSON/JSONL file parses and \
     holds required keys (--validate, for CI)."
  in
  let term =
    let open Term.Syntax in
    let+ file =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"FILE" ~doc:"Trace (JSONL) or JSON file to read.")
    and+ follow =
      Arg.(
        value
        & opt (some follow_conv) None
        & info [ "follow" ] ~docv:"FLOW[:SEQ]"
            ~doc:
              "Flight recorder: print every record of the given flow (and \
               packet, when :SEQ is given) in emission order — originate, \
               MAC enqueue/tx/rx, forwards, and the final deliver or drop.")
    and+ validate =
      Arg.(
        value & flag
        & info [ "validate" ]
            ~doc:
              "Parse $(i,FILE) (JSONL when it has multiple lines, plain \
               JSON otherwise) and fail loudly on any malformed record.")
    and+ require =
      Arg.(
        value & opt_all string []
        & info [ "require" ] ~docv:"PATH"
            ~doc:
              "With --validate: dot-separated member path that must be \
               present (e.g. result.delivery_ratio). Repeatable.")
    in
    let lines = read_lines file in
    let parsed =
      List.mapi
        (fun i line ->
          match Trace.Json.parse line with
          | Ok json -> (i + 1, json)
          | Error msg ->
              Format.eprintf "%s:%d: %s@." file (i + 1) msg;
              exit 1)
        lines
    in
    match follow with
    | Some (flow, seq) ->
        let hits =
          List.filter (fun (_, j) -> record_matches ~flow ~seq j) parsed
        in
        List.iter (fun (_, j) -> pp_trace_record Format.std_formatter j) hits;
        Format.printf "%d records@." (List.length hits)
    | None ->
        if not validate then
          Format.printf "%d records parsed (use --follow or --validate)@."
            (List.length parsed)
        else begin
          List.iter
            (fun path ->
              let found =
                List.for_all
                  (fun (_, j) -> Trace.Json.path path j <> None)
                  parsed
              in
              if parsed = [] || not found then begin
                Format.eprintf "%s: required path %S missing@." file path;
                exit 1
              end)
            require;
          Format.printf "%s: OK (%d records)@." file (List.length parsed)
        end
  in
  Cmd.v (Cmd.info "trace" ~doc) term

(* --------------------------------------------------------------------- *)
(* fuzz: the property-based suite over label arithmetic, the abstract SLR
   executor, and whole simulations against the reference model            *)

let fuzz_catalogue = Check.Props.all @ Sim.Fuzz.props

let fuzz_cmd =
  let doc =
    "Run the property-based test suite: randomized label arithmetic, \
     Algorithm 1, abstract SLR executions, and full SRP simulations checked \
     against a reference model of the paper's ordering semantics. Every \
     failure is shrunk to a minimal counterexample and printed with the \
     exact invocation that replays it."
  in
  let term =
    let open Term.Syntax in
    let+ max_cases =
      Arg.(
        value & opt int 100
        & info [ "max-cases" ]
            ~doc:
              "Case budget per property; expensive properties (whole \
               simulations) run $(docv) divided by their declared cost.")
    and+ seed =
      Arg.(
        value & opt int 42
        & info [ "seed" ] ~doc:"Root seed for the whole suite.")
    and+ prop =
      Arg.(
        value
        & opt (some string) None
        & info [ "prop" ] ~docv:"NAME"
            ~doc:"Run only the named property (see --list).")
    and+ replay =
      Arg.(
        value
        & opt (some int) None
        & info [ "replay" ] ~docv:"CASE"
            ~doc:
              "Re-run exactly one case index, as printed by a failure \
               report. Requires --prop and the report's --seed.")
    and+ list_props =
      Arg.(
        value & flag
        & info [ "list" ] ~doc:"List the property catalogue and exit.")
    and+ jobs =
      jobs_term
        ~doc:
          "Run catalogue properties on $(docv) worker domains. Every case \
           draws from its own prop#case substream, so outcomes and reports \
           are identical to -j 1."
    and+ labels =
      Arg.(
        value
        & opt (some labels_conv) None
        & info [ "labels" ] ~docv:"SET"
            ~doc:
              "Pin every simulation-level property to this label-set \
               instance (mediant|farey|bigfrac|lex) instead of the default \
               catalogue, which fuzzes the mediant set plus one \
               model-agreement cell per other instance.")
    and+ scenario = scenario_term
    in
    let scenario = Option.map (workload_scenario "fuzz") scenario in
    let fuzz_catalogue =
      match (scenario, labels) with
      | None, None -> fuzz_catalogue
      | None, Some id -> Check.Props.all @ Sim.Fuzz.props_for id
      | Some sc, _ ->
          (* pin the simulation-level cells to the scenario's mobility and
             traffic models (and --labels, when also given) *)
          let w =
            match sc.Sim.Scenario.body with
            | Sim.Scenario.Workload w -> w
            | Sim.Scenario.Adversarial -> assert false
          in
          Check.Props.all
          @ Sim.Fuzz.props_pinned ?labels
              ~mobility:w.Sim.Scenario.mobility
              ~traffic:w.Sim.Scenario.traffic ()
    in
    if list_props then
      List.iter
        (fun (Check.Runner.Packed c) ->
          Printf.printf "%-34s cost %d\n" c.Check.Runner.name
            c.Check.Runner.cost)
        fuzz_catalogue
    else begin
      (match (replay, prop) with
      | Some _, None ->
          prerr_endline "fuzz: --replay requires --prop";
          exit 2
      | _ -> ());
      (match prop with
      | Some name
        when not
               (List.exists
                  (fun (Check.Runner.Packed c) -> c.Check.Runner.name = name)
                  fuzz_catalogue) ->
          Printf.eprintf "fuzz: unknown property %S (see --list)\n" name;
          exit 2
      | _ -> ());
      let map f cells = Array.to_list (Sim.Pool.map ~jobs f (Array.of_list cells)) in
      let outcomes =
        Check.Runner.run_suite ~map ~seed ~max_cases ?only:prop ?start:replay
          fuzz_catalogue
      in
      List.iter
        (fun (name, outcome) ->
          print_endline (Check.Runner.report outcome ~name))
        outcomes;
      let failed =
        List.exists
          (fun (_, o) ->
            match o with Check.Runner.Fail _ -> true | Check.Runner.Pass _ -> false)
          outcomes
      in
      if failed then exit 1
    end
  in
  Cmd.v (Cmd.info "fuzz" ~doc) term

let labels_cmd =
  let doc =
    "Show SLR label arithmetic: mediants, splits, the 45-split bound, and \
     the registered label-set instances."
  in
  let show () =
    let module F = Slr.Fraction in
    Format.printf "32-bit proper fractions: bound = %d@." F.bound;
    Format.printf "worst-case mediant splits before overflow: %d@."
      (F.max_splits ());
    let a = F.make ~num:1 ~den:2 and b = F.make ~num:2 ~den:3 in
    (match F.mediant a b with
    | Some m -> Format.printf "mediant(%a, %a) = %a@." F.pp a F.pp b F.pp m
    | None -> ());
    (match Slr.Farey.simplest_between ~lo:a ~hi:b with
    | Some s ->
        Format.printf "simplest fraction in (%a, %a) = %a (Farey)@." F.pp a
          F.pp b F.pp s
    | None -> ());
    (* repeated splits toward the destination, per registered instance:
       how fast each label set grows in width *)
    Format.printf "@.registered label sets (--labels):@.";
    List.iter
      (fun id ->
        let (module L : Slr.Label.S) = Slr.Label_set.instance id in
        let rec walk lo hi k acc =
          if k = 0 then List.rev acc
          else
            match L.split ~lo ~hi with
            | None -> List.rev acc
            | Some m -> walk lo m (k - 1) (m :: acc)
        in
        let splits = walk L.zero L.one 6 [] in
        Format.printf "  %-8s %s@." (Slr.Label_set.name id)
          (String.concat " > " (List.map L.encode splits));
        match List.rev splits with
        | [] -> ()
        | last :: _ ->
            let widest =
              List.fold_left
                (fun acc l -> Stdlib.max acc (L.width_bits l))
                0 splits
            in
            Format.printf "           6 splits toward %s: max width %d bits@."
              (L.encode last) widest)
      Slr.Label_set.all
  in
  let term = Term.(const show $ const ()) in
  Cmd.v (Cmd.info "labels" ~doc) term

let () =
  (* A kilonode run schedules millions of short-lived closures whose
     survivors churn the major heap: a roomier minor heap (16 MB) lets
     most die young and a laxer space_overhead halves marking work.
     Simulation results never depend on GC scheduling. *)
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 2048 * 1024; space_overhead = 200 };
  let doc =
    "Reproduction of 'Loop-Free Routing Using a Dense Label Set in Wireless \
     Networks' (ICDCS 2004)."
  in
  let info = Cmd.info "manet_sim" ~doc ~version:"1.0.0" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; campaign_cmd; check_cmd; fuzz_cmd; trace_cmd; labels_cmd ]))
