(* manet_sim — run single simulations, campaigns, or the SRP loop-freedom
   verifier from the command line. *)

open Cmdliner

let protocol_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "srp" -> Ok Sim.Config.Srp
    | "ldr" -> Ok Sim.Config.Ldr
    | "aodv" -> Ok Sim.Config.Aodv
    | "dsr" -> Ok Sim.Config.Dsr
    | "olsr" -> Ok Sim.Config.Olsr
    | _ -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))
  in
  let print ppf p = Format.pp_print_string ppf (Sim.Config.protocol_name p) in
  Arg.conv (parse, print)

(* --faults switches the whole subsystem on; the knobs below tune it and
   are inert without it. Defaults mirror Faults.Spec.default. *)
let faults_term =
  let open Term.Syntax in
  let d = Faults.Spec.default in
  let+ enabled =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Enable fault injection: link flaps, node crashes, partitions \
             and packet-loss bursts on a dedicated RNG substream.")
  and+ flap_rate =
    Arg.(
      value
      & opt float d.Faults.Spec.flap_rate
      & info [ "flap-rate" ] ~doc:"Link flaps per second, network-wide.")
  and+ flap_down =
    Arg.(
      value
      & opt float d.Faults.Spec.flap_down_mean
      & info [ "flap-down" ] ~doc:"Mean seconds a flapped link stays down.")
  and+ crashes =
    Arg.(
      value
      & opt int d.Faults.Spec.crashes
      & info [ "crashes" ] ~doc:"Node crashes over the run.")
  and+ crash_down =
    Arg.(
      value
      & opt float d.Faults.Spec.crash_down_mean
      & info [ "crash-down" ] ~doc:"Mean seconds a crashed node stays down.")
  and+ partitions =
    Arg.(
      value
      & opt int d.Faults.Spec.partitions
      & info [ "partitions" ] ~doc:"Network partitions over the run.")
  and+ partition_down =
    Arg.(
      value
      & opt float d.Faults.Spec.partition_mean
      & info [ "partition-down" ] ~doc:"Mean seconds a partition lasts.")
  and+ burst_rate =
    Arg.(
      value
      & opt float d.Faults.Spec.burst_rate
      & info [ "burst-rate" ] ~doc:"Packet-loss bursts per second.")
  and+ burst_down =
    Arg.(
      value
      & opt float d.Faults.Spec.burst_mean
      & info [ "burst-down" ] ~doc:"Mean seconds a loss burst lasts.")
  and+ burst_drop =
    Arg.(
      value
      & opt float d.Faults.Spec.burst_drop_p
      & info [ "burst-drop" ]
          ~doc:"Per-frame drop probability during a burst.")
  in
  if not enabled then Faults.Spec.none
  else
    {
      Faults.Spec.flap_rate;
      flap_down_mean = flap_down;
      crashes;
      crash_down_mean = crash_down;
      partitions;
      partition_mean = partition_down;
      burst_rate;
      burst_mean = burst_down;
      burst_drop_p = burst_drop;
      extra = [];
    }

let config_term =
  let open Term.Syntax in
  let+ nodes =
    Arg.(value & opt int 100 & info [ "nodes" ] ~doc:"Number of nodes.")
  and+ flows =
    Arg.(
      value
      & opt int Sim.Config.reproduction.Sim.Config.flows
      & info [ "flows" ] ~doc:"Concurrent CBR flows (paper: 30).")
  and+ pause =
    Arg.(
      value & opt float 0.0
      & info [ "pause" ] ~doc:"Random-waypoint pause time in seconds.")
  and+ duration =
    Arg.(
      value & opt float 120.0
      & info [ "duration" ] ~doc:"Simulated seconds (paper: 900).")
  and+ seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Trial seed.")
  and+ packet_rate =
    Arg.(
      value & opt float 4.0
      & info [ "rate" ] ~doc:"Packets per second per flow.")
  and+ faults = faults_term
  in
  {
    Sim.Config.reproduction with
    nodes;
    flows;
    pause;
    duration;
    seed;
    packet_rate;
    faults;
  }

let run_cmd =
  let doc = "Run one simulation and print the paper's metrics." in
  let term =
    let open Term.Syntax in
    let+ config = config_term
    and+ protocol =
      Arg.(
        value
        & opt protocol_conv Sim.Config.Srp
        & info [ "protocol"; "p" ] ~doc:"Routing protocol.")
    in
    let result = Sim.Runner.run { config with protocol } in
    Format.printf "%a" Sim.Report.run result
  in
  Cmd.v (Cmd.info "run" ~doc) term

let campaign_cmd =
  let doc =
    "Run the full campaign (protocols x pause times x trials) and print \
     Table I and Figures 3-7."
  in
  let term =
    let open Term.Syntax in
    let+ config = config_term
    and+ trials =
      Arg.(value & opt int 3 & info [ "trials" ] ~doc:"Trials per point.")
    and+ quiet =
      Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress.")
    in
    let progress = if quiet then fun _ -> () else prerr_endline in
    let pause_scale = Stdlib.min 1.0 (config.Sim.Config.duration /. 900.0) in
    let campaign =
      Sim.Experiment.run ~pause_scale ~base:config
        ~protocols:Sim.Config.all_protocols
        ~pauses:Sim.Config.paper_pause_times ~trials ~progress
    in
    Format.printf "%a@." Sim.Report.all campaign
  in
  Cmd.v (Cmd.info "campaign" ~doc) term

let check_cmd =
  let doc =
    "Run SRP under the loop-freedom verifier (Theorem 3): every successor \
     edge must descend in label order and every successor graph must stay \
     acyclic."
  in
  let term =
    let open Term.Syntax in
    let+ config = config_term
    and+ interval =
      Arg.(
        value & opt float 1.0
        & info [ "interval" ] ~doc:"Seconds between invariant sweeps.")
    in
    (* faulted runs use the online monitor: per-mutation checks against the
       stored successor orderings, robust to post-crash label regression *)
    let faulted = not (Faults.Spec.is_none config.Sim.Config.faults) in
    let verify =
      if faulted then Sim.Loopcheck.run_online else Sim.Loopcheck.run
    in
    match verify { config with protocol = Sim.Config.Srp } ~interval with
    | Ok (result, checks, edges) ->
        Format.printf
          "loop-freedom verified (%s): %d %s, %d successor edges checked@.%a"
          (if faulted then "online monitor" else "periodic sweeps")
          checks
          (if faulted then "checks" else "sweeps")
          edges Sim.Report.run result
    | Error message ->
        Format.printf "VIOLATION: %s@." message;
        exit 1
  in
  Cmd.v (Cmd.info "check" ~doc) term

let labels_cmd =
  let doc = "Show SLR label arithmetic: mediants, splits, the 45-split bound." in
  let show () =
    let module F = Slr.Fraction in
    Format.printf "32-bit proper fractions: bound = %d@." F.bound;
    Format.printf "worst-case mediant splits before overflow: %d@."
      (F.max_splits ());
    let a = F.make ~num:1 ~den:2 and b = F.make ~num:2 ~den:3 in
    (match F.mediant a b with
    | Some m -> Format.printf "mediant(%a, %a) = %a@." F.pp a F.pp b F.pp m
    | None -> ());
    match Slr.Farey.simplest_between ~lo:a ~hi:b with
    | Some s ->
        Format.printf "simplest fraction in (%a, %a) = %a (Farey)@." F.pp a
          F.pp b F.pp s
    | None -> ()
  in
  let term = Term.(const show $ const ()) in
  Cmd.v (Cmd.info "labels" ~doc) term

let () =
  let doc =
    "Reproduction of 'Loop-Free Routing Using a Dense Label Set in Wireless \
     Networks' (ICDCS 2004)."
  in
  let info = Cmd.info "manet_sim" ~doc ~version:"1.0.0" in
  exit (Cmd.eval (Cmd.group info [ run_cmd; campaign_cmd; check_cmd; labels_cmd ]))
