type t = { oc : out_channel; mutable closed : bool }

(* every open journal is flushed on exit, so abnormal termination that
   skips [close] still leaves a fully flushed, parseable prefix *)
let live : t list ref = ref []

let () =
  at_exit (fun () ->
      List.iter
        (fun t -> if not t.closed then try flush t.oc with Sys_error _ -> ())
        !live)

let read_lines path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  List.filter
    (fun line -> String.trim line <> "")
    (String.split_on_char '\n' text)

(* Valid prefix of the journal: every line must parse except the last,
   which a mid-write kill may have torn and is then dropped. *)
let parse_prefix path lines =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | [ last ] -> (
        match Json.parse last with
        | Ok json -> Ok (List.rev (json :: acc))
        | Error _ -> Ok (List.rev acc))
    | line :: rest -> (
        match Json.parse line with
        | Ok json -> go (json :: acc) rest
        | Error e ->
            Error (Printf.sprintf "%s: corrupt journal line: %s" path e))
  in
  go [] lines

let load path =
  if not (Sys.file_exists path) then Ok []
  else parse_prefix path (read_lines path)

(* counts every journal line hitting disk (resume rewrites included), so
   live gauges can show checkpoint activity *)
let lines_counter = Obs.counter "journal.lines"

let write_line oc json =
  output_string oc (Json.to_string json);
  output_char oc '\n';
  Obs.incr lines_counter

let lines_flushed () = Obs.counter_value lines_counter

let resume path =
  let lines = if Sys.file_exists path then read_lines path else [] in
  match parse_prefix path lines with
  | Error _ as e -> e
  | Ok records ->
      (* rewrite the exact valid prefix: a torn tail must not prepend
         itself to the next appended record *)
      let oc = open_out_bin path in
      List.iter (write_line oc) records;
      flush oc;
      let t = { oc; closed = false } in
      live := t :: !live;
      Ok (records, t)

let append t json =
  if t.closed then invalid_arg "Journal.append: closed";
  write_line t.oc json;
  flush t.oc

let close t =
  if not t.closed then begin
    t.closed <- true;
    live := List.filter (fun u -> u != t) !live;
    close_out_noerr t.oc
  end
