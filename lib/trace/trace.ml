module Json = Json
module Journal = Journal

type ev =
  | Pkt_originate of { flow : int; seq : int; dst : int }
  | Pkt_enqueue of { flow : int; seq : int }
  | Pkt_tx of { flow : int; seq : int; next : int }
  | Pkt_rx of { flow : int; seq : int; from : int }
  | Pkt_forward of { flow : int; seq : int; next : int }
  | Pkt_deliver of { flow : int; seq : int; latency : float; hops : int }
  | Pkt_drop of { flow : int; seq : int; reason : string }
  | Ctl_tx of { kind : string; dst : int }
  | Ctl_rx of { kind : string; from : int }
  | Route_add of { dst : int; via : int; dist : int }
  | Route_del of { dst : int; via : int; reason : string }
  | Label_split of {
      dst : int;
      sn : int;
      label : string;
      frac : (int * int) option;
    }
  | Seqno_reset of { seqno : int }
  | Mac_backoff of { cw : int }
  | Mac_collision
  | Mac_retry_drop of { dst : int }
  | Mac_queue_drop
  | Fault of { kind : string; a : int; b : int }
  | Gauge of {
      routes : int;
      pending : int;
      mac_queue : int;
      live_events : int;
      executed : int;
      events_per_sec : float;
      (* supervisor activity, campaign-wide running totals *)
      retries : int;
      quarantined : int;
      journal_lines : int;
      (* routing-label telemetry (0 off SRP) *)
      label_width_bits : int;
      label_resets : int;
    }

type record = { time : float; node : int; ev : ev }

type ring_state = {
  capacity : int;
  buf : record array;
  mutable next : int;
  mutable filled : bool;
}

type sink =
  | Null
  | Ring of ring_state
  | Jsonl of { oc : out_channel; scratch : Buffer.t }
  | Callback of (record -> unit)

type t = { sink : sink; mutable clock : unit -> float }

let null = { sink = Null; clock = (fun () -> 0.0) }

let enabled t =
  match t.sink with Null -> false | Ring _ | Jsonl _ | Callback _ -> true

let dummy_record = { time = 0.0; node = 0; ev = Mac_collision }

let ring ~clock ~capacity =
  if capacity <= 0 then invalid_arg "Trace.ring: non-positive capacity";
  {
    sink =
      Ring { capacity; buf = Array.make capacity dummy_record; next = 0; filled = false };
    clock;
  }

let jsonl ~clock oc =
  (* abnormal exits (uncaught exception, exit on signal handlers) must
     still leave a valid JSONL prefix: flush whatever was emitted. The
     channel may already be closed by then — that flush failure is fine. *)
  at_exit (fun () -> try flush oc with Sys_error _ -> ());
  { sink = Jsonl { oc; scratch = Buffer.create 256 }; clock }

let callback ~clock f = { sink = Callback f; clock }

let set_clock t clock = if enabled t then t.clock <- clock

let ev_fields = function
  | Pkt_originate { flow; seq; dst } ->
      ("pkt-originate", [ ("flow", Json.Int flow); ("seq", Json.Int seq);
                          ("dst", Json.Int dst) ])
  | Pkt_enqueue { flow; seq } ->
      ("pkt-enqueue", [ ("flow", Json.Int flow); ("seq", Json.Int seq) ])
  | Pkt_tx { flow; seq; next } ->
      ("pkt-tx", [ ("flow", Json.Int flow); ("seq", Json.Int seq);
                   ("next", Json.Int next) ])
  | Pkt_rx { flow; seq; from } ->
      ("pkt-rx", [ ("flow", Json.Int flow); ("seq", Json.Int seq);
                   ("from", Json.Int from) ])
  | Pkt_forward { flow; seq; next } ->
      ("pkt-forward", [ ("flow", Json.Int flow); ("seq", Json.Int seq);
                        ("next", Json.Int next) ])
  | Pkt_deliver { flow; seq; latency; hops } ->
      ("pkt-deliver", [ ("flow", Json.Int flow); ("seq", Json.Int seq);
                        ("latency", Json.Float latency);
                        ("hops", Json.Int hops) ])
  | Pkt_drop { flow; seq; reason } ->
      ("pkt-drop", [ ("flow", Json.Int flow); ("seq", Json.Int seq);
                     ("reason", Json.String reason) ])
  | Ctl_tx { kind; dst } ->
      ("ctl-tx", [ ("kind", Json.String kind); ("dst", Json.Int dst) ])
  | Ctl_rx { kind; from } ->
      ("ctl-rx", [ ("kind", Json.String kind); ("from", Json.Int from) ])
  | Route_add { dst; via; dist } ->
      ("route-add", [ ("dst", Json.Int dst); ("via", Json.Int via);
                      ("dist", Json.Int dist) ])
  | Route_del { dst; via; reason } ->
      ("route-del", [ ("dst", Json.Int dst); ("via", Json.Int via);
                      ("reason", Json.String reason) ])
  | Label_split { dst; sn; label; frac } ->
      ( "label-split",
        ("dst", Json.Int dst) :: ("sn", Json.Int sn)
        :: ("label", Json.String label)
        ::
        (match frac with
        | Some (num, den) -> [ ("num", Json.Int num); ("den", Json.Int den) ]
        | None -> []) )
  | Seqno_reset { seqno } -> ("seqno-reset", [ ("seqno", Json.Int seqno) ])
  | Mac_backoff { cw } -> ("mac-backoff", [ ("cw", Json.Int cw) ])
  | Mac_collision -> ("mac-collision", [])
  | Mac_retry_drop { dst } -> ("mac-retry-drop", [ ("dst", Json.Int dst) ])
  | Mac_queue_drop -> ("mac-queue-drop", [])
  | Fault { kind; a; b } ->
      ("fault", [ ("kind", Json.String kind); ("a", Json.Int a);
                  ("b", Json.Int b) ])
  | Gauge
      { routes; pending; mac_queue; live_events; executed; events_per_sec;
        retries; quarantined; journal_lines; label_width_bits; label_resets }
    ->
      ("gauge", [ ("routes", Json.Int routes); ("pending", Json.Int pending);
                  ("mac_queue", Json.Int mac_queue);
                  ("live_events", Json.Int live_events);
                  ("executed", Json.Int executed);
                  ("events_per_sec", Json.Float events_per_sec);
                  ("retries", Json.Int retries);
                  ("quarantined", Json.Int quarantined);
                  ("journal_lines", Json.Int journal_lines);
                  ("label_width_bits", Json.Int label_width_bits);
                  ("label_resets", Json.Int label_resets) ])

let record_to_json { time; node; ev } =
  let name, fields = ev_fields ev in
  Json.Obj
    (("t", Json.Float time)
    :: ("node", Json.Int node)
    :: ("ev", Json.String name)
    :: fields)

(* --prof: time spent writing trace records, and JSONL record sizes *)
let span_sink = Obs.span "trace.sink"
let jsonl_record_bytes = Obs.histogram "trace.jsonl_record_bytes"

let push_body sink r =
  match sink with
  | Null -> ()
  | Ring ring ->
      ring.buf.(ring.next) <- r;
      ring.next <- ring.next + 1;
      if ring.next = ring.capacity then begin
        ring.next <- 0;
        ring.filled <- true
      end
  | Jsonl { oc; scratch } ->
      Buffer.clear scratch;
      Json.to_buffer scratch (record_to_json r);
      Buffer.add_char scratch '\n';
      Obs.observe jsonl_record_bytes (Buffer.length scratch);
      Buffer.output_buffer oc scratch
  | Callback f -> f r

let push sink r =
  if Obs.enabled () then begin
    Obs.start span_sink;
    push_body sink r;
    Obs.stop span_sink
  end
  else push_body sink r

let emit t ~node ev = push t.sink { time = t.clock (); node; ev }

let ring_contents t =
  match t.sink with
  | Null | Jsonl _ | Callback _ -> []
  | Ring ring ->
      if not ring.filled then
        Array.to_list (Array.sub ring.buf 0 ring.next)
      else
        Array.to_list (Array.sub ring.buf ring.next (ring.capacity - ring.next))
        @ Array.to_list (Array.sub ring.buf 0 ring.next)

let close t = match t.sink with Jsonl { oc; _ } -> flush oc | _ -> ()

(* Emission helpers: the [Null] check comes before the event value is
   built, so disabled tracing costs one branch and zero allocation. *)

let pkt_originate t ~node ~flow ~seq ~dst =
  match t.sink with
  | Null -> ()
  | _ -> emit t ~node (Pkt_originate { flow; seq; dst })

let pkt_enqueue t ~node ~flow ~seq =
  match t.sink with
  | Null -> ()
  | _ -> emit t ~node (Pkt_enqueue { flow; seq })

let pkt_tx t ~node ~flow ~seq ~next =
  match t.sink with
  | Null -> ()
  | _ -> emit t ~node (Pkt_tx { flow; seq; next })

let pkt_rx t ~node ~flow ~seq ~from =
  match t.sink with
  | Null -> ()
  | _ -> emit t ~node (Pkt_rx { flow; seq; from })

let pkt_forward t ~node ~flow ~seq ~next =
  match t.sink with
  | Null -> ()
  | _ -> emit t ~node (Pkt_forward { flow; seq; next })

let pkt_deliver t ~node ~flow ~seq ~latency ~hops =
  match t.sink with
  | Null -> ()
  | _ -> emit t ~node (Pkt_deliver { flow; seq; latency; hops })

let pkt_drop t ~node ~flow ~seq ~reason =
  match t.sink with
  | Null -> ()
  | _ -> emit t ~node (Pkt_drop { flow; seq; reason })

let ctl_tx t ~node ~kind ~dst =
  match t.sink with Null -> () | _ -> emit t ~node (Ctl_tx { kind; dst })

let ctl_rx t ~node ~kind ~from =
  match t.sink with Null -> () | _ -> emit t ~node (Ctl_rx { kind; from })

let route_add t ~node ~dst ~via ~dist =
  match t.sink with
  | Null -> ()
  | _ -> emit t ~node (Route_add { dst; via; dist })

let route_del t ~node ~dst ~via ~reason =
  match t.sink with
  | Null -> ()
  | _ -> emit t ~node (Route_del { dst; via; reason })

let label_split t ~node ~dst ~sn ~label ~frac =
  match t.sink with
  | Null -> ()
  | _ -> emit t ~node (Label_split { dst; sn; label; frac })

let seqno_reset t ~node ~seqno =
  match t.sink with Null -> () | _ -> emit t ~node (Seqno_reset { seqno })

let mac_backoff t ~node ~cw =
  match t.sink with Null -> () | _ -> emit t ~node (Mac_backoff { cw })

let mac_collision t ~node =
  match t.sink with Null -> () | _ -> emit t ~node Mac_collision

let mac_retry_drop t ~node ~dst =
  match t.sink with Null -> () | _ -> emit t ~node (Mac_retry_drop { dst })

let mac_queue_drop t ~node =
  match t.sink with Null -> () | _ -> emit t ~node Mac_queue_drop

let fault t ~kind ~a ~b =
  match t.sink with Null -> () | _ -> emit t ~node:(-1) (Fault { kind; a; b })

let gauge t ~routes ~pending ~mac_queue ~live_events ~executed ~events_per_sec
    ~retries ~quarantined ~journal_lines ~label_width_bits ~label_resets =
  match t.sink with
  | Null -> ()
  | _ ->
      emit t ~node:(-1)
        (Gauge
           { routes; pending; mac_queue; live_events; executed;
             events_per_sec; retries; quarantined; journal_lines;
             label_width_bits; label_resets })
