(** Structured tracing for the simulator: typed per-event records with
    simulated-time timestamps and node scope, emitted through a sink.

    The disabled path is a single branch: every emission helper first
    checks the sink and returns immediately when it is {!Null}, so an
    untraced run pays one comparison per call site and allocates nothing.
    Emission never draws randomness and never schedules events, so a
    traced run is behaviourally identical to an untraced one.

    Sinks:
    - [Null]: tracing off (the default);
    - bounded in-memory ring buffer (keeps the last [capacity] records);
    - JSONL stream: one JSON object per record, in emission order.
      Same seed, same bytes. *)

module Json = Json

(** Crash-safe append-only JSONL journal (campaign checkpoints). *)
module Journal = Journal

(** What happened. Packet events carry the flow id and the packet's
    globally unique sequence number, so one packet's lifecycle can be
    replayed from a trace ([manet_sim trace --follow FLOW:SEQ]). *)
type ev =
  | Pkt_originate of { flow : int; seq : int; dst : int }
  | Pkt_enqueue of { flow : int; seq : int }  (** accepted by the MAC queue *)
  | Pkt_tx of { flow : int; seq : int; next : int }  (** [next = -1]: broadcast *)
  | Pkt_rx of { flow : int; seq : int; from : int }
  | Pkt_forward of { flow : int; seq : int; next : int }
  | Pkt_deliver of { flow : int; seq : int; latency : float; hops : int }
  | Pkt_drop of { flow : int; seq : int; reason : string }
  | Ctl_tx of { kind : string; dst : int }  (** [dst = -1]: broadcast *)
  | Ctl_rx of { kind : string; from : int }
  | Route_add of { dst : int; via : int; dist : int }
  | Route_del of { dst : int; via : int; reason : string }
  | Label_split of {
      dst : int;
      sn : int;
      label : string;  (** instance-tagged encoding ("3/5", "0x80a1") *)
      frac : (int * int) option;
          (** back-compat exact num/den for bounded-fraction instances *)
    }  (** NEWORDER minted a fresh label strictly between two orderings *)
  | Seqno_reset of { seqno : int }
  | Mac_backoff of { cw : int }
  | Mac_collision
  | Mac_retry_drop of { dst : int }
  | Mac_queue_drop
  | Fault of { kind : string; a : int; b : int }
  | Gauge of {
      routes : int;
      pending : int;
      mac_queue : int;
      live_events : int;
      executed : int;
      events_per_sec : float;
      retries : int;  (** supervisor retries so far, campaign-wide *)
      quarantined : int;  (** cells quarantined so far, campaign-wide *)
      journal_lines : int;  (** checkpoint journal lines flushed so far *)
      label_width_bits : int;
          (** widest encoded routing label seen so far (0 off SRP) *)
      label_resets : int;  (** label-driven seqno resets so far *)
    }  (** periodic whole-network sample (node is -1) *)

type record = { time : float; node : int; ev : ev }

type t

(** The shared disabled tracer: every emission is a no-op. *)
val null : t

(** [enabled t] is [false] exactly for {!null}-like tracers. *)
val enabled : t -> bool

(** [ring ~clock ~capacity] keeps the last [capacity] records in memory. *)
val ring : clock:(unit -> float) -> capacity:int -> t

(** [jsonl ~clock oc] streams one JSON object per record to [oc].
    Call {!close} to flush (the channel itself is not closed). An
    [at_exit] hook also flushes [oc], so a run that dies with an uncaught
    exception still leaves a valid, parseable JSONL prefix on disk. *)
val jsonl : clock:(unit -> float) -> out_channel -> t

(** [callback ~clock f] hands every record to [f] as it is emitted —
    the sink for in-process analyses (the fuzzer's metrics-conservation
    oracle counts packet lifecycle events through one of these). [f] must
    not emit through the same tracer. *)
val callback : clock:(unit -> float) -> (record -> unit) -> t

(** [set_clock t clock] rebinds the timestamp source. The CLI builds its
    tracer before the simulation engine exists; the runner points the
    tracer at the engine's clock once it is created. No-op on {!null}. *)
val set_clock : t -> (unit -> float) -> unit

(** Records currently held by a ring tracer, oldest first ([] otherwise). *)
val ring_contents : t -> record list

(** Flush buffered output (JSONL sink); no-op otherwise. *)
val close : t -> unit

val record_to_json : record -> Json.t

(** One emission helper per event shape; all are no-ops when disabled. *)

val pkt_originate : t -> node:int -> flow:int -> seq:int -> dst:int -> unit
val pkt_enqueue : t -> node:int -> flow:int -> seq:int -> unit
val pkt_tx : t -> node:int -> flow:int -> seq:int -> next:int -> unit
val pkt_rx : t -> node:int -> flow:int -> seq:int -> from:int -> unit
val pkt_forward : t -> node:int -> flow:int -> seq:int -> next:int -> unit

val pkt_deliver :
  t -> node:int -> flow:int -> seq:int -> latency:float -> hops:int -> unit

val pkt_drop : t -> node:int -> flow:int -> seq:int -> reason:string -> unit
val ctl_tx : t -> node:int -> kind:string -> dst:int -> unit
val ctl_rx : t -> node:int -> kind:string -> from:int -> unit
val route_add : t -> node:int -> dst:int -> via:int -> dist:int -> unit
val route_del : t -> node:int -> dst:int -> via:int -> reason:string -> unit

(** The [label]/[frac] arguments are evaluated at the call site even when
    tracing is off — guard the call with {!enabled} to keep the disabled
    path allocation-free. *)
val label_split :
  t ->
  node:int ->
  dst:int ->
  sn:int ->
  label:string ->
  frac:(int * int) option ->
  unit

val seqno_reset : t -> node:int -> seqno:int -> unit
val mac_backoff : t -> node:int -> cw:int -> unit
val mac_collision : t -> node:int -> unit
val mac_retry_drop : t -> node:int -> dst:int -> unit
val mac_queue_drop : t -> node:int -> unit
val fault : t -> kind:string -> a:int -> b:int -> unit

val gauge :
  t ->
  routes:int ->
  pending:int ->
  mac_queue:int ->
  live_events:int ->
  executed:int ->
  events_per_sec:float ->
  retries:int ->
  quarantined:int ->
  journal_lines:int ->
  label_width_bits:int ->
  label_resets:int ->
  unit
