(** Append-only JSONL journal with crash-safe semantics, the persistence
    layer behind campaign checkpoint/resume.

    Every {!append} writes one complete line and flushes it, so a killed
    process leaves at most one torn trailing fragment. {!resume} (and the
    read-only {!load}) accept exactly that shape: a valid prefix of JSON
    lines followed by an optional torn tail, which is dropped. A malformed
    line anywhere {e before} the tail means the file is not a journal (or
    was corrupted at rest) and is reported as an error instead of being
    silently skipped.

    Open journals are also flushed from an [at_exit] hook, so even an
    abnormal exit path that bypasses {!close} leaves a parseable prefix. *)

type t

(** [resume path] loads the journal's valid prefix (creating an empty
    journal when [path] does not exist), rewrites the file to exactly that
    prefix — truncating any torn tail so subsequent appends start on a
    fresh line — and returns the prefix with a handle open for appending. *)
val resume : string -> (Json.t list * t, string) result

(** [append t json] writes one record as a single line and flushes. *)
val append : t -> Json.t -> unit

(** Flush and close. Idempotent; appending after [close] raises. *)
val close : t -> unit

(** Journal lines written to disk by this process so far (appends plus
    resume-time prefix rewrites), summed across domains. Feeds the
    supervisor gauges in sampled traces. *)
val lines_flushed : unit -> int

(** Read-only variant of {!resume}: the valid prefix of [path], with a
    torn trailing fragment dropped. [Ok []] when the file does not exist. *)
val load : string -> (Json.t list, string) result
