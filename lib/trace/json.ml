type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float_str f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | _ ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.1f" f
      else Printf.sprintf "%.12g" f

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf key;
          Buffer.add_char buf ':';
          to_buffer buf value)
        members;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  to_buffer buf json;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the raw string.                      *)

exception Fail of string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* UTF-8 encode a \uXXXX escape (surrogate pairs are passed through as
     two separately-encoded code units; good enough for a validator) *)
  let add_code_point buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = input.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = input.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub input !pos 4 in
             pos := !pos + 4;
             let cp =
               try int_of_string ("0x" ^ hex)
               with _ -> fail "bad \\u escape"
             in
             add_code_point buf cp
         | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char input.[!pos] do
      advance ()
    done;
    let s = String.sub input start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s
    in
    if is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
          (* out-of-range integer literal: fall back to float *)
          match float_of_string_opt s with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let parse_member () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            (key, value)
          in
          let members = ref [ parse_member () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            members := parse_member () :: !members;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !members)
        end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Fail msg -> Error msg

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let path dotted json =
  let keys = String.split_on_char '.' dotted in
  List.fold_left
    (fun acc key -> match acc with None -> None | Some j -> member key j)
    (Some json) keys
