(** Minimal JSON tree, encoder and parser — hand-rolled so the telemetry
    subsystem adds no external dependency.

    The encoder is deterministic: object members are emitted in the order
    given, floats are printed with a fixed format, and no whitespace is
    inserted, so identical values always produce identical bytes (the
    property the trace-determinism tests rely on). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Canonical float rendering: integral values as ["%.1f"], everything
    else as ["%.12g"]; non-finite values encode as [null]. *)
val float_str : float -> string

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

(** Parse one JSON value; trailing input (other than whitespace) is an
    error. Numbers without [.], [e] or [E] parse as [Int]. *)
val parse : string -> (t, string) result

(** [member key json] is the value bound to [key] when [json] is an
    object containing it. *)
val member : string -> t -> t option

(** [path "a.b.c" json] walks nested objects along dot-separated keys. *)
val path : string -> t -> t option
