(** The contract between a routing agent and the node that hosts it.

    A node gives its agent a {!ctx} of capabilities (clock, timers, MAC
    access, delivery sinks); the agent returns an {!agent} record of
    handlers. Record-of-closures keeps the wireless substrate free of any
    dependency on protocol code. *)

type ctx = {
  id : int;
  node_count : int;
  engine : Des.Engine.t;
  rng : Des.Rng.t;
  trace : Trace.t;
      (** structured telemetry sink; {!Trace.null} when tracing is off *)
  mac_send : Wireless.Frame.t -> unit;
  deliver : Wireless.Frame.data -> unit;
      (** call when a data packet reaches its final destination *)
  drop_data : Wireless.Frame.data -> reason:string -> unit;
      (** call when the routing layer gives up on a data packet *)
}

(** Protocol-specific gauges, sampled at the end of a run and periodically
    by the gauge time series. [own_seqno] feeds Fig. 7 (zero-based:
    subtract the protocol's initial value, as the paper does for SRP).
    [max_denominator] and [seqno_resets] apply to SRP only and are 0
    elsewhere. [route_entries] counts currently usable routes and
    [pending_packets] data packets parked awaiting discovery; sampling
    either must not mutate protocol state. *)
type gauges = {
  own_seqno : int;
  max_denominator : int;
  seqno_resets : int;
  label_width_bits : int;
      (** high-water encoded label width (SRP; 0 elsewhere) *)
  label_resets : int;
      (** seqno resets forced by label exhaustion — the T-bit /
          MAX_DENOM-probe subset of [seqno_resets] (SRP; 0 elsewhere) *)
  route_entries : int;
  pending_packets : int;
}

type agent = {
  originate : Wireless.Frame.data -> size:int -> unit;
      (** the application hands over a data packet for [data.final_dst] *)
  receive : src:int -> Wireless.Frame.t -> unit;
      (** the MAC delivered a frame ([src] is the previous hop) *)
  unicast_failed : frame:Wireless.Frame.t -> dst:int -> unit;
      (** MAC retry limit exhausted toward next hop [dst] *)
  unicast_ok : frame:Wireless.Frame.t -> dst:int -> unit;
      (** a unicast frame was acknowledged (route-liveness hint) *)
  gauges : unit -> gauges;
}

let no_gauges =
  {
    own_seqno = 0;
    max_denominator = 0;
    seqno_resets = 0;
    label_width_bits = 0;
    label_resets = 0;
    route_entries = 0;
    pending_packets = 0;
  }
