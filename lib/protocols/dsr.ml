let span_timer = Obs.span "proto.dsr.timer"

module Frame = Wireless.Frame

type config = {
  discovery_ttl : int;
  discovery_attempts : int;
  node_traversal : float;
  cache_capacity : int;
  cache_lifetime : float;
  max_salvages : int;
  pending_capacity : int;
  pending_ttl : float;
  relay_jitter : float;
  data_ttl : int;
  base_control_size : int;
  per_hop_bytes : int;
  ip_overhead : int;
}

let default_config =
  {
    discovery_ttl = 16;
    discovery_attempts = 3;
    node_traversal = 0.04;
    cache_capacity = 64;
    cache_lifetime = 30.0;
    max_salvages = 2;
    pending_capacity = 64;
    pending_ttl = 30.0;
    relay_jitter = 0.01;
    data_ttl = 64;
    base_control_size = 24;
    per_hop_bytes = 4;
    ip_overhead = 20;
  }

type rreq = {
  rq_src : int;
  rq_id : int;
  rq_dst : int;
  rq_record : int list;
  rq_ttl : int;
}

type rrep = { rp_path : int list; rp_back : int list }

type dsr_data = {
  dd_data : Frame.data;
  dd_route : int list;
  dd_idx : int;
  dd_salvaged : int;
}

type rerr = { re_broken : int * int; re_back : int list }

type Frame.payload +=
  | Rreq of rreq
  | Rrep of rrep
  | Dsr_data of dsr_data
  | Rerr of rerr

(* Path cache: complete paths from this node, shortest live path wins. *)
type cached = { path : int list; expiry : float }

type t = {
  ctx : Routing_intf.ctx;
  config : config;
  mutable cache : cached list;
  seen : Seen_cache.t;
  pending : Pending.t;
  mutable discovery : Discovery.t option;
  mutable next_rreq_id : int;
}

let now t = Des.Engine.now t.ctx.Routing_intf.engine

(* ------------------------------------------------------------------ *)
(* Path cache                                                          *)

let path_has_link path (a, b) =
  let rec scan = function
    | x :: (y :: _ as rest) -> (x = a && y = b) || (x = b && y = a) || scan rest
    | [ _ ] | [] -> false
  in
  scan path

let rec path_loops_free seen = function
  | [] -> true
  | x :: rest -> (not (List.mem x seen)) && path_loops_free (x :: seen) rest

let cache_add t path =
  (* [path] starts at this node; reject degenerate or looping paths *)
  match path with
  | [] | [ _ ] -> ()
  | first :: _ when first <> t.ctx.Routing_intf.id -> ()
  | _ when not (path_loops_free [] path) -> ()
  | _ ->
      let time = now t in
      let live = List.filter (fun c -> c.expiry > time) t.cache in
      if List.exists (fun c -> c.path = path) live then t.cache <- live
      else begin
        let entry = { path; expiry = time +. t.config.cache_lifetime } in
        let trimmed =
          if List.length live >= t.config.cache_capacity then
            (* evict the entry closest to expiry *)
            match
              List.sort (fun a b -> compare a.expiry b.expiry) live
            with
            | _oldest :: rest -> rest
            | [] -> []
          else live
        in
        t.cache <- entry :: trimmed
      end

let cached_path t ~dst =
  let time = now t in
  let candidates =
    List.filter
      (fun c ->
        c.expiry > time
        &&
        match List.rev c.path with last :: _ -> last = dst | [] -> false)
      t.cache
  in
  match
    List.sort
      (fun a b -> compare (List.length a.path) (List.length b.path))
      candidates
  with
  | best :: _ -> Some best.path
  | [] -> None

(* A path through an intermediate node also caches its suffix: if [dst]
   appears inside a cached path, the tail from this node works too. *)
let cached_path_via t ~dst =
  match cached_path t ~dst with
  | Some p -> Some p
  | None ->
      let time = now t in
      let rec prefix_to acc = function
        | [] -> None
        | x :: _ when x = dst -> Some (List.rev (x :: acc))
        | x :: rest -> prefix_to (x :: acc) rest
      in
      let candidates =
        List.filter_map
          (fun c -> if c.expiry > time then prefix_to [] c.path else None)
          t.cache
      in
      (match
         List.sort (fun a b -> compare (List.length a) (List.length b))
           candidates
       with
      | best :: _ -> Some best
      | [] -> None)

let cache_remove_link t link =
  t.cache <- List.filter (fun c -> not (path_has_link c.path link)) t.cache

let cache_size t =
  let time = now t in
  List.length (List.filter (fun c -> c.expiry > time) t.cache)

(* ------------------------------------------------------------------ *)
(* Frame builders                                                      *)

let control_size t ~hops =
  t.config.base_control_size + (t.config.per_hop_bytes * hops)

let send_control t ~dst ~size ~payload =
  let kind =
    match payload with
    | Rreq _ -> "rreq"
    | Rrep _ -> "rrep"
    | Rerr _ -> "rerr"
    | _ -> "ctl"
  in
  t.ctx.Routing_intf.mac_send
    (Frame.with_kind
       (Frame.make ~src:t.ctx.Routing_intf.id ~dst ~size ~payload)
       kind)

let data_size t ~payload_size ~route_len =
  payload_size + t.config.ip_overhead + 4
  + (t.config.per_hop_bytes * route_len)

let send_data t ~next_hop dsr ~payload_size =
  let frame =
    Frame.make ~src:t.ctx.Routing_intf.id ~dst:(Frame.Unicast next_hop)
      ~size:(data_size t ~payload_size ~route_len:(List.length dsr.dd_route))
      ~payload:(Dsr_data dsr)
  in
  Trace.pkt_forward t.ctx.Routing_intf.trace ~node:t.ctx.Routing_intf.id
    ~flow:dsr.dd_data.Frame.flow ~seq:dsr.dd_data.Frame.seq ~next:next_hop;
  t.ctx.Routing_intf.mac_send (Frame.with_cls frame Frame.Data_frame)

(* Launch a data packet along [route] (which starts at this node). *)
let route_data t data ~size ~route ~salvaged =
  match route with
  | _me :: next :: _ ->
      data.Frame.hops <- data.Frame.hops + 1;
      if data.Frame.hops > t.config.data_ttl then
        t.ctx.Routing_intf.drop_data data ~reason:"ttl exceeded"
      else
        send_data t ~next_hop:next
          { dd_data = data; dd_route = route; dd_idx = 1; dd_salvaged = salvaged }
          ~payload_size:size
  | _ -> t.ctx.Routing_intf.drop_data data ~reason:"degenerate source route"

let try_send t data ~size =
  match cached_path_via t ~dst:data.Frame.final_dst with
  | Some route ->
      route_data t data ~size ~route ~salvaged:0;
      true
  | None -> false

(* ------------------------------------------------------------------ *)
(* Route discovery                                                     *)

let originate_rreq t ~dst ~ttl =
  t.next_rreq_id <- t.next_rreq_id + 1;
  let rreq =
    {
      rq_src = t.ctx.Routing_intf.id;
      rq_id = t.next_rreq_id;
      rq_dst = dst;
      rq_record = [ t.ctx.Routing_intf.id ];
      rq_ttl = ttl;
    }
  in
  send_control t ~dst:Frame.Broadcast ~size:(control_size t ~hops:1)
    ~payload:(Rreq rreq)

let send_rrep t ~path =
  (* the replier sits at the end of its reverse route *)
  match List.rev path with
  | _me :: (next :: _ as back) ->
      send_control t ~dst:(Frame.Unicast next)
        ~size:(control_size t ~hops:(List.length path))
        ~payload:(Rrep { rp_path = path; rp_back = back })
  | _ -> ()

let handle_rreq t ~from:_ rreq =
  let me = t.ctx.Routing_intf.id in
  if rreq.rq_src = me || List.mem me rreq.rq_record then ()
  else if not (Seen_cache.witness t.seen ~origin:rreq.rq_src ~id:rreq.rq_id)
  then ()
  else begin
    let record = rreq.rq_record @ [ me ] in
    (* the reversed record is a route back to the source *)
    cache_add t (List.rev record);
    if rreq.rq_dst = me then send_rrep t ~path:record
    else begin
      match cached_path_via t ~dst:rreq.rq_dst with
      | Some tail when path_loops_free [] (record @ List.tl tail) ->
          (* cached-route reply: splice our cached path onto the record *)
          send_rrep t ~path:(record @ List.tl tail)
      | Some _ | None ->
          if rreq.rq_ttl > 1 then begin
            let relayed =
              { rreq with rq_record = record; rq_ttl = rreq.rq_ttl - 1 }
            in
            let delay =
              Des.Rng.float t.ctx.Routing_intf.rng t.config.relay_jitter
            in
            ignore
              (Des.Engine.schedule ~span:span_timer t.ctx.Routing_intf.engine ~delay
                 (fun () ->
                   send_control t ~dst:Frame.Broadcast
                     ~size:(control_size t ~hops:(List.length record))
                     ~payload:(Rreq relayed)))
          end
    end
  end

let flush_pending t ~dst =
  List.iter
    (fun (data, size) ->
      if not (try_send t data ~size) then
        t.ctx.Routing_intf.drop_data data ~reason:"no route after reply")
    (Pending.take_all t.pending ~dst)

(* Cache every suffix of the replied path that starts at this node. *)
let cache_from_path t path =
  let me = t.ctx.Routing_intf.id in
  let rec suffix = function
    | [] -> ()
    | x :: _ as tail when x = me -> cache_add t tail
    | _ :: rest -> suffix rest
  in
  suffix path

let handle_rrep t ~from:_ rrep =
  let me = t.ctx.Routing_intf.id in
  cache_from_path t rrep.rp_path;
  match rrep.rp_back with
  | x :: rest when x = me -> begin
      match rest with
      | [] -> (
          (* we are the source *)
          match rrep.rp_path with
          | src :: _ when src = me -> (
              match List.rev rrep.rp_path with
              | dst :: _ ->
                  (match t.discovery with
                  | Some d -> Discovery.succeed d ~dst
                  | None -> ());
                  flush_pending t ~dst
              | [] -> ())
          | _ -> ())
      | next :: _ ->
          send_control t ~dst:(Frame.Unicast next)
            ~size:(control_size t ~hops:(List.length rrep.rp_path))
            ~payload:(Rrep { rrep with rp_back = rest })
    end
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Data plane and errors                                               *)

let handle_dsr_data t ~from:_ dsr =
  let me = t.ctx.Routing_intf.id in
  let data = dsr.dd_data in
  if data.Frame.final_dst = me then t.ctx.Routing_intf.deliver data
  else begin
    match List.nth_opt dsr.dd_route (dsr.dd_idx + 1) with
    | Some next_hop ->
        data.Frame.hops <- data.Frame.hops + 1;
        if data.Frame.hops > t.config.data_ttl then
          t.ctx.Routing_intf.drop_data data ~reason:"ttl exceeded"
        else
          send_data t ~next_hop
            { dsr with dd_idx = dsr.dd_idx + 1 }
            ~payload_size:512
    | None -> t.ctx.Routing_intf.drop_data data ~reason:"route exhausted"
  end

let send_rerr t ~broken ~traversed =
  (* source-route the error back along the already-traversed prefix *)
  match List.rev traversed with
  | _me :: (next :: _ as back) ->
      send_control t ~dst:(Frame.Unicast next)
        ~size:(control_size t ~hops:(List.length back))
        ~payload:(Rerr { re_broken = broken; re_back = back })
  | _ -> ()

let handle_rerr t ~from:_ rerr =
  let me = t.ctx.Routing_intf.id in
  cache_remove_link t rerr.re_broken;
  match rerr.re_back with
  | x :: (next :: _ as rest) when x = me ->
      send_control t ~dst:(Frame.Unicast next)
        ~size:(control_size t ~hops:(List.length rest))
        ~payload:(Rerr { rerr with re_back = rest })
  | _ -> ()

let originate t data ~size =
  let dst = data.Frame.final_dst in
  if dst = t.ctx.Routing_intf.id then t.ctx.Routing_intf.deliver data
  else if try_send t data ~size then ()
  else begin
    Pending.push t.pending ~dst data ~size;
    match t.discovery with
    | Some d -> Discovery.start d ~dst
    | None -> ()
  end

let unicast_failed t ~frame ~dst:next_hop =
  let me = t.ctx.Routing_intf.id in
  cache_remove_link t (me, next_hop);
  match frame.Frame.payload with
  | Dsr_data dsr ->
      let data = dsr.dd_data in
      (* salvaging: retry from our own cache a bounded number of times *)
      if dsr.dd_salvaged < t.config.max_salvages then begin
        match cached_path_via t ~dst:data.Frame.final_dst with
        | Some route ->
            route_data t data ~size:512 ~route ~salvaged:(dsr.dd_salvaged + 1)
        | None ->
            let traversed =
              (* prefix of the route up to and including us *)
              List.filteri (fun i _ -> i <= dsr.dd_idx) dsr.dd_route
            in
            send_rerr t ~broken:(me, next_hop) ~traversed;
            if data.Frame.origin = me then begin
              Pending.push t.pending ~dst:data.Frame.final_dst data ~size:512;
              match t.discovery with
              | Some d -> Discovery.start d ~dst:data.Frame.final_dst
              | None -> ()
            end
            else t.ctx.Routing_intf.drop_data data ~reason:"salvage failed"
      end
      else begin
        let traversed =
          List.filteri (fun i _ -> i <= dsr.dd_idx) dsr.dd_route
        in
        send_rerr t ~broken:(me, next_hop) ~traversed;
        t.ctx.Routing_intf.drop_data data ~reason:"salvage limit"
      end
  | _ -> ()

let gauges t =
  {
    Routing_intf.no_gauges with
    Routing_intf.route_entries = cache_size t;
    pending_packets = Pending.total t.pending;
  }

let receive t ~src frame =
  match frame.Frame.payload with
  | Rreq rreq -> handle_rreq t ~from:src rreq
  | Rrep rrep -> handle_rrep t ~from:src rrep
  | Dsr_data dsr -> handle_dsr_data t ~from:src dsr
  | Rerr rerr -> handle_rerr t ~from:src rerr
  | Frame.Data data ->
      (* plain data only reaches us if we originated to ourselves *)
      if data.Frame.final_dst = t.ctx.Routing_intf.id then
        t.ctx.Routing_intf.deliver data
  | _ -> ()

let create_full ?(config = default_config) ctx =
  let t =
    {
      ctx;
      config;
      cache = [];
      seen = Seen_cache.create ctx.Routing_intf.engine ~ttl:30.0;
      pending =
        Pending.create ~ttl:config.pending_ttl ~engine:ctx.Routing_intf.engine
          ~capacity:config.pending_capacity
          ~drop:(fun data ~size:_ ~reason ->
            ctx.Routing_intf.drop_data data ~reason)
          ();
      discovery = None;
      next_rreq_id = 0;
    }
  in
  let ttls = List.init config.discovery_attempts (fun _ -> config.discovery_ttl) in
  let discovery =
    Discovery.create ctx.Routing_intf.engine ~ttls
      ~node_traversal:config.node_traversal
      ~send:(fun ~dst ~ttl ~attempt:_ -> originate_rreq t ~dst ~ttl)
      ~give_up:(fun ~dst ->
        Pending.drop_all t.pending ~dst ~reason:"route discovery failed")
  in
  t.discovery <- Some discovery;
  ( t,
    {
      Routing_intf.originate = originate t;
      receive = receive t;
      unicast_failed = unicast_failed t;
      unicast_ok = (fun ~frame:_ ~dst:_ -> ());
      gauges = (fun () -> gauges t);
    } )

let create ?config ctx = snd (create_full ?config ctx)
