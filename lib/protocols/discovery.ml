let span_timer = Obs.span "proto.discovery.timer"

type state = { mutable timer : Des.Engine.handle option }

type t = {
  engine : Des.Engine.t;
  ttls : int array;
  extra_retries : int;
  node_traversal : float;
  rate_limit : float;
  holdoff_base : float;
  holdoff_max : float;
  send : dst:int -> ttl:int -> attempt:int -> unit;
  give_up : dst:int -> unit;
  states : (int, state) Hashtbl.t;
  (* per-destination failure backoff: (consecutive failures, holdoff end) *)
  holdoffs : (int, int * float) Hashtbl.t;
  (* token bucket for the per-node request rate limit *)
  mutable tokens : float;
  mutable last_refill : float;
  mutable sent : int;
}

let create ?(extra_retries = 1) engine ~ttls ~node_traversal ~send ~give_up =
  if ttls = [] then invalid_arg "Discovery.create: empty ttl schedule";
  if extra_retries < 0 then invalid_arg "Discovery.create: negative retries";
  {
    engine;
    ttls = Array.of_list ttls;
    extra_retries;
    node_traversal;
    (* RFC 3561's RREQ_RATELIMIT *)
    rate_limit = 10.0;
    holdoff_base = 1.0;
    holdoff_max = 10.0;
    send;
    give_up;
    states = Hashtbl.create 16;
    holdoffs = Hashtbl.create 16;
    tokens = 5.0;
    last_refill = Des.Engine.now engine;
    sent = 0;
  }

let active t ~dst = Hashtbl.mem t.states dst

let take_token t =
  let now = Des.Engine.now t.engine in
  t.tokens <-
    Stdlib.min 10.0 (t.tokens +. ((now -. t.last_refill) *. t.rate_limit));
  t.last_refill <- now;
  if t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    true
  end
  else false

let in_holdoff t dst =
  match Hashtbl.find_opt t.holdoffs dst with
  | Some (_, until) -> Des.Engine.now t.engine < until
  | None -> false

let note_failure t dst =
  let failures =
    match Hashtbl.find_opt t.holdoffs dst with Some (n, _) -> n + 1 | None -> 1
  in
  let holdoff =
    Stdlib.min t.holdoff_max
      (t.holdoff_base *. (2.0 ** float_of_int (failures - 1)))
  in
  Hashtbl.replace t.holdoffs dst
    (failures, Des.Engine.now t.engine +. holdoff)

let note_success t dst = Hashtbl.remove t.holdoffs dst

let rec attempt t ~dst ~index =
  let ttl = t.ttls.(Stdlib.min index (Array.length t.ttls - 1)) in
  let state =
    match Hashtbl.find_opt t.states dst with
    | Some s -> s
    | None ->
        let s = { timer = None } in
        Hashtbl.replace t.states dst s;
        s
  in
  if take_token t then begin
    t.sent <- t.sent + 1;
    t.send ~dst ~ttl ~attempt:index
  end;
  (* RFC 3561: each retry waits twice as long as the previous one *)
  let timeout =
    2.0 *. float_of_int ttl *. t.node_traversal
    *. (2.0 ** float_of_int index)
  in
  (* retry cap: the TTL schedule, then [extra_retries] more network-wide
     attempts (RFC 3561's RREQ_RETRIES), each still doubling the wait *)
  let handle =
    Des.Engine.schedule ~span:span_timer t.engine ~delay:timeout (fun () ->
        if index + 1 >= Array.length t.ttls + t.extra_retries then begin
          Hashtbl.remove t.states dst;
          note_failure t dst;
          t.give_up ~dst
        end
        else attempt t ~dst ~index:(index + 1))
  in
  state.timer <- Some handle

let start t ~dst =
  if (not (active t ~dst)) && not (in_holdoff t dst) then
    attempt t ~dst ~index:0

let succeed t ~dst =
  note_success t dst;
  match Hashtbl.find_opt t.states dst with
  | None -> ()
  | Some state ->
      (match state.timer with
      | Some handle -> Des.Engine.cancel handle
      | None -> ());
      Hashtbl.remove t.states dst

let requests_sent t = t.sent
