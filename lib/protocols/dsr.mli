(** DSR baseline (Johnson, Maltz, Hu, Jetcheva — draft-ietf-manet-dsr-07),
    simplified: network-wide route-request floods accumulating the traversed
    path, replies carrying complete source routes, a per-node path cache
    with intermediate-node cached replies, source-routed data forwarding
    (the route rides in every data packet and inflates its airtime), packet
    salvaging after link-layer loss, and source-routed route errors.

    Under the paper's high-load, high-mobility scenarios DSR's stale cached
    routes and salvage traffic produce the collapse seen in Figs. 3–4. *)

type config = {
  discovery_ttl : int;
  discovery_attempts : int;
  node_traversal : float;
  cache_capacity : int;  (** max cached paths per node *)
  cache_lifetime : float;
  max_salvages : int;
  pending_capacity : int;
  pending_ttl : float;  (** buffered packets expire after this long, s *)
  relay_jitter : float;
  data_ttl : int;
  base_control_size : int;  (** control packet size before per-hop bytes *)
  per_hop_bytes : int;  (** route-record bytes per listed hop *)
  ip_overhead : int;
}

val default_config : config

type rreq = {
  rq_src : int;
  rq_id : int;
  rq_dst : int;
  rq_record : int list;  (** traversed path, source first *)
  rq_ttl : int;
}

type rrep = {
  rp_path : int list;  (** complete route, source first, destination last *)
  rp_back : int list;  (** remaining reverse hops; head is the next hop *)
}

(** Source-routed data: [route] is the full path (source first), [idx] the
    position of the node currently holding the packet. *)
type dsr_data = {
  dd_data : Wireless.Frame.data;
  dd_route : int list;
  dd_idx : int;
  dd_salvaged : int;
}

type rerr = {
  re_broken : int * int;  (** the dead link (from, to) *)
  re_back : int list;  (** remaining reverse hops toward the source *)
}

type Wireless.Frame.payload +=
  | Rreq of rreq
  | Rrep of rrep
  | Dsr_data of dsr_data
  | Rerr of rerr

val create : ?config:config -> Routing_intf.ctx -> Routing_intf.agent

(** {2 White-box inspection for tests} *)

type t

val create_full :
  ?config:config -> Routing_intf.ctx -> t * Routing_intf.agent

(** Best (shortest live) cached path from this node to [dst], if any. *)
val cached_path : t -> dst:int -> int list option

val cache_size : t -> int
