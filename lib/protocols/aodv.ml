let span_timer = Obs.span "proto.aodv.timer"

module Frame = Wireless.Frame

type config = {
  ttls : int list;
  node_traversal : float;
  route_lifetime : float;
  pending_capacity : int;
  pending_ttl : float;
  relay_jitter : float;
  data_ttl : int;
  rreq_size : int;
  rrep_size : int;
  rerr_size : int;
  ip_overhead : int;
}

let default_config =
  {
    ttls = [ 1; 3; 7; 16 ];
    node_traversal = 0.04;
    route_lifetime = 10.0;
    pending_capacity = 64;
    pending_ttl = 30.0;
    relay_jitter = 0.01;
    data_ttl = 64;
    rreq_size = 44;
    rrep_size = 40;
    rerr_size = 32;
    ip_overhead = 20;
  }

type rreq = {
  rq_src : int;
  rq_src_seqno : int;
  rq_id : int;
  rq_dst : int;
  rq_dst_seqno : int option;
  rq_hops : int;
  rq_ttl : int;
}

type rrep = {
  rp_src : int;
  rp_dst : int;
  rp_dst_seqno : int;
  rp_hops : int;
  rp_lifetime : float;
}

type rerr = { re_unreachable : (int * int) list }

type Frame.payload += Rreq of rreq | Rrep of rrep | Rerr of rerr

type route = {
  mutable seqno : int;
  mutable seqno_known : bool;
  mutable hops : int;
  mutable next_hop : int;
  mutable expiry : float;
  mutable valid : bool;
  precursors : (int, unit) Hashtbl.t;
}

type t = {
  ctx : Routing_intf.ctx;
  config : config;
  routes : (int, route) Hashtbl.t;
  seen : Seen_cache.t;
  pending : Pending.t;
  mutable discovery : Discovery.t option;
  mutable self_seqno : int;
  mutable next_rreq_id : int;
  mutable on_change : int -> unit;  (** fires with the destination id *)
}

let now t = Des.Engine.now t.ctx.Routing_intf.engine

let route_for t dst =
  match Hashtbl.find_opt t.routes dst with
  | Some r -> r
  | None ->
      let r =
        {
          seqno = 0;
          seqno_known = false;
          hops = 0;
          next_hop = -1;
          expiry = 0.0;
          valid = false;
          precursors = Hashtbl.create 4;
        }
      in
      Hashtbl.replace t.routes dst r;
      r

let route_valid t r = r.valid && r.expiry > now t

let valid_route t dst =
  match Hashtbl.find_opt t.routes dst with
  | Some r when route_valid t r -> Some r
  | Some _ | None -> None

let refresh t r = r.expiry <- Stdlib.max r.expiry (now t +. t.config.route_lifetime)

(* Standard AODV update rule: accept fresher seqno, or same seqno with
   fewer hops, or anything when the current entry is invalid. *)
let update_route t ~dst ~seqno ~hops ~next_hop =
  let r = route_for t dst in
  let better =
    (not (route_valid t r))
    || (not r.seqno_known)
    || seqno > r.seqno
    || (seqno = r.seqno && hops < r.hops)
  in
  if better then begin
    r.seqno <- seqno;
    r.seqno_known <- true;
    r.hops <- hops;
    r.next_hop <- next_hop;
    r.valid <- true;
    refresh t r;
    t.on_change dst
  end;
  better

let control_frame t ~dst ~size ~payload =
  let kind =
    match payload with
    | Rreq _ -> "rreq"
    | Rrep _ -> "rrep"
    | Rerr _ -> "rerr"
    | _ -> "ctl"
  in
  Frame.with_kind (Frame.make ~src:t.ctx.Routing_intf.id ~dst ~size ~payload) kind

let send_rerr t ~entries ~to_ =
  if entries <> [] then
    t.ctx.Routing_intf.mac_send
      (control_frame t ~dst:to_ ~size:t.config.rerr_size
         ~payload:(Rerr { re_unreachable = entries }))

let data_frame t ~next_hop data ~size =
  Frame.make ~src:t.ctx.Routing_intf.id ~dst:(Frame.Unicast next_hop)
    ~size:(size + t.config.ip_overhead)
    ~payload:(Frame.Data data)

let forward_data t data ~size =
  match valid_route t data.Frame.final_dst with
  | None -> false
  | Some r ->
      data.Frame.hops <- data.Frame.hops + 1;
      if data.Frame.hops > t.config.data_ttl then begin
        t.ctx.Routing_intf.drop_data data ~reason:"ttl exceeded";
        true
      end
      else begin
        refresh t r;
        Trace.pkt_forward t.ctx.Routing_intf.trace ~node:t.ctx.Routing_intf.id
          ~flow:data.Frame.flow ~seq:data.Frame.seq ~next:r.next_hop;
        t.ctx.Routing_intf.mac_send (data_frame t ~next_hop:r.next_hop data ~size);
        true
      end

let requested_seqno t dst =
  match Hashtbl.find_opt t.routes dst with
  | Some r when r.seqno_known ->
      (* after a break, ask for something strictly fresher *)
      Some (if r.valid then r.seqno else r.seqno + 1)
  | Some _ | None -> None

let originate_rreq t ~dst ~ttl =
  (* a node MUST increment its own seqno before originating a RREQ *)
  t.self_seqno <- t.self_seqno + 1;
  t.next_rreq_id <- t.next_rreq_id + 1;
  let rreq =
    {
      rq_src = t.ctx.Routing_intf.id;
      rq_src_seqno = t.self_seqno;
      rq_id = t.next_rreq_id;
      rq_dst = dst;
      rq_dst_seqno = requested_seqno t dst;
      rq_hops = 0;
      rq_ttl = ttl;
    }
  in
  t.ctx.Routing_intf.mac_send
    (control_frame t ~dst:Frame.Broadcast ~size:t.config.rreq_size
       ~payload:(Rreq rreq))

let send_rrep t ~to_ rrep =
  t.ctx.Routing_intf.mac_send
    (control_frame t ~dst:(Frame.Unicast to_) ~size:t.config.rrep_size
       ~payload:(Rrep rrep))

let handle_rreq t ~from rreq =
  let me = t.ctx.Routing_intf.id in
  if rreq.rq_src = me then ()
  else if not (Seen_cache.witness t.seen ~origin:rreq.rq_src ~id:rreq.rq_id)
  then ()
  else begin
    (* reverse route to the originator *)
    ignore
      (update_route t ~dst:rreq.rq_src ~seqno:rreq.rq_src_seqno
         ~hops:(rreq.rq_hops + 1) ~next_hop:from);
    if rreq.rq_dst = me then begin
      (* destination reply: seqno must cover the request *)
      (match rreq.rq_dst_seqno with
      | Some s when s > t.self_seqno -> t.self_seqno <- s
      | Some _ | None -> ());
      t.self_seqno <- t.self_seqno + 1;
      send_rrep t ~to_:from
        {
          rp_src = rreq.rq_src;
          rp_dst = me;
          rp_dst_seqno = t.self_seqno;
          rp_hops = 0;
          rp_lifetime = t.config.route_lifetime;
        }
    end
    else begin
      let entry = valid_route t rreq.rq_dst in
      let can_reply =
        match (entry, rreq.rq_dst_seqno) with
        | Some r, Some s -> r.seqno_known && r.seqno >= s
        | Some r, None -> r.seqno_known
        | None, _ -> false
      in
      match entry with
      | Some r when can_reply ->
          (* intermediate reply; precursors gain the requester direction *)
          Hashtbl.replace r.precursors from ();
          send_rrep t ~to_:from
            {
              rp_src = rreq.rq_src;
              rp_dst = rreq.rq_dst;
              rp_dst_seqno = r.seqno;
              rp_hops = r.hops;
              rp_lifetime = r.expiry -. now t;
            }
      | Some _ | None ->
          if rreq.rq_ttl > 1 then begin
            let requested =
              match (rreq.rq_dst_seqno, entry) with
              | Some s, Some r when r.seqno_known ->
                  Some (Stdlib.max s r.seqno)
              | Some s, _ -> Some s
              | None, Some r when r.seqno_known -> Some r.seqno
              | None, _ -> None
            in
            let relayed =
              {
                rreq with
                rq_hops = rreq.rq_hops + 1;
                rq_ttl = rreq.rq_ttl - 1;
                rq_dst_seqno = requested;
              }
            in
            let delay =
              Des.Rng.float t.ctx.Routing_intf.rng t.config.relay_jitter
            in
            ignore
              (Des.Engine.schedule ~span:span_timer t.ctx.Routing_intf.engine ~delay
                 (fun () ->
                   t.ctx.Routing_intf.mac_send
                     (control_frame t ~dst:Frame.Broadcast
                        ~size:t.config.rreq_size ~payload:(Rreq relayed))))
          end
    end
  end

let flush_pending t ~dst =
  List.iter
    (fun (data, size) ->
      if not (forward_data t data ~size) then
        t.ctx.Routing_intf.drop_data data ~reason:"no route after reply")
    (Pending.take_all t.pending ~dst)

let handle_rrep t ~from rrep =
  let me = t.ctx.Routing_intf.id in
  let accepted =
    update_route t ~dst:rrep.rp_dst ~seqno:rrep.rp_dst_seqno
      ~hops:(rrep.rp_hops + 1) ~next_hop:from
  in
  if rrep.rp_src = me then begin
    if accepted || valid_route t rrep.rp_dst <> None then begin
      (match t.discovery with
      | Some d -> Discovery.succeed d ~dst:rrep.rp_dst
      | None -> ());
      flush_pending t ~dst:rrep.rp_dst
    end
  end
  else begin
    (* forward along the reverse route toward the originator *)
    match valid_route t rrep.rp_src with
    | None -> ()
    | Some reverse ->
        (match Hashtbl.find_opt t.routes rrep.rp_dst with
        | Some fwd when route_valid t fwd ->
            Hashtbl.replace fwd.precursors reverse.next_hop ()
        | Some _ | None -> ());
        send_rrep t ~to_:reverse.next_hop
          { rrep with rp_hops = rrep.rp_hops + 1 }
  end

let handle_rerr t ~from rerr =
  let propagate = ref [] in
  List.iter
    (fun (dst, seqno) ->
      match Hashtbl.find_opt t.routes dst with
      | Some r when r.valid && r.next_hop = from ->
          r.valid <- false;
          r.seqno <- Stdlib.max r.seqno seqno;
          t.on_change dst;
          if Hashtbl.length r.precursors > 0 then
            propagate := (dst, r.seqno) :: !propagate
      | Some _ | None -> ())
    rerr.re_unreachable;
  send_rerr t ~entries:!propagate ~to_:Frame.Broadcast

let handle_data t ~from data ~size =
  let me = t.ctx.Routing_intf.id in
  if data.Frame.final_dst = me then t.ctx.Routing_intf.deliver data
  else if forward_data t data ~size:(size - t.config.ip_overhead) then ()
  else begin
    let seqno =
      match Hashtbl.find_opt t.routes data.Frame.final_dst with
      | Some r -> r.seqno + 1
      | None -> 1
    in
    send_rerr t
      ~entries:[ (data.Frame.final_dst, seqno) ]
      ~to_:(Frame.Unicast from);
    t.ctx.Routing_intf.drop_data data ~reason:"no route at relay"
  end

let originate t data ~size =
  let dst = data.Frame.final_dst in
  if dst = t.ctx.Routing_intf.id then t.ctx.Routing_intf.deliver data
  else if forward_data t data ~size then ()
  else begin
    Pending.push t.pending ~dst data ~size;
    match t.discovery with
    | Some d -> Discovery.start d ~dst
    | None -> ()
  end

(* Link break: invalidate every route through the dead neighbour, report
   to precursors, and attempt local repair for the data in hand. *)
let unicast_failed t ~frame ~dst:next_hop =
  let lost = ref [] in
  Hashtbl.iter
    (fun dst r ->
      if r.valid && r.next_hop = next_hop then begin
        r.valid <- false;
        r.seqno <- r.seqno + 1;
        t.on_change dst;
        if Hashtbl.length r.precursors > 0 then
          lost := (dst, r.seqno) :: !lost
      end)
    t.routes;
  (match frame.Frame.payload with
  | Frame.Data data ->
      let size = frame.Frame.size - t.config.ip_overhead in
      let dst = data.Frame.final_dst in
      (* local repair: buffer and re-discover from here *)
      lost := List.filter (fun (d, _) -> d <> dst) !lost;
      Pending.push t.pending ~dst data ~size;
      (match t.discovery with
      | Some d -> Discovery.start d ~dst
      | None -> ())
  | _ -> ());
  send_rerr t ~entries:!lost ~to_:Frame.Broadcast

let receive t ~src frame =
  match frame.Frame.payload with
  | Frame.Data data -> handle_data t ~from:src data ~size:frame.Frame.size
  | Rreq rreq -> handle_rreq t ~from:src rreq
  | Rrep rrep -> handle_rrep t ~from:src rrep
  | Rerr rerr -> handle_rerr t ~from:src rerr
  | _ -> ()

let gauges t =
  let time = now t in
  let route_entries =
    Hashtbl.fold
      (fun _ r acc -> if r.valid && r.expiry > time then acc + 1 else acc)
      t.routes 0
  in
  {
    Routing_intf.own_seqno = t.self_seqno;
    max_denominator = 0;
    seqno_resets = 0;
    label_width_bits = 0;
    label_resets = 0;
    route_entries;
    pending_packets = Pending.total t.pending;
  }

let create_full ?(config = default_config) ctx =
  let t =
    {
      ctx;
      config;
      routes = Hashtbl.create 32;
      seen = Seen_cache.create ctx.Routing_intf.engine ~ttl:30.0;
      pending =
        Pending.create ~ttl:config.pending_ttl ~engine:ctx.Routing_intf.engine
          ~capacity:config.pending_capacity
          ~drop:(fun data ~size:_ ~reason ->
            ctx.Routing_intf.drop_data data ~reason)
          ();
      discovery = None;
      self_seqno = 0;
      next_rreq_id = 0;
      on_change = ignore;
    }
  in
  let discovery =
    Discovery.create ctx.Routing_intf.engine ~ttls:config.ttls
      ~node_traversal:config.node_traversal
      ~send:(fun ~dst ~ttl ~attempt:_ -> originate_rreq t ~dst ~ttl)
      ~give_up:(fun ~dst ->
        (* repair failed: notify precursors and flush the buffer *)
        (match Hashtbl.find_opt t.routes dst with
        | Some r when Hashtbl.length r.precursors > 0 ->
            send_rerr t ~entries:[ (dst, r.seqno) ] ~to_:Frame.Broadcast
        | Some _ | None -> ());
        Pending.drop_all t.pending ~dst ~reason:"route discovery failed")
  in
  t.discovery <- Some discovery;
  ( t,
    {
      Routing_intf.originate = originate t;
      receive = receive t;
      unicast_failed = unicast_failed t;
      unicast_ok = (fun ~frame:_ ~dst:_ -> ());
      gauges = (fun () -> gauges t);
    } )

let create ?config ctx = snd (create_full ?config ctx)

let own_seqno t = t.self_seqno

let next_hop t ~dst =
  match valid_route t dst with Some r -> Some r.next_hop | None -> None

let route_seqno t ~dst =
  match Hashtbl.find_opt t.routes dst with
  | Some r when r.seqno_known -> Some r.seqno
  | Some _ | None -> None

let on_route_change t f = t.on_change <- f
