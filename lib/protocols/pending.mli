(** Per-destination buffer for data packets awaiting route discovery, with a
    bounded capacity, per-entry expiry, and a drop callback, shared by all
    on-demand agents. *)

type t

(** [create ~capacity ~drop] builds a buffer. When [ttl] and [engine] are
    both given, every entry expires [ttl] seconds after it was pushed and is
    drained through the drop callback by an engine timer — a destination
    whose discovery silently stalls (e.g. because the requester is in
    holdoff) can no longer pin packets forever. Without them, entries live
    until taken or displaced (the legacy behaviour). *)
val create :
  ?ttl:float ->
  ?engine:Des.Engine.t ->
  capacity:int ->
  drop:(Wireless.Frame.data -> size:int -> reason:string -> unit) ->
  unit ->
  t

(** [push t ~dst data ~size] buffers a packet; the oldest buffered packet
    for [dst] is dropped (via the callback) when the buffer is full. *)
val push : t -> dst:int -> Wireless.Frame.data -> size:int -> unit

(** [take_all t ~dst] removes and returns the live buffered packets in
    arrival order (expired ones are dropped first). *)
val take_all : t -> dst:int -> (Wireless.Frame.data * int) list

(** [drop_all t ~dst ~reason] flushes the buffer through the drop callback
    (route discovery failed). *)
val drop_all : t -> dst:int -> reason:string -> unit

val count : t -> dst:int -> int

(** Total buffered packets across all destinations. Read-only (no expiry
    sweep), so it is safe to call from gauge sampling. *)
val total : t -> int
