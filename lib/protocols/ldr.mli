(** LDR baseline (Garcia-Luna-Aceves, Mosko, Perkins — PODC 2003): on-demand
    routing ordered by a {e numeric} feasible distance plus a
    destination-controlled sequence number.

    A successor is feasible iff it reports a higher sequence number, or an
    equal one with a strictly smaller feasible distance (the DUAL/SNC
    ordering). Broken routes often repair locally — any neighbour whose
    label is in-order can answer — but when orderings cannot be stitched
    the request must reach the destination, which issues a reply with a
    larger sequence number that resets feasible distances along the reply
    path (the behaviour SRP §I describes and improves on by making the
    distance {e sub-divisible}). Sequence numbers therefore grow slower
    than AODV's but are not identically zero like SRP's (Fig. 7). *)

type config = {
  ttls : int list;
  node_traversal : float;
  route_lifetime : float;
  pending_capacity : int;
  pending_ttl : float;  (** buffered packets expire after this long, s *)
  relay_jitter : float;
  data_ttl : int;
  rreq_size : int;
  rrep_size : int;
  rerr_size : int;
  ip_overhead : int;
}

val default_config : config

(** A node label: sequence number and integer feasible distance. *)
type label = { sn : int; fd : int }

type rreq = {
  rq_src : int;
  rq_id : int;
  rq_dst : int;
  rq_label : label option;  (** [None] = requester unassigned *)
  rq_reset : bool;
  rq_hops : int;
  rq_ttl : int;
}

type rrep = {
  rp_src : int;
  rp_id : int;
  rp_dst : int;
  rp_label : label;  (** the advertiser's own label for [rp_dst] *)
  rp_dist : int;  (** measured distance *)
  rp_lifetime : float;
}

type rerr = { re_unreachable : int list }

type Wireless.Frame.payload +=
  | Rreq of rreq
  | Rrep of rrep
  | Rerr of rerr

(** [feasible ~own ~adv] — is a successor advertising [adv] in-order for a
    node whose label is [own]? ([own = None] accepts anything.) *)
val feasible : own:label option -> adv:label -> bool

val create : ?config:config -> Routing_intf.ctx -> Routing_intf.agent

(** {2 White-box inspection for tests} *)

type t

val create_full :
  ?config:config -> Routing_intf.ctx -> t * Routing_intf.agent

val own_seqno : t -> int

val label_for : t -> dst:int -> label option

val next_hop : t -> dst:int -> int option
