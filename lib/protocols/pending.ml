let span_timer = Obs.span "proto.pending.timer"

type entry = { data : Wireless.Frame.data; size : int; deadline : float }

type t = {
  capacity : int;
  ttl : float;
  engine : Des.Engine.t option;
  drop : Wireless.Frame.data -> size:int -> reason:string -> unit;
  queues : (int, entry Queue.t) Hashtbl.t;
  mutable sweep : Des.Engine.handle option;
}

let expiry_reason = "pending-buffer expired"

let create ?(ttl = infinity) ?engine ~capacity ~drop () =
  { capacity; ttl; engine; drop; queues = Hashtbl.create 16; sweep = None }

let now t =
  match t.engine with Some e -> Des.Engine.now e | None -> 0.0

let queue_for t dst =
  match Hashtbl.find_opt t.queues dst with
  | Some q -> q
  | None ->
      let q = Queue.create ()
      in
      Hashtbl.replace t.queues dst q;
      q

(* Entries are queued in arrival order, so each queue's deadlines are
   non-decreasing: expiry only ever needs to look at the head. *)
let drop_expired t q ~time =
  let rec loop () =
    match Queue.peek_opt q with
    | Some e when e.deadline <= time ->
        ignore (Queue.pop q);
        t.drop e.data ~size:e.size ~reason:expiry_reason;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let earliest_deadline t =
  Hashtbl.fold
    (fun _ q acc ->
      match Queue.peek_opt q with
      | Some e -> (match acc with
          | Some d -> Some (Stdlib.min d e.deadline)
          | None -> Some e.deadline)
      | None -> acc)
    t.queues None

(* Timer-driven expiry so a destination nobody ever asks about again still
   drains: one timer, re-armed at the earliest live deadline. *)
let rec arm_sweep t =
  match t.engine with
  | None -> ()
  | Some engine -> (
      match t.sweep with
      | Some h when not (Des.Engine.cancelled h) -> ()
      | Some _ | None -> (
          match earliest_deadline t with
          | None -> t.sweep <- None
          | Some deadline ->
              let time = Stdlib.max deadline (Des.Engine.now engine) in
              t.sweep <-
                Some
                  (Des.Engine.schedule_at ~span:span_timer engine ~time (fun () ->
                       t.sweep <- None;
                       let time = Des.Engine.now engine in
                       Hashtbl.iter (fun _ q -> drop_expired t q ~time) t.queues;
                       arm_sweep t))))

let push t ~dst data ~size =
  let q = queue_for t dst in
  drop_expired t q ~time:(now t);
  if Queue.length q >= t.capacity then begin
    let old = Queue.pop q in
    t.drop old.data ~size:old.size ~reason:"pending-buffer overflow"
  end;
  Queue.add { data; size; deadline = now t +. t.ttl } q;
  arm_sweep t

let take_all t ~dst =
  match Hashtbl.find_opt t.queues dst with
  | None -> []
  | Some q ->
      drop_expired t q ~time:(now t);
      let items =
        List.of_seq (Seq.map (fun e -> (e.data, e.size)) (Queue.to_seq q))
      in
      Queue.clear q;
      items

let drop_all t ~dst ~reason =
  List.iter (fun (data, size) -> t.drop data ~size ~reason) (take_all t ~dst)

let count t ~dst =
  match Hashtbl.find_opt t.queues dst with
  | None -> 0
  | Some q ->
      drop_expired t q ~time:(now t);
      Queue.length q

let total t = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.queues 0
