let span_timer = Obs.span "proto.srp.timer"

(* Always-on label telemetry: the high-water encoded label width per
   domain, and the count of seqno resets forced by label exhaustion. *)
let gauge_width_bits = Obs.gauge "srp.label.width_bits.max"
let counter_label_resets = Obs.counter "srp.label.resets"

module Ordering = Slr.Ordering
module Label = Slr.Label
module Label_set = Slr.Label_set
module Fraction = Slr.Fraction
module New_order = Slr.New_order
module Frame = Wireless.Frame

type config = {
  ttls : int list;
  node_traversal : float;
  route_lifetime : float;
  delete_period : float;
  max_denom : int;
  min_reply_hops : int;
  lie_k : int;
  labels : Label_set.id;
  probe_on_n : bool;
  pending_capacity : int;
  pending_ttl : float;
  relay_jitter : float;
  data_ttl : int;
  rack_timeout : float;
  rack_retries : int;
  rreq_size : int;
  rrep_size : int;
  rerr_size : int;
  rack_size : int;
  ip_overhead : int;
}

let default_config =
  {
    ttls = [ 1; 3; 7; 16 ];
    node_traversal = 0.04;
    route_lifetime = 10.0;
    delete_period = 60.0;
    max_denom = 1_000_000_000;
    min_reply_hops = 0;
    lie_k = 10_000;
    labels = Label_set.default;
    probe_on_n = false;
    pending_capacity = 64;
    pending_ttl = 30.0;
    relay_jitter = 0.01;
    data_ttl = 64;
    rack_timeout = 0.1;
    rack_retries = 2;
    rreq_size = 52;
    rrep_size = 44;
    rerr_size = 32;
    rack_size = 26;
    ip_overhead = 20;
  }

type rreq = {
  rq_src : int;
  rq_id : int;
  rq_dst : int;
  rq_order : Ordering.t;
  rq_u : bool;
  rq_rr : bool;
  rq_d : bool;
  rq_n : bool;
  rq_hops : int;
  rq_ttl : int;
  rq_adv : rreq_adv option;
}

and rreq_adv = { ra_order : Ordering.t; ra_dist : int }

type rrep = {
  rp_src : int;
  rp_id : int;
  rp_dst : int;
  rp_order : Ordering.t;
  rp_dist : int;
  rp_lifetime : float;
  rp_n : bool;
}

type rerr = { re_unreachable : int list }

type rack = { k_src : int; k_id : int }

type Frame.payload +=
  | Rreq of rreq
  | Rrep of rrep
  | Rerr of rerr
  | Rack of rack

type succ = {
  mutable s_order : Ordering.t;
  mutable s_dist : int;
  mutable s_expiry : float;
}

type route = {
  mutable own : Ordering.t;
  mutable own_keep_until : float;  (** DELETE_PERIOD retention horizon *)
  succs : (int, succ) Hashtbl.t;
  precursors : (int, unit) Hashtbl.t;
}

(* Engaged-state entry per (source, rreq_id): the cached solicitation
   ordering C and the reverse-path last hop. *)
type engagement = {
  e_cached : Ordering.t;
  e_last_hop : int;
  e_time : float;
  mutable e_replied : bool;
}

type t = {
  ctx : Routing_intf.ctx;
  config : config;
  labels : (module Label.S);  (** resolved once from [config.labels] *)
  infinite : Ordering.t;  (** this instance's unassigned sentinel *)
  routes : (int, route) Hashtbl.t;
  engagements : (int * int, engagement) Hashtbl.t;
  seen : Seen_cache.t;
  pending : Pending.t;
  mutable discovery : Discovery.t option;  (** set during wiring *)
  (* RREPs awaiting a RACK, keyed by (rreq source, rreq id, next hop) *)
  racks : (int * int * int, Des.Engine.handle) Hashtbl.t;
  mutable self_seqno : int;
  mutable next_rreq_id : int;
  mutable max_denom_seen : int;
  mutable label_width_max : int;
  mutable label_resets : int;
  mutable resets : int;
  mutable rack_retx : int;
  (* online-monitor hook: fired after every route-table mutation *)
  mutable listener : int -> unit;
}

let now t = Des.Engine.now t.ctx.Routing_intf.engine

let route_for t dst =
  match Hashtbl.find_opt t.routes dst with
  | Some r -> r
  | None ->
      let r =
        {
          own = t.infinite;
          own_keep_until = 0.0;
          succs = Hashtbl.create 4;
          precursors = Hashtbl.create 4;
        }
      in
      Hashtbl.replace t.routes dst r;
      r

(* DELETE_PERIOD: once the retention horizon of an invalid route passes,
   the node may forget its label (Definition 3). *)
let own_ordering t dst =
  if dst = t.ctx.Routing_intf.id then
    Ordering.destination_of t.labels ~sn:t.self_seqno
  else begin
    match Hashtbl.find_opt t.routes dst with
    | None -> t.infinite
    | Some r ->
        if
          Hashtbl.length r.succs = 0
          && now t > r.own_keep_until
          && not (Ordering.is_unassigned r.own)
        then r.own <- t.infinite;
        r.own
  end

let retain_label t r = r.own_keep_until <- now t +. t.config.delete_period

let prune_succs t r =
  let time = now t in
  let dead =
    Hashtbl.fold
      (fun b s acc -> if s.s_expiry <= time then b :: acc else acc)
      r.succs []
  in
  List.iter (Hashtbl.remove r.succs) dead

let live_succs t dst =
  match Hashtbl.find_opt t.routes dst with
  | None -> []
  | Some r ->
      prune_succs t r;
      Hashtbl.fold (fun b s acc -> (b, s) :: acc) r.succs []

let has_active_route t ~dst =
  dst = t.ctx.Routing_intf.id || live_succs t dst <> []

(* Uni-path forwarding: the successor from the min-hop set (paper §III). *)
let best_successor t dst =
  match live_succs t dst with
  | [] -> None
  | (b0, s0) :: rest ->
      let best, _ =
        List.fold_left
          (fun (bb, bs) (b, s) ->
            if
              s.s_dist < bs.s_dist
              || (s.s_dist = bs.s_dist && b < bb)
            then (b, s)
            else (bb, bs))
          (b0, s0) rest
      in
      Some best

let route_dist t dst =
  match live_succs t dst with
  | [] -> 0
  | succs -> List.fold_left (fun acc (_, s) -> Stdlib.min acc s.s_dist) max_int succs

let succ_ordering_list t dst =
  List.map (fun (b, s) -> (b, s.s_order)) (live_succs t dst)

(* §V heuristic: understate the solicitation ordering so only strictly
   better-ordered nodes reply. The perturbation is instance-specific. *)
let lie_about t order =
  let (module L : Label.S) = t.labels in
  let label = L.understate ~k:t.config.lie_k order.Ordering.label in
  if label == order.Ordering.label then order
  else Ordering.v ~sn:order.Ordering.sn ~label

let control_frame t ~dst ~size ~payload =
  let kind =
    match payload with
    | Rreq _ -> "rreq"
    | Rrep _ -> "rrep"
    | Rerr _ -> "rerr"
    | Rack _ -> "rack"
    | _ -> "ctl"
  in
  Frame.with_kind (Frame.make ~src:t.ctx.Routing_intf.id ~dst ~size ~payload) kind

let send_rerr t ~dsts ~to_ =
  if dsts <> [] then
    t.ctx.Routing_intf.mac_send
      (control_frame t ~dst:to_ ~size:t.config.rerr_size
         ~payload:(Rerr { re_unreachable = dsts }))

(* Remove [neighbor] as successor everywhere (the link is gone); returns
   destinations that lost their last successor. *)
let drop_link t neighbor =
  let lost = ref [] in
  let changed = ref [] in
  Hashtbl.iter
    (fun dst r ->
      if Hashtbl.mem r.succs neighbor then begin
        Hashtbl.remove r.succs neighbor;
        changed := dst :: !changed;
        Trace.route_del t.ctx.Routing_intf.trace ~node:t.ctx.Routing_intf.id
          ~dst ~via:neighbor ~reason:"link lost";
        if Hashtbl.length r.succs = 0 then lost := dst :: !lost
      end)
    t.routes;
  List.iter t.listener !changed;
  !lost

let report_lost_routes t lost =
  let with_precursors =
    List.filter
      (fun dst ->
        match Hashtbl.find_opt t.routes dst with
        | Some r -> Hashtbl.length r.precursors > 0
        | None -> false)
      lost
  in
  send_rerr t ~dsts:with_precursors ~to_:Frame.Broadcast

(* ------------------------------------------------------------------ *)
(* Data plane                                                          *)

let data_frame t ~next_hop data ~size =
  Frame.make ~src:t.ctx.Routing_intf.id ~dst:(Frame.Unicast next_hop)
    ~size:(size + t.config.ip_overhead)
    ~payload:(Frame.Data data)

let forward_data t data ~size =
  let dst = data.Frame.final_dst in
  match best_successor t dst with
  | None -> false
  | Some next_hop ->
      data.Frame.hops <- data.Frame.hops + 1;
      if data.Frame.hops > t.config.data_ttl then begin
        t.ctx.Routing_intf.drop_data data ~reason:"ttl exceeded";
        true
      end
      else begin
        (match Hashtbl.find_opt t.routes dst with
        | Some r ->
            retain_label t r;
            (match Hashtbl.find_opt r.succs next_hop with
            | Some s ->
                s.s_expiry <-
                  Stdlib.max s.s_expiry (now t +. t.config.route_lifetime)
            | None -> ())
        | None -> ());
        Trace.pkt_forward t.ctx.Routing_intf.trace ~node:t.ctx.Routing_intf.id
          ~flow:data.Frame.flow ~seq:data.Frame.seq ~next:next_hop;
        t.ctx.Routing_intf.mac_send (data_frame t ~next_hop data ~size);
        true
      end

(* ------------------------------------------------------------------ *)
(* Solicitations                                                       *)

let fresh_rreq_id t =
  t.next_rreq_id <- t.next_rreq_id + 1;
  t.next_rreq_id

(* The advertisement piece of a RREQ this node emits: its route to the
   RREQ source (itself at origination). *)
let rreq_advertisement t ~src =
  if src = t.ctx.Routing_intf.id then
    Some
      { ra_order = Ordering.destination_of t.labels ~sn:t.self_seqno;
        ra_dist = 0 }
  else if has_active_route t ~dst:src then
    Some { ra_order = own_ordering t src; ra_dist = route_dist t src }
  else None

let broadcast_rreq t rreq ~jitter =
  let frame =
    control_frame t ~dst:Frame.Broadcast ~size:t.config.rreq_size
      ~payload:(Rreq rreq)
  in
  if jitter <= 0.0 then t.ctx.Routing_intf.mac_send frame
  else
    let delay = Des.Rng.float t.ctx.Routing_intf.rng jitter in
    ignore
      (Des.Engine.schedule ~span:span_timer t.ctx.Routing_intf.engine
         ~delay (fun () ->
           t.ctx.Routing_intf.mac_send frame))

let originate_rreq t ~dst ~ttl ~rr =
  let own = own_ordering t dst in
  let unassigned = not (Ordering.is_finite own) in
  let order = if unassigned then t.infinite else lie_about t own in
  let rreq =
    {
      rq_src = t.ctx.Routing_intf.id;
      rq_id = fresh_rreq_id t;
      rq_dst = dst;
      rq_order = order;
      rq_u = unassigned;
      rq_rr = rr;
      rq_d = false;
      rq_n = false;
      rq_hops = 0;
      rq_ttl = ttl;
      rq_adv = rreq_advertisement t ~src:t.ctx.Routing_intf.id;
    }
  in
  broadcast_rreq t rreq ~jitter:0.0

(* D-bit probe: unicast along the forward path, forcing the destination
   itself to reply with a reset (paper §III, MAX_DENOM and N-bit cases). *)
let send_probe t ~dst =
  match best_successor t dst with
  | None -> ()
  | Some next_hop ->
      let rreq =
        {
          rq_src = t.ctx.Routing_intf.id;
          rq_id = fresh_rreq_id t;
          rq_dst = dst;
          rq_order = own_ordering t dst;
          rq_u = false;
          rq_rr = true;
          rq_d = true;
          rq_n = false;
          rq_hops = 0;
          rq_ttl = t.config.data_ttl;
          rq_adv = rreq_advertisement t ~src:t.ctx.Routing_intf.id;
        }
      in
      t.ctx.Routing_intf.mac_send
        (control_frame t ~dst:(Frame.Unicast next_hop)
           ~size:t.config.rreq_size ~payload:(Rreq rreq))

(* ------------------------------------------------------------------ *)
(* Procedure 3 (Set Route): adopt an advertisement if NEWORDER is finite *)

type adoption = Adopted | Rejected

let set_route t ~dst ~via ~adv_order ~adv_dist ~cached ~lifetime =
  let current = own_ordering t dst in
  if not (New_order.feasible ~current ~adv:adv_order) then Rejected
  else begin
    let result =
      New_order.compute_with ~labels:t.labels ~current ~cached ~adv:adv_order
    in
    if not (Ordering.is_finite result.New_order.order) then Rejected
    else begin
      let g = result.New_order.order in
      let r = route_for t dst in
      r.own <- g;
      retain_label t r;
      (match Label.to_ints g.Ordering.label with
      | Some (_, den) when den > t.max_denom_seen -> t.max_denom_seen <- den
      | Some _ | None -> ());
      let width = Label.width_bits g.Ordering.label in
      if width > t.label_width_max then begin
        t.label_width_max <- width;
        Obs.raise_gauge gauge_width_bits width
      end;
      let trace = t.ctx.Routing_intf.trace in
      let me = t.ctx.Routing_intf.id in
      Trace.route_add trace ~node:me ~dst ~via ~dist:(adv_dist + 1);
      (match result.New_order.case with
      | New_order.Fresher_split | New_order.Equal_split ->
          if Trace.enabled trace then
            Trace.label_split trace ~node:me ~dst ~sn:g.Ordering.sn
              ~label:(Label.encode g.Ordering.label)
              ~frac:(Label.to_ints g.Ordering.label)
      | New_order.Infinite | New_order.Fresher_next | New_order.Keep_current ->
          ());
      let entry =
        {
          s_order = adv_order;
          s_dist = adv_dist + 1;
          s_expiry = now t +. lifetime;
        }
      in
      Hashtbl.replace r.succs via entry;
      (* Algorithm 1 line 13: eliminate successors no longer in order *)
      let stale =
        Hashtbl.fold
          (fun b s acc ->
            if Ordering.precedes g s.s_order then acc else b :: acc)
          r.succs []
      in
      List.iter
        (fun b ->
          Hashtbl.remove r.succs b;
          Trace.route_del trace ~node:me ~dst ~via:b ~reason:"out of order")
        stale;
      t.listener dst;
      Adopted
    end
  end

(* ------------------------------------------------------------------ *)
(* RREQ handling (Procedure 2, SDC, Eqs. 9-11)                          *)

(* Engagements must outlive any in-flight reply; anything older than
   DELETE_PERIOD is dead. Amortised: sweep when the table grows large. *)
let sweep_engagements t =
  if Hashtbl.length t.engagements > 4096 then begin
    let horizon = now t -. t.config.delete_period in
    let dead =
      Hashtbl.fold
        (fun key e acc -> if e.e_time < horizon then key :: acc else acc)
        t.engagements []
    in
    List.iter (Hashtbl.remove t.engagements) dead
  end

(* RACK: protocol-level acknowledged RREP delivery (paper §III). The MAC
   already retries each hop, but a receiver that crashed after the MAC ACK,
   or a reply lost to a link that died mid-exchange, would otherwise stall
   the whole discovery until the requester's ring timeout. Each unicast
   RREP therefore awaits a RACK from the next hop and is retransmitted with
   binary exponential backoff, at most [rack_retries] times. *)
let rec send_rrep_reliable t ~to_ ?(attempt = 0) rrep =
  t.ctx.Routing_intf.mac_send
    (control_frame t ~dst:(Frame.Unicast to_) ~size:t.config.rrep_size
       ~payload:(Rrep rrep));
  let key = (rrep.rp_src, rrep.rp_id, to_) in
  if attempt < t.config.rack_retries then begin
    let delay = t.config.rack_timeout *. (2.0 ** float_of_int attempt) in
    (match Hashtbl.find_opt t.racks key with
    | Some old -> Des.Engine.cancel old
    | None -> ());
    Hashtbl.replace t.racks key
      (Des.Engine.schedule ~span:span_timer t.ctx.Routing_intf.engine
         ~delay (fun () ->
           Hashtbl.remove t.racks key;
           t.rack_retx <- t.rack_retx + 1;
           send_rrep_reliable t ~to_ ~attempt:(attempt + 1) rrep))
  end
  else Hashtbl.remove t.racks key

let send_rack t ~to_ rrep =
  t.ctx.Routing_intf.mac_send
    (control_frame t ~dst:(Frame.Unicast to_) ~size:t.config.rack_size
       ~payload:(Rack { k_src = rrep.rp_src; k_id = rrep.rp_id }))

let handle_rack t ~from rack =
  let key = (rack.k_src, rack.k_id, from) in
  match Hashtbl.find_opt t.racks key with
  | Some timer ->
      Des.Engine.cancel timer;
      Hashtbl.remove t.racks key
  | None -> ()

let destination_reply t rreq ~last_hop =
  (* The destination controls its sequence number: a reset-required
     solicitation forces a strictly larger one (the only increment SRP
     ever performs). *)
  if rreq.rq_order.Ordering.sn > t.self_seqno then begin
    t.self_seqno <- rreq.rq_order.Ordering.sn;
    t.resets <- t.resets + 1;
    Trace.seqno_reset t.ctx.Routing_intf.trace ~node:t.ctx.Routing_intf.id
      ~seqno:t.self_seqno
  end;
  if rreq.rq_rr then begin
    t.self_seqno <- t.self_seqno + 1;
    t.resets <- t.resets + 1;
    (* the T bit / MAX_DENOM probe path: this reset was forced by label
       exhaustion, the cost the dense-set choice trades against width *)
    t.label_resets <- t.label_resets + 1;
    Obs.incr counter_label_resets;
    Trace.seqno_reset t.ctx.Routing_intf.trace ~node:t.ctx.Routing_intf.id
      ~seqno:t.self_seqno
  end;
  let rrep =
    {
      rp_src = rreq.rq_src;
      rp_id = rreq.rq_id;
      rp_dst = t.ctx.Routing_intf.id;
      rp_order = Ordering.destination_of t.labels ~sn:t.self_seqno;
      rp_dist = 0;
      rp_lifetime = t.config.route_lifetime;
      rp_n = not (has_active_route t ~dst:rreq.rq_src);
    }
  in
  send_rrep_reliable t ~to_:last_hop rrep

let intermediate_reply t rreq ~last_hop =
  let rrep =
    {
      rp_src = rreq.rq_src;
      rp_id = rreq.rq_id;
      rp_dst = rreq.rq_dst;
      rp_order = own_ordering t rreq.rq_dst;
      rp_dist = route_dist t rreq.rq_dst;
      rp_lifetime = t.config.route_lifetime;
      rp_n = not (has_active_route t ~dst:rreq.rq_src);
    }
  in
  send_rrep_reliable t ~to_:last_hop rrep

(* Start Distance Condition (Condition 1). *)
let sdc t rreq =
  has_active_route t ~dst:rreq.rq_dst
  &&
  let own = own_ordering t rreq.rq_dst in
  own.Ordering.sn > rreq.rq_order.Ordering.sn
  || (Ordering.precedes rreq.rq_order own && not rreq.rq_rr)

(* Eq. 10: the relayed solicitation carries the minimum label. *)
let relay_order t rreq =
  let own = own_ordering t rreq.rq_dst in
  let own_unassigned = not (Ordering.is_finite own) in
  if rreq.rq_u && own_unassigned then (t.infinite, true)
  else if own.Ordering.sn > rreq.rq_order.Ordering.sn then (own, false)
  else if own.Ordering.sn = rreq.rq_order.Ordering.sn then
    (Ordering.min own rreq.rq_order, false)
  else (rreq.rq_order, rreq.rq_u)

(* Eq. 11: the reset-required bit of the relayed solicitation. *)
let relay_rr t rreq =
  let own = own_ordering t rreq.rq_dst in
  let own_unassigned = not (Ordering.is_finite own) in
  if rreq.rq_u && own_unassigned then false
  else if own.Ordering.sn > rreq.rq_order.Ordering.sn then false
  else if
    (not (Ordering.precedes rreq.rq_order own))
    &&
    let (module L : Label.S) = t.labels in
    L.would_overflow rreq.rq_order.Ordering.label own.Ordering.label
  then true
  else rreq.rq_rr

let handle_rreq t ~from rreq =
  let me = t.ctx.Routing_intf.id in
  if rreq.rq_src = me then ()
  else if not (Seen_cache.witness t.seen ~origin:rreq.rq_src ~id:rreq.rq_id)
  then ()
  else begin
    (* become engaged: cache the solicitation ordering and reverse hop *)
    sweep_engagements t;
    Hashtbl.replace t.engagements
      (rreq.rq_src, rreq.rq_id)
      {
        e_cached = rreq.rq_order;
        e_last_hop = from;
        e_time = now t;
        e_replied = false;
      };
    (* process the advertisement piece: a labelled route to the source *)
    (match rreq.rq_adv with
    | Some adv when not rreq.rq_n ->
        ignore
          (set_route t ~dst:rreq.rq_src ~via:from ~adv_order:adv.ra_order
             ~adv_dist:adv.ra_dist ~cached:t.infinite
             ~lifetime:t.config.route_lifetime)
    | Some _ | None -> ());
    if rreq.rq_dst = me then destination_reply t rreq ~last_hop:from
    else if rreq.rq_d then begin
      (* D-bit probe: continue along the forward unicast path *)
      match best_successor t rreq.rq_dst with
      | Some next_hop when rreq.rq_ttl > 1 ->
          let relayed =
            {
              rreq with
              rq_hops = rreq.rq_hops + 1;
              rq_ttl = rreq.rq_ttl - 1;
              rq_n = true;
              rq_adv = None;
            }
          in
          t.ctx.Routing_intf.mac_send
            (control_frame t ~dst:(Frame.Unicast next_hop)
               ~size:t.config.rreq_size ~payload:(Rreq relayed))
      | Some _ | None -> ()
    end
    else if rreq.rq_hops >= t.config.min_reply_hops && sdc t rreq then
      intermediate_reply t rreq ~last_hop:from
    else if rreq.rq_ttl > 1 then begin
      let order, u = relay_order t rreq in
      let rr = relay_rr t rreq in
      let adv = rreq_advertisement t ~src:rreq.rq_src in
      let relayed =
        {
          rreq with
          rq_order = order;
          rq_u = u;
          rq_rr = rr;
          rq_hops = rreq.rq_hops + 1;
          rq_ttl = rreq.rq_ttl - 1;
          rq_n = adv = None;
          rq_adv = adv;
        }
      in
      broadcast_rreq t relayed ~jitter:t.config.relay_jitter
    end
  end

(* ------------------------------------------------------------------ *)
(* RREP handling (Procedures 3-4)                                      *)

let flush_pending t ~dst =
  List.iter
    (fun (data, size) ->
      if not (forward_data t data ~size) then
        t.ctx.Routing_intf.drop_data data ~reason:"no route after reply")
    (Pending.take_all t.pending ~dst)

let handle_rrep t ~from rrep =
  let me = t.ctx.Routing_intf.id in
  let terminus = rrep.rp_src = me in
  let engagement =
    if terminus then None
    else Hashtbl.find_opt t.engagements (rrep.rp_src, rrep.rp_id)
  in
  let cached =
    match engagement with
    | Some e -> e.e_cached
    | None -> t.infinite
  in
  let forward_ok =
    match engagement with Some e -> not e.e_replied | None -> terminus
  in
  if (not terminus) && engagement = None then ()
  else if not forward_ok then ()
  else begin
    let adopted =
      set_route t ~dst:rrep.rp_dst ~via:from ~adv_order:rrep.rp_order
        ~adv_dist:rrep.rp_dist ~cached ~lifetime:rrep.rp_lifetime
    in
    match adopted with
    | Adopted ->
        if terminus then begin
          (match t.discovery with
          | Some d -> Discovery.succeed d ~dst:rrep.rp_dst
          | None -> ());
          flush_pending t ~dst:rrep.rp_dst;
          let own = own_ordering t rrep.rp_dst in
          let needs_reset =
            let (module L : Label.S) = t.labels in
            L.over_reset_threshold ~max_denom:t.config.max_denom
              own.Ordering.label
          in
          if rrep.rp_n && t.config.probe_on_n then begin
            (* rebuild the reverse path: bump own seqno, probe forward.
               Off by default: the paper's CBR workload is unidirectional,
               so reverse paths are never exercised and SRP's sequence
               numbers stay identically zero (Fig. 7). *)
            t.self_seqno <- t.self_seqno + 1;
            t.resets <- t.resets + 1;
            Trace.seqno_reset t.ctx.Routing_intf.trace
              ~node:t.ctx.Routing_intf.id ~seqno:t.self_seqno;
            send_probe t ~dst:rrep.rp_dst
          end
          else if needs_reset then send_probe t ~dst:rrep.rp_dst
        end
        else begin
          match engagement with
          | None -> ()
          | Some e ->
              e.e_replied <- true;
              let r = route_for t rrep.rp_dst in
              Hashtbl.replace r.precursors e.e_last_hop ();
              let relayed =
                {
                  rrep with
                  rp_order = own_ordering t rrep.rp_dst;
                  rp_dist = route_dist t rrep.rp_dst;
                }
              in
              send_rrep_reliable t ~to_:e.e_last_hop relayed;
              flush_pending t ~dst:rrep.rp_dst
        end
    | Rejected ->
        (* infeasible or label exhausted: re-advertise our own route if we
           still have one (the paper's "new advertisement based on its
           current label"), otherwise drop *)
        if (not terminus) && has_active_route t ~dst:rrep.rp_dst then begin
          match engagement with
          | None -> ()
          | Some e ->
              e.e_replied <- true;
              let r = route_for t rrep.rp_dst in
              Hashtbl.replace r.precursors e.e_last_hop ();
              let relayed =
                {
                  rrep with
                  rp_order = own_ordering t rrep.rp_dst;
                  rp_dist = route_dist t rrep.rp_dst;
                }
              in
              send_rrep_reliable t ~to_:e.e_last_hop relayed
        end
  end

(* ------------------------------------------------------------------ *)
(* RERR handling                                                       *)

let handle_rerr t ~from rerr =
  let lost = ref [] in
  List.iter
    (fun dst ->
      match Hashtbl.find_opt t.routes dst with
      | None -> ()
      | Some r ->
          if Hashtbl.mem r.succs from then begin
            Hashtbl.remove r.succs from;
            Trace.route_del t.ctx.Routing_intf.trace
              ~node:t.ctx.Routing_intf.id ~dst ~via:from ~reason:"rerr";
            prune_succs t r;
            t.listener dst;
            if
              Hashtbl.length r.succs = 0
              && Hashtbl.length r.precursors > 0
            then lost := dst :: !lost
          end)
    rerr.re_unreachable;
  if !lost <> [] then send_rerr t ~dsts:!lost ~to_:Frame.Broadcast

(* ------------------------------------------------------------------ *)
(* Agent wiring                                                        *)

let handle_data t ~from data ~size =
  let me = t.ctx.Routing_intf.id in
  if data.Frame.final_dst = me then t.ctx.Routing_intf.deliver data
  else if forward_data t data ~size:(size - t.config.ip_overhead) then ()
  else begin
    (* no successor: route error back to the previous hop, drop the data *)
    send_rerr t ~dsts:[ data.Frame.final_dst ] ~to_:(Frame.Unicast from);
    t.ctx.Routing_intf.drop_data data ~reason:"no route at relay"
  end

let originate t data ~size =
  let dst = data.Frame.final_dst in
  if dst = t.ctx.Routing_intf.id then t.ctx.Routing_intf.deliver data
  else if forward_data t data ~size then ()
  else begin
    Pending.push t.pending ~dst data ~size;
    match t.discovery with
    | Some d -> Discovery.start d ~dst
    | None -> ()
  end

let unicast_failed t ~frame ~dst:next_hop =
  let lost = drop_link t next_hop in
  report_lost_routes t lost;
  match frame.Frame.payload with
  | Frame.Data data ->
      let size = frame.Frame.size - t.config.ip_overhead in
      if forward_data t data ~size then ()
      else begin
        (* packet cache: hold the packet and look for a new path *)
        Pending.push t.pending ~dst:data.Frame.final_dst data ~size;
        match t.discovery with
        | Some d -> Discovery.start d ~dst:data.Frame.final_dst
        | None -> ()
      end
  | _ -> ()

let gauges t =
  (* non-mutating: counts live successor sets without the pruning sweeps,
     so periodic sampling cannot perturb protocol behaviour *)
  let time = Des.Engine.now t.ctx.Routing_intf.engine in
  let route_entries =
    Hashtbl.fold
      (fun _ r acc ->
        let live =
          Hashtbl.fold
            (fun _ s any -> any || s.s_expiry > time)
            r.succs false
        in
        if live then acc + 1 else acc)
      t.routes 0
  in
  {
    Routing_intf.own_seqno = t.self_seqno - 1;
    max_denominator = t.max_denom_seen;
    seqno_resets = t.resets;
    label_width_bits = t.label_width_max;
    label_resets = t.label_resets;
    route_entries;
    pending_packets = Pending.total t.pending;
  }

let receive t ~src frame =
  match frame.Frame.payload with
  | Frame.Data data -> handle_data t ~from:src data ~size:frame.Frame.size
  | Rreq rreq -> handle_rreq t ~from:src rreq
  | Rrep rrep ->
      (* acknowledge first: even a reply we end up rejecting was received *)
      send_rack t ~to_:src rrep;
      handle_rrep t ~from:src rrep
  | Rerr rerr -> handle_rerr t ~from:src rerr
  | Rack rack -> handle_rack t ~from:src rack
  | _ -> ()

let create_full ?(config = default_config) ctx =
  let labels = Label_set.instance config.labels in
  let t =
    {
      ctx;
      config;
      labels;
      infinite = Ordering.unassigned_of labels;
      routes = Hashtbl.create 32;
      engagements = Hashtbl.create 64;
      seen = Seen_cache.create ctx.Routing_intf.engine ~ttl:config.delete_period;
      pending =
        Pending.create ~ttl:config.pending_ttl ~engine:ctx.Routing_intf.engine
          ~capacity:config.pending_capacity
          ~drop:(fun data ~size:_ ~reason ->
            ctx.Routing_intf.drop_data data ~reason)
          ();
      discovery = None;
      racks = Hashtbl.create 16;
      self_seqno = 1;
      next_rreq_id = 0;
      max_denom_seen = 1;
      label_width_max = 0;
      label_resets = 0;
      resets = 0;
      rack_retx = 0;
      listener = ignore;
    }
  in
  let discovery =
    Discovery.create ctx.Routing_intf.engine ~ttls:config.ttls
      ~node_traversal:config.node_traversal
      ~send:(fun ~dst ~ttl ~attempt:_ ->
        (* the source never demands a reset: the T bit is set only by
           relays that detect a fraction overflow (Eq. 11) *)
        originate_rreq t ~dst ~ttl ~rr:false)
      ~give_up:(fun ~dst ->
        (* graceful give-up: tell upstream nodes the destination is gone
           rather than silently stalling their forwarding through us *)
        (match Hashtbl.find_opt t.routes dst with
        | Some r when Hashtbl.length r.precursors > 0 ->
            send_rerr t ~dsts:[ dst ] ~to_:Frame.Broadcast
        | Some _ | None -> ());
        Pending.drop_all t.pending ~dst ~reason:"route discovery failed")
  in
  t.discovery <- Some discovery;
  ( t,
    {
      Routing_intf.originate = originate t;
      receive = receive t;
      unicast_failed = unicast_failed t;
      unicast_ok = (fun ~frame:_ ~dst:_ -> ());
      gauges = (fun () -> gauges t);
    } )

let create ?config ctx = snd (create_full ?config ctx)

let ordering t ~dst = own_ordering t dst

let successor_orderings t ~dst = succ_ordering_list t dst

let own_seqno t = t.self_seqno

let on_route_change t f = t.listener <- f

let rack_retransmits t = t.rack_retx
