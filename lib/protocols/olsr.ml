let span_timer = Obs.span "proto.olsr.timer"

module Frame = Wireless.Frame

type config = {
  hello_interval : float;
  tc_interval : float;
  neighbor_hold : float;
  topology_hold : float;
  jitter : float;
  data_ttl : int;
  hello_base_size : int;
  tc_base_size : int;
  per_entry_bytes : int;
  ip_overhead : int;
}

let default_config =
  {
    hello_interval = 2.0;
    tc_interval = 5.0;
    neighbor_hold = 6.0;
    topology_hold = 15.0;
    jitter = 0.25;
    data_ttl = 64;
    hello_base_size = 16;
    tc_base_size = 16;
    per_entry_bytes = 4;
    ip_overhead = 20;
  }

type hello = { h_origin : int; h_links : (int * bool * bool) list }

type tc = { t_origin : int; t_ansn : int; t_advertised : int list }

type Frame.payload += Hello of hello | Tc of tc

type neighbor = {
  mutable sym : bool;
  mutable expiry : float;
  mutable two_hop : int list;  (** that neighbour's symmetric neighbours *)
  mutable selected_us : bool;  (** we are in its MPR set *)
}

type topo_edge = { mutable t_expiry : float }

type t = {
  ctx : Routing_intf.ctx;
  config : config;
  neighbors : (int, neighbor) Hashtbl.t;
  (* (advertising originator = last hop, destination) -> expiry *)
  topology : (int * int, topo_edge) Hashtbl.t;
  seen_tc : Seen_cache.t;
  mutable mpr_set : int list;
  mutable ansn : int;
  mutable route_dirty : bool;
  mutable routes : (int, int) Hashtbl.t;  (** dst -> next hop *)
}

let now t = Des.Engine.now t.ctx.Routing_intf.engine

let sym_neighbors t =
  let time = now t in
  Hashtbl.fold
    (fun id n acc -> if n.sym && n.expiry > time then id :: acc else acc)
    t.neighbors []

let mprs t = t.mpr_set

(* Greedy MPR selection: cover every strict 2-hop neighbour with the fewest
   1-hop symmetric neighbours, preferring the ones covering the most. *)
let select_mprs t =
  let time = now t in
  let me = t.ctx.Routing_intf.id in
  let nbrs =
    Hashtbl.fold
      (fun id n acc -> if n.sym && n.expiry > time then (id, n) :: acc else acc)
      t.neighbors []
  in
  let nbr_ids = List.map fst nbrs in
  let uncovered = Hashtbl.create 16 in
  List.iter
    (fun (_, n) ->
      List.iter
        (fun h ->
          if h <> me && not (List.mem h nbr_ids) then
            Hashtbl.replace uncovered h ())
        n.two_hop)
    nbrs;
  let mpr = ref [] in
  while Hashtbl.length uncovered > 0 do
    let best = ref None in
    List.iter
      (fun (id, n) ->
        if not (List.mem id !mpr) then begin
          let cover =
            List.length (List.filter (Hashtbl.mem uncovered) n.two_hop)
          in
          match !best with
          | Some (_, c) when c >= cover -> ()
          | _ -> if cover > 0 then best := Some ((id, n), cover)
        end)
      nbrs;
    match !best with
    | None -> Hashtbl.reset uncovered
    | Some ((id, n), _) ->
        mpr := id :: !mpr;
        List.iter (Hashtbl.remove uncovered) n.two_hop
  done;
  t.mpr_set <- !mpr

(* ------------------------------------------------------------------ *)
(* Routing table: BFS over symmetric links + learned topology edges     *)

let recompute_routes t =
  let time = now t in
  let routes = Hashtbl.create 32 in
  let queue = Queue.create () in
  List.iter
    (fun n ->
      Hashtbl.replace routes n n;
      Queue.add n queue)
    (sym_neighbors t);
  (* adjacency from TC entries (last_hop -> destinations) plus the two-hop
     neighbourhood learned from HELLOs *)
  let adj = Hashtbl.create 64 in
  let add_edge from dest =
    Hashtbl.replace adj from
      (dest :: Option.value ~default:[] (Hashtbl.find_opt adj from))
  in
  Hashtbl.iter
    (fun (last_hop, dest) edge ->
      if edge.t_expiry > time then add_edge last_hop dest)
    t.topology;
  Hashtbl.iter
    (fun id n ->
      if n.sym && n.expiry > time then List.iter (add_edge id) n.two_hop)
    t.neighbors;
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    let via = Hashtbl.find routes node in
    List.iter
      (fun dest ->
        if dest <> t.ctx.Routing_intf.id && not (Hashtbl.mem routes dest)
        then begin
          Hashtbl.replace routes dest via;
          Queue.add dest queue
        end)
      (Option.value ~default:[] (Hashtbl.find_opt adj node))
  done;
  t.routes <- routes;
  t.route_dirty <- false

let next_hop t ~dst =
  if t.route_dirty then recompute_routes t;
  Hashtbl.find_opt t.routes dst

(* ------------------------------------------------------------------ *)
(* Control traffic                                                     *)

let period t base = base -. Des.Rng.float t.ctx.Routing_intf.rng (t.config.jitter *. base)

let send_hello t =
  select_mprs t;
  let time = now t in
  let links =
    Hashtbl.fold
      (fun id n acc ->
        if n.expiry > time then (id, n.sym, List.mem id t.mpr_set) :: acc
        else acc)
      t.neighbors []
  in
  let size =
    t.config.hello_base_size + (t.config.per_entry_bytes * List.length links)
  in
  t.ctx.Routing_intf.mac_send
    (Frame.with_kind
       (Frame.make ~src:t.ctx.Routing_intf.id ~dst:Frame.Broadcast ~size
          ~payload:(Hello { h_origin = t.ctx.Routing_intf.id; h_links = links }))
       "hello")

let selector_set t =
  let time = now t in
  Hashtbl.fold
    (fun id n acc ->
      if n.sym && n.expiry > time && n.selected_us then id :: acc else acc)
    t.neighbors []

let send_tc t =
  let advertised = selector_set t in
  if advertised <> [] then begin
    t.ansn <- t.ansn + 1;
    let size =
      t.config.tc_base_size
      + (t.config.per_entry_bytes * List.length advertised)
    in
    t.ctx.Routing_intf.mac_send
      (Frame.with_kind
         (Frame.make ~src:t.ctx.Routing_intf.id ~dst:Frame.Broadcast ~size
            ~payload:
              (Tc
                 {
                   t_origin = t.ctx.Routing_intf.id;
                   t_ansn = t.ansn;
                   t_advertised = advertised;
                 }))
         "tc")
  end

let neighbor_for t id =
  match Hashtbl.find_opt t.neighbors id with
  | Some n -> n
  | None ->
      let n = { sym = false; expiry = 0.0; two_hop = []; selected_us = false } in
      Hashtbl.replace t.neighbors id n;
      n

let handle_hello t hello =
  let me = t.ctx.Routing_intf.id in
  let n = neighbor_for t hello.h_origin in
  n.expiry <- now t +. t.config.neighbor_hold;
  let about_me =
    List.find_opt (fun (id, _, _) -> id = me) hello.h_links
  in
  (match about_me with
  | Some (_, _, is_mpr) ->
      (* it hears us and we hear it: the link is symmetric *)
      n.sym <- true;
      n.selected_us <- is_mpr
  | None ->
      (* asymmetric (it does not list us yet) *)
      n.sym <- n.sym && false);
  n.two_hop <-
    List.filter_map
      (fun (id, sym, _) -> if sym && id <> me then Some id else None)
      hello.h_links;
  t.route_dirty <- true

let handle_tc t ~from tc =
  let me = t.ctx.Routing_intf.id in
  if tc.t_origin = me then ()
  else if
    not (Seen_cache.witness t.seen_tc ~origin:tc.t_origin ~id:tc.t_ansn)
  then ()
  else begin
    let expiry = now t +. t.config.topology_hold in
    List.iter
      (fun dest ->
        if dest <> me then begin
          match Hashtbl.find_opt t.topology (tc.t_origin, dest) with
          | Some edge -> edge.t_expiry <- expiry
          | None ->
              Hashtbl.replace t.topology (tc.t_origin, dest)
                { t_expiry = expiry }
        end)
      tc.t_advertised;
    t.route_dirty <- true;
    (* MPR flooding: relay only if the sender selected us as MPR *)
    let relay =
      match Hashtbl.find_opt t.neighbors from with
      | Some n -> n.selected_us && n.sym && n.expiry > now t
      | None -> false
    in
    if relay then begin
      let size =
        t.config.tc_base_size
        + (t.config.per_entry_bytes * List.length tc.t_advertised)
      in
      let delay = Des.Rng.float t.ctx.Routing_intf.rng 0.01 in
      ignore
        (Des.Engine.schedule ~span:span_timer t.ctx.Routing_intf.engine ~delay (fun () ->
             t.ctx.Routing_intf.mac_send
               (Frame.with_kind
                  (Frame.make ~src:me ~dst:Frame.Broadcast ~size
                     ~payload:(Tc tc))
                  "tc")))
    end
  end

(* ------------------------------------------------------------------ *)
(* Data plane                                                          *)

let forward_data t data ~size =
  match next_hop t ~dst:data.Frame.final_dst with
  | None -> false
  | Some hop ->
      data.Frame.hops <- data.Frame.hops + 1;
      if data.Frame.hops > t.config.data_ttl then begin
        t.ctx.Routing_intf.drop_data data ~reason:"ttl exceeded";
        true
      end
      else begin
        Trace.pkt_forward t.ctx.Routing_intf.trace ~node:t.ctx.Routing_intf.id
          ~flow:data.Frame.flow ~seq:data.Frame.seq ~next:hop;
        t.ctx.Routing_intf.mac_send
          (Frame.make ~src:t.ctx.Routing_intf.id ~dst:(Frame.Unicast hop)
             ~size:(size + t.config.ip_overhead)
             ~payload:(Frame.Data data));
        true
      end

let handle_data t data ~size =
  if data.Frame.final_dst = t.ctx.Routing_intf.id then
    t.ctx.Routing_intf.deliver data
  else if forward_data t data ~size:(size - t.config.ip_overhead) then ()
  else t.ctx.Routing_intf.drop_data data ~reason:"no route (proactive)"

let originate t data ~size =
  if data.Frame.final_dst = t.ctx.Routing_intf.id then
    t.ctx.Routing_intf.deliver data
  else if forward_data t data ~size then ()
  else t.ctx.Routing_intf.drop_data data ~reason:"no route (proactive)"

let receive t ~src frame =
  match frame.Frame.payload with
  | Hello hello -> handle_hello t hello
  | Tc tc -> handle_tc t ~from:src tc
  | Frame.Data data -> handle_data t data ~size:frame.Frame.size
  | _ -> ()

let rec schedule_hello t =
  ignore
    (Des.Engine.schedule ~span:span_timer t.ctx.Routing_intf.engine
       ~delay:(period t t.config.hello_interval)
       (fun () ->
         send_hello t;
         schedule_hello t))

let rec schedule_tc t =
  ignore
    (Des.Engine.schedule ~span:span_timer t.ctx.Routing_intf.engine
       ~delay:(period t t.config.tc_interval)
       (fun () ->
         send_tc t;
         schedule_tc t))

let create_full ?(config = default_config) ctx =
  let t =
    {
      ctx;
      config;
      neighbors = Hashtbl.create 16;
      topology = Hashtbl.create 64;
      seen_tc = Seen_cache.create ctx.Routing_intf.engine ~ttl:30.0;
      mpr_set = [];
      ansn = 0;
      route_dirty = true;
      routes = Hashtbl.create 32;
    }
  in
  (* desynchronise the very first beacons across nodes *)
  ignore
    (Des.Engine.schedule ~span:span_timer ctx.Routing_intf.engine
       ~delay:(Des.Rng.float ctx.Routing_intf.rng config.hello_interval)
       (fun () ->
         send_hello t;
         schedule_hello t));
  ignore
    (Des.Engine.schedule ~span:span_timer ctx.Routing_intf.engine
       ~delay:(Des.Rng.float ctx.Routing_intf.rng config.tc_interval)
       (fun () ->
         send_tc t;
         schedule_tc t));
  ( t,
    {
      Routing_intf.originate = originate t;
      receive = receive t;
      (* no link-layer integration: links die only by HELLO timeout *)
      unicast_failed = (fun ~frame:_ ~dst:_ -> ());
      unicast_ok = (fun ~frame:_ ~dst:_ -> ());
      gauges =
        (fun () ->
          (* last computed table; recomputing here would hide staleness *)
          {
            Routing_intf.no_gauges with
            Routing_intf.route_entries = Hashtbl.length t.routes;
          });
    } )

let create ?config ctx = snd (create_full ?config ctx)
