let span_timer = Obs.span "proto.ldr.timer"

module Frame = Wireless.Frame

type config = {
  ttls : int list;
  node_traversal : float;
  route_lifetime : float;
  pending_capacity : int;
  pending_ttl : float;
  relay_jitter : float;
  data_ttl : int;
  rreq_size : int;
  rrep_size : int;
  rerr_size : int;
  ip_overhead : int;
}

let default_config =
  {
    ttls = [ 1; 3; 7; 16 ];
    node_traversal = 0.04;
    route_lifetime = 10.0;
    pending_capacity = 64;
    pending_ttl = 30.0;
    relay_jitter = 0.01;
    data_ttl = 64;
    rreq_size = 48;
    rrep_size = 44;
    rerr_size = 32;
    ip_overhead = 20;
  }

type label = { sn : int; fd : int }

type rreq = {
  rq_src : int;
  rq_id : int;
  rq_dst : int;
  rq_label : label option;
  rq_reset : bool;
  rq_hops : int;
  rq_ttl : int;
}

type rrep = {
  rp_src : int;
  rp_id : int;
  rp_dst : int;
  rp_label : label;
  rp_dist : int;
  rp_lifetime : float;
}

type rerr = { re_unreachable : int list }

type Frame.payload += Rreq of rreq | Rrep of rrep | Rerr of rerr

(* "adv is an in-order successor label for own": fresher sequence number,
   or equal freshness with strictly smaller feasible distance. *)
let feasible ~own ~adv =
  match own with
  | None -> true
  | Some o -> adv.sn > o.sn || (adv.sn = o.sn && adv.fd < o.fd)

(* The lower of two labels in the same sense (for request strengthening). *)
let lower a b = if feasible ~own:(Some a) ~adv:b then b else a

type route = {
  mutable label : label option;  (** own (sn, fd) for the destination *)
  mutable next_hop : int;
  mutable dist : int;
  mutable expiry : float;
  mutable valid : bool;
  precursors : (int, unit) Hashtbl.t;
}

(* Reverse-path state per (source, rreq_id). *)
type engagement = {
  e_label : label option;  (** the solicitation's label as received *)
  e_last_hop : int;
  mutable e_replied : bool;
}

type t = {
  ctx : Routing_intf.ctx;
  config : config;
  routes : (int, route) Hashtbl.t;
  engagements : (int * int, engagement) Hashtbl.t;
  seen : Seen_cache.t;
  pending : Pending.t;
  mutable discovery : Discovery.t option;
  mutable self_seqno : int;
  mutable next_rreq_id : int;
  mutable resets : int;
}

let now t = Des.Engine.now t.ctx.Routing_intf.engine

let route_for t dst =
  match Hashtbl.find_opt t.routes dst with
  | Some r -> r
  | None ->
      let r =
        {
          label = None;
          next_hop = -1;
          dist = 0;
          expiry = 0.0;
          valid = false;
          precursors = Hashtbl.create 4;
        }
      in
      Hashtbl.replace t.routes dst r;
      r

let route_valid t r = r.valid && r.expiry > now t

let valid_route t dst =
  match Hashtbl.find_opt t.routes dst with
  | Some r when route_valid t r -> Some r
  | Some _ | None -> None

let refresh t r =
  r.expiry <- Stdlib.max r.expiry (now t +. t.config.route_lifetime)

let control_frame t ~dst ~size ~payload =
  let kind =
    match payload with
    | Rreq _ -> "rreq"
    | Rrep _ -> "rrep"
    | Rerr _ -> "rerr"
    | _ -> "ctl"
  in
  Frame.with_kind (Frame.make ~src:t.ctx.Routing_intf.id ~dst ~size ~payload) kind

let send_rerr t ~dsts ~to_ =
  if dsts <> [] then
    t.ctx.Routing_intf.mac_send
      (control_frame t ~dst:to_ ~size:t.config.rerr_size
         ~payload:(Rerr { re_unreachable = dsts }))

let forward_data t data ~size =
  match valid_route t data.Frame.final_dst with
  | None -> false
  | Some r ->
      data.Frame.hops <- data.Frame.hops + 1;
      if data.Frame.hops > t.config.data_ttl then begin
        t.ctx.Routing_intf.drop_data data ~reason:"ttl exceeded";
        true
      end
      else begin
        refresh t r;
        Trace.pkt_forward t.ctx.Routing_intf.trace ~node:t.ctx.Routing_intf.id
          ~flow:data.Frame.flow ~seq:data.Frame.seq ~next:r.next_hop;
        t.ctx.Routing_intf.mac_send
          (Frame.make ~src:t.ctx.Routing_intf.id
             ~dst:(Frame.Unicast r.next_hop)
             ~size:(size + t.config.ip_overhead)
             ~payload:(Frame.Data data));
        true
      end

let originate_rreq t ~dst ~ttl ~reset =
  t.next_rreq_id <- t.next_rreq_id + 1;
  let r = route_for t dst in
  let rreq =
    {
      rq_src = t.ctx.Routing_intf.id;
      rq_id = t.next_rreq_id;
      rq_dst = dst;
      rq_label = r.label;
      rq_reset = reset;
      rq_hops = 0;
      rq_ttl = ttl;
    }
  in
  t.ctx.Routing_intf.mac_send
    (control_frame t ~dst:Frame.Broadcast ~size:t.config.rreq_size
       ~payload:(Rreq rreq))

let send_rrep t ~to_ rrep =
  t.ctx.Routing_intf.mac_send
    (control_frame t ~dst:(Frame.Unicast to_) ~size:t.config.rrep_size
       ~payload:(Rrep rrep))

(* Adopt an advertised route if the label is feasible; the own feasible
   distance resets to the measured distance on a fresher sequence number
   and is otherwise non-increasing (DUAL). *)
let set_route t ~dst ~via ~adv ~dist ~lifetime =
  let r = route_for t dst in
  if not (feasible ~own:r.label ~adv) then false
  else begin
    let new_dist = dist + 1 in
    let new_label =
      match r.label with
      | Some o when o.sn = adv.sn -> { sn = adv.sn; fd = Stdlib.min o.fd new_dist }
      | Some _ | None -> { sn = adv.sn; fd = new_dist }
    in
    r.label <- Some new_label;
    r.next_hop <- via;
    r.dist <- new_dist;
    r.valid <- true;
    r.expiry <- Stdlib.max r.expiry (now t +. lifetime);
    true
  end

let handle_rreq t ~from rreq =
  let me = t.ctx.Routing_intf.id in
  if rreq.rq_src = me then ()
  else if not (Seen_cache.witness t.seen ~origin:rreq.rq_src ~id:rreq.rq_id)
  then ()
  else begin
    Hashtbl.replace t.engagements
      (rreq.rq_src, rreq.rq_id)
      { e_label = rreq.rq_label; e_last_hop = from; e_replied = false };
    if rreq.rq_dst = me then begin
      (* destination: sequence number grows only when a reset is required *)
      (match rreq.rq_label with
      | Some l when l.sn > t.self_seqno -> t.self_seqno <- l.sn
      | Some _ | None -> ());
      if rreq.rq_reset then begin
        t.self_seqno <- t.self_seqno + 1;
        t.resets <- t.resets + 1
      end;
      send_rrep t ~to_:from
        {
          rp_src = rreq.rq_src;
          rp_id = rreq.rq_id;
          rp_dst = me;
          rp_label = { sn = t.self_seqno; fd = 0 };
          rp_dist = 0;
          rp_lifetime = t.config.route_lifetime;
        }
    end
    else begin
      let can_reply =
        (not rreq.rq_reset)
        &&
        match valid_route t rreq.rq_dst with
        | Some r -> (
            match (r.label, rreq.rq_label) with
            | Some mine, Some req -> feasible ~own:(Some req) ~adv:mine
            | Some _, None -> true
            | None, _ -> false)
        | None -> false
      in
      if can_reply then begin
        match valid_route t rreq.rq_dst with
        | Some r ->
            let mine = Option.get r.label in
            Hashtbl.replace r.precursors from ();
            send_rrep t ~to_:from
              {
                rp_src = rreq.rq_src;
                rp_id = rreq.rq_id;
                rp_dst = rreq.rq_dst;
                rp_label = mine;
                rp_dist = r.dist;
                rp_lifetime = r.expiry -. now t;
              }
        | None -> ()
      end
      else if rreq.rq_ttl > 1 then begin
        (* strengthen the solicitation with our own label (path minimum) *)
        let own = (route_for t rreq.rq_dst).label in
        let relayed_label =
          match (rreq.rq_label, own) with
          | None, None -> None
          | Some l, None -> Some l
          | None, Some o -> Some o
          | Some l, Some o -> Some (lower l o)
        in
        let relayed =
          {
            rreq with
            rq_label = relayed_label;
            rq_hops = rreq.rq_hops + 1;
            rq_ttl = rreq.rq_ttl - 1;
          }
        in
        let delay =
          Des.Rng.float t.ctx.Routing_intf.rng t.config.relay_jitter
        in
        ignore
          (Des.Engine.schedule ~span:span_timer t.ctx.Routing_intf.engine ~delay
             (fun () ->
               t.ctx.Routing_intf.mac_send
                 (control_frame t ~dst:Frame.Broadcast
                    ~size:t.config.rreq_size ~payload:(Rreq relayed))))
      end
    end
  end

let flush_pending t ~dst =
  List.iter
    (fun (data, size) ->
      if not (forward_data t data ~size) then
        t.ctx.Routing_intf.drop_data data ~reason:"no route after reply")
    (Pending.take_all t.pending ~dst)

let handle_rrep t ~from rrep =
  let me = t.ctx.Routing_intf.id in
  if rrep.rp_src = me then begin
    if
      set_route t ~dst:rrep.rp_dst ~via:from ~adv:rrep.rp_label
        ~dist:rrep.rp_dist ~lifetime:rrep.rp_lifetime
    then begin
      (match t.discovery with
      | Some d -> Discovery.succeed d ~dst:rrep.rp_dst
      | None -> ());
      flush_pending t ~dst:rrep.rp_dst
    end
  end
  else begin
    match Hashtbl.find_opt t.engagements (rrep.rp_src, rrep.rp_id) with
    | None -> ()
    | Some e when e.e_replied -> ()
    | Some e ->
        if
          set_route t ~dst:rrep.rp_dst ~via:from ~adv:rrep.rp_label
            ~dist:rrep.rp_dist ~lifetime:rrep.rp_lifetime
        then begin
          e.e_replied <- true;
          let r = route_for t rrep.rp_dst in
          Hashtbl.replace r.precursors e.e_last_hop ();
          let mine = Option.get r.label in
          send_rrep t ~to_:e.e_last_hop
            { rrep with rp_label = mine; rp_dist = r.dist };
          flush_pending t ~dst:rrep.rp_dst
        end
        else begin
          (* infeasible here: if we still hold a valid route, advertise it;
             otherwise the reply dies and the source retries with reset *)
          match valid_route t rrep.rp_dst with
          | Some r ->
              e.e_replied <- true;
              Hashtbl.replace r.precursors e.e_last_hop ();
              send_rrep t ~to_:e.e_last_hop
                {
                  rrep with
                  rp_label = Option.get r.label;
                  rp_dist = r.dist;
                }
          | None -> ()
        end
  end

let handle_rerr t ~from rerr =
  let propagate = ref [] in
  List.iter
    (fun dst ->
      match Hashtbl.find_opt t.routes dst with
      | Some r when r.valid && r.next_hop = from ->
          r.valid <- false;
          if Hashtbl.length r.precursors > 0 then propagate := dst :: !propagate
      | Some _ | None -> ())
    rerr.re_unreachable;
  send_rerr t ~dsts:!propagate ~to_:Frame.Broadcast

let handle_data t ~from data ~size =
  let me = t.ctx.Routing_intf.id in
  if data.Frame.final_dst = me then t.ctx.Routing_intf.deliver data
  else if forward_data t data ~size:(size - t.config.ip_overhead) then ()
  else begin
    send_rerr t ~dsts:[ data.Frame.final_dst ] ~to_:(Frame.Unicast from);
    t.ctx.Routing_intf.drop_data data ~reason:"no route at relay"
  end

let originate t data ~size =
  let dst = data.Frame.final_dst in
  if dst = t.ctx.Routing_intf.id then t.ctx.Routing_intf.deliver data
  else if forward_data t data ~size then ()
  else begin
    Pending.push t.pending ~dst data ~size;
    match t.discovery with
    | Some d -> Discovery.start d ~dst
    | None -> ()
  end

let unicast_failed t ~frame ~dst:next_hop =
  let lost = ref [] in
  Hashtbl.iter
    (fun dst r ->
      if r.valid && r.next_hop = next_hop then begin
        r.valid <- false;
        if Hashtbl.length r.precursors > 0 then lost := dst :: !lost
      end)
    t.routes;
  (match frame.Frame.payload with
  | Frame.Data data ->
      let size = frame.Frame.size - t.config.ip_overhead in
      let dst = data.Frame.final_dst in
      lost := List.filter (fun d -> d <> dst) !lost;
      Pending.push t.pending ~dst data ~size;
      (match t.discovery with
      | Some d -> Discovery.start d ~dst
      | None -> ())
  | _ -> ());
  send_rerr t ~dsts:!lost ~to_:Frame.Broadcast

let receive t ~src frame =
  match frame.Frame.payload with
  | Frame.Data data -> handle_data t ~from:src data ~size:frame.Frame.size
  | Rreq rreq -> handle_rreq t ~from:src rreq
  | Rrep rrep -> handle_rrep t ~from:src rrep
  | Rerr rerr -> handle_rerr t ~from:src rerr
  | _ -> ()

let gauges t =
  let time = now t in
  let route_entries =
    Hashtbl.fold
      (fun _ r acc -> if r.valid && r.expiry > time then acc + 1 else acc)
      t.routes 0
  in
  {
    Routing_intf.own_seqno = t.self_seqno;
    max_denominator = 0;
    seqno_resets = t.resets;
    label_width_bits = 0;
    label_resets = 0;
    route_entries;
    pending_packets = Pending.total t.pending;
  }

let create_full ?(config = default_config) ctx =
  let t =
    {
      ctx;
      config;
      routes = Hashtbl.create 32;
      engagements = Hashtbl.create 64;
      seen = Seen_cache.create ctx.Routing_intf.engine ~ttl:30.0;
      pending =
        Pending.create ~ttl:config.pending_ttl ~engine:ctx.Routing_intf.engine
          ~capacity:config.pending_capacity
          ~drop:(fun data ~size:_ ~reason ->
            ctx.Routing_intf.drop_data data ~reason)
          ();
      discovery = None;
      self_seqno = 0;
      next_rreq_id = 0;
      resets = 0;
    }
  in
  let discovery =
    Discovery.create ctx.Routing_intf.engine ~ttls:config.ttls
      ~node_traversal:config.node_traversal
      ~send:(fun ~dst ~ttl ~attempt ->
        (* the final attempt demands a destination reset: the case where
           feasible distances cannot be put in order *)
        let reset = attempt >= List.length config.ttls - 1 in
        originate_rreq t ~dst ~ttl ~reset)
      ~give_up:(fun ~dst ->
        Pending.drop_all t.pending ~dst ~reason:"route discovery failed")
  in
  t.discovery <- Some discovery;
  ( t,
    {
      Routing_intf.originate = originate t;
      receive = receive t;
      unicast_failed = unicast_failed t;
      unicast_ok = (fun ~frame:_ ~dst:_ -> ());
      gauges = (fun () -> gauges t);
    } )

let create ?config ctx = snd (create_full ?config ctx)

let own_seqno t = t.self_seqno

let label_for t ~dst =
  match Hashtbl.find_opt t.routes dst with Some r -> r.label | None -> None

let next_hop t ~dst =
  match valid_route t dst with Some r -> Some r.next_hop | None -> None
