(** Expanding-ring route-discovery driver shared by the on-demand agents
    (SRP, AODV, LDR): tracks the active/passive state per destination,
    schedules retry timeouts of [2 * ttl * node_traversal_time] (Procedure 1
    of the paper, mirroring AODV), walks the TTL schedule with binary
    exponential backoff between attempts, and reports failure after the
    last attempt. Failed destinations enter an exponentially growing
    hold-off so a partitioned destination cannot trigger request storms. *)

type t

(** [extra_retries] (default 1) is the number of additional attempts at the
    largest TTL after the expanding-ring schedule is exhausted (RFC 3561's
    RREQ_RETRIES); the inter-attempt timeout keeps doubling through them.
    @raise Invalid_argument on an empty TTL schedule or negative retries. *)
val create :
  ?extra_retries:int ->
  Des.Engine.t ->
  ttls:int list ->
  node_traversal:float ->
  send:(dst:int -> ttl:int -> attempt:int -> unit) ->
  give_up:(dst:int -> unit) ->
  t

(** [start t ~dst] begins discovery unless one is already active for
    [dst]. Issues the first request synchronously. *)
val start : t -> dst:int -> unit

(** Is a discovery currently active for [dst]? *)
val active : t -> dst:int -> bool

(** [succeed t ~dst] stops the discovery (a route was found). *)
val succeed : t -> dst:int -> unit

(** Number of requests issued so far (diagnostic). *)
val requests_sent : t -> int
