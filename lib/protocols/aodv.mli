(** AODV baseline (Perkins, Belding-Royer, Das — draft-ietf-manet-aodv-10),
    simplified to the features the paper's comparison exercises: per-node
    sequence numbers incremented on every RREQ origination and on
    destination replies, destination-sequence-number route freshness,
    expanding-ring search, reverse/forward route construction, precursor
    lists with RERR propagation, link-layer loss detection, and local
    repair (a fresh discovery from the point of failure requesting
    [last known seqno + 1]).

    AODV's sequence number is its only loop-freedom mechanism, which is why
    Fig. 7 shows it growing far faster than LDR's or SRP's. *)

type config = {
  ttls : int list;
  node_traversal : float;
  route_lifetime : float;
  pending_capacity : int;
  pending_ttl : float;  (** buffered packets expire after this long, s *)
  relay_jitter : float;
  data_ttl : int;
  rreq_size : int;
  rrep_size : int;
  rerr_size : int;
  ip_overhead : int;
}

val default_config : config

type rreq = {
  rq_src : int;
  rq_src_seqno : int;
  rq_id : int;
  rq_dst : int;
  rq_dst_seqno : int option;  (** [None] = unknown (U bit) *)
  rq_hops : int;
  rq_ttl : int;
}

type rrep = {
  rp_src : int;
  rp_dst : int;
  rp_dst_seqno : int;
  rp_hops : int;
  rp_lifetime : float;
}

type rerr = { re_unreachable : (int * int) list  (** (dst, seqno) *) }

type Wireless.Frame.payload +=
  | Rreq of rreq
  | Rrep of rrep
  | Rerr of rerr

val create : ?config:config -> Routing_intf.ctx -> Routing_intf.agent

(** {2 White-box inspection for tests} *)

type t

val create_full :
  ?config:config -> Routing_intf.ctx -> t * Routing_intf.agent

val own_seqno : t -> int

val next_hop : t -> dst:int -> int option

val route_seqno : t -> dst:int -> int option

(** [on_route_change t f] — [f dst] fires after every route-table mutation
    for [dst]: adoption of a fresher or shorter route, and invalidation by
    RERR or link-layer loss. One callback per instance (latest wins); used
    by the fuzz monitors to check loop freedom at mutation granularity. *)
val on_route_change : t -> (int -> unit) -> unit
