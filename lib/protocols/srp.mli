(** SRP — the Split-label Routing Protocol (paper §III).

    Node labels are {!Slr.Ordering.t} values [(sn, m/n)]: a
    destination-controlled sequence number plus a feasible-distance proper
    fraction. Route requests flood with the path-minimum label (Eq. 10) and
    the reset-required bit maintained per Eq. 11; replies walk the cached
    reverse path while each node relabels itself with Algorithm 1
    ({!Slr.New_order}). Implemented per the paper, including:

    - the RREQ advertisement piece that builds labelled reverse routes to
      the source, with the N bit when a relay cannot advertise;
    - the D-bit unicast probe used for [MAX_DENOM] path resets and for
      N-bit replies (the source bumps its own sequence number first);
    - the destination-side sequence-number reset on the T (reset-required)
      bit — the only way sequence numbers ever change;
    - the §V heuristics: expanding-ring search, a packet cache that resends
      data after a link-layer loss, the minimum-reply-hops guard against
      false-positive RREPs, and the RREQ ordering "lie"
      [(p-1)/(q-1)] (or [(pk-1)/(qk-1)] when [p = 1]).

    SRP is inherently multi-path: the successor table keeps every feasible
    successor; uni-path forwarding (the paper's simulated variant) picks
    from the min-hop set. *)

type config = {
  ttls : int list;  (** expanding-ring TTL schedule *)
  node_traversal : float;  (** per-hop latency estimate, s *)
  route_lifetime : float;  (** successor entry lifetime, s *)
  delete_period : float;  (** DELETE_PERIOD: label retention, s *)
  max_denom : int;  (** MAX_DENOM reset threshold (paper: 1e9) *)
  min_reply_hops : int;  (** RREQs travel this far before SDC replies *)
  lie_k : int;  (** k of the ordering-lie heuristic (paper: 10000) *)
  labels : Slr.Label_set.id;
      (** the dense label set the protocol mints feasible distances from:
          bounded mediant fractions (the paper's SRP, the default),
          minimal-denominator Farey interpolation (the §VI future-work
          extension; see the E8a ablation), unbounded fractions, or
          lexicographic byte strings. Orthogonal to every other knob. *)
  probe_on_n : bool;
      (** send the D-bit probe (with an own-seqno bump) when a reply carries
          the N bit. Needed only by bidirectional workloads; off by default
          to match the paper's unidirectional CBR evaluation. *)
  pending_capacity : int;  (** packets buffered awaiting discovery *)
  pending_ttl : float;  (** buffered packets expire after this long, s *)
  relay_jitter : float;  (** max broadcast-relay jitter, s *)
  data_ttl : int;  (** hop guard on data packets *)
  rack_timeout : float;  (** initial RACK wait before an RREP resend, s *)
  rack_retries : int;  (** RREP retransmissions before giving up *)
  rreq_size : int;
  rrep_size : int;
  rerr_size : int;
  rack_size : int;
  ip_overhead : int;  (** bytes added to data payloads *)
}

val default_config : config

(** SRP control messages, exposed for white-box protocol tests. *)
type rreq = {
  rq_src : int;
  rq_id : int;
  rq_dst : int;
  rq_order : Slr.Ordering.t;  (** solicitation ordering [O_#] *)
  rq_u : bool;  (** U: no stored ordering for the destination *)
  rq_rr : bool;  (** T: reset required *)
  rq_d : bool;  (** D: unicast probe to the destination *)
  rq_n : bool;  (** N: no longer an advertisement for the source *)
  rq_hops : int;  (** measured distance [d] *)
  rq_ttl : int;
  rq_adv : rreq_adv option;  (** advertisement piece; [None] iff N *)
}

and rreq_adv = { ra_order : Slr.Ordering.t; ra_dist : int }

type rrep = {
  rp_src : int;  (** the requester — terminus of the advertisement *)
  rp_id : int;
  rp_dst : int;  (** destination being advertised *)
  rp_order : Slr.Ordering.t;  (** [O_?] = (dstseqno, LF) *)
  rp_dist : int;  (** last-hop measured distance [ld] *)
  rp_lifetime : float;
  rp_n : bool;
}

type rerr = { re_unreachable : int list }

(** Reply acknowledgment: unicast RREPs are retransmitted with binary
    exponential backoff until the next hop RACKs them (at most
    [rack_retries] resends) — §III's acknowledged-reply hardening, which
    keeps lost replies from stalling a discovery for a whole ring
    timeout. *)
type rack = { k_src : int; k_id : int }

type Wireless.Frame.payload +=
  | Rreq of rreq
  | Rrep of rrep
  | Rerr of rerr
  | Rack of rack

val create : ?config:config -> Routing_intf.ctx -> Routing_intf.agent

(** {2 White-box inspection for tests} *)

type t

(** Like {!create} but also returns the concrete state handle. *)
val create_full :
  ?config:config -> Routing_intf.ctx -> t * Routing_intf.agent

(** This node's current ordering for a destination
    ({!Slr.Ordering.unassigned} when none). *)
val ordering : t -> dst:int -> Slr.Ordering.t

(** Current feasible successors for a destination with their recorded
    orderings. *)
val successor_orderings : t -> dst:int -> (int * Slr.Ordering.t) list

val has_active_route : t -> dst:int -> bool

(** This node's own (destination-controlled) sequence number. *)
val own_seqno : t -> int

(** [on_route_change t f] registers [f dst], fired after every route-table
    mutation for [dst] — label adoption, successor elimination, link loss,
    RERR processing. The online loop-invariant monitor hangs off this. *)
val on_route_change : t -> (int -> unit) -> unit

(** RREP retransmissions triggered by missing RACKs (diagnostic). *)
val rack_retransmits : t -> int
