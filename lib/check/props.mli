(** The pure property catalogue: label arithmetic, Algorithm 1, Farey
    interpolation, abstract SLR loop freedom, SRP-over-wire model
    agreement, and spatial-grid/naive channel equivalence
    ([channel-grid-equiv]). Everything here runs without the full
    simulator; the sim-level properties live in [Sim.Fuzz] and the CLI
    concatenates both catalogues. *)

(** Reusable generators (also used by the unit-test suites). *)

(** Canonical proper fraction, denominators up to 10^4; occasionally the
    exact end points 0/1 and 1/1. *)
val fraction : Slr.Fraction.t Gen.t

(** Fractions whose components sit within ~2000 of the 32-bit bound, so
    mediant overflow — the MAX_DENOM / T-bit reset path — is common. *)
val near_bound_fraction : Slr.Fraction.t Gen.t

(** Ordering with a small sequence number (collisions likely) and a
    {!fraction} feasible distance. *)
val ordering : Slr.Ordering.t Gen.t

(** Like {!ordering} but over {!near_bound_fraction}. *)
val near_bound_ordering : Slr.Ordering.t Gen.t

(** The catalogue, in stable order; names are part of the replay
    interface. *)
val all : Runner.packed list
