(** A message-passing harness for routing agents with {e scripted} delivery:
    perfect point-to-point links over an explicit topology, deterministic
    per-frame latency plus RNG-substream jitter, a frame filter for exact
    loss scripts, and direct injection of forged frames.

    This sits between the abstract executor ({!Slr.Simple_net}) and the full
    simulator: real protocol agents exchange real frames, but the medium is
    a programmable test double — no MAC contention, no mobility — so a test
    can pin one precise interleaving (the van Glabbeek AODV replay) or fuzz
    millions of them (random jitter and loss), and every run is a pure
    function of the RNG substream. *)

type t

(** [create ~engine ~rng ~nodes ()] — no links, no agents yet.
    [latency] (default 0.01 s) is the fixed per-hop delay; [jitter]
    (default 0) adds a uniform extra delay drawn per frame. *)
val create :
  engine:Des.Engine.t ->
  rng:Des.Rng.t ->
  nodes:int ->
  ?latency:float ->
  ?jitter:float ->
  unit ->
  t

(** The capability record to hand to an agent's [create]; [trace] is null.
    Delivered data packets and routing drops are recorded in the harness. *)
val ctx : t -> int -> Protocols.Routing_intf.ctx

(** Register the agent built from {!ctx}. Must happen before any frame it
    should receive is delivered. *)
val set_agent : t -> int -> Protocols.Routing_intf.agent -> unit

val add_link : t -> int -> int -> unit

val remove_link : t -> int -> int -> unit

val linked : t -> int -> int -> bool

(** [set_filter t f] — a frame from [src] to [dst] is delivered only when
    [f ~src ~dst frame] is [true] (and the link exists). The default filter
    accepts everything. Returning [false] on a unicast frame triggers the
    sender's [unicast_failed], exactly like a broken link. *)
val set_filter :
  t -> (src:int -> dst:int -> frame:Wireless.Frame.t -> bool) -> unit

(** [inject t ~from ~at frame] hands [frame] to node [at]'s receive handler
    as if neighbour [from] had transmitted it — for adversarial replays of
    interleavings our own agents would not produce. Bypasses links and the
    filter; delivered immediately. *)
val inject : t -> from:int -> at:int -> Wireless.Frame.t -> unit

(** Data packets delivered to their final destination: (node, packet). *)
val delivered : t -> (int * Wireless.Frame.data) list

(** Routing-layer drops: (node, packet, reason). *)
val dropped : t -> (int * Wireless.Frame.data * string) list

(** Frames transmitted so far (unicast attempts + per-neighbour broadcast
    copies), including filtered-out ones. *)
val frames_sent : t -> int
