module Ordering = Slr.Ordering
module Label = Slr.Label

type snapshot = {
  node : int;
  dst : int;
  order : Slr.Ordering.t;
  succs : (int * Slr.Ordering.t) list;
}

(* Per destination we mirror each node's last reported ordering and
   successor id set; the orderings drive the monotonicity check, the id
   sets the global acyclicity check. *)
type dst_state = {
  orders : Ordering.t option array;  (** last finite-world report per node *)
  succ_ids : int list array;
}

type t = {
  nodes : int;
  dsts : (int, dst_state) Hashtbl.t;
  mutable observations : int;
  mutable edges : int;
}

let create ~nodes = { nodes; dsts = Hashtbl.create 16; observations = 0; edges = 0 }

let dst_state t dst =
  match Hashtbl.find_opt t.dsts dst with
  | Some s -> s
  | None ->
      let s =
        { orders = Array.make t.nodes None; succ_ids = Array.make t.nodes [] }
      in
      Hashtbl.replace t.dsts dst s;
      s

let observations t = t.observations

let edges_checked t = t.edges

(* Eq. 3 between two finite orderings of one node: the sequence number is
   destination-controlled and only moves forward; at the same sequence
   number the feasible-distance label never grows. Instance-generic — the
   theorem is about the ordering, not the concrete label set. *)
let monotonic ~prev ~next =
  prev.Ordering.sn < next.Ordering.sn
  || (prev.Ordering.sn = next.Ordering.sn
     && Label.compare next.Ordering.label prev.Ordering.label <= 0)

let check_edges snap =
  let rec go = function
    | [] -> Ok ()
    | (b, ob) :: rest ->
        if Ordering.precedes snap.order ob then go rest
        else
          Error
            (Format.asprintf
               "dst %d: node %d keeps successor %d out of order: %a not ⊑ %a"
               snap.dst snap.node b Ordering.pp snap.order Ordering.pp ob)
  in
  go snap.succs

let check_monotonic state snap =
  match state.orders.(snap.node) with
  | None -> Ok ()
  | Some prev ->
      if
        Ordering.is_unassigned prev
        || Ordering.is_unassigned snap.order
        || Ordering.equal prev snap.order
        || monotonic ~prev ~next:snap.order
      then Ok ()
      else
        Error
          (Format.asprintf
             "dst %d: node %d raised its label: %a then %a (Eq. 3)" snap.dst
             snap.node Ordering.pp prev Ordering.pp snap.order)

let check_acyclic t state dst =
  match
    Slr.Dag.acyclic ~successors:(fun i -> state.succ_ids.(i)) t.nodes
  with
  | Ok () -> Ok ()
  | Error cycle ->
      Error
        (Format.asprintf "dst %d: successor cycle %a" dst
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "->")
              Format.pp_print_int)
           cycle)

let observe t snap =
  if snap.node < 0 || snap.node >= t.nodes then
    invalid_arg "Slr_model.observe: bad node";
  t.observations <- t.observations + 1;
  t.edges <- t.edges + List.length snap.succs;
  let state = dst_state t snap.dst in
  let result =
    match check_edges snap with
    | Error _ as e -> e
    | Ok () -> (
        match check_monotonic state snap with
        | Error _ as e -> e
        | Ok () ->
            (* record first so the cycle check sees the new edge set *)
            state.orders.(snap.node) <- Some snap.order;
            state.succ_ids.(snap.node) <- List.map fst snap.succs;
            check_acyclic t state snap.dst)
  in
  (match result with
  | Ok () -> ()
  | Error _ ->
      (* keep the offending state recorded: replays of the same trace keep
         reporting from the first violation on *)
      state.orders.(snap.node) <- Some snap.order;
      state.succ_ids.(snap.node) <- List.map fst snap.succs);
  result
