module Tree = struct
  type 'a t = Node of 'a * 'a t Seq.t

  let root (Node (x, _)) = x

  let children (Node (_, cs)) = cs

  let pure x = Node (x, Seq.empty)

  let rec map f (Node (x, cs)) = Node (f x, Seq.map (map f) cs)

  let rec map2 f (Node (a, ashr) as ta) (Node (b, bshr) as tb) =
    Node
      ( f a b,
        Seq.append
          (Seq.map (fun ta' -> map2 f ta' tb) ashr)
          (Seq.map (fun tb' -> map2 f ta tb') bshr) )

  (* Hedgehog bind: shrink the outer value first (re-deriving the inner
     tree for each candidate), then shrink the inner one. *)
  let rec bind (Node (x, xs)) f =
    let (Node (y, ys)) = f x in
    Node (y, Seq.append (Seq.map (fun t -> bind t f) xs) ys)

  let rec filter p (Node (x, cs)) =
    Node (x, Seq.filter_map (fun (Node (c, _) as t) ->
        if p c then Some (filter p t) else None) cs)
end

type 'a t = Des.Rng.t -> 'a Tree.t

let generate g rng = g rng

let pure x _rng = Tree.pure x

let map f g rng = Tree.map f (g rng)

let map2 f ga gb rng =
  let ta = ga rng in
  let tb = gb rng in
  Tree.map2 f ta tb

let pair ga gb = map2 (fun a b -> (a, b)) ga gb

let triple ga gb gc =
  map2 (fun (a, b) c -> (a, b, c)) (pair ga gb) gc

let bind g f rng =
  let outer = g rng in
  (* every invocation of [f] (for the generated outer value and for each of
     its shrink candidates) reads the same inner substream, so the tree is a
     pure function of the stream consumed here *)
  let inner_base = Des.Rng.create (Des.Rng.bits64 rng) in
  Tree.bind outer (fun a -> f a (Des.Rng.copy inner_base))

(* Shrink an int toward [origin]: origin first, then a halving walk back
   toward the full value. Each candidate recurses with itself as the new
   value, so the tree depth is logarithmic in |x - origin|. *)
let rec int_tree ~origin x =
  if x = origin then Tree.pure x
  else
    let candidates () =
      let delta = x - origin in
      let rec walk d acc = if d = 0 then acc else walk (d / 2) (x - d :: acc) in
      (* ascending distance from origin: origin, origin + delta/2, ... *)
      let cands = walk delta [] in
      List.to_seq (List.rev cands) ()
    in
    Tree.Node (x, Seq.map (fun c -> int_tree ~origin c) candidates)

let int_toward ~origin lo hi rng =
  if hi < lo then invalid_arg "Gen.int_toward: empty range";
  let origin = Stdlib.min hi (Stdlib.max lo origin) in
  let x = lo + Des.Rng.int rng (hi - lo + 1) in
  int_tree ~origin x

let int_range lo hi = int_toward ~origin:lo lo hi

let rec float_tree ~origin x =
  if Float.abs (x -. origin) < 1e-9 then Tree.pure x
  else
    let candidates =
      List.to_seq [ origin; origin +. ((x -. origin) /. 2.) ]
      |> Seq.filter (fun c -> Float.abs (c -. origin) < Float.abs (x -. origin))
    in
    Tree.Node (x, Seq.map (fun c -> float_tree ~origin c) candidates)

let float_range lo hi rng =
  if hi < lo then invalid_arg "Gen.float_range: empty range";
  let x = Des.Rng.uniform rng ~lo ~hi in
  float_tree ~origin:lo x

let bool rng =
  if Des.Rng.bool rng then Tree.Node (true, Seq.return (Tree.pure false))
  else Tree.pure false

let elements xs rng =
  match xs with
  | [] -> invalid_arg "Gen.elements: empty list"
  | _ ->
      let arr = Array.of_list xs in
      let i = Des.Rng.int rng (Array.length arr) in
      Tree.map (fun j -> arr.(j)) (int_tree ~origin:0 i)

let oneof gs rng =
  match gs with
  | [] -> invalid_arg "Gen.oneof: empty list"
  | _ ->
      let arr = Array.of_list gs in
      arr.(Des.Rng.int rng (Array.length arr)) rng

let frequency weighted rng =
  let total = List.fold_left (fun acc (w, _) -> acc + Stdlib.max 0 w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: non-positive total weight";
  let roll = Des.Rng.int rng total in
  let rec pick acc = function
    | [] -> invalid_arg "Gen.frequency: empty list"
    | (w, g) :: rest ->
        let acc = acc + Stdlib.max 0 w in
        if roll < acc then g else pick acc rest
  in
  (pick 0 weighted) rng

(* List shrinking: drop chunks of elements (biggest first), then shrink
   elements pointwise. Standard QuickCheck layout over shrink trees. *)
let rec list_tree (elts : 'a Tree.t list) : 'a list Tree.t =
  let roots = List.map Tree.root elts in
  let n = List.length elts in
  let removals () =
    (* for k = n/2, n/4, ..., 1: every way to remove a k-chunk *)
    let rec chunks k acc =
      if k = 0 then acc
      else
        let rec cut start acc =
          if start + k > n then acc
          else
            let kept =
              List.filteri (fun i _ -> i < start || i >= start + k) elts
            in
            cut (start + k) (kept :: acc)
        in
        chunks (k / 2) (cut 0 acc)
    in
    List.to_seq (List.rev (chunks (n / 2) [])) ()
  in
  let pointwise () =
    let rec go i =
      if i >= n then Seq.empty
      else
        let elt = List.nth elts i in
        let here =
          Seq.map
            (fun c -> List.mapi (fun j e -> if j = i then c else e) elts)
            (Tree.children elt)
        in
        Seq.append here (go (i + 1))
    in
    go 0 ()
  in
  Tree.Node
    ( roots,
      Seq.append
        (fun () -> Seq.map list_tree removals ())
        (fun () -> Seq.map list_tree pointwise ()) )

let list_size size_gen elt_gen rng =
  let size_tree = size_gen rng in
  let n = Stdlib.max 0 (Tree.root size_tree) in
  let elts = List.init n (fun _ -> elt_gen rng) in
  list_tree elts

let such_that ?(retries = 100) p g rng =
  let rec attempt k =
    if k = 0 then failwith "Gen.such_that: no value satisfied the predicate";
    let t = g rng in
    if p (Tree.root t) then Tree.filter p t else attempt (k - 1)
  in
  attempt retries

let no_shrink g rng = Tree.pure (Tree.root (g rng))
