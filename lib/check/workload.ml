(* Shrinkable properties for the scenario workload generators: every
   mobility model keeps nodes inside the terrain at bounded speed, every
   traffic model emits a well-formed flow script, and both are
   byte-deterministic per seed — the invariants the scenario registry's
   reproducibility story rests on. *)

module M = Wireless.Mobility

(* ------------------------------------------------------------------ *)
(* Mobility cases: every model crossed with the degenerate corners the
   waypoint regression fixed — zero speeds, pause = duration, duration 0 *)

type mob_case = {
  model : M.id;
  mnodes : int;
  pause : float;
  speed_min : float;
  speed_max : float;
  mduration : float;
  width : float;
  mseed : int;
}

let mob_print c =
  Printf.sprintf
    "%s nodes=%d pause=%.1f speed=[%.1f,%.1f] duration=%.1f width=%.0f seed=%d"
    (M.name c.model) c.mnodes c.pause c.speed_min c.speed_max c.mduration
    c.width c.mseed

let mob_case_over models =
  Gen.bind
    (Gen.pair (Gen.elements models) (Gen.elements [ 0.0; 6.0; 40.0 ]))
    (fun (model, mduration) ->
      Gen.bind
        (Gen.pair
           (Gen.elements [ 0.0; 1.0; mduration ])
           (Gen.elements [ (0.0, 0.0); (0.0, 12.0); (1.0, 20.0); (0.5, 0.5) ]))
        (fun (pause, (speed_min, speed_max)) ->
          Gen.map2
            (fun (mnodes, width) mseed ->
              {
                model;
                mnodes;
                pause;
                speed_min;
                speed_max;
                mduration;
                width;
                mseed;
              })
            (Gen.pair (Gen.int_range 1 12) (Gen.elements [ 300.0; 2200.0 ]))
            (Gen.no_shrink (Gen.int_range 0 1_000_000))))

let mob_case = mob_case_over M.all

let terrain_of c = Wireless.Terrain.make ~width:c.width ~height:300.0

let scripts_of c =
  M.generate c.model ~terrain:(terrain_of c)
    ~rng:(Des.Rng.create (Int64.of_int c.mseed))
    ~nodes:c.mnodes ~pause:c.pause ~speed_min:c.speed_min
    ~speed_max:c.speed_max ~duration:c.mduration

(* positions are checked on a fixed grid covering the run and beyond it
   (scripts must also hold still sensibly after [duration]) *)
let sample_times c =
  List.init 11 (fun k -> c.mduration *. float_of_int k /. 10.0)
  @ [ c.mduration +. 5.0 ]

let check_scripts c ~f =
  let scripts = scripts_of c in
  let rec node i =
    if i >= Array.length scripts then Ok ()
    else
      let rec at = function
        | [] -> node (i + 1)
        | t :: rest -> (
            match f i scripts.(i) t with Ok () -> at rest | e -> e)
      in
      at (sample_times c)
  in
  node 0

(* Every model, every configuration (including the degenerate zero-speed
   and pause = duration corners): positions finite, inside the terrain,
   and no leg faster than the configured ceiling — the contract the
   spatial grid's candidate-superset guarantee needs. *)
let prop_mobility_positions =
  Runner.cell ~name:"mobility-positions" ~print:mob_print mob_case (fun c ->
      let terrain = terrain_of c in
      let eps = 1e-9 in
      check_scripts c ~f:(fun i script t ->
          let p = Wireless.Waypoint.position script t in
          if not (Float.is_finite p.Wireless.Vec2.x && Float.is_finite p.Wireless.Vec2.y)
          then Error (Printf.sprintf "node %d at t=%.2f: non-finite position" i t)
          else if
            p.Wireless.Vec2.x < -.eps
            || p.Wireless.Vec2.x > terrain.Wireless.Terrain.width +. eps
            || p.Wireless.Vec2.y < -.eps
            || p.Wireless.Vec2.y > terrain.Wireless.Terrain.height +. eps
          then
            Error
              (Printf.sprintf "node %d at t=%.2f: (%.2f, %.2f) off-terrain" i
                 t p.Wireless.Vec2.x p.Wireless.Vec2.y)
          else
            let v = Wireless.Waypoint.max_speed script in
            if v > (c.speed_max *. (1.0 +. 1e-6)) +. 1e-6 then
              Error
                (Printf.sprintf "node %d: leg speed %.3f exceeds ceiling %.3f"
                   i v c.speed_max)
            else Ok ()))

(* Manhattan keeps every interpolated position on a street line: legs are
   axis-aligned between intersections, so at any instant at least one
   coordinate equals a street coordinate exactly. *)
let prop_manhattan_streets =
  Runner.cell ~name:"manhattan-on-streets" ~print:mob_print
    (mob_case_over [ M.Manhattan ])
    (fun c ->
      let xs, ys = M.manhattan_streets (terrain_of c) in
      let on streets v = Array.exists (fun s -> Float.abs (s -. v) <= 1e-6) streets in
      check_scripts c ~f:(fun i script t ->
          let p = Wireless.Waypoint.position script t in
          if on xs p.Wireless.Vec2.x || on ys p.Wireless.Vec2.y then Ok ()
          else
            Error
              (Printf.sprintf "node %d at t=%.2f: (%.2f, %.2f) off-street" i t
                 p.Wireless.Vec2.x p.Wireless.Vec2.y)))

(* RPGM members never stray beyond the group radius from the reference
   point they ride — at every instant, not just at leg boundaries. *)
let prop_rpgm_radius =
  Runner.cell ~name:"rpgm-group-radius" ~print:mob_print
    (mob_case_over [ M.Rpgm ])
    (fun c ->
      let leaders =
        M.rpgm_leaders ~terrain:(terrain_of c)
          ~rng:(Des.Rng.create (Int64.of_int c.mseed))
          ~nodes:c.mnodes ~pause:c.pause ~speed_min:c.speed_min
          ~speed_max:c.speed_max ~duration:c.mduration
      in
      check_scripts c ~f:(fun i script t ->
          let member = Wireless.Waypoint.position script t in
          let leader =
            Wireless.Waypoint.position leaders.(i / M.group_size) t
          in
          let d = Wireless.Vec2.dist member leader in
          if d <= M.rpgm_radius +. 1e-6 then Ok ()
          else
            Error
              (Printf.sprintf "node %d at t=%.2f: %.2f m from leader (> %.0f)"
                 i t d M.rpgm_radius)))

(* Churn scripts are parked-relocate-parked: legs never overlap (of_legs
   enforces continuity) and every relocation runs at a drawn speed inside
   the configured band. *)
let prop_churn_relocations =
  Runner.cell ~name:"churn-relocations" ~print:mob_print
    (mob_case_over [ M.Churn ])
    (fun c ->
      let scripts = scripts_of c in
      let rec node i =
        if i >= Array.length scripts then Ok ()
        else
          let legs = Wireless.Waypoint.legs scripts.(i) in
          let bad =
            List.find_opt
              (fun (leg : Wireless.Waypoint.leg) ->
                let travel = leg.Wireless.Waypoint.arrive -. leg.Wireless.Waypoint.depart in
                if travel <= 0.0 || not (Float.is_finite travel) then false
                else
                  let v =
                    Wireless.Vec2.dist leg.Wireless.Waypoint.from_p
                      leg.Wireless.Waypoint.to_p
                    /. travel
                  in
                  v < c.speed_min *. (1.0 -. 1e-6) -. 1e-9
                  || v > (c.speed_max *. (1.0 +. 1e-6)) +. 1e-9)
              legs
          in
          match bad with
          | Some leg ->
              Error
                (Printf.sprintf
                   "node %d: relocation departing %.2f outside speed band" i
                   leg.Wireless.Waypoint.depart)
          | None -> node (i + 1)
      in
      node 0)

(* The degenerate waypoint corners the runner hit in the field: pause as
   long as the whole run, and a [0, 0] speed band. Neither may emit a NaN
   or hang — the node just never leaves its initial spot. *)
let prop_waypoint_degenerate =
  Runner.cell ~name:"waypoint-degenerate" ~print:mob_print
    (mob_case_over [ M.Waypoint_rw ])
    (fun c ->
      let c =
        (* force the corner: stationary band, pause spanning the run *)
        { c with speed_min = 0.0; speed_max = 0.0; pause = c.mduration }
      in
      check_scripts c ~f:(fun i script t ->
          let p = Wireless.Waypoint.position script t in
          let q = Wireless.Waypoint.position script 0.0 in
          if not (Float.is_finite p.Wireless.Vec2.x && Float.is_finite p.Wireless.Vec2.y)
          then Error (Printf.sprintf "node %d at t=%.2f: non-finite" i t)
          else if not (Wireless.Vec2.equal p q) then
            Error (Printf.sprintf "node %d moved despite zero speed" i)
          else Ok ()))

(* Byte-determinism: the same seed yields structurally identical scripts,
   for every model — the scenario registry's reproducibility contract. *)
let script_obs s =
  (Wireless.Waypoint.position s 0.0, Wireless.Waypoint.legs s)

let prop_mobility_deterministic =
  Runner.cell ~name:"mobility-deterministic" ~print:mob_print mob_case
    (fun c ->
      let a = Array.map script_obs (scripts_of c) in
      let b = Array.map script_obs (scripts_of c) in
      if a = b then Ok ()
      else Error "same seed produced different mobility scripts")

(* ------------------------------------------------------------------ *)
(* Traffic cases *)

type traf_case = {
  tmodel : Traffic.Model.id;
  tnodes : int;
  tflows : int;
  t_until : float;
  tmean : float;
  tseed : int;
}

let traffic_start = 1.0

let traf_print c =
  Printf.sprintf "%s nodes=%d flows=%d until=%.0f mean=%.0f seed=%d"
    (Traffic.Model.name c.tmodel) c.tnodes c.tflows c.t_until c.tmean c.tseed

let traf_case_over models =
  Gen.bind
    (Gen.pair (Gen.elements models) (Gen.int_range 2 10))
    (fun (tmodel, tnodes) ->
      Gen.map2
        (fun (tflows, (t_until, tmean)) tseed ->
          { tmodel; tnodes; tflows; t_until; tmean; tseed })
        (Gen.pair (Gen.int_range 1 5)
           (Gen.pair (Gen.elements [ 5.0; 20.0 ]) (Gen.elements [ 2.0; 10.0 ])))
        (Gen.no_shrink (Gen.int_range 0 1_000_000)))

let traf_case = traf_case_over Traffic.Model.all

let flows_of c =
  Traffic.Model.generate c.tmodel
    ~rng:(Des.Rng.create (Int64.of_int c.tseed))
    ~nodes:c.tnodes ~concurrent:c.tflows ~from_time:traffic_start
    ~until:c.t_until ~mean_duration:c.tmean

(* every model: flows inside the window, endpoints valid, sources distinct
   from destinations, and byte-deterministic per seed *)
let well_formed c (f : Traffic.Cbr.flow) =
  if f.Traffic.Cbr.start < traffic_start -. 1e-9 then
    Error (Printf.sprintf "flow %d starts before traffic_start" f.Traffic.Cbr.id)
  else if f.Traffic.Cbr.stop > c.t_until +. 1e-9 then
    Error (Printf.sprintf "flow %d stops after until" f.Traffic.Cbr.id)
  else if f.Traffic.Cbr.stop < f.Traffic.Cbr.start then
    Error (Printf.sprintf "flow %d stops before it starts" f.Traffic.Cbr.id)
  else if
    f.Traffic.Cbr.src < 0
    || f.Traffic.Cbr.src >= c.tnodes
    || f.Traffic.Cbr.dst < 0
    || f.Traffic.Cbr.dst >= c.tnodes
  then Error (Printf.sprintf "flow %d has out-of-range endpoints" f.Traffic.Cbr.id)
  else if f.Traffic.Cbr.src = f.Traffic.Cbr.dst then
    Error (Printf.sprintf "flow %d sends to itself" f.Traffic.Cbr.id)
  else Ok ()

let rec first_error = function
  | [] -> Ok ()
  | r :: rest -> ( match r with Ok () -> first_error rest | e -> e)

let prop_traffic_deterministic =
  Runner.cell ~name:"traffic-deterministic" ~print:traf_print traf_case
    (fun c ->
      match first_error (List.map (well_formed c) (flows_of c)) with
      | Error _ as e -> e
      | Ok () ->
          if flows_of c = flows_of c then Ok ()
          else Error "same seed produced different flow scripts")

(* Convergecast conserves packets into the sink: every flow drains into
   the fixed sink, and scheduling the script emits the ledger's packet
   count (minus at most one phase-clipped packet per flow), all of them
   addressed to the sink. *)
let prop_convergecast_sink =
  Runner.cell ~name:"convergecast-sink-conserves" ~print:traf_print
    (traf_case_over [ Traffic.Model.Convergecast ])
    (fun c ->
      let flows = flows_of c in
      let sink = Traffic.Model.convergecast_sink in
      let stray =
        List.find_opt
          (fun (f : Traffic.Cbr.flow) ->
            f.Traffic.Cbr.dst <> sink || f.Traffic.Cbr.src = sink)
          flows
      in
      match stray with
      | Some f ->
          Error
            (Printf.sprintf "flow %d (%d->%d) does not drain into sink %d"
               f.Traffic.Cbr.id f.Traffic.Cbr.src f.Traffic.Cbr.dst sink)
      | None ->
          let rate = 4.0 in
          let engine = Des.Engine.create () in
          let emitted = ref 0 and off_sink = ref 0 in
          Traffic.Cbr.schedule engine ~flows ~rate ~size:512
            ~send:(fun ~src:_ data ~size:_ ->
              incr emitted;
              if data.Wireless.Frame.final_dst <> sink then incr off_sink);
          Des.Engine.run_all engine;
          let budget = Traffic.Cbr.packet_count ~flows ~rate in
          if !off_sink > 0 then
            Error (Printf.sprintf "%d packets addressed off-sink" !off_sink)
          else if !emitted > budget then
            Error
              (Printf.sprintf "emitted %d packets, ledger budget %d" !emitted
                 budget)
          else if !emitted < budget - List.length flows then
            Error
              (Printf.sprintf
                 "emitted %d packets, conservation floor %d (budget %d)"
                 !emitted
                 (budget - List.length flows)
                 budget)
          else Ok ())

(* Bursty chops each conversation into disjoint, time-ordered on-periods
   that reuse the parent flow id. *)
let prop_bursty_envelope =
  Runner.cell ~name:"bursty-envelope" ~print:traf_print
    (traf_case_over [ Traffic.Model.Bursty ])
    (fun c ->
      let flows = flows_of c in
      match first_error (List.map (well_formed c) flows) with
      | Error _ as e -> e
      | Ok () ->
          let by_id = Hashtbl.create 16 in
          List.iter
            (fun (f : Traffic.Cbr.flow) ->
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt by_id f.Traffic.Cbr.id)
              in
              Hashtbl.replace by_id f.Traffic.Cbr.id (f :: prev))
            flows;
          let overlap =
            Hashtbl.fold
              (fun id segs acc ->
                match acc with
                | Some _ -> acc
                | None ->
                    let segs =
                      List.sort
                        (fun (a : Traffic.Cbr.flow) b ->
                          Float.compare a.Traffic.Cbr.start b.Traffic.Cbr.start)
                        segs
                    in
                    let rec scan = function
                      | a :: (b :: _ as rest) ->
                          if b.Traffic.Cbr.start < a.Traffic.Cbr.stop -. 1e-9
                          then Some id
                          else scan rest
                      | _ -> None
                    in
                    scan segs)
              by_id None
          in
          (match overlap with
          | Some id ->
              Error (Printf.sprintf "flow %d bursts overlap in time" id)
          | None -> Ok ()))

(* Flash-crowd: nothing transmits before the ignition instant, which is
   replayable from the seed (it is the model's first draw). *)
let prop_flash_arrival =
  Runner.cell ~name:"flash-crowd-arrival" ~print:traf_print
    (traf_case_over [ Traffic.Model.Flash ])
    (fun c ->
      let flows = flows_of c in
      match first_error (List.map (well_formed c) flows) with
      | Error _ as e -> e
      | Ok () ->
          let lo, hi =
            Traffic.Model.flash_window ~from_time:traffic_start
              ~until:c.t_until
          in
          let flash_at =
            (* the ignition instant is the model's first draw *)
            let rng = Des.Rng.create (Int64.of_int c.tseed) in
            lo +. Des.Rng.float rng (hi -. lo)
          in
          let early =
            List.find_opt
              (fun (f : Traffic.Cbr.flow) ->
                f.Traffic.Cbr.start < flash_at -. 1e-9)
              flows
          in
          (match early with
          | Some f ->
              Error
                (Printf.sprintf
                   "flow %d starts %.3f, before the %.3f ignition"
                   f.Traffic.Cbr.id f.Traffic.Cbr.start flash_at)
          | None -> Ok ()))

let props =
  [
    prop_mobility_positions;
    prop_manhattan_streets;
    prop_rpgm_radius;
    prop_churn_relocations;
    prop_waypoint_degenerate;
    prop_mobility_deterministic;
    prop_traffic_deterministic;
    prop_convergecast_sink;
    prop_bursty_envelope;
    prop_flash_arrival;
  ]
