(** Deterministic generators with integrated shrinking.

    A generator is a function from a {!Des.Rng.t} substream to a lazy
    {e shrink tree}: the root is the generated value, the children are
    progressively smaller candidates (each with its own shrink tree), laid
    out so a greedy first-failing-child descent finds a locally minimal
    counterexample. Shrinking never draws fresh randomness — the whole tree
    is determined by the RNG stream consumed at generation time — so a
    failure replays bit-for-bit from its (seed, case) pair. *)

module Tree : sig
  (** A value plus its lazily-built shrink candidates, smallest first. *)
  type 'a t = Node of 'a * 'a t Seq.t

  val root : 'a t -> 'a

  val children : 'a t -> 'a t Seq.t

  val pure : 'a -> 'a t

  val map : ('a -> 'b) -> 'a t -> 'b t
end

type 'a t = Des.Rng.t -> 'a Tree.t

(** [generate g rng] runs the generator. Draws from [rng]; the returned
    tree is pure. *)
val generate : 'a t -> Des.Rng.t -> 'a Tree.t

val pure : 'a -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t

(** Product; shrinks either component while holding the other. *)
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

val pair : 'a t -> 'b t -> ('a * 'b) t

val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

(** Monadic bind (Hedgehog-style): outer shrinks re-run [f] on a fresh copy
    of the same inner substream, so shrinking stays deterministic. *)
val bind : 'a t -> ('a -> 'b t) -> 'b t

(** [int_range lo hi] is uniform on [\[lo, hi\]], shrinking toward [lo]. *)
val int_range : int -> int -> int t

(** Like {!int_range} but shrinking toward [origin] (clamped to the range). *)
val int_toward : origin:int -> int -> int -> int t

(** Uniform float on [\[lo, hi)], shrinking toward [lo] by halving. *)
val float_range : float -> float -> float t

(** Fair coin; [true] shrinks to [false]. *)
val bool : bool t

(** Uniform choice; shrinks toward the head of the list.
    @raise Invalid_argument on an empty list. *)
val elements : 'a list -> 'a t

(** Uniform choice of generator; a choice shrinks toward earlier
    alternatives' values only through its own tree (the alternative index
    shrinks toward the head). *)
val oneof : 'a t list -> 'a t

(** Weighted choice. @raise Invalid_argument on an empty list or
    non-positive total weight. *)
val frequency : (int * 'a t) list -> 'a t

(** [list_size n g] — a list whose length is drawn from [n]. Shrinks by
    removing chunks of elements (halves first, then singletons) and by
    shrinking individual elements. *)
val list_size : int t -> 'a t -> 'a list t

(** [such_that ?retries p g] regenerates until [p] holds (default 100
    attempts, then raises [Failure]); shrink candidates violating [p] are
    pruned from the tree. *)
val such_that : ?retries:int -> ('a -> bool) -> 'a t -> 'a t

(** Don't shrink: wraps the root with no children. *)
val no_shrink : 'a t -> 'a t
