type graph = { nodes : int; edges : (int * int) list }

let pp_graph ppf g =
  Format.fprintf ppf "graph{n=%d; %a}" g.nodes
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (a, b) -> Format.fprintf ppf "%d-%d" a b))
    g.edges

let norm (a, b) = if a < b then (a, b) else (b, a)

let dedup_edges edges =
  List.sort_uniq compare
    (List.filter_map
       (fun (a, b) -> if a = b then None else Some (norm (a, b)))
       edges)

let graph ?(min_nodes = 3) ?(max_nodes = 16) () =
  let open Gen in
  bind (int_range min_nodes max_nodes) (fun n ->
      (* spanning tree: node i > 0 hangs off a random earlier node, so the
         root topology is connected; shrinking may remove tree edges, which
         consumers must treat as a legal partitioned scenario *)
      let tree =
        List.init (n - 1) (fun i ->
            map (fun p -> (p, i + 1)) (int_range 0 i))
      in
      let tree_gen =
        List.fold_right (map2 (fun e acc -> e :: acc)) tree (pure [])
      in
      let extra =
        list_size (int_range 0 (n / 2))
          (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      map2
        (fun t e -> { nodes = n; edges = dedup_edges (t @ e) })
        tree_gen extra)

type op = Request of int | Break of int * int | Restore of int * int

let pp_op ppf = function
  | Request n -> Format.fprintf ppf "req(%d)" n
  | Break (a, b) -> Format.fprintf ppf "break(%d-%d)" a b
  | Restore (a, b) -> Format.fprintf ppf "restore(%d-%d)" a b

let schedule g ~max_ops =
  let open Gen in
  let request = map (fun n -> Request n) (int_range 0 (g.nodes - 1)) in
  let op =
    match g.edges with
    | [] -> request
    | edges ->
        let link = elements edges in
        frequency
          [
            (6, request);
            (2, map (fun (a, b) -> Break (a, b)) link);
            (1, map (fun (a, b) -> Restore (a, b)) link);
          ]
  in
  list_size (int_range 1 max_ops) op

let flows ~nodes ~max_flows =
  let open Gen in
  if nodes < 2 then pure []
  else
    list_size (int_range 1 max_flows)
      (such_that
         (fun (s, d) -> s <> d)
         (pair (int_range 0 (nodes - 1)) (int_range 0 (nodes - 1))))

let fault_spec ?(crashes = false) () =
  let open Gen in
  map2
    (fun (flap_rate, flap_down, crash_count) (burst_rate, burst_drop) ->
      {
        Faults.Spec.none with
        Faults.Spec.flap_rate;
        flap_down_mean = flap_down;
        crashes = (if crashes then crash_count else 0);
        crash_down_mean = 2.0;
        burst_rate;
        burst_mean = 1.0;
        burst_drop_p = burst_drop;
      })
    (triple (float_range 0.0 1.0) (float_range 0.5 4.0) (int_range 0 2))
    (pair (float_range 0.0 0.5) (float_range 0.0 0.8))

type perturbation = { jitter : float; drop_p : float }

let pp_perturbation ppf p =
  Format.fprintf ppf "perturb{jitter=%.4f; drop_p=%.3f}" p.jitter p.drop_p

let perturbation =
  Gen.map2
    (fun jitter drop_p -> { jitter; drop_p })
    (Gen.float_range 0.0 0.05)
    (Gen.float_range 0.0 0.3)
