module Frame = Wireless.Frame
module Intf = Protocols.Routing_intf

module IntSet = Set.Make (Int)

type t = {
  engine : Des.Engine.t;
  rng : Des.Rng.t;
  nodes : int;
  latency : float;
  jitter : float;
  adjacency : IntSet.t array;
  agents : Intf.agent option array;
  mutable filter : src:int -> dst:int -> frame:Frame.t -> bool;
  mutable delivered : (int * Frame.data) list;
  mutable dropped : (int * Frame.data * string) list;
  mutable frames_sent : int;
}

let create ~engine ~rng ~nodes ?(latency = 0.01) ?(jitter = 0.0) () =
  {
    engine;
    rng;
    nodes;
    latency;
    jitter;
    adjacency = Array.make nodes IntSet.empty;
    agents = Array.make nodes None;
    filter = (fun ~src:_ ~dst:_ ~frame:_ -> true);
    delivered = [];
    dropped = [];
    frames_sent = 0;
  }

let agent t i =
  match t.agents.(i) with
  | Some a -> a
  | None -> invalid_arg "Wire: agent not registered"

let set_agent t i a = t.agents.(i) <- Some a

let add_link t a b =
  if a = b then invalid_arg "Wire.add_link: self-link";
  t.adjacency.(a) <- IntSet.add b t.adjacency.(a);
  t.adjacency.(b) <- IntSet.add a t.adjacency.(b)

let remove_link t a b =
  t.adjacency.(a) <- IntSet.remove b t.adjacency.(a);
  t.adjacency.(b) <- IntSet.remove a t.adjacency.(b)

let linked t a b = IntSet.mem b t.adjacency.(a)

let set_filter t f = t.filter <- f

let delay t =
  t.latency +. (if t.jitter > 0.0 then Des.Rng.float t.rng t.jitter else 0.0)

(* Unicast: if the link is up and the filter passes, the receiver gets the
   frame after one hop delay and the sender hears the "ack" one delay
   later; otherwise the sender's MAC reports retry exhaustion after the
   equivalent of a retry burst. *)
let send t i frame =
  t.frames_sent <- t.frames_sent + 1;
  match frame.Frame.dst with
  | Frame.Unicast j ->
      let ok = linked t i j && t.filter ~src:i ~dst:j ~frame in
      if ok then begin
        let d = delay t in
        ignore
          (Des.Engine.schedule t.engine ~delay:d (fun () ->
               (agent t j).Intf.receive ~src:i frame));
        ignore
          (Des.Engine.schedule t.engine ~delay:(2.0 *. d) (fun () ->
               (agent t i).Intf.unicast_ok ~frame ~dst:j))
      end
      else
        ignore
          (Des.Engine.schedule t.engine ~delay:(4.0 *. t.latency) (fun () ->
               (agent t i).Intf.unicast_failed ~frame ~dst:j))
  | Frame.Broadcast ->
      IntSet.iter
        (fun j ->
          t.frames_sent <- t.frames_sent + 1;
          if t.filter ~src:i ~dst:j ~frame then begin
            let d = delay t in
            ignore
              (Des.Engine.schedule t.engine ~delay:d (fun () ->
                   (agent t j).Intf.receive ~src:i frame))
          end)
        t.adjacency.(i)

let ctx t i =
  {
    Intf.id = i;
    node_count = t.nodes;
    engine = t.engine;
    rng = Des.Rng.split t.rng (Printf.sprintf "wire-agent-%d" i);
    trace = Trace.null;
    mac_send = (fun frame -> send t i frame);
    deliver = (fun data -> t.delivered <- (i, data) :: t.delivered);
    drop_data =
      (fun data ~reason -> t.dropped <- (i, data, reason) :: t.dropped);
  }

let inject t ~from ~at frame = (agent t at).Intf.receive ~src:from frame

let delivered t = List.rev t.delivered

let dropped t = List.rev t.dropped

let frames_sent t = t.frames_sent
