(** Shrinkable properties over the scenario workload generators — the
    pluggable mobility models ({!Wireless.Mobility}) and traffic models
    ({!Traffic.Model}): positions stay finite, in-terrain and
    speed-bounded under every configuration including the degenerate
    zero-speed and pause-equals-duration corners; Manhattan positions sit
    on streets; RPGM members stay within the group radius of their
    leader; churn relocations respect the speed band; convergecast
    conserves packets into its sink; bursty on-periods are disjoint;
    flash-crowd flows never precede the ignition instant; and every model
    is byte-deterministic per seed.

    Appended to {!Props.all}, so the fuzz catalogue, the seeded CI gate
    and [manet_sim fuzz] all pick them up. *)

val props : Runner.packed list
