(** Scenario generators shared by the fuzz properties: random connected
    topologies, route-computation schedules, fault plans, CBR flow sets and
    message-interleaving perturbations. All are plain {!Gen.t} values, so
    they shrink with the engine (fewer nodes, fewer edges, shorter
    schedules, milder faults). *)

(** An undirected multigraph-free topology on nodes [0 .. nodes - 1]. *)
type graph = { nodes : int; edges : (int * int) list }

val pp_graph : Format.formatter -> graph -> unit

(** Connected random topology: a random spanning tree plus extra random
    edges. Shrinking can disconnect it — consumers must treat an
    unreachable destination as a legal (No_route) scenario, which is
    exactly the paper's semantics. *)
val graph : ?min_nodes:int -> ?max_nodes:int -> unit -> graph Gen.t

(** One step of an abstract SLR execution over a static topology. *)
type op =
  | Request of int  (** node runs a route computation toward the dest *)
  | Break of int * int  (** an existing link fails (both directions) *)
  | Restore of int * int  (** a previously named link comes back *)

val pp_op : Format.formatter -> op -> unit

(** A schedule of operations against a given topology; requests dominate,
    with occasional link breaks/restores drawn from the graph's edge set. *)
val schedule : graph -> max_ops:int -> op list Gen.t

(** CBR flow set: (src, dst) pairs with distinct endpoints. *)
val flows : nodes:int -> max_flows:int -> (int * int) list Gen.t

(** A moderate fault spec on a bounded budget. [crashes] defaults to
    [false]: crash faults wipe volatile label state, which legitimately
    regresses orderings and would make the monotonicity half of the model
    oracle fire spuriously. *)
val fault_spec : ?crashes:bool -> unit -> Faults.Spec.t Gen.t

(** Interleaving perturbation for the wire harness: per-frame extra delay
    jitter and an independent drop probability. Shrinks toward the
    undisturbed schedule (zero jitter, zero loss). *)
type perturbation = { jitter : float; drop_p : float }

val pp_perturbation : Format.formatter -> perturbation -> unit

val perturbation : perturbation Gen.t
