(** Model-based differential oracle for SRP: an abstract mirror of the
    label-order semantics of Definition 1 / Theorems 1–4 over an explicit
    node set, fed with white-box snapshots of a running SRP network.

    The full message-passing protocol reports every route-table mutation as
    a {!snapshot} (the node's current ordering plus its stored successor
    orderings for one destination); the model independently re-checks the
    paper's invariants against its own recorded history:

    - {b Ordering Criteria} (Definition 5 / Theorem 3): the node's ordering
      strictly precedes every stored successor ordering — [O_A ⊑ O_B] for
      each engaged successor B;
    - {b label monotonicity} (Eq. 3): between two finite orderings of the
      same node the sequence number never decreases, and at an unchanged
      sequence number the fraction never grows. Transitions through the
      unassigned label (route expiry / fresh state) are legal in either
      direction — DELETE_PERIOD, not the order structure, guards those;
    - {b acyclicity} (Theorem 3): the per-destination successor graph,
      rebuilt from the snapshots alone, has no cycle.

    The model never reads protocol state directly, so a bookkeeping bug in
    SRP cannot hide itself from the oracle. *)

type t

val create : nodes:int -> t

type snapshot = {
  node : int;
  dst : int;
  order : Slr.Ordering.t;  (** the node's current ordering for [dst] *)
  succs : (int * Slr.Ordering.t) list;
      (** engaged successors with the orderings recorded at adoption *)
}

(** Check one mutation against the model and record it. [Error] carries a
    human-readable description of the violated invariant. *)
val observe : t -> snapshot -> (unit, string) result

(** Total snapshots checked. *)
val observations : t -> int

(** Total successor edges inspected across all checks. *)
val edges_checked : t -> int
