type 'a cell = {
  name : string;
  cost : int;
  gen : 'a Gen.t;
  print : 'a -> string;
  law : 'a -> (unit, string) result;
}

type packed = Packed : 'a cell -> packed

let cell ?(cost = 1) ~name ~print gen law =
  Packed { name; cost; gen; print; law }

type failure = {
  prop : string;
  seed : int;
  case : int;
  shrinks : int;
  repr : string;
  message : string;
}

type outcome = Pass of { cases : int } | Fail of failure

let case_rng ~seed ~prop ~case =
  Des.Rng.split
    (Des.Rng.create (Int64.of_int seed))
    (Printf.sprintf "%s#%d" prop case)

(* A law either passes, or fails with a message (Error or exception). *)
let verdict law x =
  match law x with
  | Ok () -> None
  | Error m -> Some m
  | exception e -> Some (Printf.sprintf "exception %s" (Printexc.to_string e))

(* Greedy integrated shrinking: repeatedly descend into the first failing
   child. Bounded so a pathological tree cannot spin forever. *)
let max_shrink_steps = 4000

let minimize law tree first_message =
  let steps = ref 0 in
  let rec descend tree message shrinks =
    if !steps >= max_shrink_steps then (Gen.Tree.root tree, message, shrinks)
    else
      let rec first_failing children =
        match children () with
        | Seq.Nil -> None
        | Seq.Cons (child, rest) ->
            incr steps;
            if !steps > max_shrink_steps then None
            else begin
              match verdict law (Gen.Tree.root child) with
              | Some m -> Some (child, m)
              | None -> first_failing rest
            end
      in
      match first_failing (Gen.Tree.children tree) with
      | Some (child, m) -> descend child m (shrinks + 1)
      | None -> (Gen.Tree.root tree, message, shrinks)
  in
  descend tree first_message 0

let run_cell ~seed ~cases ?(start = 0) (Packed c) =
  let rec go k =
    if k >= start + cases then Pass { cases }
    else begin
      let rng = case_rng ~seed ~prop:c.name ~case:k in
      let tree = Gen.generate c.gen rng in
      match verdict c.law (Gen.Tree.root tree) with
      | None -> go (k + 1)
      | Some message ->
          let value, message, shrinks = minimize c.law tree message in
          Fail
            {
              prop = c.name;
              seed;
              case = k;
              shrinks;
              repr = c.print value;
              message;
            }
    end
  in
  go start

let replay_line ~prop ~seed ~case =
  Printf.sprintf "manet_sim fuzz --prop %s --seed %d --replay %d" prop seed
    case

let report outcome ~name =
  match outcome with
  | Pass { cases } -> Printf.sprintf "PASS %-34s %4d cases" name cases
  | Fail f ->
      String.concat "\n"
        [
          Printf.sprintf "FAIL %s (seed %d, case %d, %d shrinks)" f.prop
            f.seed f.case f.shrinks;
          Printf.sprintf "  counterexample: %s" f.repr;
          Printf.sprintf "  violation:      %s" f.message;
          Printf.sprintf "  replay:         %s"
            (replay_line ~prop:f.prop ~seed:f.seed ~case:f.case);
        ]

let run_suite ?map:(map_cells = List.map) ~seed ~max_cases ?only ?start cells =
  let selected =
    match only with
    | None -> cells
    | Some name -> List.filter (fun (Packed c) -> c.name = name) cells
  in
  map_cells
    (fun (Packed c as p) ->
      let outcome =
        match start with
        | Some k -> run_cell ~seed ~cases:1 ~start:k p
        | None ->
            let cases = Stdlib.max 1 (max_cases / Stdlib.max 1 c.cost) in
            run_cell ~seed ~cases p
      in
      (c.name, outcome))
    selected
