module F = Slr.Fraction
module O = Slr.Ordering

let asprintf = Format.asprintf

(* ------------------------------------------------------------------ *)
(* Generators *)

let fraction =
  Gen.frequency
    [
      ( 8,
        Gen.bind (Gen.int_range 1 10_000) (fun den ->
            Gen.map (fun num -> F.make ~num ~den) (Gen.int_range 0 (den - 1)))
      );
      (1, Gen.pure F.zero);
      (1, Gen.pure F.one);
    ]

let near_bound_fraction =
  (* two interesting denominator regimes: around bound/2, where mediant
     denominator sums straddle the 32-bit bound, and flush against the
     bound, where even the next-element (den + 1) overflows *)
  let half = F.bound / 2 in
  let den_gen =
    Gen.oneof
      [
        Gen.int_toward ~origin:half (half - 2000) (half + 2000);
        Gen.int_toward ~origin:F.bound (F.bound - 2000) F.bound;
      ]
  in
  Gen.bind den_gen (fun den ->
      Gen.map
        (fun num -> F.make ~num ~den)
        (Gen.oneof
           [
             Gen.int_range 0 (Stdlib.min 2000 (den - 1));
             Gen.int_toward ~origin:(den - 1) (Stdlib.max 0 (den - 2000))
               (den - 1);
           ]))

let ordering_over frac_gen =
  Gen.map2 (fun sn frac -> O.make ~sn ~frac) (Gen.int_range 0 4) frac_gen

let ordering = ordering_over fraction

let near_bound_ordering = ordering_over near_bound_fraction

(* ------------------------------------------------------------------ *)
(* Exact-rational helpers: all differential comparisons go through
   Bigfrac so a bug in Fraction.compare cannot vouch for itself. *)

let big_of f =
  Slr.Bigfrac.make
    ~num:(Slr.Bignat.of_int f.F.num)
    ~den:(Slr.Bignat.of_int f.F.den)

let big_lt a b = Slr.Bigfrac.compare (big_of a) (big_of b) < 0

(* ------------------------------------------------------------------ *)
(* Fraction arithmetic *)

let prop_mediant =
  Runner.cell ~name:"fraction-mediant"
    ~print:(fun (a, b) -> asprintf "%a, %a" F.pp a F.pp b)
    (Gen.pair fraction fraction)
    (fun (a, b) ->
      let lo, hi = if F.(a < b) then (a, b) else (b, a) in
      if F.equal lo hi then Ok ()
      else
        match F.mediant lo hi with
        | None ->
            if F.would_overflow lo hi then Ok ()
            else Error "mediant None without would_overflow"
        | Some m ->
            if F.would_overflow lo hi then
              Error "mediant Some despite would_overflow"
            else if not (big_lt lo m && big_lt m hi) then
              Error
                (asprintf "mediant %a outside (%a, %a) by exact comparison"
                   F.pp m F.pp lo F.pp hi)
            else Ok ())

let prop_overflow =
  Runner.cell ~name:"fraction-overflow"
    ~print:(fun (a, b) -> asprintf "%a, %a" F.pp a F.pp b)
    (Gen.pair near_bound_fraction near_bound_fraction)
    (fun (a, b) ->
      let lo, hi = if F.(a < b) then (a, b) else (b, a) in
      let expect_overflow = lo.F.den + hi.F.den > F.bound in
      (match F.mediant lo hi with
      | Some _ when expect_overflow ->
          Error "mediant succeeded past the 32-bit component bound"
      | None when not expect_overflow ->
          Error "mediant overflowed below the 32-bit component bound"
      | _ -> Ok ())
      |> fun r ->
      (match r with
      | Error _ -> r
      | Ok () ->
          (* the protocol-facing tests agree: the same condition drives the
             ordering-level overflow mask (Eq. 11) that sets the T bit *)
          let oa = O.make ~sn:1 ~frac:lo and ob = O.make ~sn:1 ~frac:hi in
          if O.split_would_overflow oa ob <> expect_overflow then
            Error "Ordering.split_would_overflow disagrees with Fraction"
          else if
            F.would_overflow lo hi <> expect_overflow
          then Error "Fraction.would_overflow disagrees with the bound"
          else Ok ()))

(* Minimal denominator by brute force: the smallest q admitting some p with
   lo < p/q < hi, checked in exact integer arithmetic. *)
let brute_minimal_den lo hi ~limit =
  let rec try_q q =
    if q > limit then None
    else
      let p = (lo.F.num * q / lo.F.den) + 1 in
      if p * lo.F.den > lo.F.num * q && p * hi.F.den < hi.F.num * q then
        Some q
      else try_q (q + 1)
  in
  try_q 1

let small_fraction =
  Gen.bind (Gen.int_range 1 100) (fun den ->
      Gen.map (fun num -> F.make ~num ~den) (Gen.int_range 0 (den - 1)))

let prop_farey =
  Runner.cell ~name:"farey-simplest"
    ~print:(fun (a, b) -> asprintf "%a, %a" F.pp a F.pp b)
    (Gen.pair small_fraction small_fraction)
    (fun (a, b) ->
      let lo, hi = if F.(a < b) then (a, b) else (b, a) in
      if F.equal lo hi then Ok ()
      else
        match Slr.Farey.simplest_between ~lo ~hi with
        | None -> Error "simplest_between failed far from the bound"
        | Some s ->
            if not (big_lt lo s && big_lt s hi) then
              Error (asprintf "farey %a outside the open interval" F.pp s)
            else begin
              match brute_minimal_den lo hi ~limit:(lo.F.den + hi.F.den) with
              | Some q when q < s.F.den ->
                  Error
                    (asprintf "farey den %d not minimal: %d admits a fraction"
                       s.F.den q)
              | _ ->
                  (* the mediant never beats the Farey walk *)
                  (match F.mediant lo hi with
                  | Some m when m.F.den < s.F.den ->
                      Error "mediant denominator beat simplest_between"
                  | _ -> Ok ())
            end)

(* ------------------------------------------------------------------ *)
(* Bignat / Bigfrac near the 32-bit bound *)

let prop_bignat =
  let near_32 = Gen.int_toward ~origin:(1 lsl 32) 1 ((1 lsl 32) + 65536) in
  (* small enough that a near-32-bit times near-30-bit product stays well
     inside the native 63-bit int, keeping the differential oracle exact *)
  let near_30 = Gen.int_toward ~origin:(1 lsl 30) 1 (1 lsl 30) in
  Runner.cell ~name:"bignat-arith"
    ~print:(fun (a, b) -> Printf.sprintf "%d, %d" a b)
    (Gen.pair near_32 near_30)
    (fun (a, b) ->
      let module N = Slr.Bignat in
      let na = N.of_int a and nb = N.of_int b in
      if N.to_int (N.add na nb) <> Some (a + b) then
        Error "add disagrees with native int"
      else if N.to_int (N.mul na nb) <> Some (a * b) then
        Error "mul disagrees with native int"
      else if N.compare na nb <> compare a b then
        Error "compare disagrees with native int"
      else if N.of_string (N.to_string na) |> N.equal na |> not then
        Error "decimal round-trip failed"
      else Ok ())

let prop_bigfrac =
  Runner.cell ~name:"bigfrac-differential"
    ~print:(fun (a, b) -> asprintf "%a, %a" F.pp a F.pp b)
    (Gen.pair near_bound_fraction near_bound_fraction)
    (fun (a, b) ->
      let lo, hi = if F.(a < b) then (a, b) else (b, a) in
      if F.equal lo hi then Ok ()
      else
        let bm = Slr.Bigfrac.mediant (big_of lo) (big_of hi) in
        match F.mediant lo hi with
        | Some m ->
            if Slr.Bigfrac.equal (big_of m) bm then Ok ()
            else Error "bounded mediant disagrees with unbounded mediant"
        | None -> (
            (* overflow must be real: the exact mediant's components exceed
               the 32-bit bound, the reset-required (T-bit) regime *)
            match Slr.Bignat.to_int bm.Slr.Bigfrac.den with
            | Some d when d <= F.bound ->
                Error
                  (Printf.sprintf
                     "mediant refused but exact denominator %d fits" d)
            | _ -> Ok ()))

(* ------------------------------------------------------------------ *)
(* Algorithm 1 (NEWORDER) *)

(* Component-level re-statement of Definition 1 (Eqs. 3-5), written
   without Ordering.precedes so the oracle does not share code with the
   implementation it judges. "Below" = closer to the destination: a higher
   sequence number, or the same number with a smaller label. Label-set
   generic: the theorem is about the ordering, not the concrete set. *)
let below_eq g o =
  g.O.sn > o.O.sn
  || (g.O.sn = o.O.sn && Slr.Label.compare g.O.label o.O.label <= 0)

let strictly_below g o =
  g.O.sn > o.O.sn
  || (g.O.sn = o.O.sn && Slr.Label.compare g.O.label o.O.label < 0)

let eqs_3_to_5 ~current ~cached ~adv g =
  below_eq g current && strictly_below g cached && strictly_below adv g

let neworder_law ~compute (current, cached, adv) =
  let r = compute ~current ~cached ~adv in
  match r.Slr.New_order.case with
  | Slr.New_order.Infinite ->
      if O.is_unassigned r.Slr.New_order.order then Ok ()
      else Error "Infinite case returned a finite ordering"
  | case ->
      if eqs_3_to_5 ~current ~cached ~adv r.Slr.New_order.order then begin
        match case with
        | Slr.New_order.Keep_current
          when not (O.equal r.Slr.New_order.order current) ->
            Error "Keep_current changed the ordering"
        | _ -> Ok ()
      end
      else
        Error
          (asprintf "case %a emitted %a violating Eqs. 3-5 (Definition 1)"
             Slr.New_order.pp_case case O.pp r.Slr.New_order.order)

let triple_print (a, b, c) =
  asprintf "current=%a cached=%a adv=%a" O.pp a O.pp b O.pp c

let ordering_triple g = Gen.triple g g g

let prop_neworder =
  Runner.cell ~name:"neworder-maintains" ~print:triple_print
    (Gen.oneof [ ordering_triple ordering; ordering_triple near_bound_ordering ])
    (neworder_law ~compute:Slr.New_order.compute)

let prop_neworder_farey =
  Runner.cell ~name:"neworder-farey" ~print:triple_print
    (Gen.oneof [ ordering_triple ordering; ordering_triple near_bound_ordering ])
    (fun inputs ->
      let farey ~current ~cached ~adv =
        Slr.New_order.compute_with
          ~labels:(module Slr.Label.Farey)
          ~current ~cached ~adv
      in
      match neworder_law ~compute:farey inputs with
      | Error _ as e -> e
      | Ok () ->
          (* when both strategies split, the Farey label's denominator is
             never larger than the mediant's (the §VI reduction claim) *)
          let current, cached, adv = inputs in
          let m = Slr.New_order.compute ~current ~cached ~adv in
          let f = farey ~current ~cached ~adv in
          let is_split = function
            | Slr.New_order.Fresher_split | Slr.New_order.Equal_split -> true
            | _ -> false
          in
          if
            is_split m.Slr.New_order.case
            && is_split f.Slr.New_order.case
            && (O.frac f.Slr.New_order.order).F.den
               > (O.frac m.Slr.New_order.order).F.den
          then Error "Farey split grew the denominator past the mediant"
          else Ok ())

(* ------------------------------------------------------------------ *)
(* Every label-set instance satisfies the identical NEWORDER theorem, on
   labels minted by its own split operator (so each instance is exercised
   on labels it can actually reach). *)

let instance_label (module L : Slr.Label.S) =
  let step (lo, hi) left =
    if L.compare lo hi >= 0 then (lo, hi)
    else
      match L.split ~lo ~hi with
      | None -> (lo, hi)
      | Some m -> if left then (lo, m) else (m, hi)
  in
  Gen.frequency
    [
      (1, Gen.pure L.zero);
      (1, Gen.pure L.one);
      ( 8,
        Gen.map2
          (fun dirs keep_lo ->
            let lo, hi = List.fold_left step (L.zero, L.one) dirs in
            if keep_lo && L.compare L.zero lo < 0 then lo
            else if L.compare hi L.one < 0 then hi
            else lo)
          (Gen.list_size (Gen.int_range 1 8) Gen.bool)
          Gen.bool );
    ]

let instance_ordering inst =
  Gen.map2
    (fun sn label -> O.v ~sn ~label)
    (Gen.int_range 0 4) (instance_label inst)

let prop_neworder_instance (module L : Slr.Label.S) =
  Runner.cell
    ~name:("neworder-" ^ L.name)
    ~print:triple_print
    (ordering_triple (instance_ordering (module L : Slr.Label.S)))
    (neworder_law ~compute:(fun ~current ~cached ~adv ->
         Slr.New_order.compute_with
           ~labels:(module L : Slr.Label.S)
           ~current ~cached ~adv))

let prop_neworder_bigfrac = prop_neworder_instance (module Slr.Label.Bigfrac_set)

let prop_neworder_lex = prop_neworder_instance (module Slr.Label.Lex)

(* Cross-instance agreement: away from the 32-bit bound both rational
   instances mint with mediants (split and next-element alike), so on the
   same inputs Mediant and Bigfrac must take the identical Algorithm 1
   case and emit numerically equal labels. The unbounded instance thereby
   vouches for the bounded one everywhere except the overflow regime. *)
let prop_neworder_agreement =
  Runner.cell ~name:"neworder-cross-instance" ~print:triple_print
    (ordering_triple ordering)
    (fun (current, cached, adv) ->
      let m = Slr.New_order.compute ~current ~cached ~adv in
      let b =
        Slr.New_order.compute_with
          ~labels:(module Slr.Label.Bigfrac_set)
          ~current ~cached ~adv
      in
      if m.Slr.New_order.case <> b.Slr.New_order.case then
        Error
          (asprintf "cases diverge: mediant %a, bigfrac %a"
             Slr.New_order.pp_case m.Slr.New_order.case
             Slr.New_order.pp_case b.Slr.New_order.case)
      else begin
        let om = m.Slr.New_order.order and ob = b.Slr.New_order.order in
        if om.O.sn <> ob.O.sn then
          Error "sequence numbers diverge between instances"
        else if
          (not (O.is_unassigned om && O.is_unassigned ob))
          && not (Slr.Label.equal om.O.label ob.O.label)
        then
          Error
            (asprintf "labels diverge: mediant %a, bigfrac %a" O.pp om O.pp
               ob)
        else Ok ()
      end)

(* ------------------------------------------------------------------ *)
(* Abstract SLR executor: loop freedom after every mutation *)

type abstract_case = {
  graph : Topo.graph;
  dest : int;
  ops : Topo.op list;
}

let abstract_gen =
  Gen.bind (Topo.graph ~min_nodes:3 ~max_nodes:12 ()) (fun graph ->
      Gen.map2
        (fun dest ops -> { graph; dest; ops })
        (Gen.int_range 0 (graph.Topo.nodes - 1))
        (Topo.schedule graph ~max_ops:30))

let abstract_print c =
  asprintf "%a dest=%d ops=[%a]" Topo.pp_graph c.graph c.dest
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Topo.pp_op)
    c.ops

let abstract_law (type l) (module L : Slr.Ordinal.S with type t = l)
    ~exhaustion_ok c =
  let module Net = Slr.Simple_net.Make (L) in
  let net = Net.create ~nodes:c.graph.Topo.nodes ~dest:c.dest in
  List.iter (fun (a, b) -> Net.add_link net a b) c.graph.Topo.edges;
  let step i op =
    (match op with
    | Topo.Request src -> (
        match Net.request net ~src with
        | Net.Routed _ | Net.No_route -> Ok ()
        | Net.Label_exhausted node ->
            if exhaustion_ok then Ok ()
            else
              Error
                (Printf.sprintf
                   "op %d: dense label set exhausted at node %d" i node))
    | Topo.Break (a, b) ->
        Net.break_link net a b;
        Ok ()
    | Topo.Restore (a, b) ->
        if not (Net.linked net a b) then Net.add_link net a b;
        Ok ())
    |> function
    | Error _ as e -> e
    | Ok () -> (
        match Net.check_invariants net with
        | Ok () -> Ok ()
        | Error m -> Error (asprintf "after op %d (%a): %s" i Topo.pp_op op m))
  in
  let rec run i = function
    | [] -> Ok ()
    | op :: rest -> ( match step i op with Ok () -> run (i + 1) rest | e -> e)
  in
  run 0 c.ops

let prop_abstract_bounded =
  Runner.cell ~cost:2 ~name:"abstract-loop-freedom" ~print:abstract_print
    abstract_gen
    (abstract_law (module Slr.Ordinal.Bounded_fraction) ~exhaustion_ok:true)

let prop_abstract_unbounded =
  Runner.cell ~cost:2 ~name:"abstract-loop-freedom-unbounded"
    ~print:abstract_print abstract_gen
    (abstract_law (module Slr.Ordinal.Unbounded_fraction) ~exhaustion_ok:false)

(* ------------------------------------------------------------------ *)
(* Protocol caches under randomized clocks. Times are multiples of 0.25 s
   (exact binary floats), so the pure models below reproduce the
   implementations' deadline arithmetic bit for bit. *)

(* A quarter-second grid instant in [lo, hi] (given in quarters). *)
let grid_time lo hi = Gen.map (fun q -> 0.25 *. float_of_int q) (Gen.int_range lo hi)

type cache_op = { at : float; origin : int; id : int; query : bool }

let pp_cache_op ppf o =
  Format.fprintf ppf "%s(%d,%d)@%.2f"
    (if o.query then "mem" else "witness")
    o.origin o.id o.at

type cache_case = { ttl : float; cache_ops : cache_op list }

let cache_gen =
  Gen.map2
    (fun ttl cache_ops ->
      let cache_ops = List.sort (fun a b -> Float.compare a.at b.at) cache_ops in
      { ttl; cache_ops })
    (grid_time 1 16)
    (Gen.list_size (Gen.int_range 0 25)
       (Gen.map2
          (fun (at, query) (origin, id) -> { at; origin; id; query })
          (Gen.pair (grid_time 0 40) Gen.bool)
          (Gen.pair (Gen.int_range 0 2) (Gen.int_range 0 3))))

let cache_print c =
  asprintf "ttl=%.2f [%a]" c.ttl
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_cache_op)
    c.cache_ops

(* The model: a pair is live iff it was recorded less than ttl seconds ago.
   A live duplicate is refused and does NOT refresh the entry; an expired
   pair is witnessed afresh. *)
let seen_cache_law c =
  let engine = Des.Engine.create () in
  let cache = Protocols.Seen_cache.create engine ~ttl:c.ttl in
  let model : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  let live now key =
    match Hashtbl.find_opt model key with
    | Some expiry -> expiry > now
    | None -> false
  in
  let failure = ref None in
  let fail msg = if !failure = None then failure := Some msg in
  List.iter
    (fun op ->
      ignore
        (Des.Engine.schedule_at engine ~time:op.at (fun () ->
             let now = Des.Engine.now engine in
             let key = (op.origin, op.id) in
             if op.query then begin
               if Protocols.Seen_cache.mem cache ~origin:op.origin ~id:op.id
                  <> live now key
               then
                 fail (asprintf "%a: mem disagrees with model" pp_cache_op op)
             end
             else begin
               let expect = not (live now key) in
               if
                 Protocols.Seen_cache.witness cache ~origin:op.origin
                   ~id:op.id
                 <> expect
               then
                 fail
                   (asprintf "%a: witness disagrees with model (expected %b)"
                      pp_cache_op op expect)
               else if expect then Hashtbl.replace model key (now +. c.ttl)
             end;
             (* the sweep must never evict live entries or count dead ones *)
             let model_size =
               Hashtbl.fold
                 (fun _ expiry acc -> if expiry > now then acc + 1 else acc)
                 model 0
             in
             let real_size = Protocols.Seen_cache.size cache in
             if real_size <> model_size then
               fail
                 (Printf.sprintf "size %d but model holds %d live at %.2f"
                    real_size model_size now))))
    c.cache_ops;
  Des.Engine.run_all engine;
  match !failure with Some m -> Error m | None -> Ok ()

let prop_seen_cache =
  Runner.cell ~name:"seen-cache-model" ~print:cache_print cache_gen
    seen_cache_law

(* Pending buffer: single destination so the drop order is deterministic;
   conservation (every push is taken or dropped exactly once), no
   resurrection past the deadline, and overflow evicting the oldest. *)

type pending_op = Push of float | Take of float | Flush of float

let pending_time = function Push t | Take t | Flush t -> t

let pp_pending_op ppf = function
  | Push t -> Format.fprintf ppf "push@%.2f" t
  | Take t -> Format.fprintf ppf "take@%.2f" t
  | Flush t -> Format.fprintf ppf "flush@%.2f" t

type pending_case = {
  capacity : int;
  pending_ttl : float;
  pending_ops : pending_op list;
}

let pending_gen =
  Gen.bind (Gen.pair (Gen.int_range 1 4) (grid_time 1 12)) (fun (capacity, pending_ttl) ->
      Gen.map
        (fun ops ->
          let pending_ops =
            List.sort
              (fun a b -> Float.compare (pending_time a) (pending_time b))
              ops
          in
          { capacity; pending_ttl; pending_ops })
        (Gen.list_size (Gen.int_range 0 25)
           (Gen.bind (grid_time 0 40) (fun t ->
                Gen.frequency
                  [
                    (5, Gen.pure (Push t));
                    (2, Gen.pure (Take t));
                    (1, Gen.pure (Flush t));
                  ]))))

let pending_print c =
  asprintf "capacity=%d ttl=%.2f [%a]" c.capacity c.pending_ttl
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_pending_op)
    c.pending_ops

let pending_law c =
  let engine = Des.Engine.create () in
  let drops : (int * string) list ref = ref [] in
  let buffer =
    Protocols.Pending.create ~ttl:c.pending_ttl ~engine ~capacity:c.capacity
      ~drop:(fun data ~size:_ ~reason ->
        drops := (data.Wireless.Frame.seq, reason) :: !drops)
      ()
  in
  (* model: live entries in arrival order, and the expected drop multiset *)
  let entries : (int * float) list ref = ref [] in
  let expected : (int * string) list ref = ref [] in
  let purge now =
    let dead, live =
      List.partition (fun (_, deadline) -> deadline <= now) !entries
    in
    entries := live;
    List.iter
      (fun (seq, _) -> expected := (seq, "pending-buffer expired") :: !expected)
      dead
  in
  let failure = ref None in
  let fail msg = if !failure = None then failure := Some msg in
  let next_seq = ref 0 in
  let mk_data seq =
    {
      Wireless.Frame.origin = 0;
      final_dst = 1;
      flow = 0;
      seq;
      sent_at = 0.0;
      hops = 0;
    }
  in
  List.iter
    (fun op ->
      ignore
        (Des.Engine.schedule_at engine ~time:(pending_time op) (fun () ->
             let now = Des.Engine.now engine in
             purge now;
             match op with
             | Push _ ->
                 let seq = !next_seq in
                 incr next_seq;
                 if List.length !entries >= c.capacity then begin
                   match !entries with
                   | (oldest, _) :: rest ->
                       entries := rest;
                       expected :=
                         (oldest, "pending-buffer overflow") :: !expected
                   | [] -> ()
                 end;
                 entries := !entries @ [ (seq, now +. c.pending_ttl) ];
                 Protocols.Pending.push buffer ~dst:0 (mk_data seq) ~size:512
             | Take _ ->
                 let got =
                   List.map
                     (fun (d, _) -> d.Wireless.Frame.seq)
                     (Protocols.Pending.take_all buffer ~dst:0)
                 in
                 let want = List.map fst !entries in
                 entries := [];
                 if got <> want then
                   fail
                     (Printf.sprintf "take_all at %.2f returned [%s], model [%s]"
                        now
                        (String.concat ";" (List.map string_of_int got))
                        (String.concat ";" (List.map string_of_int want)))
             | Flush _ ->
                 List.iter
                   (fun (seq, _) -> expected := (seq, "gave-up") :: !expected)
                   !entries;
                 entries := [];
                 Protocols.Pending.drop_all buffer ~dst:0 ~reason:"gave-up")))
    c.pending_ops;
  Des.Engine.run_all engine;
  (* run_all drains the sweep timers, so everything still buffered expires *)
  List.iter
    (fun (seq, _) -> expected := (seq, "pending-buffer expired") :: !expected)
    !entries;
  entries := [];
  match !failure with
  | Some m -> Error m
  | None ->
      let canon l = List.sort compare l in
      if canon !drops <> canon !expected then
        Error
          (Printf.sprintf "drop log {%s} but model expects {%s}"
             (String.concat ", "
                (List.map
                   (fun (s, r) -> Printf.sprintf "%d:%s" s r)
                   (canon !drops)))
             (String.concat ", "
                (List.map
                   (fun (s, r) -> Printf.sprintf "%d:%s" s r)
                   (canon !expected))))
      else Ok ()

let prop_pending =
  Runner.cell ~name:"pending-model" ~print:pending_print pending_gen
    pending_law

(* ------------------------------------------------------------------ *)
(* SRP agents over the wire harness: every route mutation must satisfy
   the reference model, under randomized interleaving perturbations. *)

type wire_case = {
  wgraph : Topo.graph;
  wflows : (int * int) list;
  perturb : Topo.perturbation;
  wire_seed : int;
}

let wire_gen =
  Gen.bind (Topo.graph ~min_nodes:3 ~max_nodes:8 ()) (fun wgraph ->
      Gen.map2
        (fun (wflows, perturb) wire_seed ->
          { wgraph; wflows; perturb; wire_seed })
        (Gen.pair
           (Topo.flows ~nodes:wgraph.Topo.nodes ~max_flows:3)
           Topo.perturbation)
        (Gen.no_shrink (Gen.int_range 0 1_000_000)))

let wire_print c =
  asprintf "%a flows=[%a] %a seed=%d" Topo.pp_graph c.wgraph
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (s, d) -> Format.fprintf ppf "%d->%d" s d))
    c.wflows Topo.pp_perturbation c.perturb c.wire_seed

exception Model_violation of string

let wire_law c =
  let nodes = c.wgraph.Topo.nodes in
  let engine = Des.Engine.create () in
  let rng = Des.Rng.create (Int64.of_int c.wire_seed) in
  let wire =
    Wire.create ~engine ~rng:(Des.Rng.split rng "wire") ~nodes
      ~jitter:c.perturb.Topo.jitter ()
  in
  List.iter (fun (a, b) -> Wire.add_link wire a b) c.wgraph.Topo.edges;
  let drop_rng = Des.Rng.split rng "drop" in
  if c.perturb.Topo.drop_p > 0.0 then
    Wire.set_filter wire (fun ~src:_ ~dst:_ ~frame:_ ->
        Des.Rng.float drop_rng 1.0 >= c.perturb.Topo.drop_p);
  let model = Slr_model.create ~nodes in
  let agents =
    Array.init nodes (fun i ->
        let t, agent = Protocols.Srp.create_full (Wire.ctx wire i) in
        Protocols.Srp.on_route_change t (fun dst ->
            match
              Slr_model.observe model
                {
                  Slr_model.node = i;
                  dst;
                  order = Protocols.Srp.ordering t ~dst;
                  succs = Protocols.Srp.successor_orderings t ~dst;
                }
            with
            | Ok () -> ()
            | Error m -> raise (Model_violation m));
        Wire.set_agent wire i agent;
        agent)
  in
  List.iteri
    (fun k (src, dst) ->
      ignore
        (Des.Engine.schedule engine ~delay:(0.3 *. float_of_int k)
           (fun () ->
             let data =
               {
                 Wireless.Frame.origin = src;
                 final_dst = dst;
                 flow = k;
                 seq = k;
                 sent_at = Des.Engine.now engine;
                 hops = 0;
               }
             in
             agents.(src).Protocols.Routing_intf.originate data ~size:512)))
    c.wflows;
  match Des.Engine.run engine ~until:30.0 with
  | () -> Ok ()
  | exception Model_violation m -> Error m

let prop_wire_model =
  Runner.cell ~cost:5 ~name:"srp-wire-model" ~print:wire_print wire_gen
    wire_law

(* ------------------------------------------------------------------ *)
(* Des.Heap: the scheduler's priority queue. Keys are timestamps and ties
   the insertion sequence, so a drain must come out time-sorted with FIFO
   order inside equal timestamps — anything else replays events out of
   order. Keys are drawn from a small quarter-second pool so duplicated
   timestamps are the norm, not the exception.

   Mutation drill (re-run whenever the sift code changes; last run with
   this PR): flip the tie comparison in Heap.add ([tie < Array.unsafe_get
   ties parent] -> [tie >]) and run the heap cells; [heap-fifo-ties]
   fails at seed 7 and shrinks in 7 steps to the two-push counterexample
   keys=[0.00; 0.00]. Flipping the child pick in remove_min
   ([ties r < ties l] -> [>]) is caught the same way, shrinking to
   keys=[0.50; 0.50; 0.50; 0.00]. Restore and re-run green. *)

let heap_keys_gen pool_max =
  Gen.list_size (Gen.int_range 0 40)
    (Gen.map (fun q -> 0.25 *. float_of_int q) (Gen.int_range 0 pool_max))

let heap_print keys =
  asprintf "keys=[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf k -> Format.fprintf ppf "%.2f" k))
    keys

(* drain through the allocation-free accessors, cross-checking them and
   [peek]/[pop] against each other at every step *)
let heap_drain_law keys =
  let h = Des.Heap.create () in
  List.iteri (fun i k -> Des.Heap.add h ~key:k ~tie:i i) keys;
  if Des.Heap.size h <> List.length keys then
    Error "size does not count the pushes"
  else begin
    let err = ref None in
    let out = ref [] in
    let step = ref 0 in
    while !err = None && not (Des.Heap.is_empty h) do
      let k = Des.Heap.min_key h and v = Des.Heap.min_value h in
      (match Des.Heap.peek h with
      | Some (pk, _, pv) when pk = k && pv = v -> ()
      | Some _ -> err := Some "peek disagrees with min_key/min_value"
      | None -> err := Some "peek empty on a non-empty heap");
      if !err = None then begin
        (* alternate removal paths: both must agree with the head *)
        if !step land 1 = 0 then begin
          let k', _, v' = Des.Heap.pop h in
          if k' <> k || v' <> v then err := Some "pop disagrees with peek"
        end
        else Des.Heap.drop_min h;
        out := (k, v) :: !out;
        incr step
      end
    done;
    match !err with
    | Some e -> Error e
    | None ->
        (* !out is newest-first, so rev_map restores drain order *)
        let drained_keys = List.rev_map fst !out in
        if drained_keys <> List.sort Float.compare keys then
          Error "drain is not the pushed timestamps in ascending order"
        else Ok ()
  end

let prop_heap_drain =
  Runner.cell ~name:"heap-drain-sorted" ~print:heap_print (heap_keys_gen 12)
    heap_drain_law

(* FIFO inside equal timestamps: the drain must equal a stable sort by
   key alone, which keeps insertion order for duplicates *)
let heap_fifo_law keys =
  let h = Des.Heap.create () in
  List.iteri (fun i k -> Des.Heap.add h ~key:k ~tie:i i) keys;
  let expected =
    List.stable_sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (List.mapi (fun i k -> (k, i)) keys)
  in
  let drained =
    List.map (fun (k, _, v) -> (k, v)) (Des.Heap.to_sorted_list h)
  in
  if drained <> expected then
    Error "equal-timestamp pushes drained out of insertion order"
  else Ok ()

let prop_heap_fifo =
  Runner.cell ~name:"heap-fifo-ties" ~print:heap_print (heap_keys_gen 3)
    heap_fifo_law

(* ------------------------------------------------------------------ *)
(* Spatial grid vs naive channel scan: the grid's candidate set must be a
   superset of the exact in-range set, and a channel backed by it must be
   observationally identical to the full O(N) sweep — same deliveries,
   same collisions, in the same engine order. Mobile nodes exercise the
   staleness slack (radius inflated by max_speed since the last rebuild). *)

type channel_case = {
  cnodes : int;
  cseed : int;
  cpause : float;
  (* top leg speed: 0 freezes every node (no staleness slack to hide
     behind), 50 doubles the usual pace (maximum slack) *)
  cspeed : float;
  (* skewed placement: even-numbered nodes start inside a corner patch,
     loading a handful of grid cells while the rest stay sparse *)
  cskew : bool;
  ctx : (int * int * int) list;  (** (src, quarter-second slot, duration idx) *)
}

let tx_durations = [| 0.002; 0.05; 0.3 |]

let channel_gen =
  (* kilonode draws are rare but real: grid bookkeeping bugs that need
     hundreds of occupied cells cannot hide behind ten-node worlds *)
  Gen.bind
    (Gen.frequency
       [
         (8, Gen.int_range 2 10);
         (2, Gen.int_range 20 120);
         (1, Gen.int_range 300 1000);
       ])
    (fun cnodes ->
      Gen.map2
        (fun ((cseed, cpause), (cspeed, cskew)) ctx ->
          { cnodes; cseed; cpause; cspeed; cskew; ctx })
        (Gen.pair
           (Gen.pair
              (Gen.no_shrink (Gen.int_range 0 1_000_000))
              (Gen.elements [ 0.0; 1.0; 1000.0 ]))
           (Gen.pair (Gen.elements [ 0.0; 25.0; 50.0 ]) Gen.bool))
        (Gen.list_size (Gen.int_range 1 15)
           (Gen.triple
              (Gen.int_range 0 (cnodes - 1))
              (Gen.int_range 0 20)
              (Gen.int_range 0 (Array.length tx_durations - 1)))))

let channel_print c =
  asprintf "nodes=%d seed=%d pause=%.0f speed=%.0f skew=%b tx=[%a]" c.cnodes
    c.cseed c.cpause c.cspeed c.cskew
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (src, q, d) ->
         Format.fprintf ppf "%d@%.2fs/%.3f" src
           (0.25 *. float_of_int q)
           tx_durations.(d)))
    c.ctx

let channel_grid_law c =
  (* terrain grows with the population so kilonode draws keep a sparse,
     many-cell grid instead of collapsing into the full-coverage branch *)
  let width = if c.cnodes > 100 then 3600.0 else 600.0 in
  let height = if c.cnodes > 100 then 1800.0 else 300.0 in
  let terrain = Wireless.Terrain.make ~width ~height in
  (* skewed placements start in a range-sized corner patch *)
  let patch = Wireless.Terrain.make ~width:150.0 ~height:150.0 in
  let range = 150.0 and cs_range = 330.0 in
  let max_speed = c.cspeed in
  let rng = Des.Rng.create (Int64.of_int c.cseed) in
  let scripts =
    Array.init c.cnodes (fun i ->
        let home = if c.cskew && i land 1 = 0 then patch else terrain in
        Wireless.Waypoint.generate ~terrain:home
          ~rng:(Des.Rng.split rng (Printf.sprintf "node%d" i))
          ~pause:c.cpause
          ~speed_min:(if max_speed > 0.0 then 1.0 else 0.0)
          ~speed_max:max_speed ~duration:6.0)
  in
  let position i t = Wireless.Waypoint.position scripts.(i) t in
  let run grid =
    let engine = Des.Engine.create () in
    let ch =
      Wireless.Channel.create ?grid engine ~nodes:c.cnodes ~position ~range
        ~cs_range
    in
    let log = ref [] in
    for i = 0 to c.cnodes - 1 do
      Wireless.Channel.set_receiver ch i (fun ~src pdu ->
          log := (Des.Engine.now engine, i, src, pdu) :: !log)
    done;
    List.iteri
      (fun k (src, q, d) ->
        ignore
          (Des.Engine.schedule_at engine
             ~time:(0.25 *. float_of_int q)
             (fun () ->
               Wireless.Channel.transmit ch ~src ~duration:tx_durations.(d) k)))
      c.ctx;
    Des.Engine.run_all engine;
    ( List.rev !log,
      Wireless.Channel.collisions ch,
      List.init c.cnodes (Wireless.Channel.collisions_at ch) )
  in
  let log_n, coll_n, per_n = run None in
  let log_g, coll_g, per_g =
    run (Some { Wireless.Channel.max_speed; epoch = 0.25 })
  in
  if log_n <> log_g then
    Error
      (Printf.sprintf "delivery logs diverge: naive %d entries, grid %d"
         (List.length log_n) (List.length log_g))
  else if coll_n <> coll_g then
    Error (Printf.sprintf "collision totals diverge: %d vs %d" coll_n coll_g)
  else if per_n <> per_g then Error "per-node collision counts diverge"
  else begin
    (* candidate-superset oracle on a standalone grid, queried at each
       transmission instant against the brute-force in-range set *)
    let grid =
      Wireless.Grid.create ~nodes:c.cnodes ~position ~cell:(cs_range /. 2.0)
        ~max_speed ~epoch:0.25
    in
    let missing =
      List.find_map
        (fun (src, q, _) ->
          let now = 0.25 *. float_of_int q in
          let center = position src now in
          let seen = Array.make c.cnodes false in
          Wireless.Grid.iter grid ~now ~center ~radius:cs_range (fun j ->
              seen.(j) <- true);
          let rec scan j =
            if j >= c.cnodes then None
            else if
              Wireless.Vec2.dist center (position j now) <= cs_range
              && not seen.(j)
            then Some (now, j)
            else scan (j + 1)
          in
          scan 0)
        c.ctx
    in
    match missing with
    | Some (now, j) ->
        Error
          (Printf.sprintf
             "grid candidates at t=%.2f miss in-range node %d" now j)
    | None -> Ok ()
  end

let prop_channel_grid =
  Runner.cell ~cost:2 ~name:"channel-grid-equiv" ~print:channel_print
    channel_gen channel_grid_law

let all =
  [
    prop_mediant;
    prop_overflow;
    prop_farey;
    prop_bignat;
    prop_bigfrac;
    prop_neworder;
    prop_neworder_farey;
    prop_neworder_bigfrac;
    prop_neworder_lex;
    prop_neworder_agreement;
    prop_abstract_bounded;
    prop_abstract_unbounded;
    prop_seen_cache;
    prop_pending;
    prop_wire_model;
    prop_heap_drain;
    prop_heap_fifo;
    prop_channel_grid;
  ]
  (* scenario workload models: mobility / traffic invariants *)
  @ Workload.props
