(** Property runner: executes generator-driven laws case by case, shrinks
    failures to a local minimum, and renders every counterexample with the
    exact [manet_sim fuzz --replay] invocation that reproduces it.

    Case [k] of property [name] under seed [s] draws from the splitmix64
    substream [split (create s) (name ^ "#" ^ k)] — independent of every
    other case, so a replay of one case needs none of the preceding ones. *)

(** One property: a generator, a printer for counterexamples, and a law
    returning [Error message] (or raising) on violation. [cost] divides the
    suite's case budget — expensive properties (whole simulations) declare
    a higher cost and run proportionally fewer cases. *)
type 'a cell = {
  name : string;
  cost : int;
  gen : 'a Gen.t;
  print : 'a -> string;
  law : 'a -> (unit, string) result;
}

(** Existential wrapper so heterogeneous properties form one catalogue. *)
type packed = Packed : 'a cell -> packed

val cell :
  ?cost:int ->
  name:string ->
  print:('a -> string) ->
  'a Gen.t ->
  ('a -> (unit, string) result) ->
  packed

type failure = {
  prop : string;
  seed : int;
  case : int;  (** failing case index (replay key) *)
  shrinks : int;  (** shrink steps taken to reach the minimum *)
  repr : string;  (** printed minimal counterexample *)
  message : string;  (** the law's error for the minimal counterexample *)
}

type outcome = Pass of { cases : int } | Fail of failure

(** [run_cell ~seed ~cases ?start p] runs cases [start .. start + cases - 1]
    (cases already divided by [cost] must be done by the caller — this
    function runs exactly [cases]). Stops at the first failure and shrinks
    it. *)
val run_cell : seed:int -> cases:int -> ?start:int -> packed -> outcome

(** Deterministic multi-line report. For failures it contains the seed, the
    case, the shrink count, the minimal counterexample, the law's message,
    and a one-line replay invocation; byte-identical across runs of the same
    (seed, case) — the replay meta-test asserts exactly this. *)
val report : outcome -> name:string -> string

(** The replay invocation embedded in failure reports. *)
val replay_line : prop:string -> seed:int -> case:int -> string

(** [run_suite ~seed ~max_cases ?only ?start cells] runs every catalogue
    entry (or just the [only]-named one), scaling [max_cases] down by each
    cell's [cost] (minimum 1 case). [start] (replay mode) runs exactly one
    case per selected cell at that index. Returns per-cell outcomes in
    catalogue order.

    [map] (default [List.map]) applies the per-cell runner to the selected
    catalogue; pass an order-preserving parallel map (e.g. [Sim.Pool.map]
    behind list conversions) to spread properties over domains — every
    case draws from its own [prop#case] substream, so outcomes are
    identical however cells are scheduled. *)
val run_suite :
  ?map:
    (((packed -> string * outcome) -> packed list -> (string * outcome) list)) ->
  seed:int ->
  max_cases:int ->
  ?only:string ->
  ?start:int ->
  packed list ->
  (string * outcome) list
