(* Little-endian limbs in base 2^30, canonical form: no trailing zero limb,
   zero is the empty array. Base 2^30 keeps limb products within native-int
   range (60 bits + carries < 63). *)

let limb_bits = 30

let base = 1 lsl limb_bits

let mask = base - 1

type t = int array

let zero : t = [||]

let is_zero t = Array.length t = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative";
  let rec limbs n acc = if n = 0 then List.rev acc else limbs (n lsr limb_bits) ((n land mask) :: acc) in
  Array.of_list (limbs n [])

let one = of_int 1

let to_int t =
  (* at most three 30-bit limbs fit (62 bits < 63) *)
  match Array.length t with
  | 0 -> Some 0
  | 1 -> Some t.(0)
  | 2 -> Some (t.(0) lor (t.(1) lsl limb_bits))
  | 3 when t.(2) < 1 lsl (62 - (2 * limb_bits)) ->
      Some (t.(0) lor (t.(1) lsl limb_bits) lor (t.(2) lsl (2 * limb_bits)))
  | _ -> None

let add a b =
  let la = Array.length a and lb = Array.length b in
  let len = max la lb + 1 in
  let out = Array.make len 0 in
  let carry = ref 0 in
  for i = 0 to len - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let sum = av + bv + !carry in
    out.(i) <- sum land mask;
    carry := sum lsr limb_bits
  done;
  assert (!carry = 0);
  normalize out

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let acc = out.(i + j) + (a.(i) * b.(j)) + !carry in
        out.(i + j) <- acc land mask;
        carry := acc lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let acc = out.(!k) + !carry in
        out.(!k) <- acc land mask;
        carry := acc lsr limb_bits;
        incr k
      done
    done;
    normalize out
  end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec cmp i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else cmp (i - 1)
    in
    cmp (la - 1)

let equal a b = compare a b = 0

let sub a b =
  if compare a b < 0 then invalid_arg "Bignat.sub: would be negative"
  else begin
    let la = Array.length a and lb = Array.length b in
    let out = Array.make la 0 in
    let borrow = ref 0 in
    for i = 0 to la - 1 do
      let bv = if i < lb then b.(i) else 0 in
      let d = a.(i) - bv - !borrow in
      if d < 0 then begin
        out.(i) <- d + base;
        borrow := 1
      end
      else begin
        out.(i) <- d;
        borrow := 0
      end
    done;
    assert (!borrow = 0);
    normalize out
  end

let bits t =
  let n = Array.length t in
  if n = 0 then 0
  else
    let top = t.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0

(* Divide in place by a small positive int, returning the remainder. *)
let divmod_small a d =
  let n = Array.length a in
  let out = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor a.(i) in
    out.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize out, !rem)

let to_string t =
  if is_zero t then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec loop v =
      if not (is_zero v) then begin
        let q, r = divmod_small v 10 in
        Buffer.add_char buf (Char.chr (Char.code '0' + r));
        loop q
      end
    in
    loop t;
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

let of_string s =
  if String.length s = 0 then invalid_arg "Bignat.of_string: empty";
  let ten = of_int 10 in
  let acc = ref zero in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Bignat.of_string: not a digit";
      acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0')))
    s;
  !acc

let pp ppf t = Format.pp_print_string ppf (to_string t)
