type result = { order : Ordering.t; case : case }

and case =
  | Infinite
  | Fresher_next
  | Fresher_split
  | Keep_current
  | Equal_split

let feasible ~current ~adv = Ordering.precedes current adv

(* The paper proves Theorem 6 under Lemma 1's protocol invariants (the
   advertisement is feasible at the node, and sn_C <= sn_? along any request
   path). A stale or reordered packet can violate them, and then a literal
   Algorithm 1 may emit a label that *raises* the node (breaking Eq. 3) or
   sits at or below the advertisement (breaking Eq. 5). We validate the
   candidate against Eqs. 3-5 and degrade to the infinite ordering instead,
   which makes the theorem unconditional. *)
let maintains_order ~current ~cached ~adv g =
  (Ordering.equal g current || Ordering.precedes current g)
  && Ordering.precedes cached g
  && Ordering.precedes g adv

(* Direct transcription of Algorithm 1, generic over the label set.
   [L.split] interpolates the cached solicitation label with the
   advertisement's, keeping the advertisement's sequence number (lines 7
   and 12); [L.next] is the next-element of line 5. *)
let compute_with ~labels:(module L : Label.S) ~current ~cached ~adv =
  let infinite = Ordering.unassigned_of (module L : Label.S) in
  let split () =
    (* the interval is (adv.label, cached.label): the advertisement is the
       lower label ... at equal sequence numbers the feasible advertisement
       has the smaller label *)
    let lo = adv.Ordering.label and hi = cached.Ordering.label in
    if L.compare lo hi >= 0 then None
    else
      match L.split ~lo ~hi with
      | None -> None
      | Some label -> Some (Ordering.v ~sn:adv.Ordering.sn ~label)
  in
  let candidate =
    if current.Ordering.sn < adv.Ordering.sn then
      if cached.Ordering.sn < adv.Ordering.sn then
        match L.next adv.Ordering.label with
        | Some label ->
            { order = Ordering.v ~sn:adv.Ordering.sn ~label;
              case = Fresher_next }
        | None -> { order = infinite; case = Infinite }
      else begin
        match split () with
        | Some order -> { order; case = Fresher_split }
        | None -> { order = infinite; case = Infinite }
      end
    else if current.Ordering.sn = adv.Ordering.sn then
      if Ordering.precedes cached current then
        { order = current; case = Keep_current }
      else begin
        match split () with
        | Some order -> { order; case = Equal_split }
        | None -> { order = infinite; case = Infinite }
      end
    else { order = infinite; case = Infinite }
  in
  if
    candidate.case = Infinite
    || maintains_order ~current ~cached ~adv candidate.order
  then candidate
  else { order = infinite; case = Infinite }

let compute ~current ~cached ~adv =
  compute_with ~labels:(module Label.Mediant : Label.S) ~current ~cached ~adv

let filter_successors ~order succs =
  List.filter (fun (_, s) -> Ordering.precedes order s) succs

let pp_case ppf case =
  Format.pp_print_string ppf
    (match case with
    | Infinite -> "Infinite"
    | Fresher_next -> "Fresher_next"
    | Fresher_split -> "Fresher_split"
    | Keep_current -> "Keep_current"
    | Equal_split -> "Equal_split")
