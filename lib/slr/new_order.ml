type result = { order : Ordering.t; case : case }

and case =
  | Infinite
  | Fresher_next
  | Fresher_split
  | Keep_current
  | Equal_split

let feasible ~current ~adv = Ordering.precedes current adv

(* The paper proves Theorem 6 under Lemma 1's protocol invariants (the
   advertisement is feasible at the node, and sn_C <= sn_? along any request
   path). A stale or reordered packet can violate them, and then a literal
   Algorithm 1 may emit a label that *raises* the node (breaking Eq. 3) or
   sits at or below the advertisement (breaking Eq. 5). We validate the
   candidate against Eqs. 3-5 and degrade to the infinite ordering instead,
   which makes the theorem unconditional. *)
let maintains_order ~current ~cached ~adv g =
  (Ordering.equal g current || Ordering.precedes current g)
  && Ordering.precedes cached g
  && Ordering.precedes g adv

(* Direct transcription of Algorithm 1. [split] interpolates the cached
   solicitation fraction with the advertisement's, keeping the
   advertisement's sequence number (lines 7 and 12). *)
let compute_with ~split ~current ~cached ~adv =
  let split () =
    (* the interval is (adv.frac, cached.frac): the advertisement is the
       lower label's fraction ... at equal sequence numbers the feasible
       advertisement has the smaller fraction *)
    let lo = adv.Ordering.frac and hi = cached.Ordering.frac in
    if Fraction.compare lo hi >= 0 then None
    else
      match split ~lo ~hi with
      | None -> None
      | Some frac -> Some (Ordering.make ~sn:adv.Ordering.sn ~frac)
  in
  let candidate =
    if current.Ordering.sn < adv.Ordering.sn then
      if cached.Ordering.sn < adv.Ordering.sn then
        match Ordering.next adv with
        | Some order -> { order; case = Fresher_next }
        | None -> { order = Ordering.unassigned; case = Infinite }
      else begin
        match split () with
        | Some order -> { order; case = Fresher_split }
        | None -> { order = Ordering.unassigned; case = Infinite }
      end
    else if current.Ordering.sn = adv.Ordering.sn then
      if Ordering.precedes cached current then
        { order = current; case = Keep_current }
      else begin
        match split () with
        | Some order -> { order; case = Equal_split }
        | None -> { order = Ordering.unassigned; case = Infinite }
      end
    else { order = Ordering.unassigned; case = Infinite }
  in
  if
    candidate.case = Infinite
    || maintains_order ~current ~cached ~adv candidate.order
  then candidate
  else { order = Ordering.unassigned; case = Infinite }

let compute ~current ~cached ~adv =
  compute_with ~split:(fun ~lo ~hi -> Fraction.mediant lo hi) ~current ~cached
    ~adv

let filter_successors ~order succs =
  List.filter (fun (_, s) -> Ordering.precedes order s) succs

let pp_case ppf case =
  Format.pp_print_string ppf
    (match case with
    | Infinite -> "Infinite"
    | Fresher_next -> "Fresher_next"
    | Fresher_split -> "Fresher_split"
    | Keep_current -> "Keep_current"
    | Equal_split -> "Equal_split")
