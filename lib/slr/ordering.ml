type t = { sn : int; label : Label.t }

let unassigned = { sn = 0; label = Label.Frac Fraction.one }

let unassigned_of (module L : Label.S) = { sn = 0; label = L.one }

let v ~sn ~label =
  if sn < 0 then invalid_arg "Ordering.v: negative sequence number";
  { sn; label }

let make ~sn ~frac =
  if sn < 0 then invalid_arg "Ordering.make: negative sequence number";
  { sn; label = Label.Frac frac }

let destination ~sn =
  if sn <= 0 then invalid_arg "Ordering.destination: sn must be positive";
  { sn; label = Label.Frac Fraction.zero }

let destination_of (module L : Label.S) ~sn =
  if sn <= 0 then invalid_arg "Ordering.destination_of: sn must be positive";
  { sn; label = L.zero }

let frac t =
  match t.label with
  | Label.Frac f -> f
  | Label.Big _ | Label.Lex _ ->
      invalid_arg "Ordering.frac: not a bounded-fraction label"

let is_finite t = not (Label.is_one t.label)

let is_unassigned t = t.sn = 0 && Label.is_one t.label

let precedes a b =
  a.sn < b.sn || (a.sn = b.sn && Label.compare b.label a.label < 0)

let min a b = if precedes a b then b else a

let equal a b = a.sn = b.sn && Label.equal a.label b.label

let add t f =
  match t.label with
  | Label.Frac tf -> (
      match Fraction.mediant tf f with
      | None -> None
      | Some m -> Some { t with label = Label.Frac m })
  | Label.Big _ | Label.Lex _ ->
      invalid_arg "Ordering.add: not a bounded-fraction label"

let next t = add t Fraction.one

let split_would_overflow a b = Fraction.would_overflow (frac a) (frac b)

let pp ppf t = Format.fprintf ppf "(%d, %a)" t.sn Label.pp t.label

let to_string t = Format.asprintf "%a" pp t
