(* The universal label value: one type inhabited by every dense label set
   the repo implements. Value-level operations (ordering, sentinels, width,
   printing) are intrinsic to the representation and dispatch on the
   constructor; the *generative* operations that distinguish the instances
   (split, next-element, overflow, the solicitation lie) live behind the
   {!S} module type. Bounded-mediant and Farey labels share the [Frac]
   representation — they differ only in how they mint new labels. *)

type t =
  | Frac of Fraction.t
  | Big of Bigfrac.t
  | Lex of Lexlabel.t

let big_of_frac (f : Fraction.t) =
  Bigfrac.of_ints ~num:f.Fraction.num ~den:f.Fraction.den

(* Rational representations promote exactly; lexicographic labels share
   sentinels with nothing, so mixing them is a programming error. *)
let compare a b =
  match (a, b) with
  | Frac x, Frac y -> Fraction.compare x y
  | Big x, Big y -> Bigfrac.compare x y
  | Lex x, Lex y -> Lexlabel.compare x y
  | Frac x, Big y -> Bigfrac.compare (big_of_frac x) y
  | Big x, Frac y -> Bigfrac.compare x (big_of_frac y)
  | (Frac _ | Big _), Lex _ | Lex _, (Frac _ | Big _) ->
      invalid_arg "Label.compare: incomparable label instances"

let equal a b = compare a b = 0

let is_zero = function
  | Frac f -> Fraction.is_zero f
  | Big b -> Bigfrac.is_zero b
  | Lex l -> Lexlabel.equal l Lexlabel.least

let is_one = function
  | Frac f -> Fraction.is_one f
  | Big b -> Bigfrac.is_one b
  | Lex l -> Lexlabel.equal l Lexlabel.top

let int_bits n =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  go n 0

let width_bits = function
  | Frac f -> int_bits f.Fraction.num + int_bits f.Fraction.den
  | Big b -> Bigfrac.width_bits b
  | Lex l -> 8 * Lexlabel.width l

(* Exact numerator/denominator as native ints, for the mediant/Farey
   back-compat surfaces (trace num/den members, the max-denominator
   gauge). [None] for the unbounded and lexicographic representations. *)
let to_ints = function
  | Frac f -> Some (f.Fraction.num, f.Fraction.den)
  | Big _ | Lex _ -> None

let pp ppf = function
  | Frac f -> Fraction.pp ppf f
  | Big b -> Bigfrac.pp ppf b
  | Lex l -> Lexlabel.pp ppf l

let encode = function
  | Frac f -> Printf.sprintf "%d/%d" f.Fraction.num f.Fraction.den
  | Big b ->
      Printf.sprintf "%s/%s"
        (Bignat.to_string b.Bigfrac.num)
        (Bignat.to_string b.Bigfrac.den)
  | Lex l -> (
      match l with
      | Lexlabel.Top -> "top"
      | Lexlabel.Key "" -> "least"
      | Lexlabel.Key s ->
          let buf = Buffer.create (2 + (2 * String.length s)) in
          Buffer.add_string buf "0x";
          String.iter
            (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
            s;
          Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* The abstract label-set interface *)

module type S = sig
  val name : string

  (** Least element — the destination's own label. *)
  val zero : t

  (** Greatest element — the unassigned sentinel. *)
  val one : t

  val compare : t -> t -> int

  (** Next-element operator (Eq. 2): a label strictly greater than the
      argument; [None] on overflow or for the greatest element. *)
  val next : t -> t option

  (** [split ~lo ~hi] mints a label strictly inside ([lo], [hi]) —
      Algorithm 1 lines 7/12. Requires [lo < hi]; [None] when the set
      cannot represent one (overflow). *)
  val split : lo:t -> hi:t -> t option

  (** Eq. 11's reset-required test: no representable label lies strictly
      between the two (order of arguments irrelevant). *)
  val would_overflow : t -> t -> bool

  (** The §V solicitation lie: a label slightly below the argument so only
      strictly better-ordered nodes reply. Must never reach {!zero};
      returns the argument unchanged when it cannot be lowered. *)
  val understate : k:int -> t -> t

  (** MAX_DENOM-style width threshold triggering a D-bit probe reset.
      Unbounded sets never reset. *)
  val over_reset_threshold : max_denom:int -> t -> bool

  val width_bits : t -> int
  val encode : t -> string
  val pp : Format.formatter -> t -> unit
end

(* The mediant/Farey lie on the fraction representation, hoisted verbatim
   from SRP's [lie_about] so the default instance stays bit-identical. *)
let understate_frac ~k f =
  if Fraction.is_one f || Fraction.is_zero f then f
  else begin
    let p = f.Fraction.num and q = f.Fraction.den in
    let num, den =
      if p > 1 then (p - 1, q - 1)
      else if (q * k) - 1 <= Fraction.bound then ((p * k) - 1, (q * k) - 1)
      else (p, q)
    in
    if num < 1 then f else Fraction.make ~num ~den
  end

let frac_op name op l =
  match l with
  | Frac f -> op f
  | Big _ | Lex _ -> invalid_arg (name ^ ": expects a bounded fraction label")

module Mediant = struct
  let name = "mediant"
  let zero = Frac Fraction.zero
  let one = Frac Fraction.one
  let compare = compare

  let next l =
    frac_op "Label.Mediant.next"
      (fun f -> Option.map (fun f' -> Frac f') (Fraction.next f))
      l

  let split ~lo ~hi =
    match (lo, hi) with
    | Frac a, Frac b -> Option.map (fun f -> Frac f) (Fraction.mediant a b)
    | _ -> invalid_arg "Label.Mediant.split: expects bounded fraction labels"

  let would_overflow a b =
    match (a, b) with
    | Frac x, Frac y -> Fraction.would_overflow x y
    | _ ->
        invalid_arg "Label.Mediant.would_overflow: expects bounded fractions"

  let understate ~k l =
    frac_op "Label.Mediant.understate" (fun f -> Frac (understate_frac ~k f)) l

  let over_reset_threshold ~max_denom l =
    frac_op "Label.Mediant.over_reset_threshold"
      (fun f -> f.Fraction.den > max_denom)
      l

  let width_bits = width_bits
  let encode = encode
  let pp = pp
end

module Farey = struct
  let name = "farey"
  let zero = Frac Fraction.zero
  let one = Frac Fraction.one
  let compare = compare

  (* minimal-denominator next element: the simplest fraction above [f] *)
  let next l =
    frac_op "Label.Farey.next"
      (fun f ->
        if Fraction.is_one f then None
        else
          Option.map
            (fun f' -> Frac f')
            (Farey.simplest_between ~lo:f ~hi:Fraction.one))
      l

  let split ~lo ~hi =
    match (lo, hi) with
    | Frac a, Frac b ->
        Option.map (fun f -> Frac f) (Farey.simplest_between ~lo:a ~hi:b)
    | _ -> invalid_arg "Label.Farey.split: expects bounded fraction labels"

  (* Eq. 11 asks whether the label space is exhausted between the two: an
     equal pair is not exhaustion (every instance degrades it to the
     infinite ordering in {!New_order} instead), so — like the mediant's
     arithmetic test — it does not raise the T bit. *)
  let would_overflow a b =
    match (a, b) with
    | Frac x, Frac y ->
        let c = Fraction.compare x y in
        c <> 0
        &&
        let lo, hi = if c < 0 then (x, y) else (y, x) in
        Farey.simplest_between ~lo ~hi = None
    | _ -> invalid_arg "Label.Farey.would_overflow: expects bounded fractions"

  let understate ~k l =
    frac_op "Label.Farey.understate" (fun f -> Frac (understate_frac ~k f)) l

  let over_reset_threshold ~max_denom l =
    frac_op "Label.Farey.over_reset_threshold"
      (fun f -> f.Fraction.den > max_denom)
      l

  let width_bits = width_bits
  let encode = encode
  let pp = pp
end

module Bigfrac_set = struct
  let name = "bigfrac"
  let zero = Big Bigfrac.zero
  let one = Big Bigfrac.one
  let compare = compare

  let as_big = function
    | Big b -> b
    | Frac f -> big_of_frac f
    | Lex _ -> invalid_arg "Label.Bigfrac: expects a rational label"

  let next l = Option.map (fun b -> Big b) (Bigfrac.next (as_big l))

  let split ~lo ~hi =
    let a = as_big lo and b = as_big hi in
    if Bigfrac.compare a b >= 0 then None else Some (Big (Bigfrac.mediant a b))

  (* truly dense: a label always exists strictly between distinct labels,
     so the T bit (label-space exhaustion, Eq. 11) never rises *)
  let would_overflow a b =
    ignore (as_big a);
    ignore (as_big b);
    false

  let understate ~k l =
    let b = as_big l in
    if Bigfrac.is_one b || Bigfrac.is_zero b then l
    else begin
      let p = b.Bigfrac.num and q = b.Bigfrac.den in
      let num, den =
        if Bignat.compare p Bignat.one > 0 then
          (Bignat.sub p Bignat.one, Bignat.sub q Bignat.one)
        else
          let kn = Bignat.of_int k in
          (Bignat.sub (Bignat.mul p kn) Bignat.one,
           Bignat.sub (Bignat.mul q kn) Bignat.one)
      in
      if Bignat.is_zero num then l else Big (Bigfrac.make ~num ~den)
    end

  let over_reset_threshold ~max_denom:_ _ = false
  let width_bits = width_bits
  let encode = encode
  let pp = pp
end

module Lex = struct
  let name = "lex"
  let zero = Lex Lexlabel.least
  let one = Lex Lexlabel.top
  let compare = compare

  let as_lex = function
    | Lex l -> l
    | Frac _ | Big _ -> invalid_arg "Label.Lex: expects a string label"

  let next l = Option.map (fun x -> Lex x) (Lexlabel.next (as_lex l))

  let split ~lo ~hi =
    let a = as_lex lo and b = as_lex hi in
    if Lexlabel.compare a b >= 0 then None
    else Option.map (fun x -> Lex x) (Lexlabel.between ~lo:a ~hi:b)

  (* a strictly-between string always exists: exhaustion never happens *)
  let would_overflow a b =
    ignore (as_lex a);
    ignore (as_lex b);
    false

  (* Lower the last byte when it stays positive, otherwise drop the
     trailing minimal digit; strip the trailing NULs that dropping can
     expose. Refuse to reach the least label (the destination's). *)
  let understate ~k:_ l =
    match as_lex l with
    | Lexlabel.Top -> l
    | Lexlabel.Key "" -> l
    | Lexlabel.Key s ->
        let n = String.length s in
        let c = Char.code s.[n - 1] in
        let lowered =
          if c >= 2 then String.sub s 0 (n - 1) ^ String.make 1 (Char.chr (c - 1))
          else begin
            let stop = ref (n - 1) in
            while !stop > 0 && s.[!stop - 1] = '\000' do
              decr stop
            done;
            String.sub s 0 !stop
          end
        in
        if lowered = "" then l else Lex (Lexlabel.of_string lowered)

  let over_reset_threshold ~max_denom:_ _ = false
  let width_bits = width_bits
  let encode = encode
  let pp = pp
end
