(** Arbitrary-precision natural numbers (hand-rolled; zarith is not available
    in this environment). Just enough arithmetic for unbounded proper-fraction
    labels: addition, multiplication, comparison, and decimal conversion. *)

type t

val zero : t

val one : t

(** @raise Invalid_argument on negative input. *)
val of_int : int -> t

(** [to_int t] is [Some n] when the value fits in a native [int]. *)
val to_int : t -> int option

val add : t -> t -> t

(** Truncating subtraction is not offered: [sub a b] requires [a >= b].
    @raise Invalid_argument when the difference would be negative. *)
val sub : t -> t -> t

val mul : t -> t -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val is_zero : t -> bool

(** Number of significant bits (0 for zero). *)
val bits : t -> int

(** Decimal string. *)
val to_string : t -> string

(** Parse a decimal string. @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
