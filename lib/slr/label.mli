(** The dense label value and the abstract label-set interface (paper §II,
    §VI).

    SLR needs only an ordered dense set with least and greatest sentinels;
    the concrete choice trades label width against path-reset frequency.
    {!t} is the universal value type: every instance's labels inhabit it, so
    one {!Ordering.t} (and one SRP message format) works for all instances.
    Value-level operations — ordering, sentinel tests, width, printing —
    dispatch on the representation; the generative operations that
    distinguish the instances (minting a label between or above others, the
    overflow test, the solicitation lie) live behind the {!S} module type,
    with four conforming instances:

    - {!Mediant}: bounded 32-bit fractions split by the mediant (Eq. 1) —
      the paper's SRP, and the repo default;
    - {!Farey}: the same representation, split by minimal-denominator
      Stern–Brocot interpolation (the §VI future-work extension);
    - {!Bigfrac_set}: unbounded fractions — no resets ever, unbounded width;
    - {!Lex}: lexicographic byte strings — dense, cheap ordering, one byte
      of growth per worst-case split.

    The two rational representations compare exactly against each other;
    comparing either against a lexicographic label is a programming error
    (instances are never mixed within a run — the registry hands the whole
    stack one instance). *)

type t =
  | Frac of Fraction.t  (** bounded mediant / Farey representation *)
  | Big of Bigfrac.t  (** unbounded fraction *)
  | Lex of Lexlabel.t  (** lexicographic byte string *)

(** Exact order. Rational representations promote; mixing a rational with a
    lexicographic label raises [Invalid_argument]. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Least element of its instance (the destination's label). *)
val is_zero : t -> bool

(** Greatest element of its instance (the unassigned sentinel). *)
val is_one : t -> bool

(** Total encoded label width in bits — numerator plus denominator bit
    length for rationals, [8 * bytes] for strings. The growth measure the
    paper trades against path resets. *)
val width_bits : t -> int

(** Native-int numerator/denominator for bounded-fraction labels; [None]
    for the unbounded and lexicographic representations. Back-compat
    surface for the trace [num]/[den] members and the max-denominator
    gauge. *)
val to_ints : t -> (int * int) option

(** Compact, instance-unambiguous string form ("3/5", "0x80a1", "top"),
    used by the trace encoding. *)
val encode : t -> string

val pp : Format.formatter -> t -> unit

(** The abstract label set: what {!New_order} and SRP program against. *)
module type S = sig
  val name : string

  (** Least element — the destination's own label. *)
  val zero : t

  (** Greatest element — the unassigned sentinel. *)
  val one : t

  val compare : t -> t -> int

  (** Next-element operator (Eq. 2): a label strictly greater than the
      argument; [None] on overflow or for the greatest element. *)
  val next : t -> t option

  (** [split ~lo ~hi] mints a label strictly inside ([lo], [hi]) —
      Algorithm 1 lines 7/12. Requires [lo < hi]; [None] when the set
      cannot represent one (overflow). *)
  val split : lo:t -> hi:t -> t option

  (** Eq. 11's reset-required test: the label space is exhausted between
      the two — a split of the (non-degenerate) gap would be
      unrepresentable. Argument order is irrelevant, and an equal pair is
      [false]: degenerate gaps are resolved by {!New_order} degrading to
      the infinite ordering, not by resets, for every instance (this
      mirrors the mediant's arithmetic test, which an equal small pair
      never trips). Truly dense instances are constantly [false]. *)
  val would_overflow : t -> t -> bool

  (** The §V solicitation lie: a label slightly below the argument so only
      strictly better-ordered nodes reply. Must never reach {!zero};
      returns the argument unchanged when it cannot be lowered. *)
  val understate : k:int -> t -> t

  (** MAX_DENOM-style width threshold triggering a D-bit probe reset.
      Unbounded sets never reset. *)
  val over_reset_threshold : max_denom:int -> t -> bool

  val width_bits : t -> int
  val encode : t -> string
  val pp : Format.formatter -> t -> unit
end

module Mediant : S
module Farey : S
module Bigfrac_set : S
module Lex : S
