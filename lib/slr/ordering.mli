(** SRP's composite node label [O = (sn, F)] — a destination-controlled
    sequence number paired with a feasible-distance label drawn from a
    dense {!Label} set (paper §III, Definitions 4–7).

    The Ordering Criteria (Definition 5) give a strict partial order [⊑]:
    [precedes a b] (written "a ⊑ b") holds iff [sn a < sn b], or the sequence
    numbers are equal and [label b < label a]. It reads "b is a feasible
    in-order successor for a": a fresher sequence number, or a smaller
    label at the same freshness, is closer to the destination.

    The fraction-named helpers ({!make}, {!frac}, {!add}, {!next},
    {!split_would_overflow}, {!unassigned}, {!destination}) are the
    bounded-mediant back-compat surface; instance-generic code uses {!v},
    {!unassigned_of} and {!destination_of} with a first-class
    {!Label.S}. *)

type t = { sn : int; label : Label.t }

(** The maximum ordering [(0, 1/1)] of the default bounded-fraction
    instance — the label of an unassigned node (Definition 5). *)
val unassigned : t

(** The unassigned sentinel [(0, one)] of an arbitrary instance. *)
val unassigned_of : (module Label.S) -> t

(** [v ~sn ~label] with [sn >= 0]. @raise Invalid_argument otherwise. *)
val v : sn:int -> label:Label.t -> t

(** [make ~sn ~frac] wraps a bounded fraction; [sn >= 0].
    @raise Invalid_argument otherwise. *)
val make : sn:int -> frac:Fraction.t -> t

(** A destination's label for itself in the default instance:
    [(sn, 0/1)] (Definition 7); [sn] must be non-zero.
    @raise Invalid_argument otherwise. *)
val destination : sn:int -> t

(** The destination label [(sn, zero)] of an arbitrary instance. *)
val destination_of : (module Label.S) -> sn:int -> t

(** The bounded fraction inside a default-instance ordering.
    @raise Invalid_argument on unbounded or lexicographic labels. *)
val frac : t -> Fraction.t

(** Finite iff the label is strictly below its set's greatest element
    (Definition 5). *)
val is_finite : t -> bool

val is_unassigned : t -> bool

(** [precedes a b] is the OC relation [a ⊑ b] of Definition 5. Strict and
    partial: [precedes a a = false], and labels equal in both components are
    incomparable. *)
val precedes : t -> t -> bool

(** [min a b] is [b] when [a ⊑ b], else [a] (Definition 5). *)
val min : t -> t -> t

(** Structural equality of both components. *)
val equal : t -> t -> bool

(** [add t f] is Definition 6's ordering addition [(sn, mediant(frac, f))];
    [None] when a component would overflow 32 bits. Requires [t] finite and
    fraction-labelled. *)
val add : t -> Fraction.t -> t option

(** [next t] is [t + 1/1], the next-element used by Theorem 5 and
    Algorithm 1 line 5; [None] on overflow. Bounded fractions only. *)
val next : t -> t option

(** [split_would_overflow a b] mirrors Eq. 11's overflow test for the
    mediant instance: [true] when the fraction mediant of [a] and [b]
    cannot be represented. *)
val split_would_overflow : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
