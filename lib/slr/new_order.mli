(** Algorithm 1 of the paper: NEWORDER — compute a node's new label from a
    feasible advertisement and the cached minimum predecessor ordering of the
    corresponding solicitation.

    Inputs (paper notation): [current] is [O_A^T], [cached] is [C_A^?] (use
    {!Ordering.unassigned} when there is no cached solicitation — RREQ/Hello
    advertisements or the terminus of a RREP), [adv] is [O_?^T].

    The result either maintains order (Theorem 6) or is the infinite
    ordering [(0, (1,1))], which the caller must treat as "drop the
    advertisement" (Procedure 3). *)

(** Outcome of NEWORDER, plus which line of Algorithm 1 produced it
    (exposed so tests can pin the case analysis of Theorem 6). *)
type result = {
  order : Ordering.t;  (** the new label [G_A^T]; infinite when rejected *)
  case : case;
}

and case =
  | Infinite  (** line 2 falls through: stale seqno or fraction overflow *)
  | Fresher_next  (** line 5: [adv + 1/1], both seqnos below [adv]'s *)
  | Fresher_split  (** line 7: split cached fraction with [adv]'s *)
  | Keep_current  (** line 10: current label already satisfies Eq. 4 *)
  | Equal_split  (** line 12: split at equal sequence numbers *)

val compute :
  current:Ordering.t -> cached:Ordering.t -> adv:Ordering.t -> result

(** Like {!compute}, generic over the label set: [labels] supplies the
    next-element of line 5 and the interpolation of lines 7 and 12. The
    default instance is {!Label.Mediant} (Eq. 1); {!Label.Farey} yields
    minimal-denominator labels — the fraction-reduction extension the paper
    sketches as future work (§VI) — and {!Label.Bigfrac_set}/{!Label.Lex}
    never overflow. *)
val compute_with :
  labels:(module Label.S) ->
  current:Ordering.t ->
  cached:Ordering.t ->
  adv:Ordering.t ->
  result

(** [feasible ~current ~adv] is the Procedure 3 admission check: the
    advertisement's label must be a feasible in-order successor label for
    the node ([current ⊑ adv], Theorem 2 / Eq. 5). *)
val feasible : current:Ordering.t -> adv:Ordering.t -> bool

(** [maintains_order ~current ~cached ~adv g] checks Eqs. 3–5 of
    Definition 1 for a candidate label: [g <= current] (labels
    non-increasing), [g] strictly below the cached solicitation minimum,
    and strictly above the advertisement. {!compute} validates its own
    result with this, so Theorem 6 holds for {e arbitrary} inputs, not just
    ones satisfying Lemma 1's protocol invariants (stale or reordered
    packets violate them). *)
val maintains_order :
  current:Ordering.t -> cached:Ordering.t -> adv:Ordering.t -> Ordering.t -> bool

(** Prints the constructor name, for counterexample reports. *)
val pp_case : Format.formatter -> case -> unit

(** [filter_successors ~order succs] drops successors that are no longer
    in-order after adopting [order] (Algorithm 1 line 13): keeps [s] iff
    [order ⊑ s]. *)
val filter_successors :
  order:Ordering.t -> ('a * Ordering.t) list -> ('a * Ordering.t) list
