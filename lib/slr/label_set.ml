type id = Mediant | Farey | Bigfrac | Lex

let all = [ Mediant; Farey; Bigfrac; Lex ]

let default = Mediant

let name = function
  | Mediant -> "mediant"
  | Farey -> "farey"
  | Bigfrac -> "bigfrac"
  | Lex -> "lex"

let of_name = function
  | "mediant" -> Some Mediant
  | "farey" -> Some Farey
  | "bigfrac" -> Some Bigfrac
  | "lex" -> Some Lex
  | _ -> None

let instance : id -> (module Label.S) = function
  | Mediant -> (module Label.Mediant)
  | Farey -> (module Label.Farey)
  | Bigfrac -> (module Label.Bigfrac_set)
  | Lex -> (module Label.Lex)

let of_string s =
  match of_name s with
  | Some id -> instance id
  | None ->
      invalid_arg
        (Printf.sprintf "Label_set.of_string: unknown label set %S (expected %s)"
           s
           (String.concat "|" (List.map name all)))
