(** Registry of the four dense label-set instances, keyed by the names the
    CLI accepts ([--labels mediant|farey|bigfrac|lex]).

    {!id} is the plain enumeration carried in configuration records and
    serialised into campaign JSON; {!instance} resolves it to the
    first-class module the protocol stack programs against. *)

type id = Mediant | Farey | Bigfrac | Lex

val all : id list

(** {!Mediant} — the paper's SRP label set. *)
val default : id

val name : id -> string

val of_name : string -> id option

val instance : id -> (module Label.S)

(** [of_string s] resolves a CLI name directly to its instance.
    @raise Invalid_argument on an unknown name. *)
val of_string : string -> (module Label.S)
