(** Deterministic sabotage of one campaign cell — the test harness for
    {!Supervisor}. A spec names a [(protocol, pause, trial)] cell and a
    failure mode; when the experiment runner reaches that cell it raises
    (crash) or spins until the cell's deadline fires (hang) instead of
    simulating. Gated behind an explicit CLI flag ([--sabotage]) or the
    [MANET_SABOTAGE] environment variable; inert otherwise.

    Spec syntax: [MODE:PROTOCOL:PAUSE:TRIAL[@FAILS]] — e.g.
    [crash:AODV:0:1] (cell always crashes), [hang:DSR:50:0] (cell spins
    until its timeout), [crash:SRP:0:0@1] (only the first attempt fails,
    so one retry heals it). [FAILS] defaults to every attempt. *)

type mode = Crash | Hang

type t = {
  mode : mode;
  protocol : Config.protocol;
  pause : float;  (** nominal (unscaled) pause time of the target cell *)
  trial : int;
  fails : int;  (** number of leading attempts to sabotage *)
}

val of_string : string -> (t, string) result

val to_string : t -> string

(** [MANET_SABOTAGE], parsed; [None] when unset.
    @raise Invalid_argument on a malformed spec (fail loudly, not silently
    un-sabotaged). *)
val from_env : unit -> t option

(** [arm spec ~protocol ~pause ~trial ~attempt ~deadline] does nothing
    unless [spec] targets this cell and [attempt <= fails]; then it raises
    [Failure] (crash) or loops on {!Supervisor.check_deadline} (hang —
    which therefore raises {!Supervisor.Timeout} once the deadline passes,
    and spins forever when no cell timeout is configured, exactly like a
    genuinely wedged cell). *)
val arm :
  t option ->
  protocol:Config.protocol ->
  pause:float ->
  trial:int ->
  attempt:int ->
  deadline:float option ->
  unit
