type protocol = Srp | Ldr | Aodv | Dsr | Olsr

let all_protocols = [ Srp; Ldr; Aodv; Dsr; Olsr ]

let protocol_name = function
  | Srp -> "SRP"
  | Ldr -> "LDR"
  | Aodv -> "AODV"
  | Dsr -> "DSR"
  | Olsr -> "OLSR"

let fig7_protocols = [ Srp; Ldr; Aodv ]

type t = {
  protocol : protocol;
  nodes : int;
  terrain : Wireless.Terrain.t;
  radio : Wireless.Radio.t;
  pause : float;
  speed_min : float;
  speed_max : float;
  duration : float;
  traffic_start : float;
  flows : int;
  flow_mean_duration : float;
  packet_rate : float;
  packet_size : int;
  seed : int;
  faults : Faults.Spec.t;
  srp : Protocols.Srp.config;
  aodv : Protocols.Aodv.config;
  ldr : Protocols.Ldr.config;
  dsr : Protocols.Dsr.config;
  olsr : Protocols.Olsr.config;
}

let paper =
  {
    protocol = Srp;
    nodes = 100;
    terrain = Wireless.Terrain.paper;
    radio = Wireless.Radio.default;
    pause = 0.0;
    speed_min = 0.5;
    speed_max = 20.0;
    duration = 900.0;
    traffic_start = 15.0;
    flows = 30;
    flow_mean_duration = 60.0;
    packet_rate = 4.0;
    packet_size = 512;
    seed = 1;
    faults = Faults.Spec.none;
    srp = Protocols.Srp.default_config;
    aodv = Protocols.Aodv.default_config;
    ldr = Protocols.Ldr.default_config;
    dsr = Protocols.Dsr.default_config;
    olsr = Protocols.Olsr.default_config;
  }

let reproduction = { paper with flows = 12 }

let small =
  {
    paper with
    nodes = 50;
    terrain = Wireless.Terrain.make ~width:1500.0 ~height:400.0;
    duration = 120.0;
    flows = 15;
  }

let paper_pause_times = [ 0.0; 50.0; 100.0; 200.0; 300.0; 500.0; 700.0; 900.0 ]

let with_protocol t protocol = { t with protocol }

let with_pause t pause = { t with pause }

let with_seed t seed = { t with seed }

let with_faults t faults = { t with faults }
