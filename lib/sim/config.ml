type protocol = Srp | Ldr | Aodv | Dsr | Olsr

let all_protocols = [ Srp; Ldr; Aodv; Dsr; Olsr ]

let protocol_name = function
  | Srp -> "SRP"
  | Ldr -> "LDR"
  | Aodv -> "AODV"
  | Dsr -> "DSR"
  | Olsr -> "OLSR"

let protocol_of_name s =
  match String.uppercase_ascii s with
  | "SRP" -> Some Srp
  | "LDR" -> Some Ldr
  | "AODV" -> Some Aodv
  | "DSR" -> Some Dsr
  | "OLSR" -> Some Olsr
  | _ -> None

let fig7_protocols = [ Srp; Ldr; Aodv ]

type channel = Grid | Naive

let channel_name = function Grid -> "grid" | Naive -> "naive"

let channel_of_name s =
  match String.lowercase_ascii s with
  | "grid" -> Some Grid
  | "naive" -> Some Naive
  | _ -> None

type t = {
  protocol : protocol;
  nodes : int;
  terrain : Wireless.Terrain.t;
  radio : Wireless.Radio.t;
  pause : float;
  speed_min : float;
  speed_max : float;
  duration : float;
  traffic_start : float;
  flows : int;
  flow_mean_duration : float;
  packet_rate : float;
  packet_size : int;
  seed : int;
  faults : Faults.Spec.t;
  channel : channel;
  mobility : Wireless.Mobility.id;
  traffic : Traffic.Model.id;
  srp : Protocols.Srp.config;
  aodv : Protocols.Aodv.config;
  ldr : Protocols.Ldr.config;
  dsr : Protocols.Dsr.config;
  olsr : Protocols.Olsr.config;
}

let paper =
  {
    protocol = Srp;
    nodes = 100;
    terrain = Wireless.Terrain.paper;
    radio = Wireless.Radio.default;
    pause = 0.0;
    speed_min = 0.5;
    speed_max = 20.0;
    duration = 900.0;
    traffic_start = 15.0;
    flows = 30;
    flow_mean_duration = 60.0;
    packet_rate = 4.0;
    packet_size = 512;
    seed = 1;
    faults = Faults.Spec.none;
    channel = Grid;
    mobility = Wireless.Mobility.default;
    traffic = Traffic.Model.default;
    srp = Protocols.Srp.default_config;
    aodv = Protocols.Aodv.default_config;
    ldr = Protocols.Ldr.default_config;
    dsr = Protocols.Dsr.default_config;
    olsr = Protocols.Olsr.default_config;
  }

let reproduction = { paper with flows = 12 }

let small =
  {
    paper with
    nodes = 50;
    terrain = Wireless.Terrain.make ~width:1500.0 ~height:400.0;
    duration = 120.0;
    flows = 15;
  }

let paper_pause_times = [ 0.0; 50.0; 100.0; 200.0; 300.0; 500.0; 700.0; 900.0 ]

(* --scale presets: node count x terrain side x flow count, holding the
   paper's node density (100 nodes on 2200 m x 600 m = one node per
   13,200 m^2) and this reproduction's offered load (12 flows per 100
   nodes, the calibrated near-saturation regime) constant. Terrains above
   the paper's are square: at city scale the 2200x600 corridor shape stops
   mattering and a square keeps the hop diameter growing as sqrt(n). *)
type scale = {
  scale_name : string;
  scale_nodes : int;
  scale_terrain : Wireless.Terrain.t;
  scale_flows : int;
}

let scales =
  [
    {
      scale_name = "100";
      scale_nodes = 100;
      scale_terrain = Wireless.Terrain.paper;
      scale_flows = 12;
    };
    {
      scale_name = "1k";
      scale_nodes = 1000;
      (* sqrt(1000 * 13,200) = 3633 m *)
      scale_terrain = Wireless.Terrain.make ~width:3633.0 ~height:3633.0;
      scale_flows = 120;
    };
    {
      scale_name = "5k";
      scale_nodes = 5000;
      (* sqrt(5000 * 13,200) = 8124 m *)
      scale_terrain = Wireless.Terrain.make ~width:8124.0 ~height:8124.0;
      scale_flows = 600;
    };
  ]

let scale_names = List.map (fun s -> s.scale_name) scales

let scale_of_name name =
  List.find_opt (fun s -> s.scale_name = name) scales

let apply_scale s t =
  {
    t with
    nodes = s.scale_nodes;
    terrain = s.scale_terrain;
    flows = s.scale_flows;
  }

let to_json (t : t) =
  let module J = Trace.Json in
  J.Obj
    ([
      ("protocol", J.String (protocol_name t.protocol));
      ("nodes", J.Int t.nodes);
      ("terrain_width", J.Float t.terrain.Wireless.Terrain.width);
      ("terrain_height", J.Float t.terrain.Wireless.Terrain.height);
      ("radio_range", J.Float t.radio.Wireless.Radio.range);
      ("radio_bitrate", J.Float t.radio.Wireless.Radio.bitrate);
      ("pause", J.Float t.pause);
      ("speed_min", J.Float t.speed_min);
      ("speed_max", J.Float t.speed_max);
      ("duration", J.Float t.duration);
      ("traffic_start", J.Float t.traffic_start);
      ("flows", J.Int t.flows);
      ("flow_mean_duration", J.Float t.flow_mean_duration);
      ("packet_rate", J.Float t.packet_rate);
      ("packet_size", J.Int t.packet_size);
      ("seed", J.Int t.seed);
      ("faults", J.Bool (not (Faults.Spec.is_none t.faults)));
    ]
    (* conditional members: default-instance exports stay byte-identical *)
    @ (if t.srp.Protocols.Srp.labels = Slr.Label_set.default then []
       else
         [ ("labels", J.String (Slr.Label_set.name t.srp.Protocols.Srp.labels)) ])
    @ (if t.channel = Grid then []
       else [ ("channel", J.String (channel_name t.channel)) ])
    @ (if t.mobility = Wireless.Mobility.default then []
       else [ ("mobility", J.String (Wireless.Mobility.name t.mobility)) ])
    @
    if t.traffic = Traffic.Model.default then []
    else [ ("traffic", J.String (Traffic.Model.name t.traffic)) ])

let with_protocol t protocol = { t with protocol }

let labels t = t.srp.Protocols.Srp.labels

let with_labels t labels =
  { t with srp = { t.srp with Protocols.Srp.labels } }

let with_pause t pause = { t with pause }

let with_seed t seed = { t with seed }

let with_faults t faults = { t with faults }

let with_channel t channel = { t with channel }

let with_mobility t mobility = { t with mobility }

let with_traffic t traffic = { t with traffic }
