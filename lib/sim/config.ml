type protocol = Srp | Ldr | Aodv | Dsr | Olsr

let all_protocols = [ Srp; Ldr; Aodv; Dsr; Olsr ]

let protocol_name = function
  | Srp -> "SRP"
  | Ldr -> "LDR"
  | Aodv -> "AODV"
  | Dsr -> "DSR"
  | Olsr -> "OLSR"

let protocol_of_name s =
  match String.uppercase_ascii s with
  | "SRP" -> Some Srp
  | "LDR" -> Some Ldr
  | "AODV" -> Some Aodv
  | "DSR" -> Some Dsr
  | "OLSR" -> Some Olsr
  | _ -> None

let fig7_protocols = [ Srp; Ldr; Aodv ]

type t = {
  protocol : protocol;
  nodes : int;
  terrain : Wireless.Terrain.t;
  radio : Wireless.Radio.t;
  pause : float;
  speed_min : float;
  speed_max : float;
  duration : float;
  traffic_start : float;
  flows : int;
  flow_mean_duration : float;
  packet_rate : float;
  packet_size : int;
  seed : int;
  faults : Faults.Spec.t;
  mobility : Wireless.Mobility.id;
  traffic : Traffic.Model.id;
  srp : Protocols.Srp.config;
  aodv : Protocols.Aodv.config;
  ldr : Protocols.Ldr.config;
  dsr : Protocols.Dsr.config;
  olsr : Protocols.Olsr.config;
}

let paper =
  {
    protocol = Srp;
    nodes = 100;
    terrain = Wireless.Terrain.paper;
    radio = Wireless.Radio.default;
    pause = 0.0;
    speed_min = 0.5;
    speed_max = 20.0;
    duration = 900.0;
    traffic_start = 15.0;
    flows = 30;
    flow_mean_duration = 60.0;
    packet_rate = 4.0;
    packet_size = 512;
    seed = 1;
    faults = Faults.Spec.none;
    mobility = Wireless.Mobility.default;
    traffic = Traffic.Model.default;
    srp = Protocols.Srp.default_config;
    aodv = Protocols.Aodv.default_config;
    ldr = Protocols.Ldr.default_config;
    dsr = Protocols.Dsr.default_config;
    olsr = Protocols.Olsr.default_config;
  }

let reproduction = { paper with flows = 12 }

let small =
  {
    paper with
    nodes = 50;
    terrain = Wireless.Terrain.make ~width:1500.0 ~height:400.0;
    duration = 120.0;
    flows = 15;
  }

let paper_pause_times = [ 0.0; 50.0; 100.0; 200.0; 300.0; 500.0; 700.0; 900.0 ]

let to_json (t : t) =
  let module J = Trace.Json in
  J.Obj
    ([
      ("protocol", J.String (protocol_name t.protocol));
      ("nodes", J.Int t.nodes);
      ("terrain_width", J.Float t.terrain.Wireless.Terrain.width);
      ("terrain_height", J.Float t.terrain.Wireless.Terrain.height);
      ("radio_range", J.Float t.radio.Wireless.Radio.range);
      ("radio_bitrate", J.Float t.radio.Wireless.Radio.bitrate);
      ("pause", J.Float t.pause);
      ("speed_min", J.Float t.speed_min);
      ("speed_max", J.Float t.speed_max);
      ("duration", J.Float t.duration);
      ("traffic_start", J.Float t.traffic_start);
      ("flows", J.Int t.flows);
      ("flow_mean_duration", J.Float t.flow_mean_duration);
      ("packet_rate", J.Float t.packet_rate);
      ("packet_size", J.Int t.packet_size);
      ("seed", J.Int t.seed);
      ("faults", J.Bool (not (Faults.Spec.is_none t.faults)));
    ]
    (* conditional members: default-instance exports stay byte-identical *)
    @ (if t.srp.Protocols.Srp.labels = Slr.Label_set.default then []
       else
         [ ("labels", J.String (Slr.Label_set.name t.srp.Protocols.Srp.labels)) ])
    @ (if t.mobility = Wireless.Mobility.default then []
       else [ ("mobility", J.String (Wireless.Mobility.name t.mobility)) ])
    @
    if t.traffic = Traffic.Model.default then []
    else [ ("traffic", J.String (Traffic.Model.name t.traffic)) ])

let with_protocol t protocol = { t with protocol }

let labels t = t.srp.Protocols.Srp.labels

let with_labels t labels =
  { t with srp = { t.srp with Protocols.Srp.labels } }

let with_pause t pause = { t with pause }

let with_seed t seed = { t with seed }

let with_faults t faults = { t with faults }

let with_mobility t mobility = { t with mobility }

let with_traffic t traffic = { t with traffic }
