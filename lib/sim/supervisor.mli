(** Supervised campaign execution on top of {!Pool}: crash isolation,
    per-cell wall-clock timeouts, bounded retries with deterministic
    backoff, and quarantine.

    {!Pool.map} re-raises the first worker exception and discards every
    other result — one wedged or crashing cell poisons a whole sweep.
    [Supervisor.map] instead resolves every cell to
    [Ok result | Error failure]: an exception (or a cell overrunning its
    wall-clock budget) marks {e that cell} failed with its captured
    backtrace, is retried up to [retries] more times with exponential
    backoff, and is quarantined once attempts are exhausted. The sweep
    always completes; with [fail_fast] the pre-supervision semantics —
    abort the whole sweep on the first failure — are restored.

    Timeouts are cooperative: the supervisor computes an absolute
    wall-clock deadline per attempt and hands it to the cell runner, which
    is expected to call {!check_deadline} periodically (the simulation
    engine does, from its event-loop watchdog, every few thousand events).
    No domain is ever killed, so a cell blocked in a foreign call is not
    interruptible — but every cell of this simulator is a pure event loop,
    which the watchdog covers. *)

(** Raised by {!check_deadline} when the attempt's budget is exhausted. *)
exception Timeout

(** [check_deadline deadline] raises {!Timeout} when [deadline] is
    [Some d] and the wall clock is past [d]; no-op otherwise. *)
val check_deadline : float option -> unit

type policy = {
  cell_timeout : float;
      (** wall-clock seconds per attempt; [<= 0.] disables the deadline *)
  retries : int;  (** extra attempts after the first failure *)
  backoff : float;
      (** base pause before retry [k]: [backoff *. 2. ** (k - 1)] seconds —
          deterministic, no jitter *)
  fail_fast : bool;
      (** re-raise the first failure (as {!Pool.Cell_error}) instead of
          isolating it — the pre-supervision behaviour *)
}

(** Supervised defaults: no timeout, one retry, 0.25 s backoff base. *)
val default : policy

(** The legacy semantics: no retries, first failure aborts the sweep. *)
val fail_fast : policy

(** Why a cell was quarantined. [error] and [backtrace] describe the last
    attempt; [timed_out] is true when that attempt hit its deadline. *)
type failure = {
  attempts : int;
  timed_out : bool;
  error : string;
  backtrace : string;
}

val failure_to_json : failure -> Trace.Json.t

(** Recovery activity of this process so far, summed across domains (and,
    in one process, across campaigns): retries attempted and cells
    quarantined. Feed the live supervisor gauges. *)
val retries_total : unit -> int

val quarantined_total : unit -> int

(** [map ~jobs ~policy ~name ~run items] farms [items] over [jobs] domains
    ({!Pool.map}, order-preserving). Each item is attempted up to
    [1 + policy.retries] times through [run ~attempt ~deadline item]
    ([attempt] counts from 1; [deadline] is the absolute wall-clock budget,
    [None] when timeouts are off). [on_outcome], if given, is called in the
    worker as soon as an item resolves — the checkpoint journal hooks in
    here; it must be thread-safe. With [policy.fail_fast] the first
    exception aborts the whole map as {!Pool.Cell_error} [(name item)]. *)
val map :
  ?on_outcome:('a -> ('b, failure) result -> unit) ->
  jobs:int ->
  policy:policy ->
  name:('a -> string) ->
  run:(attempt:int -> deadline:float option -> 'a -> 'b) ->
  'a array ->
  ('b, failure) result array
