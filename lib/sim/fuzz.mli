(** Simulator-level fuzz properties: full {!Runner} campaigns on randomly
    generated scenarios, checked against the reference model and against
    the packet-conservation ledger. These are the expensive cells of the
    catalogue ([cost] 10): the fuzz CLI and the fixed-seed suite scale
    their case budget down accordingly. *)

(** The catalogue; the CLI concatenates it with [Check.Props.all]. *)
val props : Check.Runner.packed list
