(** Simulator-level fuzz properties: full {!Runner} campaigns on randomly
    generated scenarios, checked against the reference model and against
    the packet-conservation ledger. These are the expensive cells of the
    catalogue ([cost] 10): the fuzz CLI and the fixed-seed suite scale
    their case budget down accordingly. *)

(** The catalogue; the CLI concatenates it with [Check.Props.all]. Besides
    the three core cells (which fuzz the default mediant instance), it
    carries one [srp-sim-model-<set>] cell per non-default label-set
    instance: the identical Ordering-Criteria oracle must hold whatever
    dense set mints the labels. *)
val props : Check.Runner.packed list

(** The three core cells with every generated scenario pinned to the given
    label-set instance (cell names unchanged, so [--prop]/[--replay] are
    stable across instances). Backs [manet_sim fuzz --labels]. *)
val props_for : Slr.Label_set.id -> Check.Runner.packed list

(** The three core cells with every generated case pinned to the given
    mobility and traffic models — and optionally a label-set instance
    (cell names unchanged). Backs [manet_sim fuzz --scenario], composing
    with [--labels]. *)
val props_pinned :
  ?labels:Slr.Label_set.id ->
  mobility:Wireless.Mobility.id ->
  traffic:Traffic.Model.id ->
  unit ->
  Check.Runner.packed list
