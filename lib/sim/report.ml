(* single-run rendering shared by `manet_sim run`, `manet_sim check` and
   the determinism tests (which compare this output byte for byte) *)
let run ppf (r : Metrics.result) =
  Format.fprintf ppf "%a@." Metrics.pp_result r;
  List.iter
    (fun (reason, count) -> Format.fprintf ppf "  drop[%s] = %d@." reason count)
    r.Metrics.drop_reasons;
  if r.Metrics.fault_events > 0 then
    Format.fprintf ppf "faults: %d events injected, %d frames blocked@."
      r.Metrics.fault_events r.Metrics.fault_frames_blocked;
  (* outages also open and heal on clean runs (mobility breaks routes), so
     the recovery line is keyed on recoveries, not on injected faults *)
  if r.Metrics.recoveries > 0 then
    Format.fprintf ppf
      "route recovery: %d outages healed, mean %.3f s, max %.3f s@."
      r.Metrics.recoveries r.Metrics.recovery_mean r.Metrics.recovery_max

let pp_summary ppf s =
  Format.fprintf ppf "%7.3f ±%6.3f" (Stats.Summary.mean s)
    (Stats.Summary.ci95 s)

let table1 ppf t =
  Format.fprintf ppf
    "Table I: performance averaged over all pause times (mean ± 95%% CI)@.";
  Format.fprintf ppf "%-9s %-17s %-17s %-17s@." "protocol" "deliv. ratio"
    "net load" "latency (s)";
  List.iter
    (fun protocol ->
      let delivery, load, latency = Experiment.overall t protocol in
      Format.fprintf ppf "%-9s %a   %a   %a@."
        (Config.protocol_name protocol)
        pp_summary delivery pp_summary load pp_summary latency)
    t.Experiment.protocols

let figure ppf t ~title ~protocols ~value =
  Format.fprintf ppf "%s@." title;
  Format.fprintf ppf "%-7s" "pause";
  List.iter
    (fun p -> Format.fprintf ppf " %12s" (Config.protocol_name p))
    protocols;
  Format.fprintf ppf "@.";
  List.iter
    (fun pause ->
      Format.fprintf ppf "%-7.0f" pause;
      List.iter
        (fun p ->
          let c = Experiment.cell t p pause in
          Format.fprintf ppf " %12.3f" (value c))
        protocols;
      Format.fprintf ppf "@.")
    t.Experiment.pauses

let fig3 ppf t =
  figure ppf t ~title:"Fig. 3: average MAC layer drops per node vs pause time"
    ~protocols:t.Experiment.protocols
    ~value:(fun c -> Stats.Summary.mean c.Experiment.mac_drops)

let fig4 ppf t =
  figure ppf t ~title:"Fig. 4: delivery ratio vs pause time"
    ~protocols:t.Experiment.protocols
    ~value:(fun c -> Stats.Summary.mean c.Experiment.delivery)

let fig5 ppf t =
  figure ppf t
    ~title:"Fig. 5: network load vs pause time (plot on a log axis)"
    ~protocols:t.Experiment.protocols
    ~value:(fun c -> Stats.Summary.mean c.Experiment.load)

let fig6 ppf t =
  figure ppf t ~title:"Fig. 6: data latency (seconds) vs pause time"
    ~protocols:t.Experiment.protocols
    ~value:(fun c -> Stats.Summary.mean c.Experiment.latency)

let fig7 ppf t =
  let protocols =
    List.filter
      (fun p -> List.mem p Config.fig7_protocols)
      t.Experiment.protocols
  in
  figure ppf t
    ~title:"Fig. 7: average node sequence number vs pause time (zero-based)"
    ~protocols
    ~value:(fun c -> Stats.Summary.mean c.Experiment.seqno);
  if List.mem Config.Srp protocols then begin
    let max_denom =
      List.fold_left
        (fun acc pause ->
          let c = Experiment.cell t Config.Srp pause in
          Stdlib.max acc c.Experiment.max_denominator)
        0 t.Experiment.pauses
    in
    Format.fprintf ppf
      "SRP max feasible-distance denominator over the campaign: %d (paper: \
       stayed under 840 million; 32-bit bound is %d)@."
      max_denom Slr.Fraction.bound;
    (* label-set showdown metrics: printed only off the default instance,
       so default-campaign reports stay byte-identical *)
    if Config.labels t.Experiment.base <> Slr.Label_set.default then begin
      let width, resets =
        List.fold_left
          (fun (w, r) pause ->
            let c = Experiment.cell t Config.Srp pause in
            ( Stdlib.max w c.Experiment.label_width_bits,
              r + c.Experiment.label_resets ))
          (0, 0) t.Experiment.pauses
      in
      Format.fprintf ppf
        "SRP label set %s: max encoded label width %d bits, %d label-driven \
         resets@."
        (Slr.Label_set.name (Config.labels t.Experiment.base))
        width resets
    end
  end

(* Quarantined cells, printed only when there are any: a clean campaign's
   report stays byte-identical to pre-supervisor builds. *)
let supervision ppf (t : Experiment.t) =
  match t.Experiment.failures with
  | [] -> ()
  | failures ->
      let total =
        List.length t.Experiment.protocols
        * List.length t.Experiment.pauses
        * t.Experiment.trials
      in
      Format.fprintf ppf "Supervision: %d of %d cells quarantined@."
        (List.length failures) total;
      List.iter
        (fun (key, f) ->
          Format.fprintf ppf "  %-5s pause=%4.0f trial=%d  %s after %d attempt%s: %s@."
            (Config.protocol_name key.Experiment.protocol)
            key.Experiment.pause key.Experiment.trial
            (if f.Supervisor.timed_out then "timed out" else "crashed")
            f.Supervisor.attempts
            (if f.Supervisor.attempts = 1 then "" else "s")
            f.Supervisor.error)
        failures

(* Machine-readable campaign export: every (protocol, pause) cell with the
   per-metric summaries that the text figures print, plus the scenario. *)
let campaign_json (t : Experiment.t) =
  let module J = Trace.Json in
  let summary s =
    J.Obj
      [
        ("mean", J.Float (Stats.Summary.mean s));
        ("ci95", J.Float (Stats.Summary.ci95 s));
        ("count", J.Int (Stats.Summary.count s));
      ]
  in
  let cells =
    List.concat_map
      (fun protocol ->
        List.map
          (fun pause ->
            let c = Experiment.cell t protocol pause in
            J.Obj
              ([
                 ("protocol", J.String (Config.protocol_name protocol));
                 ("pause", J.Float pause);
                 ("delivery_ratio", summary c.Experiment.delivery);
                 ("network_load", summary c.Experiment.load);
                 ("latency", summary c.Experiment.latency);
                 ("mac_drops_per_node", summary c.Experiment.mac_drops);
                 ("avg_seqno", summary c.Experiment.seqno);
                 ("max_denominator", J.Int c.Experiment.max_denominator);
               ]
              @
              (* per-instance members ride only on SRP cells of non-default
                 campaigns: default exports stay byte-identical *)
              if
                protocol = Config.Srp
                && Config.labels t.Experiment.base <> Slr.Label_set.default
              then
                [
                  ("label_width_bits", J.Int c.Experiment.label_width_bits);
                  ("label_resets", J.Int c.Experiment.label_resets);
                ]
              else []))
          t.Experiment.pauses)
      t.Experiment.protocols
  in
  J.Obj
    [
      ("schema", J.String "manet-sim/campaign-v1");
      ("config", Config.to_json t.Experiment.base);
      ( "protocols",
        J.List
          (List.map
             (fun p -> J.String (Config.protocol_name p))
             t.Experiment.protocols) );
      ("pauses", J.List (List.map (fun p -> J.Float p) t.Experiment.pauses));
      ("trials", J.Int t.Experiment.trials);
      ("cells", J.List cells);
      ( "failures",
        J.List
          (List.map
             (fun (key, f) ->
               match Supervisor.failure_to_json f with
               | J.Obj members ->
                   J.Obj
                     (( "protocol",
                        J.String (Config.protocol_name key.Experiment.protocol)
                      )
                     :: ("pause", J.Float key.Experiment.pause)
                     :: ("trial", J.Int key.Experiment.trial)
                     :: members)
               | other -> other)
             t.Experiment.failures) );
    ]

(* ------------------------------------------------------------------ *)
(* --prof rendering. The profile is appended by the CLI layer, never by
   [campaign_json]/[run_json] themselves: unprofiled envelopes must stay
   byte-identical to pre-observability builds. *)

let profile_json (s : Obs.snapshot) =
  let module J = Trace.Json in
  let dist_json (d : Obs.dist) =
    J.Obj
      [
        ("name", J.String d.Obs.dist_name);
        ("count", J.Int d.Obs.dist_count);
        ("total_ns", J.Int d.Obs.dist_total);
        ("p50_ns", J.Int (Obs.percentile d 0.5));
        ("p99_ns", J.Int (Obs.percentile d 0.99));
      ]
  in
  let hist_json (d : Obs.dist) =
    J.Obj
      [
        ("name", J.String d.Obs.dist_name);
        ("count", J.Int d.Obs.dist_count);
        ("sum", J.Int d.Obs.dist_total);
        ("p50", J.Int (Obs.percentile d 0.5));
        ("p99", J.Int (Obs.percentile d 0.99));
      ]
  in
  let worker_json (w : Obs.worker) =
    J.Obj
      [
        ("domain", J.Int w.Obs.w_domain);
        ("cells", J.Int w.Obs.w_cells);
        ("busy_seconds", J.Float (float_of_int w.Obs.w_busy_ns /. 1e9));
        ("minor_collections", J.Int w.Obs.w_minor_collections);
        ("major_collections", J.Int w.Obs.w_major_collections);
        ("minor_words", J.Int w.Obs.w_minor_words);
        ("promoted_words", J.Int w.Obs.w_promoted_words);
        ("major_words", J.Int w.Obs.w_major_words);
      ]
  in
  J.Obj
    [
      ("spans", J.List (List.map dist_json s.Obs.spans));
      ("histograms", J.List (List.map hist_json s.Obs.hists));
      ( "counters",
        J.Obj (List.map (fun (k, v) -> (k, J.Int v)) s.Obs.counters) );
      ("workers", J.List (List.map worker_json s.Obs.workers));
    ]

let add_profile json snapshot =
  let module J = Trace.Json in
  match json with
  | J.Obj members ->
      J.Obj (members @ [ ("perf_profile", profile_json snapshot) ])
  | other -> other

let pp_ns ppf ns =
  if ns >= 1_000_000_000 then
    Format.fprintf ppf "%8.2f s" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then
    Format.fprintf ppf "%7.2f ms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then
    Format.fprintf ppf "%7.2f us" (float_of_int ns /. 1e3)
  else Format.fprintf ppf "%7d ns" ns

let profile ppf (s : Obs.snapshot) =
  Format.fprintf ppf "Profile (wall-clock spans, outside the DES)@.";
  Format.fprintf ppf "  %-26s %10s %11s %10s %10s@." "span" "calls"
    "total" "p50" "p99";
  List.iter
    (fun (d : Obs.dist) ->
      Format.fprintf ppf "  %-26s %10d %a %a %a@." d.Obs.dist_name
        d.Obs.dist_count pp_ns d.Obs.dist_total pp_ns
        (Obs.percentile d 0.5) pp_ns
        (Obs.percentile d 0.99))
    (List.sort
       (fun (a : Obs.dist) b -> compare b.Obs.dist_total a.Obs.dist_total)
       s.Obs.spans);
  List.iter
    (fun (d : Obs.dist) ->
      Format.fprintf ppf
        "  histogram %-20s count %d sum %d p50 %d p99 %d@." d.Obs.dist_name
        d.Obs.dist_count d.Obs.dist_total (Obs.percentile d 0.5)
        (Obs.percentile d 0.99))
    s.Obs.hists;
  List.iter
    (fun (w : Obs.worker) ->
      Format.fprintf ppf
        "  worker domain %d: %d cells, %.2f s busy, GC %d minor / %d \
         major, %.1fM minor words, %.1fM promoted@."
        w.Obs.w_domain w.Obs.w_cells
        (float_of_int w.Obs.w_busy_ns /. 1e9)
        w.Obs.w_minor_collections w.Obs.w_major_collections
        (float_of_int w.Obs.w_minor_words /. 1e6)
        (float_of_int w.Obs.w_promoted_words /. 1e6))
    s.Obs.workers;
  if s.Obs.counters <> [] then begin
    Format.fprintf ppf "  counters:";
    List.iter
      (fun (k, v) -> Format.fprintf ppf " %s=%d" k v)
      s.Obs.counters;
    Format.fprintf ppf "@."
  end

let run_json config (r : Metrics.result) =
  let module J = Trace.Json in
  J.Obj
    [
      ("schema", J.String "manet-sim/run-v1");
      ("config", Config.to_json config);
      ("result", Metrics.result_json r);
    ]

let all ppf t =
  table1 ppf t;
  Format.pp_print_newline ppf ();
  fig3 ppf t;
  Format.pp_print_newline ppf ();
  fig4 ppf t;
  Format.pp_print_newline ppf ();
  fig5 ppf t;
  Format.pp_print_newline ppf ();
  fig6 ppf t;
  Format.pp_print_newline ppf ();
  fig7 ppf t;
  if t.Experiment.failures <> [] then begin
    Format.pp_print_newline ppf ();
    supervision ppf t
  end
