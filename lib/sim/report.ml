(* single-run rendering shared by `manet_sim run`, `manet_sim check` and
   the determinism tests (which compare this output byte for byte) *)
let run ppf (r : Metrics.result) =
  Format.fprintf ppf "%a@." Metrics.pp_result r;
  List.iter
    (fun (reason, count) -> Format.fprintf ppf "  drop[%s] = %d@." reason count)
    r.Metrics.drop_reasons;
  if r.Metrics.fault_events > 0 then
    Format.fprintf ppf "faults: %d events injected, %d frames blocked@."
      r.Metrics.fault_events r.Metrics.fault_frames_blocked;
  (* outages also open and heal on clean runs (mobility breaks routes), so
     the recovery line is keyed on recoveries, not on injected faults *)
  if r.Metrics.recoveries > 0 then
    Format.fprintf ppf
      "route recovery: %d outages healed, mean %.3f s, max %.3f s@."
      r.Metrics.recoveries r.Metrics.recovery_mean r.Metrics.recovery_max

let pp_summary ppf s =
  Format.fprintf ppf "%7.3f ±%6.3f" (Stats.Summary.mean s)
    (Stats.Summary.ci95 s)

let table1 ppf t =
  Format.fprintf ppf
    "Table I: performance averaged over all pause times (mean ± 95%% CI)@.";
  Format.fprintf ppf "%-9s %-17s %-17s %-17s@." "protocol" "deliv. ratio"
    "net load" "latency (s)";
  List.iter
    (fun protocol ->
      let delivery, load, latency = Experiment.overall t protocol in
      Format.fprintf ppf "%-9s %a   %a   %a@."
        (Config.protocol_name protocol)
        pp_summary delivery pp_summary load pp_summary latency)
    t.Experiment.protocols

let figure ppf t ~title ~protocols ~value =
  Format.fprintf ppf "%s@." title;
  Format.fprintf ppf "%-7s" "pause";
  List.iter
    (fun p -> Format.fprintf ppf " %12s" (Config.protocol_name p))
    protocols;
  Format.fprintf ppf "@.";
  List.iter
    (fun pause ->
      Format.fprintf ppf "%-7.0f" pause;
      List.iter
        (fun p ->
          let c = Experiment.cell t p pause in
          Format.fprintf ppf " %12.3f" (value c))
        protocols;
      Format.fprintf ppf "@.")
    t.Experiment.pauses

let fig3 ppf t =
  figure ppf t ~title:"Fig. 3: average MAC layer drops per node vs pause time"
    ~protocols:t.Experiment.protocols
    ~value:(fun c -> Stats.Summary.mean c.Experiment.mac_drops)

let fig4 ppf t =
  figure ppf t ~title:"Fig. 4: delivery ratio vs pause time"
    ~protocols:t.Experiment.protocols
    ~value:(fun c -> Stats.Summary.mean c.Experiment.delivery)

let fig5 ppf t =
  figure ppf t
    ~title:"Fig. 5: network load vs pause time (plot on a log axis)"
    ~protocols:t.Experiment.protocols
    ~value:(fun c -> Stats.Summary.mean c.Experiment.load)

let fig6 ppf t =
  figure ppf t ~title:"Fig. 6: data latency (seconds) vs pause time"
    ~protocols:t.Experiment.protocols
    ~value:(fun c -> Stats.Summary.mean c.Experiment.latency)

let fig7 ppf t =
  let protocols =
    List.filter
      (fun p -> List.mem p Config.fig7_protocols)
      t.Experiment.protocols
  in
  figure ppf t
    ~title:"Fig. 7: average node sequence number vs pause time (zero-based)"
    ~protocols
    ~value:(fun c -> Stats.Summary.mean c.Experiment.seqno);
  if List.mem Config.Srp protocols then begin
    let max_denom =
      List.fold_left
        (fun acc pause ->
          let c = Experiment.cell t Config.Srp pause in
          Stdlib.max acc c.Experiment.max_denominator)
        0 t.Experiment.pauses
    in
    Format.fprintf ppf
      "SRP max feasible-distance denominator over the campaign: %d (paper: \
       stayed under 840 million; 32-bit bound is %d)@."
      max_denom Slr.Fraction.bound
  end

(* Quarantined cells, printed only when there are any: a clean campaign's
   report stays byte-identical to pre-supervisor builds. *)
let supervision ppf (t : Experiment.t) =
  match t.Experiment.failures with
  | [] -> ()
  | failures ->
      let total =
        List.length t.Experiment.protocols
        * List.length t.Experiment.pauses
        * t.Experiment.trials
      in
      Format.fprintf ppf "Supervision: %d of %d cells quarantined@."
        (List.length failures) total;
      List.iter
        (fun (key, f) ->
          Format.fprintf ppf "  %-5s pause=%4.0f trial=%d  %s after %d attempt%s: %s@."
            (Config.protocol_name key.Experiment.protocol)
            key.Experiment.pause key.Experiment.trial
            (if f.Supervisor.timed_out then "timed out" else "crashed")
            f.Supervisor.attempts
            (if f.Supervisor.attempts = 1 then "" else "s")
            f.Supervisor.error)
        failures

(* Machine-readable campaign export: every (protocol, pause) cell with the
   per-metric summaries that the text figures print, plus the scenario. *)
let campaign_json (t : Experiment.t) =
  let module J = Trace.Json in
  let summary s =
    J.Obj
      [
        ("mean", J.Float (Stats.Summary.mean s));
        ("ci95", J.Float (Stats.Summary.ci95 s));
        ("count", J.Int (Stats.Summary.count s));
      ]
  in
  let cells =
    List.concat_map
      (fun protocol ->
        List.map
          (fun pause ->
            let c = Experiment.cell t protocol pause in
            J.Obj
              [
                ("protocol", J.String (Config.protocol_name protocol));
                ("pause", J.Float pause);
                ("delivery_ratio", summary c.Experiment.delivery);
                ("network_load", summary c.Experiment.load);
                ("latency", summary c.Experiment.latency);
                ("mac_drops_per_node", summary c.Experiment.mac_drops);
                ("avg_seqno", summary c.Experiment.seqno);
                ("max_denominator", J.Int c.Experiment.max_denominator);
              ])
          t.Experiment.pauses)
      t.Experiment.protocols
  in
  J.Obj
    [
      ("schema", J.String "manet-sim/campaign-v1");
      ("config", Config.to_json t.Experiment.base);
      ( "protocols",
        J.List
          (List.map
             (fun p -> J.String (Config.protocol_name p))
             t.Experiment.protocols) );
      ("pauses", J.List (List.map (fun p -> J.Float p) t.Experiment.pauses));
      ("trials", J.Int t.Experiment.trials);
      ("cells", J.List cells);
      ( "failures",
        J.List
          (List.map
             (fun (key, f) ->
               match Supervisor.failure_to_json f with
               | J.Obj members ->
                   J.Obj
                     (( "protocol",
                        J.String (Config.protocol_name key.Experiment.protocol)
                      )
                     :: ("pause", J.Float key.Experiment.pause)
                     :: ("trial", J.Int key.Experiment.trial)
                     :: members)
               | other -> other)
             t.Experiment.failures) );
    ]

let run_json config (r : Metrics.result) =
  let module J = Trace.Json in
  J.Obj
    [
      ("schema", J.String "manet-sim/run-v1");
      ("config", Config.to_json config);
      ("result", Metrics.result_json r);
    ]

let all ppf t =
  table1 ppf t;
  Format.pp_print_newline ppf ();
  fig3 ppf t;
  Format.pp_print_newline ppf ();
  fig4 ppf t;
  Format.pp_print_newline ppf ();
  fig5 ppf t;
  Format.pp_print_newline ppf ();
  fig6 ppf t;
  Format.pp_print_newline ppf ();
  fig7 ppf t;
  if t.Experiment.failures <> [] then begin
    Format.pp_print_newline ppf ();
    supervision ppf t
  end
