(** Builds a complete simulated world from a {!Config.t} — mobility scripts,
    channel, one MAC and one routing agent per node, CBR traffic — runs it,
    and returns the paper's metrics.

    Mobility and traffic scripts depend only on [config.seed], never on the
    protocol, so different protocols in the same trial face identical node
    movement and packet demands (the paper's methodology). *)

(** Run one simulation to completion.

    [trace] receives the full structured event stream (packet lifecycle,
    routing control, MAC, faults); it defaults to {!Trace.null}, in which
    case every emission site reduces to one branch and the run is
    behaviourally identical. [sample_every], when positive and tracing is
    on, arms the periodic {!Sampler} gauge time series at that interval
    (simulated seconds). The tracer is flushed ({!Trace.close}) before the
    result is returned — also when the run aborts, so a crashed or
    timed-out cell still leaves a valid JSONL prefix.

    [deadline] is an absolute wall-clock bound ({!Supervisor} cell
    timeouts): the engine's event-loop watchdog checks it every few
    thousand events — scheduling nothing, so a run that finishes in time
    is byte-identical to an unbounded one — and raises
    {!Supervisor.Timeout} once it passes. *)
val run :
  ?trace:Trace.t ->
  ?sample_every:float ->
  ?deadline:float ->
  Config.t ->
  Metrics.result

(** Like {!run} but also exposes the per-node agent gauges (for tests). *)
val run_detailed :
  ?trace:Trace.t ->
  ?sample_every:float ->
  ?deadline:float ->
  Config.t ->
  Metrics.result * Protocols.Routing_intf.gauges list

(** [run_custom config ~build ~on_start] runs with caller-supplied agents
    ([build node_id ctx]) and a hook invoked with the engine before the
    simulation starts (for scheduling instrumentation such as the
    loop-freedom sweeps of {!Loopcheck}).

    When [config.faults] is not {!Faults.Spec.none}, the runner expands it
    into a plan on the "faults" RNG substream, hooks the channel with the
    injector's frame veto, and models a crash as total volatile-state loss:
    the node's MAC is cleared and its agent replaced by an inert stand-in
    until the restart rebuilds it through [build] (so white-box harnesses
    see reboots too). [on_faults] receives the live injector right after it
    is armed — instrumentation can capture it for {!Faults.Injector.node_up}
    queries. It is never called on fault-free runs. *)
val run_custom :
  ?on_faults:(Faults.Injector.t -> unit) ->
  ?trace:Trace.t ->
  ?sample_every:float ->
  ?deadline:float ->
  Config.t ->
  build:(int -> Protocols.Routing_intf.ctx -> Protocols.Routing_intf.agent) ->
  on_start:(Des.Engine.t -> unit) ->
  Metrics.result
