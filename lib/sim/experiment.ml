module J = Trace.Json

type cell = {
  delivery : Stats.Summary.t;
  load : Stats.Summary.t;
  latency : Stats.Summary.t;
  mac_drops : Stats.Summary.t;
  seqno : Stats.Summary.t;
  mutable max_denominator : int;
  mutable label_width_bits : int;  (** campaign-wide high-water mark *)
  mutable label_resets : int;
}

type key = { protocol : Config.protocol; pause : float; trial : int }

type t = {
  base : Config.t;
  protocols : Config.protocol list;
  pauses : float list;
  trials : int;
  cells : (Config.protocol * float, cell) Hashtbl.t;
  mutable engine_events : int;
  mutable failures : (key * Supervisor.failure) list;
}

exception Resume_error of string

let () =
  Printexc.register_printer (function
    | Resume_error m -> Some ("Resume_error: " ^ m)
    | _ -> None)

let fresh_cell () =
  {
    delivery = Stats.Summary.create ();
    load = Stats.Summary.create ();
    latency = Stats.Summary.create ();
    mac_drops = Stats.Summary.create ();
    seqno = Stats.Summary.create ();
    max_denominator = 0;
    label_width_bits = 0;
    label_resets = 0;
  }

let cell t protocol pause =
  match Hashtbl.find_opt t.cells (protocol, pause) with
  | Some c -> c
  | None ->
      let c = fresh_cell () in
      Hashtbl.replace t.cells (protocol, pause) c;
      c

let record c (r : Metrics.result) =
  Stats.Summary.add c.delivery r.Metrics.delivery_ratio;
  Stats.Summary.add c.load r.Metrics.network_load;
  Stats.Summary.add c.latency r.Metrics.latency;
  Stats.Summary.add c.mac_drops r.Metrics.mac_drops_per_node;
  Stats.Summary.add c.seqno r.Metrics.avg_seqno;
  if r.Metrics.max_denominator > c.max_denominator then
    c.max_denominator <- r.Metrics.max_denominator;
  if r.Metrics.label_width_bits > c.label_width_bits then
    c.label_width_bits <- r.Metrics.label_width_bits;
  c.label_resets <- c.label_resets + r.Metrics.label_resets

(* ------------------------------------------------------------------ *)
(* Checkpoint journal codec. The journal is human-readable JSONL — one
   header line, then one line per resolved cell — but resume must be
   BYTE-identical to a straight-through run, and the decimal float
   rendering of {!Trace.Json} does not round-trip doubles. So every float
   field is carried twice: readable in ["result"], exact IEEE-754 bits
   (hex) in ["fbits"], and the decoder reads the bits. *)

exception Corrupt of string

let jget name json =
  match J.member name json with
  | Some v -> v
  | None -> raise (Corrupt ("missing member " ^ name))

let jint name json =
  match jget name json with
  | J.Int i -> i
  | _ -> raise (Corrupt (name ^ ": expected an integer"))

let jstr name json =
  match jget name json with
  | J.String s -> s
  | _ -> raise (Corrupt (name ^ ": expected a string"))

let jbool name json =
  match jget name json with
  | J.Bool b -> b
  | _ -> raise (Corrupt (name ^ ": expected a bool"))

let jfloat name json =
  match jget name json with
  | J.Float f -> f
  | J.Int i -> float_of_int i
  | _ -> raise (Corrupt (name ^ ": expected a number"))

(* optional members: absent on journals written before (or without) the
   label-set axis, whose results all used the default instance *)
let jint_opt name ~default json =
  match J.member name json with
  | Some (J.Int i) -> i
  | Some _ -> raise (Corrupt (name ^ ": expected an integer"))
  | None -> default

let jlabels json =
  match J.member "labels" json with
  | Some (J.String s) -> (
      match Slr.Label_set.of_name s with
      | Some id -> id
      | None -> raise (Corrupt ("unknown label set " ^ s)))
  | Some _ -> raise (Corrupt "labels: expected a string")
  | None -> Slr.Label_set.default

let float_fields (r : Metrics.result) =
  [
    ("delivery_ratio", r.Metrics.delivery_ratio);
    ("network_load", r.Metrics.network_load);
    ("latency", r.Metrics.latency);
    ("mac_drops_per_node", r.Metrics.mac_drops_per_node);
    ("avg_seqno", r.Metrics.avg_seqno);
    ("recovery_mean", r.Metrics.recovery_mean);
    ("recovery_max", r.Metrics.recovery_max);
  ]

let fbits_json r =
  J.Obj
    (List.map
       (fun (k, v) ->
         (k, J.String (Printf.sprintf "%016Lx" (Int64.bits_of_float v))))
       (float_fields r))

let jfloat_bits fbits name =
  match Int64.of_string_opt ("0x" ^ jstr name fbits) with
  | Some bits -> Int64.float_of_bits bits
  | None -> raise (Corrupt (name ^ ": bad float bits"))

let key_json k =
  J.Obj
    [
      ("protocol", J.String (Config.protocol_name k.protocol));
      ("pause", J.Float k.pause);
      ("trial", J.Int k.trial);
    ]

let record_json key outcome =
  match outcome with
  | Ok r ->
      J.Obj
        [
          ("cell", key_json key);
          ("status", J.String "ok");
          ("result", Metrics.result_json r);
          ("fbits", fbits_json r);
        ]
  | Error f ->
      J.Obj
        [
          ("cell", key_json key);
          ("status", J.String "failed");
          ("failure", Supervisor.failure_to_json f);
        ]

let decode_result record =
  let rj = jget "result" record in
  let fb = jget "fbits" record in
  {
    Metrics.sent = jint "sent" rj;
    delivered = jint "delivered" rj;
    delivery_ratio = jfloat_bits fb "delivery_ratio";
    control_tx = jint "control_tx" rj;
    network_load = jfloat_bits fb "network_load";
    latency = jfloat_bits fb "latency";
    mac_drops_per_node = jfloat_bits fb "mac_drops_per_node";
    collisions = jint "collisions" rj;
    data_tx = jint "data_tx" rj;
    drop_queue_full = jint "drop_queue_full" rj;
    drop_retry = jint "drop_retry" rj;
    avg_seqno = jfloat_bits fb "avg_seqno";
    max_seqno = jint "max_seqno" rj;
    seqno_resets = jint "seqno_resets" rj;
    max_denominator = jint "max_denominator" rj;
    labels = jlabels rj;
    label_width_bits = jint_opt "label_width_bits" ~default:0 rj;
    label_resets = jint_opt "label_resets" ~default:0 rj;
    drop_reasons =
      (match jget "drop_reasons" rj with
      | J.Obj members ->
          List.map
            (function
              | k, J.Int n -> (k, n)
              | _ -> raise (Corrupt "drop_reasons: expected integer counts"))
            members
      | _ -> raise (Corrupt "drop_reasons: expected an object"));
    fault_events = jint "fault_events" rj;
    fault_frames_blocked = jint "fault_frames_blocked" rj;
    recoveries = jint "recoveries" rj;
    recovery_mean = jfloat_bits fb "recovery_mean";
    recovery_max = jfloat_bits fb "recovery_max";
    engine_events = jint "engine_events" rj;
  }

let decode_failure fj =
  {
    Supervisor.attempts = jint "attempts" fj;
    timed_out = jbool "timed_out" fj;
    error = jstr "error" fj;
    backtrace = jstr "backtrace" fj;
  }

let decode_record json =
  let cj = jget "cell" json in
  let protocol =
    let name = jstr "protocol" cj in
    match Config.protocol_of_name name with
    | Some p -> p
    | None -> raise (Corrupt ("unknown protocol " ^ name))
  in
  let key = { protocol; pause = jfloat "pause" cj; trial = jint "trial" cj } in
  match jstr "status" json with
  | "ok" -> (key, Ok (decode_result json))
  | "failed" -> (key, Error (decode_failure (jget "failure" json)))
  | s -> raise (Corrupt ("unknown cell status " ^ s))

let header_json ~base ~protocols ~pauses ~trials ~pause_scale =
  J.Obj
    [
      ("schema", J.String "manet-sim/journal-v1");
      ("config", Config.to_json base);
      ( "protocols",
        J.List (List.map (fun p -> J.String (Config.protocol_name p)) protocols)
      );
      ("pauses", J.List (List.map (fun p -> J.Float p) pauses));
      ("trials", J.Int trials);
      ("pause_scale", J.Float pause_scale);
    ]

(* Open (or create) the checkpoint, verify its header describes THIS
   campaign, and index the already-resolved cells. A journal written for a
   different configuration would silently graft foreign results into the
   sweep — that is a hard error, not a resume. *)
let load_checkpoint path ~header =
  match Trace.Journal.resume path with
  | Error e -> raise (Resume_error e)
  | Ok ([], journal) ->
      Trace.Journal.append journal header;
      (Hashtbl.create 16, journal)
  | Ok (first :: records, journal) ->
      if J.to_string first <> J.to_string header then
        raise
          (Resume_error
             (path
            ^ ": journal header does not match this campaign's configuration"));
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun r ->
          match decode_record r with
          | key, outcome -> Hashtbl.replace tbl key outcome
          | exception Corrupt m -> raise (Resume_error (path ^ ": " ^ m)))
        records;
      (tbl, journal)

(* ------------------------------------------------------------------ *)

let run ?(policy = Supervisor.fail_fast) ?checkpoint ?sabotage ?meter ~jobs
    ~pause_scale ~base ~protocols ~pauses ~trials ~progress () =
  let t =
    { base; protocols; pauses; trials; cells = Hashtbl.create 64;
      engine_events = 0; failures = [] }
  in
  (* one array slot per (pause, trial, protocol) cell, laid out in the
     sequential iteration order; workers race over the slots but the merge
     below replays them in this canonical order, so every Summary sees the
     same adds in the same sequence and the report stays byte-identical
     whatever [jobs] is *)
  let specs =
    Array.of_list
      (List.concat_map
         (fun pause ->
           List.concat_map
             (fun trial ->
               List.map (fun protocol -> (pause, trial, protocol)) protocols)
             (List.init trials Fun.id))
         pauses)
  in
  let key_of (pause, trial, protocol) = { protocol; pause; trial } in
  let header = header_json ~base ~protocols ~pauses ~trials ~pause_scale in
  let journaled, journal =
    match checkpoint with
    | None -> (Hashtbl.create 0, None)
    | Some path ->
        let tbl, j = load_checkpoint path ~header in
        (tbl, Some j)
  in
  let pending =
    Array.of_list
      (List.filter
         (fun spec -> not (Hashtbl.mem journaled (key_of spec)))
         (Array.to_list specs))
  in
  if Hashtbl.length journaled > 0 then begin
    progress
      (Printf.sprintf "resume: %d of %d cells restored from the journal"
         (Array.length specs - Array.length pending)
         (Array.length specs));
    (* restored cells advance the meter immediately (no fresh events) *)
    match meter with
    | Some m ->
        for _ = 1 to Array.length specs - Array.length pending do
          Obs.Progress.cell_done m ~events:0
            ~retries:(Supervisor.retries_total ())
            ~quarantined:(Supervisor.quarantined_total ())
        done
    | None -> ()
  end;
  let io_mutex = Mutex.create () in
  let spec_name (pause, trial, protocol) =
    Printf.sprintf "%s pause=%g trial=%d"
      (Config.protocol_name protocol)
      pause trial
  in
  let run_one ~attempt ~deadline (pause, trial, protocol) =
    Sabotage.arm sabotage ~protocol ~pause ~trial ~attempt ~deadline;
    let config =
      {
        base with
        Config.protocol;
        pause = pause *. pause_scale;
        seed = base.Config.seed + trial;
      }
    in
    let started = Unix.gettimeofday () in
    (* per-cell wall time and GC delta feed this worker domain's ledger —
       the raw material of the --prof per-domain telemetry *)
    let result, gc = Obs.gc_capture (fun () -> Runner.run ?deadline config) in
    Obs.cell_done ~wall:(Unix.gettimeofday () -. started) ~gc;
    let line =
      Format.asprintf "%-5s pause=%4.0f trial=%d  %a  (%.1fs)%s"
        (Config.protocol_name protocol)
        pause trial Metrics.pp_result result
        (Unix.gettimeofday () -. started)
        (if attempt = 1 then ""
         else Printf.sprintf "  [attempt %d]" attempt)
    in
    Mutex.protect io_mutex (fun () -> progress line);
    result
  in
  let on_outcome spec (outcome : (Metrics.result, Supervisor.failure) result) =
    (match meter with
    | Some m ->
        let events =
          match outcome with
          | Ok r -> r.Metrics.engine_events
          | Error _ -> 0
        in
        Obs.Progress.cell_done m ~events
          ~retries:(Supervisor.retries_total ())
          ~quarantined:(Supervisor.quarantined_total ())
    | None -> ());
    Mutex.protect io_mutex (fun () ->
        (match outcome with
        | Ok _ -> ()
        | Error f ->
            progress
              (Printf.sprintf "%s  QUARANTINED after %d attempt%s%s: %s"
                 (spec_name spec) f.Supervisor.attempts
                 (if f.Supervisor.attempts = 1 then "" else "s")
                 (if f.Supervisor.timed_out then " (timeout)" else "")
                 f.Supervisor.error));
        match journal with
        | Some j -> Trace.Journal.append j (record_json (key_of spec) outcome)
        | None -> ())
  in
  let outcomes =
    Fun.protect
      ~finally:(fun () -> Option.iter Trace.Journal.close journal)
      (fun () ->
        Supervisor.map ~on_outcome ~jobs ~policy ~name:spec_name ~run:run_one
          pending)
  in
  let fresh = Hashtbl.create 64 in
  Array.iteri
    (fun i spec -> Hashtbl.replace fresh (key_of spec) outcomes.(i))
    pending;
  (* canonical-order merge: journaled and fresh outcomes replay in the
     sequential iteration order, so reports, JSON and the failure list are
     byte-identical whatever [jobs] was and however the campaign was
     interrupted and resumed *)
  Array.iter
    (fun spec ->
      let key = key_of spec in
      let outcome =
        match Hashtbl.find_opt journaled key with
        | Some o -> o
        | None -> Hashtbl.find fresh key
      in
      match outcome with
      | Ok result ->
          record (cell t key.protocol key.pause) result;
          t.engine_events <- t.engine_events + result.Metrics.engine_events
      | Error f -> t.failures <- (key, f) :: t.failures)
    specs;
  t.failures <- List.rev t.failures;
  t

let overall t protocol =
  let delivery = Stats.Summary.create () in
  let load = Stats.Summary.create () in
  let latency = Stats.Summary.create () in
  List.iter
    (fun pause ->
      match Hashtbl.find_opt t.cells (protocol, pause) with
      | None -> ()
      | Some c ->
          Stats.Summary.merge delivery c.delivery;
          Stats.Summary.merge load c.load;
          Stats.Summary.merge latency c.latency)
    t.pauses;
  (delivery, load, latency)
