type cell = {
  delivery : Stats.Summary.t;
  load : Stats.Summary.t;
  latency : Stats.Summary.t;
  mac_drops : Stats.Summary.t;
  seqno : Stats.Summary.t;
  mutable max_denominator : int;
}

type t = {
  base : Config.t;
  protocols : Config.protocol list;
  pauses : float list;
  trials : int;
  cells : (Config.protocol * float, cell) Hashtbl.t;
  mutable engine_events : int;
}

let fresh_cell () =
  {
    delivery = Stats.Summary.create ();
    load = Stats.Summary.create ();
    latency = Stats.Summary.create ();
    mac_drops = Stats.Summary.create ();
    seqno = Stats.Summary.create ();
    max_denominator = 0;
  }

let cell t protocol pause =
  match Hashtbl.find_opt t.cells (protocol, pause) with
  | Some c -> c
  | None ->
      let c = fresh_cell () in
      Hashtbl.replace t.cells (protocol, pause) c;
      c

let record c (r : Metrics.result) =
  Stats.Summary.add c.delivery r.Metrics.delivery_ratio;
  Stats.Summary.add c.load r.Metrics.network_load;
  Stats.Summary.add c.latency r.Metrics.latency;
  Stats.Summary.add c.mac_drops r.Metrics.mac_drops_per_node;
  Stats.Summary.add c.seqno r.Metrics.avg_seqno;
  if r.Metrics.max_denominator > c.max_denominator then
    c.max_denominator <- r.Metrics.max_denominator

let run ~jobs ~pause_scale ~base ~protocols ~pauses ~trials ~progress =
  let t =
    { base; protocols; pauses; trials; cells = Hashtbl.create 64;
      engine_events = 0 }
  in
  (* one array slot per (pause, trial, protocol) cell, laid out in the
     sequential iteration order; workers race over the slots but the merge
     below replays them in this canonical order, so every Summary sees the
     same adds in the same sequence and the report stays byte-identical
     whatever [jobs] is *)
  let specs =
    Array.of_list
      (List.concat_map
         (fun pause ->
           List.concat_map
             (fun trial ->
               List.map (fun protocol -> (pause, trial, protocol)) protocols)
             (List.init trials Fun.id))
         pauses)
  in
  let progress_mutex = Mutex.create () in
  let run_one (pause, trial, protocol) =
    let config =
      {
        base with
        Config.protocol;
        pause = pause *. pause_scale;
        seed = base.Config.seed + trial;
      }
    in
    let started = Unix.gettimeofday () in
    let result = Runner.run config in
    let line =
      Format.asprintf "%-5s pause=%4.0f trial=%d  %a  (%.1fs)"
        (Config.protocol_name protocol)
        pause trial Metrics.pp_result result
        (Unix.gettimeofday () -. started)
    in
    Mutex.protect progress_mutex (fun () -> progress line);
    result
  in
  let results = Pool.map ~jobs run_one specs in
  Array.iteri
    (fun k result ->
      let pause, _trial, protocol = specs.(k) in
      record (cell t protocol pause) result;
      t.engine_events <- t.engine_events + result.Metrics.engine_events)
    results;
  t

let overall t protocol =
  let delivery = Stats.Summary.create () in
  let load = Stats.Summary.create () in
  let latency = Stats.Summary.create () in
  List.iter
    (fun pause ->
      match Hashtbl.find_opt t.cells (protocol, pause) with
      | None -> ()
      | Some c ->
          Stats.Summary.merge delivery c.delivery;
          Stats.Summary.merge load c.load;
          Stats.Summary.merge latency c.latency)
    t.pauses;
  (delivery, load, latency)
