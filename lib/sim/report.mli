(** Text renderings of the paper's Table I and Figures 3–7 from a completed
    campaign. Figures are printed as aligned data tables (pause time on the
    x-axis, one column per protocol) — the same series a plotting script
    would consume. *)

val table1 : Format.formatter -> Experiment.t -> unit

(** Fig. 3: average MAC-layer drops per node vs pause time. *)
val fig3 : Format.formatter -> Experiment.t -> unit

(** Fig. 4: delivery ratio vs pause time. *)
val fig4 : Format.formatter -> Experiment.t -> unit

(** Fig. 5: network load vs pause time (the paper plots this semi-log). *)
val fig5 : Format.formatter -> Experiment.t -> unit

(** Fig. 6: data latency vs pause time. *)
val fig6 : Format.formatter -> Experiment.t -> unit

(** Fig. 7: average node sequence number vs pause time (SRP, LDR, AODV),
    plus SRP's maximum denominator (§V's "stayed under 840 million"). *)
val fig7 : Format.formatter -> Experiment.t -> unit

(** Quarantined-cell section: one header plus one line per failure
    (attempts, crash-vs-timeout, error). Prints nothing on a clean
    campaign, so clean reports are byte-identical to pre-supervisor
    builds. *)
val supervision : Format.formatter -> Experiment.t -> unit

(** Everything, in paper order; ends with {!supervision} when any cell was
    quarantined. *)
val all : Format.formatter -> Experiment.t -> unit

(** Single-run report: the paper metrics line, per-reason routing drops,
    a fault-event line when faults were injected, and a route-recovery line
    whenever any outage healed (clean runs included — mobility alone breaks
    and restores routes). The rendering is deterministic for a given result;
    the determinism test compares two same-seed faulted runs through it byte
    for byte. *)
val run : Format.formatter -> Metrics.result -> unit

(** [run_json config r] is the machine-readable single-run envelope
    [{"schema":"manet-sim/run-v1","config":…,"result":…}]. *)
val run_json : Config.t -> Metrics.result -> Trace.Json.t

(** Whole-campaign export, [manet-sim/campaign-v1]: scenario, protocol and
    pause axes, and per-cell metric summaries (mean / 95% CI / count). *)
val campaign_json : Experiment.t -> Trace.Json.t

(** {1 [--prof] rendering}

    The profile is appended by the CLI layer, never by {!campaign_json} /
    {!run_json} themselves, so unprofiled envelopes stay byte-identical to
    pre-observability builds. *)

(** Machine-readable profile: spans and histograms with count / total /
    p50 / p99, counter totals, and the per-worker-domain cell/GC ledger. *)
val profile_json : Obs.snapshot -> Trace.Json.t

(** [add_profile json snapshot] appends a ["perf_profile"] member to a
    JSON object envelope (returns non-objects unchanged). *)
val add_profile : Trace.Json.t -> Obs.snapshot -> Trace.Json.t

(** Human [Profile] section: spans sorted by total time, then worker-domain
    GC lines and counter totals. *)
val profile : Format.formatter -> Obs.snapshot -> unit
