exception Timeout

let () =
  Printexc.register_printer (function
    | Timeout -> Some "Supervisor.Timeout (cell exceeded its wall-clock budget)"
    | _ -> None)

let check_deadline = function
  | Some d when Unix.gettimeofday () > d -> raise Timeout
  | Some _ | None -> ()

type policy = {
  cell_timeout : float;
  retries : int;
  backoff : float;
  fail_fast : bool;
}

let default =
  { cell_timeout = 0.0; retries = 1; backoff = 0.25; fail_fast = false }

let fail_fast =
  { cell_timeout = 0.0; retries = 0; backoff = 0.0; fail_fast = true }

type failure = {
  attempts : int;
  timed_out : bool;
  error : string;
  backtrace : string;
}

(* recovery activity, exposed live through {!Sim.Sampler}'s gauges *)
let retries_counter = Obs.counter "supervisor.retries"
let quarantined_counter = Obs.counter "supervisor.quarantined"
let retries_total () = Obs.counter_value retries_counter
let quarantined_total () = Obs.counter_value quarantined_counter

let failure_to_json f =
  let module J = Trace.Json in
  J.Obj
    [
      ("attempts", J.Int f.attempts);
      ("timed_out", J.Bool f.timed_out);
      ("error", J.String f.error);
      ("backtrace", J.String f.backtrace);
    ]

(* One supervised item: attempt, classify, back off, retry, quarantine.
   Runs entirely inside the worker domain; only raises under [fail_fast],
   so the pool's first-error abort machinery stays dormant otherwise. *)
let supervised ~policy ~run item =
  let rec go attempt =
    let deadline =
      if policy.cell_timeout > 0.0 then
        Some (Unix.gettimeofday () +. policy.cell_timeout)
      else None
    in
    match run ~attempt ~deadline item with
    | v -> Ok v
    | exception e when not policy.fail_fast ->
        let backtrace = Printexc.get_backtrace () in
        let timed_out = match e with Timeout -> true | _ -> false in
        if attempt <= policy.retries then begin
          (* deterministic exponential backoff, no jitter: a transient
             resource blip gets room to clear, and reports stay stable *)
          if policy.backoff > 0.0 then
            Unix.sleepf (policy.backoff *. (2. ** float_of_int (attempt - 1)));
          Obs.incr retries_counter;
          go (attempt + 1)
        end
        else begin
          Obs.incr quarantined_counter;
          Error
            { attempts = attempt; timed_out; error = Printexc.to_string e;
              backtrace }
        end
  in
  go 1

let map ?on_outcome ~jobs ~policy ~name ~run items =
  (* quarantine reports without a backtrace are useless; recording costs
     nothing until an exception actually unwinds *)
  Printexc.record_backtrace true;
  let f item =
    let outcome = supervised ~policy ~run item in
    (match on_outcome with Some hook -> hook item outcome | None -> ());
    outcome
  in
  Pool.map ~name:(fun i -> name items.(i)) ~jobs f items
