module Frame = Wireless.Frame

type workload = {
  mobility : Wireless.Mobility.id;
  traffic : Traffic.Model.id;
  faults : Faults.Spec.t option;
}

type body = Workload of workload | Adversarial

type t = { name : string; summary : string; body : body }

let workload ?faults name summary ~mobility ~traffic =
  { name; summary; body = Workload { mobility; traffic; faults } }

let all =
  [
    workload "default"
      "random waypoint + CBR — the paper's workload, byte-identical to \
       plain runs"
      ~mobility:Wireless.Mobility.Waypoint_rw ~traffic:Traffic.Model.Cbr_model;
    workload "manhattan"
      "street-grid mobility (axis-aligned hops between corners) + CBR"
      ~mobility:Wireless.Mobility.Manhattan ~traffic:Traffic.Model.Cbr_model;
    workload "rpgm"
      "reference-point group mobility (members orbit a leader) + CBR"
      ~mobility:Wireless.Mobility.Rpgm ~traffic:Traffic.Model.Cbr_model;
    workload "churn"
      "static topology with rare one-shot relocations + CBR"
      ~mobility:Wireless.Mobility.Churn ~traffic:Traffic.Model.Cbr_model;
    workload "bursty"
      "random waypoint + on/off bursty conversations"
      ~mobility:Wireless.Mobility.Waypoint_rw ~traffic:Traffic.Model.Bursty;
    workload "convergecast"
      "random waypoint + many-to-one traffic into a single sink"
      ~mobility:Wireless.Mobility.Waypoint_rw
      ~traffic:Traffic.Model.Convergecast;
    workload "flash-crowd"
      "random waypoint + all flows igniting in a narrow window"
      ~mobility:Wireless.Mobility.Waypoint_rw ~traffic:Traffic.Model.Flash;
    workload "downtown"
      "street-grid mobility + bursty conversations"
      ~mobility:Wireless.Mobility.Manhattan ~traffic:Traffic.Model.Bursty;
    workload "hostile"
      "random waypoint + CBR under the default fault plan (link flaps, \
       crashes, loss bursts)"
      ~mobility:Wireless.Mobility.Waypoint_rw ~traffic:Traffic.Model.Cbr_model
      ~faults:Faults.Spec.default;
    {
      name = "vg-forged-rrep";
      summary =
        "van Glabbeek 3-node counterexample topology with a forged stale \
         route reply injected mid-repair; online loop monitors armed on \
         all five protocols";
      body = Adversarial;
    };
  ]

let default = List.hd all

let names = List.map (fun t -> t.name) all

let find name = List.find_opt (fun t -> t.name = name) all

let is_adversarial t = t.body = Adversarial

let apply t config =
  match t.body with
  | Adversarial ->
      invalid_arg
        (Printf.sprintf
           "Scenario.apply: %s is an adversarial scenario, not a campaign \
            workload"
           t.name)
  | Workload w ->
      let config = Config.with_mobility config w.mobility in
      let config = Config.with_traffic config w.traffic in
      (* a scenario's fault plan yields to an explicitly requested one *)
      (match w.faults with
      | Some f when Faults.Spec.is_none config.Config.faults ->
          Config.with_faults config f
      | _ -> config)

(* ------------------------------------------------------------------ *)
(* The adversarial suite: the van Glabbeek AODV counterexample topology
   (CONCUR/ESOP analyses of RFC 3561) generalized over all five
   protocols. Nodes s=0, a=1, d=2 with links s-a and s-d; a discovers d
   through s, the s-d link breaks, s starts repair — and an adversary
   injects the stale route advertisement the published interleaving
   relies on, phrased in each protocol's own message vocabulary. An
   online loop monitor (mutation hooks where the protocol offers them, a
   250 ms poll otherwise) watches the next-hop graph toward d; SRP is
   additionally held to the reference-model invariant. *)

let s, a, d = (0, 1, 2)

let vg_nodes = 3

type verdict = {
  vprotocol : Config.protocol;
  flagged : bool;  (** the online monitor saw a routing loop mid-run *)
  final_cycle : bool;  (** the next-hop graph toward [d] ends cyclic *)
  forged : bool;  (** a forged frame was injected for this protocol *)
  detail : string;
}

let loop_detected v = v.flagged || v.final_cycle

let pp_verdict ppf v =
  Format.fprintf ppf "%-5s %s  %s"
    (Config.protocol_name v.vprotocol)
    (if loop_detected v then "LOOP" else "ok  ")
    v.detail

let next_hop_cycle ~next_hop =
  Result.is_error
    (Slr.Dag.acyclic
       ~successors:(fun i ->
         if i = d then []
         else match next_hop i with Some nh -> [ nh ] | None -> [])
       vg_nodes)

let mk_data ~origin ~seq ~at =
  { Frame.origin; final_dst = d; flow = 0; seq; sent_at = at; hops = 0 }

let forged_frame payload kind =
  Frame.with_kind
    (Frame.make ~src:a ~dst:(Frame.Unicast s) ~size:64 ~payload)
    kind

let run_adversarial ~protocol =
  let engine = Des.Engine.create () in
  let wire =
    Check.Wire.create ~engine ~rng:(Des.Rng.create 99L) ~nodes:vg_nodes ()
  in
  let flagged = ref false in
  (* per protocol: the agents, a current-cycle oracle, the forged frame
     (None when the protocol has no equivalent stale advertisement), and
     whether mutation hooks provide online monitoring (else we poll) *)
  let agents, cycle, forge, online, describe =
    match protocol with
    | Config.Aodv ->
        let pairs =
          Array.init vg_nodes (fun i ->
              Protocols.Aodv.create_full (Check.Wire.ctx wire i))
        in
        let ts = Array.map fst pairs in
        let cycle () =
          next_hop_cycle ~next_hop:(fun i -> Protocols.Aodv.next_hop ts.(i) ~dst:d)
        in
        Array.iter
          (fun t ->
            Protocols.Aodv.on_route_change t (fun _ ->
                if cycle () then flagged := true))
          ts;
        let forge =
          Some
            (forged_frame
               (Protocols.Aodv.Rrep
                  {
                    Protocols.Aodv.rp_src = s;
                    rp_dst = d;
                    rp_dst_seqno = 1;
                    rp_hops = 1;
                    rp_lifetime = 10.0;
                  })
               "rrep")
        in
        (Array.map snd pairs, cycle, forge, true, fun () -> "stale RREP")
    | Config.Ldr ->
        let pairs =
          Array.init vg_nodes (fun i ->
              Protocols.Ldr.create_full (Check.Wire.ctx wire i))
        in
        let ts = Array.map fst pairs in
        let cycle () =
          next_hop_cycle ~next_hop:(fun i -> Protocols.Ldr.next_hop ts.(i) ~dst:d)
        in
        let forge =
          Some
            (forged_frame
               (Protocols.Ldr.Rrep
                  {
                    Protocols.Ldr.rp_src = s;
                    rp_id = 7;
                    rp_dst = d;
                    rp_label = { Protocols.Ldr.sn = 1; fd = 1 };
                    rp_dist = 1;
                    rp_lifetime = 10.0;
                  })
               "rrep")
        in
        (Array.map snd pairs, cycle, forge, false, fun () -> "stale RREP")
    | Config.Dsr ->
        let pairs =
          Array.init vg_nodes (fun i ->
              Protocols.Dsr.create_full (Check.Wire.ctx wire i))
        in
        let ts = Array.map fst pairs in
        let cycle () =
          next_hop_cycle ~next_hop:(fun i ->
              match Protocols.Dsr.cached_path ts.(i) ~dst:d with
              | Some (_ :: nh :: _) -> Some nh
              | _ -> None)
        in
        let forge =
          Some
            (forged_frame
               (Protocols.Dsr.Rrep
                  { Protocols.Dsr.rp_path = [ s; a; d ]; rp_back = [] })
               "rrep")
        in
        (Array.map snd pairs, cycle, forge, false, fun () -> "stale RREP")
    | Config.Olsr ->
        let pairs =
          Array.init vg_nodes (fun i ->
              Protocols.Olsr.create_full (Check.Wire.ctx wire i))
        in
        let ts = Array.map fst pairs in
        let cycle () =
          next_hop_cycle ~next_hop:(fun i -> Protocols.Olsr.next_hop ts.(i) ~dst:d)
        in
        let forge =
          Some
            (forged_frame
               (Protocols.Olsr.Tc
                  { Protocols.Olsr.t_origin = a; t_ansn = 42; t_advertised = [ d ] })
               "tc")
        in
        (Array.map snd pairs, cycle, forge, false, fun () -> "forged TC")
    | Config.Srp ->
        let model = Check.Slr_model.create ~nodes:vg_nodes in
        let violation = ref None in
        let pairs =
          Array.init vg_nodes (fun i ->
              let t, agent = Protocols.Srp.create_full (Check.Wire.ctx wire i) in
              Protocols.Srp.on_route_change t (fun dst ->
                  match
                    Check.Slr_model.observe model
                      {
                        Check.Slr_model.node = i;
                        dst;
                        order = Protocols.Srp.ordering t ~dst;
                        succs = Protocols.Srp.successor_orderings t ~dst;
                      }
                  with
                  | Ok () -> ()
                  | Error m ->
                      flagged := true;
                      if !violation = None then violation := Some m);
              (t, agent))
        in
        let ts = Array.map fst pairs in
        let cycle () =
          (* the loop-freedom theorem: the feasible-successor graph toward
             the destination is a DAG at every instant *)
          Result.is_error
            (Slr.Dag.acyclic
               ~successors:(fun i ->
                 if i = d then []
                 else
                   List.map fst
                     (Protocols.Srp.successor_orderings ts.(i) ~dst:d))
               vg_nodes)
        in
        let forge =
          Some
            (forged_frame
               (Protocols.Srp.Rrep
                  {
                    Protocols.Srp.rp_src = s;
                    rp_id = 7;
                    rp_dst = d;
                    rp_order =
                      Slr.Ordering.make ~sn:1
                        ~frac:(Slr.Fraction.make ~num:1 ~den:2);
                    rp_dist = 1;
                    rp_lifetime = 10.0;
                    rp_n = false;
                  })
               "rrep")
        in
        let describe () =
          match !violation with
          | Some m -> "model violation: " ^ m
          | None ->
              Printf.sprintf "reference model green (%d observations)"
                (Check.Slr_model.observations model)
        in
        (Array.map snd pairs, cycle, forge, true, describe)
  in
  Array.iteri (fun i agent -> Check.Wire.set_agent wire i agent) agents;
  Check.Wire.add_link wire s a;
  Check.Wire.add_link wire s d;
  (* protocols without mutation hooks get a 250 ms polling monitor *)
  if not online then begin
    let rec poll t =
      ignore
        (Des.Engine.schedule_at engine ~time:t (fun () ->
             if cycle () then flagged := true;
             if t < 30.0 then poll (t +. 0.25)))
    in
    poll 0.25
  end;
  (* phase A: a discovers d through s *)
  ignore
    (Des.Engine.schedule_at engine ~time:0.1 (fun () ->
         agents.(a).Protocols.Routing_intf.originate
           (mk_data ~origin:a ~seq:0 ~at:0.1)
           ~size:512));
  Des.Engine.run engine ~until:5.0;
  (* phase B: the s-d link breaks and s starts repair *)
  Check.Wire.remove_link wire s d;
  ignore
    (Des.Engine.schedule_at engine ~time:5.1 (fun () ->
         agents.(s).Protocols.Routing_intf.originate
           (mk_data ~origin:s ~seq:1 ~at:5.1)
           ~size:512));
  Des.Engine.run engine ~until:6.0;
  (* phase C: the adversary replays the stale advertisement *)
  let forged =
    match forge with
    | Some frame ->
        Check.Wire.inject wire ~from:a ~at:s frame;
        true
    | None -> false
  in
  Des.Engine.run engine ~until:30.0;
  let final_cycle = cycle () in
  if final_cycle then flagged := true;
  let detail =
    match protocol with
    | Config.Srp -> describe ()
    | _ ->
        Printf.sprintf "%s injected; %s" (describe ())
          (if final_cycle then "next-hop cycle persists"
           else if !flagged then "transient next-hop cycle flagged"
           else "no next-hop cycle")
  in
  { vprotocol = protocol; flagged = !flagged; final_cycle; forged; detail }

let run_adversarial_all () =
  List.map (fun protocol -> run_adversarial ~protocol) Config.all_protocols
