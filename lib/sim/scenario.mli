(** The scenario registry: one name ([--scenario NAME]) bundles a mobility
    model, a traffic model and an optional fault or adversary plan into a
    seeded, reproducible workload.

    Two kinds of entries. {e Workload} scenarios parameterize an ordinary
    campaign through {!apply} — the [default] entry pins the paper's
    random-waypoint + CBR workload and is byte-identical to a run with no
    scenario at all. The {e adversarial} entry replays the van Glabbeek
    AODV counterexample (3 nodes, repair race, forged stale route reply)
    against any of the five protocols over the {!Check.Wire} harness with
    an online loop monitor armed. *)

type workload = {
  mobility : Wireless.Mobility.id;
  traffic : Traffic.Model.id;
  faults : Faults.Spec.t option;
      (** a plan the scenario arms by default; an explicitly configured
          fault spec takes precedence in {!apply} *)
}

type body = Workload of workload | Adversarial

type t = { name : string; summary : string; body : body }

(** Registered scenarios, the [default] entry first. *)
val all : t list

val default : t

(** Registered names, in registry order (for usage listings). *)
val names : string list

val find : string -> t option

val is_adversarial : t -> bool

(** Overlay a workload scenario onto a campaign configuration: sets the
    mobility and traffic instances, and arms the scenario's fault plan
    unless the configuration already carries one.
    @raise Invalid_argument on an adversarial scenario. *)
val apply : t -> Config.t -> Config.t

(** One protocol's outcome under the adversarial replay. *)
type verdict = {
  vprotocol : Config.protocol;
  flagged : bool;  (** the online monitor saw a routing loop mid-run *)
  final_cycle : bool;  (** the next-hop graph toward the destination ends cyclic *)
  forged : bool;  (** a forged frame was injected for this protocol *)
  detail : string;  (** human-readable outcome *)
}

(** Did any monitor — online or final — see a loop? *)
val loop_detected : verdict -> bool

val pp_verdict : Format.formatter -> verdict -> unit

(** Run the van Glabbeek replay for one protocol: discovery through the
    middle node, link break, repair race, forged stale advertisement in
    the protocol's own message vocabulary, 30 s of settling. Deterministic
    (fixed harness seed). *)
val run_adversarial : protocol:Config.protocol -> verdict

(** {!run_adversarial} for all five protocols, in {!Config.all_protocols}
    order. *)
val run_adversarial_all : unit -> verdict list
