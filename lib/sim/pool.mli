(** Domain-based worker pool for embarrassingly parallel simulation work.

    [map] preserves input order exactly: result [i] is [f items.(i)]
    whatever the number of workers, so callers that fold results in array
    order see the same bytes at [-j 1] and [-j N]. Each [f items.(i)] must
    be self-contained (own engine, own RNG substream — which every
    [Runner.run] is); the pool adds no synchronisation around [f] beyond
    the work-stealing counter. *)

(** A worker's exception, wrapped with the identity of the failing cell.
    The original exception rides in [exn] and the re-raise preserves the
    original raise-site backtrace, so traces point into the cell's code,
    not at the pool. A printer is registered with {!Printexc}. *)
exception Cell_error of { cell : string; exn : exn }

(** The runtime's recommendation for this machine (physical parallelism). *)
val default_jobs : unit -> int

(** [map ~jobs f items] applies [f] to every element, using up to [jobs]
    domains (clamped to [1 .. Array.length items]; [jobs <= 1] runs inline
    with no domains spawned). The first exception raised by any [f] is
    re-raised in the caller — after all workers have stopped — as
    {!Cell_error}, with the original backtrace attached. [name] renders
    the failing item's identity from its index (default ["#i"]). *)
val map : ?name:(int -> string) -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array
