(** Periodic gauge sampler: a repeating engine timer that snapshots
    whole-network health — route-table sizes, pending-buffer occupancy,
    MAC queue depth, engine liveness — into the trace as [gauge] records,
    forming a time series over simulated time.

    The rate reported as [events_per_sec] is engine events executed per
    simulated second over the last interval, so it is deterministic across
    runs (no wall clock). Each sample also carries the supervisor's
    process-wide recovery totals (retries, quarantined cells, checkpoint
    journal lines flushed), so live traces of supervised campaigns show
    recovery activity, not just sim-state depths. Sampling reads gauges
    only (the agent contract forbids gauge mutation) and schedules nothing
    when tracing is off, so an untraced run's event stream is untouched. *)

(** [start engine ~trace ~every ~gauges ~mac_queue] arms the first tick at
    [every] seconds. No-op when [trace] is disabled or [every <= 0]. *)
val start :
  Des.Engine.t ->
  trace:Trace.t ->
  every:float ->
  gauges:(unit -> Protocols.Routing_intf.gauges list) ->
  mac_queue:(unit -> int) ->
  unit
