let span_check = Obs.span "event.loopcheck"

module Ordering = Slr.Ordering

exception Violation of string

let run (config : Config.t) ~interval =
  if config.protocol <> Config.Srp then
    invalid_arg "Loopcheck.run: only SRP exposes label state";
  let nodes = config.nodes in
  let srps : Protocols.Srp.t option array = Array.make nodes None in
  let sweeps = ref 0 in
  let edges = ref 0 in
  (* one whole-network invariant sweep: every destination's successor
     graph must descend in label order and be acyclic *)
  let sweep () =
    incr sweeps;
    let srp i = Option.get srps.(i) in
    for dst = 0 to nodes - 1 do
      let successor_ids = Array.make nodes [] in
      for a = 0 to nodes - 1 do
        if a <> dst then begin
          let own = Protocols.Srp.ordering (srp a) ~dst in
          let succs = Protocols.Srp.successor_orderings (srp a) ~dst in
          successor_ids.(a) <- List.map fst succs;
          List.iter
            (fun (b, _) ->
              incr edges;
              let b_now = Protocols.Srp.ordering (srp b) ~dst in
              if not (Ordering.precedes own b_now) then
                raise
                  (Violation
                     (Format.asprintf
                        "dst %d: edge %d->%d out of order: %a not ⊑ %a" dst a
                        b Ordering.pp own Ordering.pp b_now)))
            succs
        end
      done;
      match Slr.Dag.acyclic ~successors:(fun i -> successor_ids.(i)) nodes with
      | Ok () -> ()
      | Error cycle ->
          raise
            (Violation
               (Format.asprintf "dst %d: successor cycle %a" dst
                  (Format.pp_print_list
                     ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "->")
                     Format.pp_print_int)
                  cycle))
    done
  in
  try
    let result =
      Runner.run_custom config
        ~build:(fun i ctx ->
          let t, agent = Protocols.Srp.create_full ~config:config.srp ctx in
          srps.(i) <- Some t;
          agent)
        ~on_start:(fun engine ->
          let rec tick time =
            if time < config.duration then
              ignore
                (Des.Engine.schedule_at ~span:span_check engine ~time (fun () ->
                     sweep ();
                     tick (time +. interval)))
          in
          tick interval)
    in
    Ok (result, !sweeps, !edges)
  with Violation message -> Error message

(* The online monitor asserts the invariant the moment a route table
   mutates, not on a sampling clock. It deliberately checks each node's
   *stored* successor orderings (the labels the successors advertised at
   engagement time) rather than their current ones: under crash faults a
   rebooted successor regresses to the unassigned label, which makes
   current-label comparisons fire spuriously even though the Ordering
   Criteria — and acyclicity, which we still verify globally — hold. *)
let run_online (config : Config.t) ~interval =
  if config.protocol <> Config.Srp then
    invalid_arg "Loopcheck.run_online: only SRP exposes label state";
  let nodes = config.nodes in
  let srps : Protocols.Srp.t option array = Array.make nodes None in
  let node_up = ref (fun _ -> true) in
  let checks = ref 0 in
  let edges = ref 0 in
  (* destinations whose graph mutated since the last amortized global pass *)
  let dirty : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let srp i = Option.get srps.(i) in
  (* the local invariant at [a]: a's own label strictly precedes every
     stored successor label for [dst] (Theorem 3's per-edge condition) *)
  let local_check a ~dst =
    incr checks;
    let own = Protocols.Srp.ordering (srp a) ~dst in
    List.iter
      (fun (b, s_order) ->
        incr edges;
        if not (Ordering.precedes own s_order) then
          raise
            (Violation
               (Format.asprintf
                  "dst %d: node %d holds successor %d out of order: %a not ⊑ %a"
                  dst a b Ordering.pp own Ordering.pp s_order)))
      (Protocols.Srp.successor_orderings (srp a) ~dst)
  in
  (* the global pass for one destination: every live node's local invariant
     plus acyclicity of the whole successor graph *)
  let sweep_dst dst =
    let successor_ids = Array.make nodes [] in
    for a = 0 to nodes - 1 do
      if a <> dst && !node_up a then begin
        local_check a ~dst;
        successor_ids.(a) <-
          List.map fst (Protocols.Srp.successor_orderings (srp a) ~dst)
      end
    done;
    match Slr.Dag.acyclic ~successors:(fun i -> successor_ids.(i)) nodes with
    | Ok () -> ()
    | Error cycle ->
        raise
          (Violation
             (Format.asprintf "dst %d: successor cycle %a" dst
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "->")
                   Format.pp_print_int)
                cycle))
  in
  try
    let result =
      Runner.run_custom config
        ~on_faults:(fun injector ->
          node_up := Faults.Injector.node_up injector)
        ~build:(fun i ctx ->
          let t, agent = Protocols.Srp.create_full ~config:config.srp ctx in
          srps.(i) <- Some t;
          Protocols.Srp.on_route_change t (fun dst ->
              (* fires on crashed incarnations too (expiry timers survive
                 the swap); their state is frozen, so the check stays true *)
              (match srps.(i) with
              | Some current when current == t -> local_check i ~dst
              | _ -> ());
              Hashtbl.replace dirty dst ());
          agent)
        ~on_start:(fun engine ->
          let rec tick time =
            if time < config.duration then
              ignore
                (Des.Engine.schedule_at ~span:span_check engine ~time (fun () ->
                     let dsts =
                       List.sort compare
                         (Hashtbl.fold (fun d () acc -> d :: acc) dirty [])
                     in
                     Hashtbl.reset dirty;
                     List.iter sweep_dst dsts;
                     tick (time +. interval)))
          in
          tick interval)
    in
    Ok (result, !checks, !edges)
  with Violation message -> Error message
