let span_sample = Obs.span "event.sample"

let start engine ~trace ~every ~gauges ~mac_queue =
  if Trace.enabled trace && every > 0.0 then begin
    let prev_executed = ref (Des.Engine.executed engine) in
    let rec tick () =
      let totals = gauges () in
      let routes, pending, label_width_bits, label_resets =
        List.fold_left
          (fun (r, p, w, lr) g ->
            ( r + g.Protocols.Routing_intf.route_entries,
              p + g.Protocols.Routing_intf.pending_packets,
              Stdlib.max w g.Protocols.Routing_intf.label_width_bits,
              lr + g.Protocols.Routing_intf.label_resets ))
          (0, 0, 0, 0) totals
      in
      let executed = Des.Engine.executed engine in
      let events_per_sec =
        float_of_int (executed - !prev_executed) /. every
      in
      prev_executed := executed;
      (* supervisor activity: process-wide running totals, so a traced
         cell inside a supervised campaign shows recovery work as it
         happens (zeros on a plain run) *)
      Trace.gauge trace ~routes ~pending ~mac_queue:(mac_queue ())
        ~live_events:(Des.Engine.pending engine)
        ~executed ~events_per_sec
        ~retries:(Supervisor.retries_total ())
        ~quarantined:(Supervisor.quarantined_total ())
        ~journal_lines:(Trace.Journal.lines_flushed ())
        ~label_width_bits ~label_resets;
      ignore (Des.Engine.schedule ~span:span_sample engine ~delay:every tick)
    in
    ignore (Des.Engine.schedule ~span:span_sample engine ~delay:every tick)
  end
