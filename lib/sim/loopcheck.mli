(** Runtime verification of SRP's loop-freedom (Theorem 3).

    [run config ~interval] executes a simulation with white-box SRP agents
    and, every [interval] simulated seconds, asserts for every destination
    that (a) every live successor edge descends in the Ordering Criteria
    sense — [O_A ⊑ O_B] for each successor B of A — and (b) the global
    successor graph is acyclic.

    Returns [Ok (metrics, sweeps, edges)] — the run's metrics, the number
    of whole-network invariant sweeps, and the total successor edges
    inspected — or [Error description] on the first violation. *)
val run :
  Config.t -> interval:float -> (Metrics.result * int * int, string) result

(** Online variant for faulted runs: the invariant is asserted at every
    route-table mutation ({!Protocols.Srp.on_route_change}) against the
    *stored* successor orderings — the labels the successors advertised when
    the edges were engaged — and destinations touched since the last tick
    get an amortized global pass (every [interval] seconds) that re-checks
    every live node plus successor-graph acyclicity. Stored orderings are
    the right reference under crash faults: a rebooted successor's current
    label regresses to unassigned, which would make current-label
    comparisons (as {!run} does on fault-free runs) fire spuriously while
    the routing invariant actually holds. Crashed nodes are skipped in
    global passes via {!Faults.Injector.node_up}.

    Returns [Ok (metrics, checks, edges)] — the run's metrics, invariant
    evaluations performed, and successor edges inspected — or
    [Error description] on the first violation. *)
val run_online :
  Config.t -> interval:float -> (Metrics.result * int * int, string) result
