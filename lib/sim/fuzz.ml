module Gen = Check.Gen
module Runner_c = Check.Runner
module Topo = Check.Topo
module Slr_model = Check.Slr_model

let asprintf = Format.asprintf

(* ------------------------------------------------------------------ *)
(* Scenario generator: a scaled-down Config built from [Config.small],
   with the terrain sized to the node count so random placements stay
   multi-hop but mostly connected at the default 250 m radio range. *)

type sim_case = {
  protocol : Config.protocol;
  nodes : int;
  duration : float;
  flows : int;
  pause : float;
  sim_seed : int;
  faults : Faults.Spec.t;
  labels : Slr.Label_set.id;
  mobility : Wireless.Mobility.id;
  traffic : Traffic.Model.id;
}

let to_config c =
  Config.with_labels
    {
      Config.small with
      protocol = c.protocol;
      nodes = c.nodes;
      terrain =
        Wireless.Terrain.make
          ~width:(300.0 +. (30.0 *. float_of_int c.nodes))
          ~height:300.0;
      duration = c.duration;
      traffic_start = 1.0;
      flows = c.flows;
      flow_mean_duration = c.duration;
      pause = c.pause;
      seed = c.sim_seed;
      faults = c.faults;
      mobility = c.mobility;
      traffic = c.traffic;
    }
    c.labels

(* kilonode world at the paper's density (one node per 13,200 m^2, the
   same constant the --scale presets hold): a long thin strip at 1000
   nodes would be 30 km of corridor, so scale a square instead. The
   horizon is cut to a couple of simulated seconds to keep one case
   around a second of wall clock. *)
let to_config_kilo c =
  let side = sqrt (13_200.0 *. float_of_int c.nodes) in
  Config.with_labels
    {
      Config.small with
      protocol = c.protocol;
      nodes = c.nodes;
      terrain = Wireless.Terrain.make ~width:side ~height:side;
      duration = c.duration;
      traffic_start = 1.0;
      flows = c.flows;
      flow_mean_duration = c.duration;
      pause = c.pause;
      seed = c.sim_seed;
      faults = c.faults;
      mobility = c.mobility;
      traffic = c.traffic;
    }
    c.labels

(* mobility/traffic are pinned values, not generators: applied by a
   draw-free map so the default catalogue's case streams are unchanged *)
let case_gen ?(labels = Gen.pure Slr.Label_set.default)
    ?(mobility = Wireless.Mobility.default) ?(traffic = Traffic.Model.default)
    ~protocol ~faults () =
  Gen.bind protocol (fun protocol ->
      Gen.bind faults (fun faults ->
          Gen.bind labels (fun labels ->
              Gen.map2
                (fun (nodes, flows) (duration, pause, sim_seed) ->
                  {
                    protocol;
                    nodes;
                    duration;
                    flows;
                    pause;
                    sim_seed;
                    faults;
                    labels;
                    mobility;
                    traffic;
                  })
                (Gen.pair (Gen.int_range 8 14) (Gen.int_range 2 4))
                (Gen.triple
                   (Gen.map float_of_int (Gen.int_range 8 20))
                   (Gen.map float_of_int (Gen.int_range 0 5))
                   (Gen.no_shrink (Gen.int_range 0 1_000_000))))))

(* scale-smoke generator paired with {!to_config_kilo}: ~1k nodes on a
   2-3 s horizon. Shrinking still walks nodes toward the low end, which
   keeps counterexamples as small as this world allows. *)
let kilo_case_gen ~protocol ~faults () =
  Gen.bind protocol (fun protocol ->
      Gen.bind faults (fun faults ->
          Gen.map2
            (fun (nodes, flows) (duration, pause, sim_seed) ->
              {
                protocol;
                nodes;
                duration;
                flows;
                pause;
                sim_seed;
                faults;
                labels = Slr.Label_set.default;
                mobility = Wireless.Mobility.default;
                traffic = Traffic.Model.default;
              })
            (Gen.pair (Gen.int_range 900 1100) (Gen.int_range 2 4))
            (Gen.triple
               (Gen.map float_of_int (Gen.int_range 2 3))
               (Gen.map float_of_int (Gen.int_range 0 2))
               (Gen.no_shrink (Gen.int_range 0 1_000_000)))))

let pp_case ppf c =
  Format.fprintf ppf
    "%s nodes=%d duration=%.0fs flows=%d pause=%.0fs seed=%d faults=[%a]"
    (Config.protocol_name c.protocol)
    c.nodes c.duration c.flows c.pause c.sim_seed Faults.Spec.pp c.faults;
  if c.labels <> Slr.Label_set.default then
    Format.fprintf ppf " labels=%s" (Slr.Label_set.name c.labels);
  if c.mobility <> Wireless.Mobility.default then
    Format.fprintf ppf " mobility=%s" (Wireless.Mobility.name c.mobility);
  if c.traffic <> Traffic.Model.default then
    Format.fprintf ppf " traffic=%s" (Traffic.Model.name c.traffic)

let print_case = asprintf "%a" pp_case

(* ------------------------------------------------------------------ *)
(* SRP under the full simulator vs the reference model: every route
   mutation reported by the white-box hook must satisfy the Ordering
   Criteria, label monotonicity and global acyclicity. Crash faults are
   excluded ({!Topo.fault_spec} default): a reboot wipes volatile label
   state, which legitimately regresses orderings. *)

exception Model_violation of string

let sim_model_law_in to_config c =
  let config = to_config c in
  let nodes = config.Config.nodes in
  let model = Slr_model.create ~nodes in
  let srps : Protocols.Srp.t option array = Array.make nodes None in
  try
    let (_ : Metrics.result) =
      Runner.run_custom config
        ~build:(fun i ctx ->
          let t, agent =
            Protocols.Srp.create_full ~config:config.Config.srp ctx
          in
          srps.(i) <- Some t;
          Protocols.Srp.on_route_change t (fun dst ->
              match
                Slr_model.observe model
                  {
                    Slr_model.node = i;
                    dst;
                    order = Protocols.Srp.ordering t ~dst;
                    succs = Protocols.Srp.successor_orderings t ~dst;
                  }
              with
              | Ok () -> ()
              | Error m -> raise (Model_violation m));
          agent)
        ~on_start:(fun _ -> ())
    in
    ignore (Slr_model.observations model);
    Ok ()
  with Model_violation m -> Error m

let sim_model_law = sim_model_law_in to_config

let prop_sim_model_with ?(name = "srp-sim-model") ?mobility ?traffic labels =
  Runner_c.cell ~cost:10 ~name ~print:print_case
    (case_gen ~labels ?mobility ?traffic
       ~protocol:(Gen.pure Config.Srp)
       ~faults:
         (Gen.frequency
            [
              (2, Gen.pure Faults.Spec.none); (3, Topo.fault_spec ());
            ])
       ())
    sim_model_law

let prop_sim_model = prop_sim_model_with (Gen.pure Slr.Label_set.default)

(* the identical oracle per label-set instance — Def. 5 / Eq. 3 and global
   acyclicity are theorems about the ordering, not the concrete set *)
let prop_sim_model_for id =
  prop_sim_model_with
    ~name:("srp-sim-model-" ^ Slr.Label_set.name id)
    (Gen.pure id)

(* ------------------------------------------------------------------ *)
(* Packet conservation: delivered + dropped + in-flight = originated,
   with the structured trace and the metrics counters agreeing on each
   term. Copies complicate the ledger: a lost MAC ack makes the sender
   retry a frame the receiver already accepted, so one packet can raise
   several deliver (or drop) events — the metrics deliberately count
   unique packets for delivery and raw events for drops; a data frame
   discarded by a full MAC IFQ is traced as a [pkt-drop] but counted by
   the MAC's [drop_queue_full], not the routing-layer reasons. The law
   checks exactly those semantics, plus that no terminal event ever
   names a packet that was not originated. *)

type ledger = {
  mutable originate_events : int;
  mutable drop_events : int;  (** routing-layer drop events *)
  mutable mac_queue_events : int;
      (** data frames discarded by a full MAC IFQ — traced as [pkt-drop]
          with reason ["mac queue full"] but counted by the MAC's
          [drop_queue_full], not by the routing-layer [drop_reasons] *)
  originated : (int * int, unit) Hashtbl.t;
  delivered : (int * int, unit) Hashtbl.t;
  dropped : (int * int, unit) Hashtbl.t;
  mutable dup_originate : (int * int) option;
  mutable orphan : (string * int * int) option;
      (** first terminal event naming a never-originated packet *)
}

let conservation_law_in to_config c =
  let l =
    {
      originate_events = 0;
      drop_events = 0;
      mac_queue_events = 0;
      originated = Hashtbl.create 256;
      delivered = Hashtbl.create 256;
      dropped = Hashtbl.create 64;
      dup_originate = None;
      orphan = None;
    }
  in
  let known kind flow seq =
    if not (Hashtbl.mem l.originated (flow, seq)) && l.orphan = None then
      l.orphan <- Some (kind, flow, seq)
  in
  let trace =
    Trace.callback ~clock:(fun () -> 0.0) (fun r ->
        match r.Trace.ev with
        | Trace.Pkt_originate { flow; seq; _ } ->
            l.originate_events <- l.originate_events + 1;
            if Hashtbl.mem l.originated (flow, seq) then (
              if l.dup_originate = None then l.dup_originate <- Some (flow, seq))
            else Hashtbl.replace l.originated (flow, seq) ()
        | Trace.Pkt_deliver { flow; seq; _ } ->
            known "deliver" flow seq;
            Hashtbl.replace l.delivered (flow, seq) ()
        | Trace.Pkt_drop { flow; seq; reason; _ } ->
            known "drop" flow seq;
            if reason = "mac queue full" then
              l.mac_queue_events <- l.mac_queue_events + 1
            else l.drop_events <- l.drop_events + 1;
            Hashtbl.replace l.dropped (flow, seq) ()
        | _ -> ())
  in
  let result = Runner.run ~trace (to_config c) in
  let metric_drops =
    List.fold_left (fun acc (_, n) -> acc + n) 0 result.Metrics.drop_reasons
  in
  let dropped_only =
    Hashtbl.fold
      (fun k () acc -> if Hashtbl.mem l.delivered k then acc else acc + 1)
      l.dropped 0
  in
  let in_flight =
    result.Metrics.sent - Hashtbl.length l.delivered - dropped_only
  in
  match (l.dup_originate, l.orphan) with
  | Some (flow, seq), _ ->
      Error (Printf.sprintf "packet %d:%d originated twice" flow seq)
  | _, Some (kind, flow, seq) ->
      Error
        (Printf.sprintf "%s event for packet %d:%d that never originated"
           kind flow seq)
  | None, None ->
      if result.Metrics.sent <> l.originate_events then
        Error
          (Printf.sprintf "metrics sent %d but %d originate events traced"
             result.Metrics.sent l.originate_events)
      else if result.Metrics.delivered <> Hashtbl.length l.delivered then
        Error
          (Printf.sprintf
             "metrics delivered %d but %d unique packets delivered in trace"
             result.Metrics.delivered
             (Hashtbl.length l.delivered))
      else if metric_drops <> l.drop_events then
        Error
          (Printf.sprintf
             "metrics count %d routing drops but %d drop events traced"
             metric_drops l.drop_events)
      else if result.Metrics.drop_queue_full < l.mac_queue_events then
        Error
          (Printf.sprintf
             "MAC counts %d queue-full drops but %d traced on data frames"
             result.Metrics.drop_queue_full l.mac_queue_events)
      else if in_flight < 0 then
        Error
          (Printf.sprintf
             "ledger overdrawn: %d originated, %d delivered, %d dropped-only"
             result.Metrics.sent
             (Hashtbl.length l.delivered)
             dropped_only)
      else Ok ()

let conservation_law = conservation_law_in to_config

let prop_conservation_with ?(name = "metrics-conservation") ?mobility ?traffic
    labels =
  Runner_c.cell ~cost:10 ~name ~print:print_case
    (case_gen ~labels ?mobility ?traffic
       ~protocol:(Gen.elements Config.all_protocols)
       ~faults:
         (Gen.frequency
            [
              (3, Gen.pure Faults.Spec.none);
              (2, Topo.fault_spec ~crashes:true ());
            ])
       ())
    conservation_law

let prop_conservation =
  prop_conservation_with (Gen.pure Slr.Label_set.default)

(* ------------------------------------------------------------------ *)
(* Scale smoke: the same two oracles on a reduced-horizon kilonode
   world. The laws are node-count agnostic, so the only new thing under
   test is the machinery the kilonode path leans on — the grid channel
   at density, the flattened event loop, heap behaviour at deep queues.
   Cost 100 keeps these to a case or two per catalogue run: one case is
   ~1 s of wall clock, three orders of magnitude above a small-world
   case. *)

let kilo_faults =
  Gen.frequency [ (2, Gen.pure Faults.Spec.none); (1, Topo.fault_spec ()) ]

let prop_sim_model_1k =
  Runner_c.cell ~cost:100 ~name:"srp-sim-model-1k" ~print:print_case
    (kilo_case_gen ~protocol:(Gen.pure Config.Srp) ~faults:kilo_faults ())
    (sim_model_law_in to_config_kilo)

let prop_conservation_1k =
  Runner_c.cell ~cost:100 ~name:"metrics-conservation-1k" ~print:print_case
    (kilo_case_gen
       ~protocol:(Gen.elements Config.all_protocols)
       ~faults:kilo_faults ())
    (conservation_law_in to_config_kilo)

(* ------------------------------------------------------------------ *)
(* Checkpoint–resume equivalence: journal a small campaign, truncate the
   journal to an arbitrary prefix plus a torn fragment (what a kill
   mid-append leaves behind), resume, and demand the resumed campaign be
   byte-identical — report text and JSON — to a straight-through run. *)

type resume_case = { base_case : sim_case; trials : int; cut : int }

let resume_case_gen ?labels ?mobility ?traffic () =
  Gen.bind
    (case_gen ?labels ?mobility ?traffic
       ~protocol:(Gen.elements Config.all_protocols)
       ~faults:(Gen.pure Faults.Spec.none) ())
    (fun base_case ->
      Gen.map2
        (fun trials cut ->
          { base_case = { base_case with duration = 6.0 }; trials; cut })
        (Gen.int_range 1 2) (Gen.int_range 0 16))

let print_resume_case c =
  asprintf "%a trials=%d cut=%d" pp_case c.base_case c.trials c.cut

let campaign_fingerprint t =
  asprintf "%a" Report.all t ^ Trace.Json.to_string (Report.campaign_json t)

let resume_equiv_law c =
  let base = to_config c.base_case in
  let pauses = [ 0.0; c.base_case.pause +. 1.0 ] in
  let campaign ?checkpoint ~jobs () =
    Experiment.run ?checkpoint ~jobs ~pause_scale:1.0 ~base
      ~protocols:[ c.base_case.protocol ] ~pauses ~trials:c.trials
      ~progress:ignore ()
  in
  let straight = campaign_fingerprint (campaign ~jobs:1 ()) in
  let path = Filename.temp_file "manet_fuzz_ckpt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let journaled = campaign_fingerprint (campaign ~checkpoint:path ~jobs:1 ()) in
      if journaled <> straight then
        Error "journaled run differs from straight-through"
      else begin
        let lines =
          In_channel.with_open_text path In_channel.input_lines
          |> List.filter (fun l -> String.trim l <> "")
        in
        let cells = List.length lines - 1 in
        (* header + an arbitrary prefix of cells, then a torn fragment *)
        let keep = 1 + (c.cut mod (cells + 1)) in
        Out_channel.with_open_text path (fun oc ->
            List.iteri
              (fun i l -> if i < keep then Out_channel.output_string oc (l ^ "\n"))
              lines;
            Out_channel.output_string oc "{\"cell\":{\"proto");
        let resumed = campaign_fingerprint (campaign ~checkpoint:path ~jobs:2 ()) in
        if resumed <> straight then
          Error
            (Printf.sprintf
               "resumed campaign differs from straight-through (kept %d of %d \
                cells)"
               (keep - 1) cells)
        else Ok ()
      end)

let prop_resume_equiv_with ?(name = "campaign-resume-equiv") ?mobility
    ?traffic labels =
  Runner_c.cell ~cost:10 ~name ~print:print_resume_case
    (resume_case_gen ~labels ?mobility ?traffic ())
    resume_equiv_law

let prop_resume_equiv =
  prop_resume_equiv_with (Gen.pure Slr.Label_set.default)

let props =
  [
    prop_sim_model;
    prop_conservation;
    prop_resume_equiv;
    prop_sim_model_1k;
    prop_conservation_1k;
  ]
  @ List.map prop_sim_model_for
      (List.filter
         (fun id -> id <> Slr.Label_set.default)
         Slr.Label_set.all)

(* `manet_sim fuzz --labels <set>`: the core catalogue with every scenario
   pinned to one instance (names unchanged, so --prop/--replay work the
   same whatever instance is under test). *)
let props_for id =
  let labels = Gen.pure id in
  [
    prop_sim_model_with labels;
    prop_conservation_with labels;
    prop_resume_equiv_with labels;
  ]

(* `manet_sim fuzz --scenario <name>`: the core catalogue with every
   generated case pinned to the scenario's mobility and traffic models
   (cell names unchanged, so --prop/--replay stay stable). *)
let props_pinned ?(labels = Slr.Label_set.default) ~mobility ~traffic () =
  let labels = Gen.pure labels in
  [
    prop_sim_model_with ~mobility ~traffic labels;
    prop_conservation_with ~mobility ~traffic labels;
    prop_resume_equiv_with ~mobility ~traffic labels;
  ]
