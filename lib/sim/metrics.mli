(** Per-run measurements — exactly the paper's §V metrics.

    - delivery ratio: CBR packets received / CBR packets sent;
    - network load: control packets transmitted / CBR packets received;
    - latency: mean end-to-end data-packet lifetime;
    - MAC drops: sender-side MAC drops (queue overflow + retry exhaustion)
      averaged per node (Fig. 3);
    - average node sequence number and SRP's maximum denominator (Fig. 7). *)

type t

val create : unit -> t

val on_sent : t -> Wireless.Frame.data -> unit

val on_delivered : t -> now:float -> Wireless.Frame.data -> unit

(** [on_dropped t ~now data ~reason] counts a routing-layer drop and opens
    an outage window for the packet's flow (closed, and its duration
    recorded as a route-recovery time, by the flow's next delivery). *)
val on_dropped : t -> now:float -> Wireless.Frame.data -> reason:string -> unit

(** Final per-run result. *)
type result = {
  sent : int;
  delivered : int;
  delivery_ratio : float;
  control_tx : int;  (** control-packet transmissions, all nodes *)
  network_load : float;
  latency : float;  (** mean seconds; 0 when nothing was delivered *)
  mac_drops_per_node : float;
  collisions : int;
  data_tx : int;  (** MAC data transmissions incl. retries/forwards *)
  drop_queue_full : int;
  drop_retry : int;
  avg_seqno : float;
  max_seqno : int;
  seqno_resets : int;
  max_denominator : int;
  labels : Slr.Label_set.id;  (** the label-set instance the run used *)
  label_width_bits : int;
      (** widest encoded label any node minted (bits); SRP only *)
  label_resets : int;
      (** label-driven resets (T-bit / MAX_DENOM probes), summed over nodes *)
  drop_reasons : (string * int) list;  (** routing-layer drops by reason *)
  fault_events : int;  (** injected fault events (0 on clean runs) *)
  fault_frames_blocked : int;  (** frames suppressed by the injector *)
  recoveries : int;  (** closed per-flow outage windows *)
  recovery_mean : float;  (** mean seconds from first drop to next delivery *)
  recovery_max : float;
  engine_events : int;  (** DES events executed over the whole run *)
}

(** [finalize t ~control_tx ~mac_drops ~collisions ~nodes ~gauges] closes
    the books; [gauges] are the per-node protocol gauges. [?labels] names
    the label-set instance the run was configured with (default: the
    mediant set); non-default instances add their width/reset members to
    {!result_json} and {!pp_result}, the default stays byte-identical to
    pre-instance output. *)
val finalize :
  ?labels:Slr.Label_set.id ->
  t ->
  control_tx:int ->
  data_tx:int ->
  drop_queue_full:int ->
  drop_retry:int ->
  mac_drops:int ->
  collisions:int ->
  nodes:int ->
  gauges:Protocols.Routing_intf.gauges list ->
  fault_events:int ->
  fault_frames_blocked:int ->
  engine_events:int ->
  result

val pp_result : Format.formatter -> result -> unit

(** Machine-readable form of a result: a flat JSON object, one member per
    field, with deterministic member order and number formatting. *)
val result_json : result -> Trace.Json.t
