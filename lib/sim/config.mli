(** Simulation-campaign configuration. {!paper} mirrors the paper's setup:
    100 nodes on 2200 m × 600 m, 2 Mbps 802.11, random waypoint at 0–20 m/s,
    30 concurrent 512-byte 4-packets/s CBR flows, 900 s runs. *)

type protocol = Srp | Ldr | Aodv | Dsr | Olsr

val all_protocols : protocol list

val protocol_name : protocol -> string

(** Inverse of {!protocol_name}, case-insensitive. *)
val protocol_of_name : string -> protocol option

(** Protocols that expose a sequence number (Fig. 7). *)
val fig7_protocols : protocol list

type t = {
  protocol : protocol;
  nodes : int;
  terrain : Wireless.Terrain.t;
  radio : Wireless.Radio.t;
  pause : float;  (** random-waypoint pause time, s *)
  speed_min : float;
  speed_max : float;
  duration : float;  (** simulated seconds *)
  traffic_start : float;  (** flows begin after this warm-up *)
  flows : int;  (** concurrent CBR flows *)
  flow_mean_duration : float;
  packet_rate : float;  (** packets per second per flow *)
  packet_size : int;  (** bytes *)
  seed : int;  (** trial seed: shared across protocols *)
  faults : Faults.Spec.t;
      (** fault-injection schedule; {!Faults.Spec.none} (the default in every
          preset) bypasses the whole subsystem so clean runs are bitwise
          identical to pre-fault builds *)
  mobility : Wireless.Mobility.id;
      (** mobility-model instance; the default ({!Wireless.Mobility.default},
          random waypoint) reproduces the historical runner byte-for-byte *)
  traffic : Traffic.Model.id;
      (** traffic-model instance; the default ({!Traffic.Model.default}, CBR)
          reproduces the historical runner byte-for-byte *)
  srp : Protocols.Srp.config;  (** protocol tuning (ablation benches) *)
  aodv : Protocols.Aodv.config;
  ldr : Protocols.Ldr.config;
  dsr : Protocols.Dsr.config;
  olsr : Protocols.Olsr.config;
}

(** The paper's full-scale scenario (pause and protocol to be set). *)
val paper : t

(** The default reproduction campaign: the paper's scenario with the
    offered load scaled to this substrate's measured stable capacity
    (12 concurrent flows instead of 30), so the network operates in the
    same near-saturation regime as the paper's GloMoSim runs. See
    EXPERIMENTS.md for the calibration. *)
val reproduction : t

(** A scaled-down scenario for tests and quick benches: fewer nodes on a
    proportionally smaller terrain, shorter runs. The load per node and the
    connectivity structure stay comparable. *)
val small : t

(** The paper's eight pause times (0 = constant mobility, 900 = static). *)
val paper_pause_times : float list

(** Scalar scenario parameters as a flat JSON object (protocol tuning
    records are omitted; [faults] reduces to whether a plan is present;
    ["labels"], ["mobility"] and ["traffic"] members name the respective
    pluggable instances and are emitted only when not the default, so
    default-configuration exports stay byte-identical across releases).
    Embedded in every [--json] export so a result file is self-describing. *)
val to_json : t -> Trace.Json.t

val with_protocol : t -> protocol -> t

(** The SLR label-set instance SRP mints feasible distances from — the
    campaign axis of the label-set showdown (EXPERIMENTS.md). Stored in the
    SRP tuning record; these project and update it. *)
val labels : t -> Slr.Label_set.id

val with_labels : t -> Slr.Label_set.id -> t

val with_pause : t -> float -> t

val with_seed : t -> int -> t

val with_faults : t -> Faults.Spec.t -> t

val with_mobility : t -> Wireless.Mobility.id -> t

val with_traffic : t -> Traffic.Model.id -> t
