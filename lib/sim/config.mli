(** Simulation-campaign configuration. {!paper} mirrors the paper's setup:
    100 nodes on 2200 m × 600 m, 2 Mbps 802.11, random waypoint at 0–20 m/s,
    30 concurrent 512-byte 4-packets/s CBR flows, 900 s runs. *)

type protocol = Srp | Ldr | Aodv | Dsr | Olsr

val all_protocols : protocol list

val protocol_name : protocol -> string

(** Inverse of {!protocol_name}, case-insensitive. *)
val protocol_of_name : string -> protocol option

(** Protocols that expose a sequence number (Fig. 7). *)
val fig7_protocols : protocol list

(** Neighbour-sweep implementation the channel uses. {!Grid} (the default
    in every preset) is the spatial-hash path; {!Naive} is the O(n²) full
    scan retained as the property-tested oracle ([--channel naive]). The
    two are observationally identical — same deliveries, same collisions,
    same engine order — enforced by the [channel-grid-equiv] property. *)
type channel = Grid | Naive

val channel_name : channel -> string

(** Inverse of {!channel_name}, case-insensitive. *)
val channel_of_name : string -> channel option

type t = {
  protocol : protocol;
  nodes : int;
  terrain : Wireless.Terrain.t;
  radio : Wireless.Radio.t;
  pause : float;  (** random-waypoint pause time, s *)
  speed_min : float;
  speed_max : float;
  duration : float;  (** simulated seconds *)
  traffic_start : float;  (** flows begin after this warm-up *)
  flows : int;  (** concurrent CBR flows *)
  flow_mean_duration : float;
  packet_rate : float;  (** packets per second per flow *)
  packet_size : int;  (** bytes *)
  seed : int;  (** trial seed: shared across protocols *)
  faults : Faults.Spec.t;
      (** fault-injection schedule; {!Faults.Spec.none} (the default in every
          preset) bypasses the whole subsystem so clean runs are bitwise
          identical to pre-fault builds *)
  channel : channel;
      (** neighbour-sweep path; {!Grid} in every preset, {!Naive} is the
          escape hatch back to the oracle full scan *)
  mobility : Wireless.Mobility.id;
      (** mobility-model instance; the default ({!Wireless.Mobility.default},
          random waypoint) reproduces the historical runner byte-for-byte *)
  traffic : Traffic.Model.id;
      (** traffic-model instance; the default ({!Traffic.Model.default}, CBR)
          reproduces the historical runner byte-for-byte *)
  srp : Protocols.Srp.config;  (** protocol tuning (ablation benches) *)
  aodv : Protocols.Aodv.config;
  ldr : Protocols.Ldr.config;
  dsr : Protocols.Dsr.config;
  olsr : Protocols.Olsr.config;
}

(** The paper's full-scale scenario (pause and protocol to be set). *)
val paper : t

(** The default reproduction campaign: the paper's scenario with the
    offered load scaled to this substrate's measured stable capacity
    (12 concurrent flows instead of 30), so the network operates in the
    same near-saturation regime as the paper's GloMoSim runs. See
    EXPERIMENTS.md for the calibration. *)
val reproduction : t

(** A scaled-down scenario for tests and quick benches: fewer nodes on a
    proportionally smaller terrain, shorter runs. The load per node and the
    connectivity structure stay comparable. *)
val small : t

(** The paper's eight pause times (0 = constant mobility, 900 = static). *)
val paper_pause_times : float list

(** A [--scale] preset: node count, terrain and flow count at constant
    node density (one node per 13,200 m², the paper's) and constant
    offered load per node (12 flows per 100 nodes, this reproduction's
    calibrated near-saturation regime). *)
type scale = {
  scale_name : string;
  scale_nodes : int;
  scale_terrain : Wireless.Terrain.t;
  scale_flows : int;
}

(** Registered presets, in size order: ["100"] (the paper's world),
    ["1k"] and ["5k"] (city-scale square terrains). *)
val scales : scale list

(** Preset names, in registry order (for usage listings). *)
val scale_names : string list

val scale_of_name : string -> scale option

(** Overlay a scale preset onto a configuration: sets nodes, terrain and
    flows; everything else (duration, seeds, protocol tuning, scenario
    models) is left alone. The ["100"] preset reproduces
    {!reproduction}'s world exactly. *)
val apply_scale : scale -> t -> t

(** Scalar scenario parameters as a flat JSON object (protocol tuning
    records are omitted; [faults] reduces to whether a plan is present;
    ["labels"], ["channel"], ["mobility"] and ["traffic"] members name the
    respective pluggable instances and are emitted only when not the default, so
    default-configuration exports stay byte-identical across releases).
    Embedded in every [--json] export so a result file is self-describing. *)
val to_json : t -> Trace.Json.t

val with_protocol : t -> protocol -> t

(** The SLR label-set instance SRP mints feasible distances from — the
    campaign axis of the label-set showdown (EXPERIMENTS.md). Stored in the
    SRP tuning record; these project and update it. *)
val labels : t -> Slr.Label_set.id

val with_labels : t -> Slr.Label_set.id -> t

val with_pause : t -> float -> t

val with_seed : t -> int -> t

val with_faults : t -> Faults.Spec.t -> t

val with_channel : t -> channel -> t

val with_mobility : t -> Wireless.Mobility.id -> t

val with_traffic : t -> Traffic.Model.id -> t
