module Frame = Wireless.Frame

let build_agent (config : Config.t) ctx =
  match config.protocol with
  | Config.Srp -> Protocols.Srp.create ~config:config.srp ctx
  | Config.Ldr -> Protocols.Ldr.create ~config:config.ldr ctx
  | Config.Aodv -> Protocols.Aodv.create ~config:config.aodv ctx
  | Config.Dsr -> Protocols.Dsr.create ~config:config.dsr ctx
  | Config.Olsr -> Protocols.Olsr.create ~config:config.olsr ctx

(* stand-in agent for a crashed node: every handler is inert, data handed
   over by the application is dropped on the floor *)
let dead_agent drop =
  {
    Protocols.Routing_intf.originate =
      (fun data ~size:_ -> drop data ~reason:"node down");
    receive = (fun ~src:_ _ -> ());
    unicast_failed = (fun ~frame:_ ~dst:_ -> ());
    unicast_ok = (fun ~frame:_ ~dst:_ -> ());
    gauges = (fun () -> Protocols.Routing_intf.no_gauges);
  }

let run_custom_detailed ?(on_faults = fun (_ : Faults.Injector.t) -> ())
    ?(trace = Trace.null) ?(sample_every = 0.0) ?deadline (config : Config.t)
    ~build ~on_start =
  let engine = Des.Engine.create () in
  Trace.set_clock trace (fun () -> Des.Engine.now engine);
  let root = Des.Rng.create (Int64.of_int config.seed) in
  (* protocol-independent substreams: identical across protocols *)
  let mobility_rng = Des.Rng.split root "mobility" in
  let traffic_rng = Des.Rng.split root "traffic" in
  let scripts =
    Wireless.Mobility.generate config.mobility ~terrain:config.terrain
      ~rng:mobility_rng ~nodes:config.nodes ~pause:config.pause
      ~speed_min:config.speed_min ~speed_max:config.speed_max
      ~duration:config.duration
  in
  let position i time = Wireless.Waypoint.position scripts.(i) time in
  let channel =
    (* mobility legs never exceed speed_max, so the grid's candidate sets
       stay supersets of the exact in-range sets and the grid-backed scan
       is observationally identical to the naive one; --channel naive is
       the escape hatch back to the O(n^2) oracle sweep *)
    let grid =
      match config.channel with
      | Config.Grid ->
          Some { Wireless.Channel.max_speed = config.speed_max; epoch = 0.25 }
      | Config.Naive -> None
    in
    Wireless.Channel.create ~trace ?grid engine ~nodes:config.nodes ~position
      ~range:config.radio.Wireless.Radio.range
      ~cs_range:config.radio.Wireless.Radio.cs_range
  in
  let metrics = Metrics.create () in
  let agents : Protocols.Routing_intf.agent option array =
    Array.make config.nodes None
  in
  let agent i =
    match agents.(i) with
    | Some a -> a
    | None -> invalid_arg "Runner: agent not wired"
  in
  (* --prof: time spent in this protocol's frame handler (control
     processing and data forwarding both enter through [receive]) *)
  let span_receive =
    Obs.span
      ("proto."
      ^ String.lowercase_ascii (Config.protocol_name config.protocol)
      ^ ".receive")
  in
  let macs =
    Array.init config.nodes (fun i ->
        Wireless.Mac80211.create ~trace engine config.radio channel ~id:i
          ~rng:(Des.Rng.split root (Printf.sprintf "mac-%d" i))
          {
            Wireless.Mac80211.on_receive =
              (fun ~src frame ->
                if Obs.enabled () then begin
                  Obs.start span_receive;
                  (agent i).Protocols.Routing_intf.receive ~src frame;
                  Obs.stop span_receive
                end
                else (agent i).Protocols.Routing_intf.receive ~src frame);
            on_unicast_success =
              (fun ~frame ~dst ->
                (agent i).Protocols.Routing_intf.unicast_ok ~frame ~dst);
            on_unicast_fail =
              (fun ~frame ~dst ->
                (agent i).Protocols.Routing_intf.unicast_failed ~frame ~dst);
          })
  in
  let drop_data data ~reason =
    Metrics.on_dropped metrics ~now:(Des.Engine.now engine) data ~reason
  in
  (* crash/restart swaps the node's agent; [incarnation] fences off the old
     incarnation's still-pending engine timers, whose closures would
     otherwise keep transmitting the pre-crash state after the reboot *)
  let incarnation = Array.make config.nodes 0 in
  let make_ctx i ~rng_tag =
    let inc = incarnation.(i) in
    let live () = incarnation.(i) = inc in
    {
      Protocols.Routing_intf.id = i;
      node_count = config.nodes;
      engine;
      rng = Des.Rng.split root rng_tag;
      trace;
      mac_send =
        (fun frame -> if live () then Wireless.Mac80211.send macs.(i) frame);
      deliver =
        (fun data ->
          if live () then begin
            let now = Des.Engine.now engine in
            Trace.pkt_deliver trace ~node:i ~flow:data.Frame.flow
              ~seq:data.Frame.seq
              ~latency:(now -. data.Frame.sent_at)
              ~hops:data.Frame.hops;
            Metrics.on_delivered metrics ~now data
          end);
      drop_data =
        (fun data ~reason ->
          if live () then begin
            Trace.pkt_drop trace ~node:i ~flow:data.Frame.flow
              ~seq:data.Frame.seq ~reason;
            drop_data data ~reason
          end);
    }
  in
  for i = 0 to config.nodes - 1 do
    agents.(i) <- Some (build i (make_ctx i ~rng_tag:(Printf.sprintf "agent-%d" i)))
  done;
  let faults =
    if Faults.Spec.is_none config.faults then None
    else begin
      let faults_rng = Des.Rng.split root "faults" in
      let plan =
        Faults.Spec.plan config.faults
          ~rng:(Des.Rng.split faults_rng "plan")
          ~nodes:config.nodes ~duration:config.duration
      in
      let injector =
        Faults.Injector.create ~trace engine ~nodes:config.nodes
          ~rng:(Des.Rng.split faults_rng "bursts")
          ~plan
          ~on_crash:(fun i ->
            incarnation.(i) <- incarnation.(i) + 1;
            Wireless.Mac80211.reset macs.(i);
            (* trace the drop too, so the packet ledger (originated =
               delivered + dropped + in-flight) balances under crashes *)
            agents.(i) <-
              Some
                (dead_agent (fun data ~reason ->
                     Trace.pkt_drop trace ~node:i ~flow:data.Frame.flow
                       ~seq:data.Frame.seq ~reason;
                     drop_data data ~reason)))
          ~on_restart:(fun i ->
            (* reboot with fresh volatile state: labels, routes, MAC queue *)
            incarnation.(i) <- incarnation.(i) + 1;
            Wireless.Mac80211.reset macs.(i);
            let rng_tag = Printf.sprintf "agent-%d-r%d" i incarnation.(i) in
            agents.(i) <- Some (build i (make_ctx i ~rng_tag)))
      in
      Wireless.Channel.set_filter channel (fun ~src ~dst ->
          Faults.Injector.frame_ok injector ~src ~dst);
      on_faults injector;
      Some injector
    end
  in
  on_start engine;
  let live_gauges () =
    Array.fold_right
      (fun a acc ->
        match a with
        | Some agent -> agent.Protocols.Routing_intf.gauges () :: acc
        | None -> Protocols.Routing_intf.no_gauges :: acc)
      agents []
  in
  Sampler.start engine ~trace ~every:sample_every ~gauges:live_gauges
    ~mac_queue:(fun () ->
      Array.fold_left
        (fun acc mac -> acc + Wireless.Mac80211.queue_length mac)
        0 macs);
  let flows =
    Traffic.Model.generate config.traffic ~rng:traffic_rng ~nodes:config.nodes
      ~concurrent:config.flows ~from_time:config.traffic_start
      ~until:config.duration ~mean_duration:config.flow_mean_duration
  in
  Traffic.Cbr.schedule engine ~flows ~rate:config.packet_rate
    ~size:config.packet_size ~send:(fun ~src data ~size ->
      Trace.pkt_originate trace ~node:src ~flow:data.Frame.flow
        ~seq:data.Frame.seq ~dst:data.Frame.final_dst;
      Metrics.on_sent metrics data;
      (agent src).Protocols.Routing_intf.originate data ~size);
  (* the watchdog makes wedged cells supervisable: it schedules nothing,
     so event counts and outcomes are untouched, and Timeout unwinds here.
     Whatever happens, the tracer is flushed — an aborted run must leave a
     valid JSONL prefix, not a torn line. *)
  let watchdog =
    Option.map (fun d () -> Supervisor.check_deadline (Some d)) deadline
  in
  Fun.protect
    ~finally:(fun () -> Trace.close trace)
    (fun () -> Des.Engine.run ?watchdog engine ~until:config.duration);
  let control_tx =
    Array.fold_left
      (fun acc mac -> acc + (Wireless.Mac80211.stats mac).Wireless.Mac80211.tx_control)
      0 macs
  in
  let mac_drops =
    Array.fold_left (fun acc mac -> acc + Wireless.Mac80211.drops mac) 0 macs
  in
  let sum_stat f =
    Array.fold_left (fun acc mac -> acc + f (Wireless.Mac80211.stats mac)) 0 macs
  in
  let gauges =
    Array.to_list
      (Array.map
         (fun a ->
           match a with
           | Some agent -> agent.Protocols.Routing_intf.gauges ()
           | None -> Protocols.Routing_intf.no_gauges)
         agents)
  in
  let fault_events, fault_frames_blocked =
    match faults with
    | None -> (0, 0)
    | Some injector ->
        let s = Faults.Injector.stats injector in
        (Faults.Injector.event_count s, s.Faults.Injector.frames_blocked)
  in
  let labels =
    (* only SRP mints labels; other protocols keep the default instance so
       their results never grow label members *)
    match config.protocol with
    | Config.Srp -> Config.labels config
    | _ -> Slr.Label_set.default
  in
  let result =
    Metrics.finalize ~labels metrics ~control_tx
      ~data_tx:(sum_stat (fun s -> s.Wireless.Mac80211.tx_data))
      ~drop_queue_full:(sum_stat (fun s -> s.Wireless.Mac80211.drop_queue_full))
      ~drop_retry:(sum_stat (fun s -> s.Wireless.Mac80211.drop_retry))
      ~mac_drops
      ~collisions:(Wireless.Channel.collisions channel)
      ~nodes:config.nodes ~gauges ~fault_events ~fault_frames_blocked
      ~engine_events:(Des.Engine.executed engine)
  in
  Trace.close trace;
  (result, gauges)

let run_detailed ?trace ?sample_every ?deadline config =
  run_custom_detailed ?trace ?sample_every ?deadline config
    ~build:(fun _ ctx -> build_agent config ctx)
    ~on_start:(fun _ -> ())

let run_custom ?on_faults ?trace ?sample_every ?deadline config ~build ~on_start =
  fst
    (run_custom_detailed ?on_faults ?trace ?sample_every ?deadline config
       ~build ~on_start)

let run ?trace ?sample_every ?deadline config =
  fst (run_detailed ?trace ?sample_every ?deadline config)
