type mode = Crash | Hang

type t = {
  mode : mode;
  protocol : Config.protocol;
  pause : float;
  trial : int;
  fails : int;
}

let of_string s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char ':' s with
  | [ mode; proto; pause; trial ] -> (
      let mode =
        match String.lowercase_ascii mode with
        | "crash" -> Some Crash
        | "hang" -> Some Hang
        | _ -> None
      in
      let trial, fails =
        match String.index_opt trial '@' with
        | None -> (int_of_string_opt trial, Some max_int)
        | Some i ->
            ( int_of_string_opt (String.sub trial 0 i),
              int_of_string_opt
                (String.sub trial (i + 1) (String.length trial - i - 1)) )
      in
      match (mode, Config.protocol_of_name proto, float_of_string_opt pause,
             trial, fails)
      with
      | Some mode, Some protocol, Some pause, Some trial, Some fails
        when trial >= 0 && fails >= 1 ->
          Ok { mode; protocol; pause; trial; fails }
      | _ -> err "bad sabotage spec %S" s)
  | _ ->
      err "bad sabotage spec %S (expected MODE:PROTOCOL:PAUSE:TRIAL[@FAILS])" s

let to_string t =
  Printf.sprintf "%s:%s:%g:%d%s"
    (match t.mode with Crash -> "crash" | Hang -> "hang")
    (Config.protocol_name t.protocol)
    t.pause t.trial
    (if t.fails = max_int then "" else Printf.sprintf "@%d" t.fails)

let from_env () =
  match Sys.getenv_opt "MANET_SABOTAGE" with
  | None | Some "" -> None
  | Some spec -> (
      match of_string spec with
      | Ok t -> Some t
      | Error m -> invalid_arg ("MANET_SABOTAGE: " ^ m))

let arm spec ~protocol ~pause ~trial ~attempt ~deadline =
  match spec with
  | Some t
    when t.protocol = protocol && t.pause = pause && t.trial = trial
         && attempt <= t.fails -> (
      match t.mode with
      | Crash -> failwith "sabotage: injected crash"
      | Hang ->
          (* a wedged cell: burn wall-clock until the supervisor's
             deadline fires (or forever, when no timeout is armed) *)
          while true do
            Supervisor.check_deadline deadline;
            Unix.sleepf 0.002
          done)
  | _ -> ()
