let default_jobs () = Domain.recommended_domain_count ()

let map ~jobs f items =
  let n = Array.length items in
  let jobs = Stdlib.max 1 (Stdlib.min jobs n) in
  if jobs = 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let error : exn option Atomic.t = Atomic.make None in
    (* work stealing over a shared counter: cell runtimes vary wildly
       across protocols and pause times, so static slicing would leave
       domains idle behind the slowest stripe *)
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get error = None then begin
        (match f items.(i) with
        | v -> results.(i) <- Some v
        | exception e -> ignore (Atomic.compare_and_set error None (Some e)));
        worker ()
      end
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    match Atomic.get error with
    | Some e -> raise e
    | None ->
        Array.map
          (function
            | Some v -> v
            | None -> invalid_arg "Pool.map: worker left a hole")
          results
  end
