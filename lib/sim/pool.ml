exception Cell_error of { cell : string; exn : exn }

let () =
  Printexc.register_printer (function
    | Cell_error { cell; exn } ->
        Some (Printf.sprintf "cell %s failed: %s" cell (Printexc.to_string exn))
    | _ -> None)

let default_jobs () = Domain.recommended_domain_count ()

let default_name i = Printf.sprintf "#%d" i

let map ?(name = default_name) ~jobs f items =
  let n = Array.length items in
  let jobs = Stdlib.max 1 (Stdlib.min jobs n) in
  (* first worker error, with the raw backtrace captured at the raise
     site: re-raising with it keeps the trace pointing into the cell's
     own code instead of at this pool *)
  let error : (int * exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  let reraise () =
    match Atomic.get error with
    | None -> ()
    | Some (i, e, bt) ->
        Printexc.raise_with_backtrace (Cell_error { cell = name i; exn = e }) bt
  in
  if jobs = 1 then begin
    let results =
      Array.mapi
        (fun i item ->
          try Some (f item)
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            if Atomic.get error = None then Atomic.set error (Some (i, e, bt));
            reraise ();
            None)
        items
    in
    Array.map (function Some v -> v | None -> assert false) results
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* work stealing over a shared counter: cell runtimes vary wildly
       across protocols and pause times, so static slicing would leave
       domains idle behind the slowest stripe *)
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get error = None then begin
        (match f items.(i) with
        | v -> results.(i) <- Some v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set error None (Some (i, e, bt))));
        worker ()
      end
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    reraise ();
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Pool.map: worker left a hole")
      results
  end
