type t = {
  mutable sent : int;
  mutable delivered : int;
  lat : Stats.Summary.t;
  drop_reasons : (string, int) Hashtbl.t;
  (* guard against double delivery of the same packet *)
  seen : (int, unit) Hashtbl.t;
  (* per-flow outage tracking: time of the first drop since the flow last
     delivered; closed (into [recovery]) by the next delivery on that flow *)
  outages : (int, float) Hashtbl.t;
  recovery : Stats.Summary.t;
}

let create () =
  {
    sent = 0;
    delivered = 0;
    lat = Stats.Summary.create ();
    drop_reasons = Hashtbl.create 8;
    seen = Hashtbl.create 1024;
    outages = Hashtbl.create 8;
    recovery = Stats.Summary.create ();
  }

let on_sent t _data = t.sent <- t.sent + 1

let on_delivered t ~now data =
  if not (Hashtbl.mem t.seen data.Wireless.Frame.seq) then begin
    Hashtbl.replace t.seen data.Wireless.Frame.seq ();
    t.delivered <- t.delivered + 1;
    Stats.Summary.add t.lat (now -. data.Wireless.Frame.sent_at);
    match Hashtbl.find_opt t.outages data.Wireless.Frame.flow with
    | Some since ->
        (* the flow is delivering again: the outage is over *)
        Stats.Summary.add t.recovery (now -. since);
        Hashtbl.remove t.outages data.Wireless.Frame.flow
    | None -> ()
  end

let on_dropped t ~now data ~reason =
  let count = Option.value ~default:0 (Hashtbl.find_opt t.drop_reasons reason) in
  Hashtbl.replace t.drop_reasons reason (count + 1);
  if not (Hashtbl.mem t.outages data.Wireless.Frame.flow) then
    Hashtbl.replace t.outages data.Wireless.Frame.flow now

type result = {
  sent : int;
  delivered : int;
  delivery_ratio : float;
  control_tx : int;
  network_load : float;
  latency : float;
  mac_drops_per_node : float;
  collisions : int;
  data_tx : int;
  drop_queue_full : int;
  drop_retry : int;
  avg_seqno : float;
  max_seqno : int;
  seqno_resets : int;
  max_denominator : int;
  labels : Slr.Label_set.id;
  label_width_bits : int;
  label_resets : int;
  drop_reasons : (string * int) list;
  fault_events : int;
  fault_frames_blocked : int;
  recoveries : int;
  recovery_mean : float;
  recovery_max : float;
  engine_events : int;
}

let finalize ?(labels = Slr.Label_set.default) (t : t) ~control_tx ~data_tx
    ~drop_queue_full ~drop_retry ~mac_drops ~collisions ~nodes ~gauges
    ~fault_events ~fault_frames_blocked ~engine_events =
  (* one pass over the gauges with mutable accumulators instead of one
     functional fold per member; every accumulation is integral, so the
     results are bit-identical to the old per-member folds *)
  let gauge_count = ref 0 in
  let seqno_sum = ref 0 in
  let max_seqno = ref 0 in
  let seqno_resets = ref 0 in
  let max_denominator = ref 0 in
  let label_width_bits = ref 0 in
  let label_resets = ref 0 in
  List.iter
    (fun g ->
      incr gauge_count;
      seqno_sum := !seqno_sum + g.Protocols.Routing_intf.own_seqno;
      if g.Protocols.Routing_intf.own_seqno > !max_seqno then
        max_seqno := g.Protocols.Routing_intf.own_seqno;
      seqno_resets := !seqno_resets + g.Protocols.Routing_intf.seqno_resets;
      if g.Protocols.Routing_intf.max_denominator > !max_denominator then
        max_denominator := g.Protocols.Routing_intf.max_denominator;
      if g.Protocols.Routing_intf.label_width_bits > !label_width_bits then
        label_width_bits := g.Protocols.Routing_intf.label_width_bits;
      label_resets := !label_resets + g.Protocols.Routing_intf.label_resets)
    gauges;
  let avg_seqno =
    if !gauge_count = 0 then 0.0
    else float_of_int !seqno_sum /. float_of_int !gauge_count
  in
  {
    sent = t.sent;
    delivered = t.delivered;
    delivery_ratio =
      (if t.sent = 0 then 0.0
       else float_of_int t.delivered /. float_of_int t.sent);
    control_tx;
    network_load =
      (if t.delivered = 0 then float_of_int control_tx
       else float_of_int control_tx /. float_of_int t.delivered);
    latency = Stats.Summary.mean t.lat;
    mac_drops_per_node = float_of_int mac_drops /. float_of_int nodes;
    collisions;
    data_tx;
    drop_queue_full;
    drop_retry;
    avg_seqno;
    max_seqno = !max_seqno;
    seqno_resets = !seqno_resets;
    max_denominator = !max_denominator;
    labels;
    label_width_bits = !label_width_bits;
    label_resets = !label_resets;
    drop_reasons =
      List.sort
        (fun (_, a) (_, b) -> compare b a)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.drop_reasons []);
    fault_events;
    fault_frames_blocked;
    recoveries = Stats.Summary.count t.recovery;
    recovery_mean = Stats.Summary.mean t.recovery;
    recovery_max =
      (if Stats.Summary.count t.recovery = 0 then 0.0
       else Stats.Summary.max t.recovery);
    engine_events;
  }

let result_json (r : result) =
  let module J = Trace.Json in
  (* the label-set members appear only for non-default instances, so
     default-instance exports stay byte-identical to pre-refactor output *)
  let label_members =
    if r.labels = Slr.Label_set.default then []
    else
      [
        ("labels", J.String (Slr.Label_set.name r.labels));
        ("label_width_bits", J.Int r.label_width_bits);
        ("label_resets", J.Int r.label_resets);
      ]
  in
  J.Obj
    ([
      ("sent", J.Int r.sent);
      ("delivered", J.Int r.delivered);
      ("delivery_ratio", J.Float r.delivery_ratio);
      ("control_tx", J.Int r.control_tx);
      ("network_load", J.Float r.network_load);
      ("latency", J.Float r.latency);
      ("mac_drops_per_node", J.Float r.mac_drops_per_node);
      ("collisions", J.Int r.collisions);
      ("data_tx", J.Int r.data_tx);
      ("drop_queue_full", J.Int r.drop_queue_full);
      ("drop_retry", J.Int r.drop_retry);
      ("avg_seqno", J.Float r.avg_seqno);
      ("max_seqno", J.Int r.max_seqno);
      ("seqno_resets", J.Int r.seqno_resets);
      ("max_denominator", J.Int r.max_denominator);
    ]
    @ label_members
    @ [
      ( "drop_reasons",
        J.Obj (List.map (fun (k, v) -> (k, J.Int v)) r.drop_reasons) );
      ("fault_events", J.Int r.fault_events);
      ("fault_frames_blocked", J.Int r.fault_frames_blocked);
      ("recoveries", J.Int r.recoveries);
      ("recovery_mean", J.Float r.recovery_mean);
      ("recovery_max", J.Float r.recovery_max);
      ("engine_events", J.Int r.engine_events);
    ])

let pp_result ppf r =
  Format.fprintf ppf
    "sent %d, delivered %d (%.3f), control %d (load %.3f), latency %.3fs, \
     mac-drops/node %.1f, collisions %d, avg-seqno %.2f"
    r.sent r.delivered r.delivery_ratio r.control_tx r.network_load r.latency
    r.mac_drops_per_node r.collisions r.avg_seqno;
  if r.labels <> Slr.Label_set.default then
    Format.fprintf ppf ", labels %s (max width %d bits, %d label resets)"
      (Slr.Label_set.name r.labels)
      r.label_width_bits r.label_resets
