(** The paper's simulation campaign: protocols × pause times × trials, with
    mobility and traffic scripts fixed per trial (identical across
    protocols), aggregated with 95% confidence intervals. *)

(** Aggregated measurements for one (protocol, pause) cell. *)
type cell = {
  delivery : Stats.Summary.t;
  load : Stats.Summary.t;
  latency : Stats.Summary.t;
  mac_drops : Stats.Summary.t;  (** per-node MAC drops (Fig. 3) *)
  seqno : Stats.Summary.t;  (** average node sequence number (Fig. 7) *)
  mutable max_denominator : int;  (** SRP's largest fraction denominator *)
}

type t = {
  base : Config.t;
  protocols : Config.protocol list;
  pauses : float list;
  trials : int;
  cells : (Config.protocol * float, cell) Hashtbl.t;
  mutable engine_events : int;
      (** engine events executed across every run of the campaign *)
}

(** [run ~base ~protocols ~pauses ~trials ~progress] executes the campaign.
    Trial [k] uses seed [base.seed + k] for every protocol.
    [progress] is called after each completed run with a human-readable
    line (pass [ignore] to silence).

    [jobs] farms the (protocol, pause, trial) cells out to that many
    domains ({!Pool.map}). Each cell is an isolated deterministic
    simulation (own engine, own splitmix64 substreams seeded from
    [base.seed + trial]) and per-cell results are merged in the sequential
    iteration order afterwards, so the aggregated campaign — report tables
    and JSON alike — is byte-identical whatever [jobs] is; only the
    interleaving of [progress] lines (and their wall-clock stamps) varies.

    [pause_scale] multiplies each pause time before simulating (pass 1.0
    for the paper's scale),
    while results stay keyed by the nominal pause. Reduced campaigns use
    [duration /. 900] so that "pause 300 in a 900 s run" and "pause 40 in a
    120 s run" describe the same fraction of time spent paused — otherwise
    every pause longer than the run collapses to "static". *)
val run :
  jobs:int ->
  pause_scale:float ->
  base:Config.t ->
  protocols:Config.protocol list ->
  pauses:float list ->
  trials:int ->
  progress:(string -> unit) ->
  t

val cell : t -> Config.protocol -> float -> cell

(** Per-protocol aggregation over all pause times (Table I): delivery,
    load, latency summaries pooled across pause cells. *)
val overall :
  t ->
  Config.protocol ->
  Stats.Summary.t * Stats.Summary.t * Stats.Summary.t
