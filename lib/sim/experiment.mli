(** The paper's simulation campaign: protocols × pause times × trials, with
    mobility and traffic scripts fixed per trial (identical across
    protocols), aggregated with 95% confidence intervals.

    Campaigns run under a {!Supervisor} policy: a crashing or wedged cell is
    retried and, if it keeps failing, quarantined (recorded in {!t.failures})
    instead of aborting the sweep — unless the policy is fail-fast, which
    restores the historical abort-on-first-error behaviour. An optional
    JSONL checkpoint journals every resolved cell so an interrupted campaign
    can resume where it left off. *)

(** Aggregated measurements for one (protocol, pause) cell. *)
type cell = {
  delivery : Stats.Summary.t;
  load : Stats.Summary.t;
  latency : Stats.Summary.t;
  mac_drops : Stats.Summary.t;  (** per-node MAC drops (Fig. 3) *)
  seqno : Stats.Summary.t;  (** average node sequence number (Fig. 7) *)
  mutable max_denominator : int;  (** SRP's largest fraction denominator *)
  mutable label_width_bits : int;
      (** widest encoded SRP label across the cell's runs (bits) *)
  mutable label_resets : int;
      (** label-driven resets (T-bit / MAX_DENOM) summed over the cell *)
}

(** Identity of one campaign cell; [pause] is the nominal (un-scaled)
    pause time the cell is keyed by in reports. *)
type key = { protocol : Config.protocol; pause : float; trial : int }

type t = {
  base : Config.t;
  protocols : Config.protocol list;
  pauses : float list;
  trials : int;
  cells : (Config.protocol * float, cell) Hashtbl.t;
  mutable engine_events : int;
      (** engine events executed across every run of the campaign *)
  mutable failures : (key * Supervisor.failure) list;
      (** quarantined cells in canonical sweep order; empty on a clean
          campaign. Quarantined cells contribute nothing to {!cells} or
          [engine_events]. *)
}

(** A checkpoint journal exists but cannot drive this campaign: unreadable,
    a corrupt non-tail line, or a header recording a different
    configuration. Resuming anyway would graft foreign results into the
    sweep, so this is an error, not a fresh start. *)
exception Resume_error of string

(** [run ~base ~protocols ~pauses ~trials ~progress] executes the campaign.
    Trial [k] uses seed [base.seed + k] for every protocol.
    [progress] is called after each completed run with a human-readable
    line (pass [ignore] to silence).

    [jobs] farms the (protocol, pause, trial) cells out to that many
    domains ({!Pool.map}). Each cell is an isolated deterministic
    simulation (own engine, own splitmix64 substreams seeded from
    [base.seed + trial]) and per-cell results are merged in the sequential
    iteration order afterwards, so the aggregated campaign — report tables
    and JSON alike — is byte-identical whatever [jobs] is; only the
    interleaving of [progress] lines (and their wall-clock stamps) varies.

    [pause_scale] multiplies each pause time before simulating (pass 1.0
    for the paper's scale),
    while results stay keyed by the nominal pause. Reduced campaigns use
    [duration /. 900] so that "pause 300 in a 900 s run" and "pause 40 in a
    120 s run" describe the same fraction of time spent paused — otherwise
    every pause longer than the run collapses to "static".

    [policy] governs crash isolation (default {!Supervisor.fail_fast}: any
    cell failure re-raises as {!Pool.Cell_error}, the historical
    behaviour). Under a non-fail-fast policy failures land in
    {!t.failures} and the campaign completes.

    [checkpoint] names a JSONL journal: every resolved cell (ok or
    quarantined) is appended as it completes, and cells already present
    are restored instead of re-run. Results round-trip losslessly (exact
    IEEE-754 bits travel beside the readable JSON), and restored cells
    merge in canonical order, so a resumed campaign is byte-identical to a
    straight-through one. Raises {!Resume_error} when the journal does not
    belong to this campaign.

    [sabotage] arms a deterministic failure-injection hook for tests and
    CI smokes (see {!Sabotage}); omitted means no interference. *)
val run :
  ?policy:Supervisor.policy ->
  ?checkpoint:string ->
  ?sabotage:Sabotage.t ->
  ?meter:Obs.Progress.t ->
  jobs:int ->
  pause_scale:float ->
  base:Config.t ->
  protocols:Config.protocol list ->
  pauses:float list ->
  trials:int ->
  progress:(string -> unit) ->
  unit ->
  t

val cell : t -> Config.protocol -> float -> cell

(** Per-protocol aggregation over all pause times (Table I): delivery,
    load, latency summaries pooled across pause cells. *)
val overall :
  t ->
  Config.protocol ->
  Stats.Summary.t * Stats.Summary.t * Stats.Summary.t
