(* Performance-observability core: a typed metrics registry (monotonic
   counters, gauges, log-bucketed histograms), wall-clock span timers for
   hot-path profiling, and a per-domain worker ledger of campaign-cell GC
   deltas.

   Determinism contract: nothing in this module draws randomness, schedules
   simulation events or touches simulation state — all timing is wall-clock
   side-state outside the DES, so a profiled run is behaviourally identical
   to an unprofiled one. When profiling is disabled (the default) every
   span/histogram operation is one atomic-flag read and allocates nothing;
   counters and gauges stay live (they are off the hot paths and the gauge
   sampler reads them even in unprofiled runs).

   Storage is domain-local: each domain lazily registers one slot table
   (via [Domain.DLS]) and mutates only its own slots, so workers never
   contend. [snapshot] sums the tables; racy int reads during a live
   campaign can lag by a few events, which only the stderr progress meter
   ever observes — exported profiles are taken after workers join. *)

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* wall clock in integer nanoseconds: immediate (no float boxing in slot
   arithmetic) and plenty of range (2^62 ns ~ 146 years) *)
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ------------------------------------------------------------------ *)
(* Registry: dense ids per metric kind, deduplicated by name. *)

type span = { span_id : int; span_name : string }
type histogram = { hist_id : int; hist_name : string }
type counter = { ctr_id : int; ctr_name : string }
type gauge = { gauge_id : int; gauge_name : string }

let registry_mutex = Mutex.create ()
let span_defs : span list ref = ref []
let hist_defs : histogram list ref = ref []
let ctr_defs : counter list ref = ref []
let gauge_defs : gauge list ref = ref []

let register defs find make =
  Mutex.protect registry_mutex (fun () ->
      match List.find_opt find !defs with
      | Some d -> d
      | None ->
          let d = make (List.length !defs) in
          defs := d :: !defs;
          d)

let span name =
  register span_defs
    (fun s -> s.span_name = name)
    (fun id -> { span_id = id; span_name = name })

let histogram name =
  register hist_defs
    (fun h -> h.hist_name = name)
    (fun id -> { hist_id = id; hist_name = name })

let counter name =
  register ctr_defs
    (fun c -> c.ctr_name = name)
    (fun id -> { ctr_id = id; ctr_name = name })

let gauge name =
  register gauge_defs
    (fun g -> g.gauge_name = name)
    (fun id -> { gauge_id = id; gauge_name = name })

(* ------------------------------------------------------------------ *)
(* Log-bucketed distributions. Bucket 0 holds values <= 0; bucket i >= 1
   holds [2^(i-1), 2^i). [bucket_floor] is therefore the largest power of
   two not above any value in the bucket — the quantile estimate. *)

let bucket_count = 48

let bucket_index v =
  if v <= 0 then 0
  else begin
    let b = ref 1 and v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      incr b
    done;
    if !b >= bucket_count then bucket_count - 1 else !b
  end

let bucket_floor i = if i = 0 then 0 else 1 lsl (i - 1)

(* ------------------------------------------------------------------ *)
(* Domain-local slot tables. A slot is all-int, so the hot-path mutations
   below never box. *)

type slot = {
  mutable count : int;
  mutable total : int;
  mutable t0 : int;  (* span start stamp; spans do not self-nest *)
  buckets : int array;
}

type ledger = {
  mutable cells : int;
  mutable busy_ns : int;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable minor_words : int;
  mutable promoted_words : int;
  mutable major_words : int;
}

type local = {
  domain_id : int;
  mutable span_slots : slot array;
  mutable hist_slots : slot array;
  mutable counter_vals : int array;
  mutable gauge_vals : int array;
  led : ledger;
}

let fresh_slot () =
  { count = 0; total = 0; t0 = 0; buckets = Array.make bucket_count 0 }

let locals : local list ref = ref []

let fresh_local () =
  let l =
    {
      domain_id = (Domain.self () :> int);
      span_slots = [||];
      hist_slots = [||];
      counter_vals = [||];
      gauge_vals = [||];
      led =
        { cells = 0; busy_ns = 0; minor_collections = 0; major_collections = 0;
          minor_words = 0; promoted_words = 0; major_words = 0 };
    }
  in
  Mutex.protect registry_mutex (fun () -> locals := l :: !locals);
  l

let dls_key = Domain.DLS.new_key fresh_local
let local () = Domain.DLS.get dls_key

let grow_slots arr id =
  let n = Stdlib.max (id + 1) ((2 * Array.length arr) + 4) in
  Array.init n (fun i -> if i < Array.length arr then arr.(i) else fresh_slot ())

let span_slot l (s : span) =
  if s.span_id < Array.length l.span_slots then l.span_slots.(s.span_id)
  else begin
    l.span_slots <- grow_slots l.span_slots s.span_id;
    l.span_slots.(s.span_id)
  end

let hist_slot l (h : histogram) =
  if h.hist_id < Array.length l.hist_slots then l.hist_slots.(h.hist_id)
  else begin
    l.hist_slots <- grow_slots l.hist_slots h.hist_id;
    l.hist_slots.(h.hist_id)
  end

let grow_ints arr id =
  let n = Stdlib.max (id + 1) ((2 * Array.length arr) + 4) in
  Array.init n (fun i -> if i < Array.length arr then arr.(i) else 0)

(* ------------------------------------------------------------------ *)
(* Hot-path operations. *)

let record_into slot v =
  slot.count <- slot.count + 1;
  slot.total <- slot.total + v;
  let b = bucket_index v in
  slot.buckets.(b) <- slot.buckets.(b) + 1

let start sp = if enabled () then (span_slot (local ()) sp).t0 <- now_ns ()

let stop sp =
  if enabled () then begin
    let slot = span_slot (local ()) sp in
    record_into slot (now_ns () - slot.t0)
  end

let record_span_ns sp ns =
  if enabled () then record_into (span_slot (local ()) sp) ns

let observe h v = if enabled () then record_into (hist_slot (local ()) h) v

let add c n =
  let l = local () in
  if c.ctr_id >= Array.length l.counter_vals then
    l.counter_vals <- grow_ints l.counter_vals c.ctr_id;
  l.counter_vals.(c.ctr_id) <- l.counter_vals.(c.ctr_id) + n

let incr c = add c 1

let set_gauge g v =
  let l = local () in
  if g.gauge_id >= Array.length l.gauge_vals then
    l.gauge_vals <- grow_ints l.gauge_vals g.gauge_id;
  l.gauge_vals.(g.gauge_id) <- v

let raise_gauge g v =
  let l = local () in
  if g.gauge_id >= Array.length l.gauge_vals then
    l.gauge_vals <- grow_ints l.gauge_vals g.gauge_id;
  if v > l.gauge_vals.(g.gauge_id) then l.gauge_vals.(g.gauge_id) <- v

let counter_value c =
  let ls = Mutex.protect registry_mutex (fun () -> !locals) in
  List.fold_left
    (fun acc l ->
      if c.ctr_id < Array.length l.counter_vals then
        acc + l.counter_vals.(c.ctr_id)
      else acc)
    0 ls

(* ------------------------------------------------------------------ *)
(* Per-cell GC deltas and the worker ledger. *)

type gc_delta = {
  gc_minor_collections : int;
  gc_major_collections : int;
  gc_minor_words : int;
  gc_promoted_words : int;
  gc_major_words : int;
}

let gc_capture f =
  let a = Gc.quick_stat () in
  let result = f () in
  let b = Gc.quick_stat () in
  ( result,
    {
      gc_minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
      gc_major_collections = b.Gc.major_collections - a.Gc.major_collections;
      gc_minor_words = int_of_float (b.Gc.minor_words -. a.Gc.minor_words);
      gc_promoted_words =
        int_of_float (b.Gc.promoted_words -. a.Gc.promoted_words);
      gc_major_words = int_of_float (b.Gc.major_words -. a.Gc.major_words);
    } )

let cell_done ~wall ~gc =
  let led = (local ()).led in
  led.cells <- led.cells + 1;
  led.busy_ns <- led.busy_ns + int_of_float (wall *. 1e9);
  led.minor_collections <- led.minor_collections + gc.gc_minor_collections;
  led.major_collections <- led.major_collections + gc.gc_major_collections;
  led.minor_words <- led.minor_words + gc.gc_minor_words;
  led.promoted_words <- led.promoted_words + gc.gc_promoted_words;
  led.major_words <- led.major_words + gc.gc_major_words

(* ------------------------------------------------------------------ *)
(* Snapshots: plain data, deterministic ordering, exact (all-integer)
   merge — associative and commutative, so per-worker snapshots combine in
   any order. *)

type dist = {
  dist_name : string;
  dist_count : int;
  dist_total : int;
  dist_buckets : int array;
}

type worker = {
  w_domain : int;
  w_cells : int;
  w_busy_ns : int;
  w_minor_collections : int;
  w_major_collections : int;
  w_minor_words : int;
  w_promoted_words : int;
  w_major_words : int;
}

type snapshot = {
  spans : dist list;
  hists : dist list;
  counters : (string * int) list;
  gauges : (string * int) list;
  workers : worker list;
}

let by_name a b = compare a.dist_name b.dist_name

let snapshot () =
  let span_list, hist_list, ctr_list, gauge_list, local_list =
    Mutex.protect registry_mutex (fun () ->
        (!span_defs, !hist_defs, !ctr_defs, !gauge_defs, !locals))
  in
  let dist_of id name slots_of =
    let count = ref 0 and total = ref 0 in
    let buckets = Array.make bucket_count 0 in
    List.iter
      (fun l ->
        let slots = slots_of l in
        if id < Array.length slots then begin
          let s = slots.(id) in
          count := !count + s.count;
          total := !total + s.total;
          Array.iteri (fun b n -> buckets.(b) <- buckets.(b) + n) s.buckets
        end)
      local_list;
    if !count = 0 then None
    else
      Some
        {
          dist_name = name;
          dist_count = !count;
          dist_total = !total;
          dist_buckets = buckets;
        }
  in
  let spans =
    List.sort by_name
      (List.filter_map
         (fun s -> dist_of s.span_id s.span_name (fun l -> l.span_slots))
         span_list)
  in
  let hists =
    List.sort by_name
      (List.filter_map
         (fun h -> dist_of h.hist_id h.hist_name (fun l -> l.hist_slots))
         hist_list)
  in
  let sum_ints id vals_of =
    List.fold_left
      (fun acc l ->
        let vals = vals_of l in
        if id < Array.length vals then acc + vals.(id) else acc)
      0 local_list
  in
  let counters =
    List.sort compare
      (List.filter_map
         (fun c ->
           let v = sum_ints c.ctr_id (fun l -> l.counter_vals) in
           if v = 0 then None else Some (c.ctr_name, v))
         ctr_list)
  in
  let gauges =
    List.sort compare
      (List.filter_map
         (fun g ->
           let v = sum_ints g.gauge_id (fun l -> l.gauge_vals) in
           if v = 0 then None else Some (g.gauge_name, v))
         gauge_list)
  in
  let workers =
    List.sort
      (fun a b -> compare a.w_domain b.w_domain)
      (List.filter_map
         (fun l ->
           if l.led.cells = 0 then None
           else
             Some
               {
                 w_domain = l.domain_id;
                 w_cells = l.led.cells;
                 w_busy_ns = l.led.busy_ns;
                 w_minor_collections = l.led.minor_collections;
                 w_major_collections = l.led.major_collections;
                 w_minor_words = l.led.minor_words;
                 w_promoted_words = l.led.promoted_words;
                 w_major_words = l.led.major_words;
               })
         local_list)
  in
  { spans; hists; counters; gauges; workers }

let merge_dist a b =
  {
    dist_name = a.dist_name;
    dist_count = a.dist_count + b.dist_count;
    dist_total = a.dist_total + b.dist_total;
    dist_buckets = Array.init bucket_count (fun i ->
        a.dist_buckets.(i) + b.dist_buckets.(i));
  }

(* union of two sorted keyed lists, combining equal keys *)
let rec merge_sorted key combine xs ys =
  match (xs, ys) with
  | [], rest | rest, [] -> rest
  | x :: xs', y :: ys' ->
      let c = compare (key x) (key y) in
      if c = 0 then combine x y :: merge_sorted key combine xs' ys'
      else if c < 0 then x :: merge_sorted key combine xs' ys
      else y :: merge_sorted key combine xs ys'

let merge_worker a b =
  {
    w_domain = a.w_domain;
    w_cells = a.w_cells + b.w_cells;
    w_busy_ns = a.w_busy_ns + b.w_busy_ns;
    w_minor_collections = a.w_minor_collections + b.w_minor_collections;
    w_major_collections = a.w_major_collections + b.w_major_collections;
    w_minor_words = a.w_minor_words + b.w_minor_words;
    w_promoted_words = a.w_promoted_words + b.w_promoted_words;
    w_major_words = a.w_major_words + b.w_major_words;
  }

let merge_snapshots a b =
  {
    spans = merge_sorted (fun d -> d.dist_name) merge_dist a.spans b.spans;
    hists = merge_sorted (fun d -> d.dist_name) merge_dist a.hists b.hists;
    counters =
      merge_sorted fst (fun (k, x) (_, y) -> (k, x + y)) a.counters b.counters;
    gauges =
      merge_sorted fst (fun (k, x) (_, y) -> (k, x + y)) a.gauges b.gauges;
    workers =
      merge_sorted (fun w -> w.w_domain) merge_worker a.workers b.workers;
  }

(* Quantile estimate: the bucket floor at rank ceil(p * count) — within a
   factor of two below the true quantile, which is all span localisation
   needs. *)
let percentile d p =
  if d.dist_count = 0 then 0
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (ceil (p *. float_of_int d.dist_count)))
    in
    let seen = ref 0 and result = ref (bucket_floor (bucket_count - 1)) in
    (try
       Array.iteri
         (fun i n ->
           seen := !seen + n;
           if !seen >= rank then begin
             result := bucket_floor i;
             raise Exit
           end)
         d.dist_buckets
     with Exit -> ());
    !result
  end

let reset () =
  Mutex.protect registry_mutex (fun () ->
      List.iter
        (fun l ->
          let clear slots =
            Array.iter
              (fun s ->
                s.count <- 0;
                s.total <- 0;
                s.t0 <- 0;
                Array.fill s.buckets 0 bucket_count 0)
              slots
          in
          clear l.span_slots;
          clear l.hist_slots;
          Array.fill l.counter_vals 0 (Array.length l.counter_vals) 0;
          Array.fill l.gauge_vals 0 (Array.length l.gauge_vals) 0;
          l.led.cells <- 0;
          l.led.busy_ns <- 0;
          l.led.minor_collections <- 0;
          l.led.major_collections <- 0;
          l.led.minor_words <- 0;
          l.led.promoted_words <- 0;
          l.led.major_words <- 0)
        !locals)

let span_name (s : span) = s.span_name
