(** Text expositions of an observability snapshot. *)

(** Prometheus 0.0.4 text format: one [# HELP]/[# TYPE] pair per metric
    family, no duplicate sample names, label values escaped. *)
val prometheus : Core.snapshot -> string

val write_prometheus : string -> Core.snapshot -> unit

(** The stable wall-clock engine-stats line (no trailing newline):
    ["engine: %d events in %.2f s wall (%.0f events/s)"]. *)
val engine_line : events:int -> wall:float -> string
