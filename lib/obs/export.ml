(* Text expositions of an observability snapshot: Prometheus 0.0.4 text
   format for external scrapers, plus the one stable stderr engine-stats
   line that check.sh and humans both read. *)

let buf_add = Buffer.add_string

(* Prometheus metric names allow [a-zA-Z0-9_:]; label values get the
   standard backslash escapes. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> buf_add b "\\\\"
      | '"' -> buf_add b "\\\""
      | '\n' -> buf_add b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let seconds ns = Printf.sprintf "%.9f" (float_of_int ns /. 1e9)

let family b ~name ~help ~kind =
  buf_add b (Printf.sprintf "# HELP %s %s\n" name help);
  buf_add b (Printf.sprintf "# TYPE %s %s\n" name kind)

let prometheus (s : Core.snapshot) =
  let b = Buffer.create 4096 in
  if s.Core.spans <> [] then begin
    family b ~name:"manet_span_seconds_total"
      ~help:"Cumulative wall-clock time inside each profiling span."
      ~kind:"counter";
    List.iter
      (fun d ->
        buf_add b
          (Printf.sprintf "manet_span_seconds_total{span=\"%s\"} %s\n"
             (escape_label d.Core.dist_name)
             (seconds d.Core.dist_total)))
      s.Core.spans;
    family b ~name:"manet_span_calls_total"
      ~help:"Number of times each profiling span was entered."
      ~kind:"counter";
    List.iter
      (fun d ->
        buf_add b
          (Printf.sprintf "manet_span_calls_total{span=\"%s\"} %d\n"
             (escape_label d.Core.dist_name)
             d.Core.dist_count))
      s.Core.spans;
    family b ~name:"manet_span_seconds"
      ~help:"Per-call wall-clock quantile estimates (log2 bucket floors)."
      ~kind:"summary";
    List.iter
      (fun d ->
        List.iter
          (fun (q, p) ->
            buf_add b
              (Printf.sprintf
                 "manet_span_seconds{span=\"%s\",quantile=\"%s\"} %s\n"
                 (escape_label d.Core.dist_name)
                 q
                 (seconds (Core.percentile d p))))
          [ ("0.5", 0.5); ("0.99", 0.99) ])
      s.Core.spans
  end;
  if s.Core.hists <> [] then begin
    family b ~name:"manet_histogram_observations_total"
      ~help:"Observation count per size/latency histogram." ~kind:"counter";
    List.iter
      (fun d ->
        buf_add b
          (Printf.sprintf
             "manet_histogram_observations_total{histogram=\"%s\"} %d\n"
             (escape_label d.Core.dist_name)
             d.Core.dist_count))
      s.Core.hists;
    family b ~name:"manet_histogram_sum"
      ~help:"Sum of observed values per histogram." ~kind:"counter";
    List.iter
      (fun d ->
        buf_add b
          (Printf.sprintf "manet_histogram_sum{histogram=\"%s\"} %d\n"
             (escape_label d.Core.dist_name)
             d.Core.dist_total))
      s.Core.hists
  end;
  List.iter
    (fun (name, v) ->
      let name = "manet_" ^ sanitize name ^ "_total" in
      family b ~name ~help:"Monotonic event counter." ~kind:"counter";
      buf_add b (Printf.sprintf "%s %d\n" name v))
    s.Core.counters;
  List.iter
    (fun (name, v) ->
      let name = "manet_" ^ sanitize name in
      family b ~name ~help:"Last observed value (summed across domains)."
        ~kind:"gauge";
      buf_add b (Printf.sprintf "%s %d\n" name v))
    s.Core.gauges;
  if s.Core.workers <> [] then begin
    let worker_family name help value =
      family b ~name ~help ~kind:"counter";
      List.iter
        (fun w ->
          buf_add b
            (Printf.sprintf "%s{domain=\"%d\"} %s\n" name w.Core.w_domain
               (value w)))
        s.Core.workers
    in
    worker_family "manet_worker_cells_total"
      "Campaign cells completed per worker domain." (fun w ->
        string_of_int w.Core.w_cells);
    worker_family "manet_worker_busy_seconds_total"
      "Wall-clock time spent running cells per worker domain." (fun w ->
        seconds w.Core.w_busy_ns);
    worker_family "manet_worker_minor_collections_total"
      "Minor GC collections incurred by cells per worker domain." (fun w ->
        string_of_int w.Core.w_minor_collections);
    worker_family "manet_worker_major_collections_total"
      "Major GC collections incurred by cells per worker domain." (fun w ->
        string_of_int w.Core.w_major_collections);
    worker_family "manet_worker_minor_words_total"
      "Words allocated on the minor heap by cells per worker domain."
      (fun w -> string_of_int w.Core.w_minor_words);
    worker_family "manet_worker_promoted_words_total"
      "Words promoted to the major heap by cells per worker domain."
      (fun w -> string_of_int w.Core.w_promoted_words);
    worker_family "manet_worker_major_words_total"
      "Words allocated directly on the major heap by cells per worker domain."
      (fun w -> string_of_int w.Core.w_major_words)
  end;
  Buffer.contents b

let write_prometheus path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (prometheus s))

(* The historical engine-stats line (PR 2). check.sh and EXPERIMENTS.md
   quote this format; keep it byte-stable. *)
let engine_line ~events ~wall =
  Printf.sprintf "engine: %d events in %.2f s wall (%.0f events/s)" events
    wall
    (if wall > 0. then float_of_int events /. wall else 0.)
