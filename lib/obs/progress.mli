(** Live stderr progress meter for campaigns: one self-overwriting line
    with cells done/total, retries, quarantines, events/s and an ETA.
    Thread-safe; pure presentation (never influences scheduling). *)

type t

val create : ?out:out_channel -> total:int -> unit -> t

(** Credit one finished cell. [retries]/[quarantined] are campaign-wide
    running totals (not deltas). Redraws are throttled to ~10 Hz. *)
val cell_done : t -> events:int -> retries:int -> quarantined:int -> unit

(** Print a full line (e.g. a sampler gauge line) without tearing the
    meter: erase, print, redraw. *)
val interject : t -> string -> unit

(** Erase the meter and leave the cursor on a clean line. *)
val finish : t -> unit
