(* Live campaign progress meter: a single self-overwriting stderr line
   with cells done/total, recovery activity, throughput and an ETA.
   Pure presentation — it reads outcome data pushed at cell boundaries
   and never influences scheduling, so enabling it cannot perturb
   results. Redraws are throttled; [interject] lets other stderr output
   (sampler gauge lines, supervisor warnings) print cleanly mid-meter. *)

type t = {
  out : out_channel;
  total : int;
  start : float;  (* Unix.gettimeofday at creation *)
  mutable done_ : int;
  mutable events : int;
  mutable retries : int;
  mutable quarantined : int;
  mutable last_draw : float;
  mutable last_len : int;  (* width of the previous meter line *)
  mutex : Mutex.t;
}

let create ?(out = stderr) ~total () =
  {
    out;
    total;
    start = Unix.gettimeofday ();
    done_ = 0;
    events = 0;
    retries = 0;
    quarantined = 0;
    last_draw = 0.;
    last_len = 0;
    mutex = Mutex.create ();
  }

let throttle = 0.1 (* s between redraws; completion always draws *)

let rate_str ev elapsed =
  if elapsed <= 0. then "-"
  else
    let r = float_of_int ev /. elapsed in
    if r >= 1e6 then Printf.sprintf "%.1fM ev/s" (r /. 1e6)
    else if r >= 1e3 then Printf.sprintf "%.0fk ev/s" (r /. 1e3)
    else Printf.sprintf "%.0f ev/s" r

let eta_str t elapsed =
  if t.done_ = 0 || t.done_ >= t.total then "-"
  else begin
    let per_cell = elapsed /. float_of_int t.done_ in
    let remaining = per_cell *. float_of_int (t.total - t.done_) in
    let s = int_of_float remaining in
    if s >= 3600 then Printf.sprintf "%dh%02dm" (s / 3600) (s mod 3600 / 60)
    else Printf.sprintf "%dm%02ds" (s / 60) (s mod 60)
  end

let render t =
  let elapsed = Unix.gettimeofday () -. t.start in
  let pct =
    if t.total = 0 then 100.
    else 100. *. float_of_int t.done_ /. float_of_int t.total
  in
  let extras =
    (if t.retries > 0 then Printf.sprintf " | %d retries" t.retries else "")
    ^
    if t.quarantined > 0 then
      Printf.sprintf " | %d quarantined" t.quarantined
    else ""
  in
  Printf.sprintf "campaign: [%d/%d] %3.0f%%%s | %s | ETA %s" t.done_ t.total
    pct extras
    (rate_str t.events elapsed)
    (eta_str t elapsed)

(* clear the previous line, then (optionally) redraw *)
let erase_locked t =
  if t.last_len > 0 then begin
    output_string t.out ("\r" ^ String.make t.last_len ' ' ^ "\r");
    t.last_len <- 0
  end

let draw_locked t =
  let line = render t in
  let pad = Stdlib.max 0 (t.last_len - String.length line) in
  output_string t.out ("\r" ^ line ^ String.make pad ' ');
  t.last_len <- String.length line;
  flush t.out

let cell_done t ~events ~retries ~quarantined =
  Mutex.protect t.mutex (fun () ->
      t.done_ <- t.done_ + 1;
      t.events <- t.events + events;
      t.retries <- retries;
      t.quarantined <- quarantined;
      let now = Unix.gettimeofday () in
      if now -. t.last_draw >= throttle || t.done_ >= t.total then begin
        t.last_draw <- now;
        draw_locked t
      end)

let interject t line =
  Mutex.protect t.mutex (fun () ->
      erase_locked t;
      output_string t.out (line ^ "\n");
      draw_locked t)

let finish t =
  Mutex.protect t.mutex (fun () ->
      erase_locked t;
      flush t.out)
