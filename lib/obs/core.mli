(** Performance-observability core: typed metrics registry, hot-path span
    timers, and per-domain GC/worker telemetry.

    Determinism contract: nothing here touches simulation state — all
    timing is wall-clock side-state outside the DES. With profiling
    disabled (the default), span and histogram operations are a single
    atomic-flag read and allocate nothing; counters and gauges are always
    live (they sit off the hot paths and the gauge sampler reads them in
    unprofiled runs too). *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Wall clock in integer nanoseconds. *)
val now_ns : unit -> int

(** {1 Registry}

    Metrics are interned by name: the same name always returns the same
    handle, from any domain. Handles are cheap immutable records; create
    them once at module level where possible. *)

type span
type histogram
type counter
type gauge

val span : string -> span
val span_name : span -> string
val histogram : string -> histogram
val counter : string -> counter
val gauge : string -> gauge

(** {1 Hot-path operations}

    All state lives in domain-local all-integer slot tables: recording
    never contends and never boxes. Spans do not self-nest (a [start]
    overwrites the pending stamp). *)

val start : span -> unit
val stop : span -> unit

(** Record an externally measured duration against a span (gated on
    [enabled], like [start]/[stop]). *)
val record_span_ns : span -> int -> unit

val observe : histogram -> int -> unit
val incr : counter -> unit
val add : counter -> int -> unit
val set_gauge : gauge -> int -> unit

(** High-water update: set the gauge to [v] only when it exceeds the
    domain-local current value. *)
val raise_gauge : gauge -> int -> unit

(** Sum of a counter across all domains. Racy while workers run (may lag
    by in-flight increments); exact once they have joined. *)
val counter_value : counter -> int

(** {1 Per-cell GC deltas and the worker ledger} *)

type gc_delta = {
  gc_minor_collections : int;
  gc_major_collections : int;
  gc_minor_words : int;
  gc_promoted_words : int;
  gc_major_words : int;
}

(** Run a thunk and return its result with the [Gc.quick_stat] delta
    observed across it (word counts truncated to int). OCaml 5 caveat:
    [quick_stat] counters are runtime-global — allocation is (approximately)
    summed over all domains and [minor_collections] counts stop-the-world
    minor cycles shared by every domain — so with parallel workers a delta
    measures the global GC activity during the thunk's window, not this
    domain's share alone. Under [jobs = 1] the two coincide. *)
val gc_capture : (unit -> 'a) -> 'a * gc_delta

(** Credit one finished campaign cell (busy wall seconds + its GC delta)
    to the calling domain's worker ledger. Always on. *)
val cell_done : wall:float -> gc:gc_delta -> unit

(** {1 Snapshots}

    Plain data with deterministic (name-sorted) ordering. All fields are
    integers, so [merge_snapshots] is exactly associative and commutative.
    Empty metrics are omitted. *)

type dist = {
  dist_name : string;
  dist_count : int;
  dist_total : int;  (** sum of recorded values (ns for spans) *)
  dist_buckets : int array;  (** log2 buckets, see [bucket_index] *)
}

type worker = {
  w_domain : int;
  w_cells : int;
  w_busy_ns : int;
  w_minor_collections : int;
  w_major_collections : int;
  w_minor_words : int;
  w_promoted_words : int;
  w_major_words : int;
}

type snapshot = {
  spans : dist list;
  hists : dist list;
  counters : (string * int) list;
  gauges : (string * int) list;  (** merged by sum *)
  workers : worker list;
}

val snapshot : unit -> snapshot
val merge_snapshots : snapshot -> snapshot -> snapshot

(** [percentile d p] for [p] in (0,1]: the bucket floor at rank
    [ceil (p * count)] — a power of two within 2x below the true
    quantile. 0 on an empty distribution. *)
val percentile : dist -> float -> int

(** Bucket 0 holds values [<= 0]; bucket [i >= 1] holds
    [2^(i-1), 2^i). 48 buckets; the last one absorbs the tail. *)
val bucket_index : int -> int

val bucket_floor : int -> int
val bucket_count : int

(** Zero every slot table and worker ledger in every domain (registry
    handles stay valid). For separating measurement passes. *)
val reset : unit -> unit
