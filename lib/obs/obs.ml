(* Library entry point: the core registry plus the text exporters and
   the live progress meter. *)
include Core
module Export = Export
module Progress = Progress
