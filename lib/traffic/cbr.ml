let span_traffic = Obs.span "event.traffic"

type flow = { id : int; src : int; dst : int; start : float; stop : float }

let generate ~rng ~nodes ~concurrent ~from_time ~until ~mean_duration =
  if nodes < 2 then invalid_arg "Cbr.generate: need at least two nodes";
  let next_id = ref 0 in
  let fresh_flow start =
    let src = Des.Rng.int rng nodes in
    let rec pick_dst () =
      let dst = Des.Rng.int rng nodes in
      if dst = src then pick_dst () else dst
    in
    let dst = pick_dst () in
    let duration = Des.Rng.exponential rng ~mean:mean_duration in
    let id = !next_id in
    incr next_id;
    { id; src; dst; start; stop = Stdlib.min until (start +. duration) }
  in
  let rec chain start acc =
    if start >= until then List.rev acc
    else
      let f = fresh_flow start in
      chain f.stop (f :: acc)
  in
  List.concat (List.init concurrent (fun _ -> chain from_time []))

let flow_packets f ~rate =
  let span = f.stop -. f.start in
  if span <= 0.0 then 0 else int_of_float (ceil (span *. rate))

let packet_count ~flows ~rate =
  List.fold_left (fun acc f -> acc + flow_packets f ~rate) 0 flows

let schedule engine ~flows ~rate ~size ~send =
  let seq = ref 0 in
  List.iter
    (fun f ->
      (* desynchronise flows: each gets a stable phase within its period,
         derived from the flow id so the script stays protocol-independent *)
      let phase_rng = Des.Rng.create (Int64.of_int (0x5151 + f.id)) in
      let phase = Des.Rng.float phase_rng (1.0 /. rate) in
      let n = flow_packets f ~rate in
      for k = 0 to n - 1 do
        let time = f.start +. phase +. (float_of_int k /. rate) in
        if time < f.stop then begin
          incr seq;
          let packet_seq = !seq in
          ignore
            (Des.Engine.schedule_at ~span:span_traffic engine ~time (fun () ->
                 let data =
                   {
                     Wireless.Frame.origin = f.src;
                     final_dst = f.dst;
                     flow = f.id;
                     seq = packet_seq;
                     sent_at = Des.Engine.now engine;
                     hops = 0;
                   }
                 in
                 send ~src:f.src data ~size))
        end
      done)
    flows
