(** Pluggable traffic models behind one interface, keyed by the names the
    scenario registry and [--scenario] accept.

    Every model compiles to a {!Cbr.flow} list, so packet scheduling,
    per-flow phase and the (flow, seq) ledger are shared across models:
    swapping the model changes which packets exist, never how they are
    accounted. Generation is byte-deterministic per RNG substream. *)

type id =
  | Cbr_model  (** the paper's constant-bit-rate flows — the default *)
  | Bursty  (** CBR conversations gated by exponential on/off periods *)
  | Convergecast  (** many-to-one: every flow drains into one fixed sink *)
  | Flash  (** flash-crowd arrival: all slots ignite in a narrow window *)

val all : id list

val default : id

val name : id -> string

val of_name : string -> id option

(** [generate id ~rng ...] — same contract as {!Cbr.generate}. The
    {!Cbr_model} instance calls it verbatim with the undivided [rng], so the
    default scenario's flow script is byte-identical to the historical
    runner's.
    @raise Invalid_argument when [nodes < 2]. *)
val generate :
  id ->
  rng:Des.Rng.t ->
  nodes:int ->
  concurrent:int ->
  from_time:float ->
  until:float ->
  mean_duration:float ->
  Cbr.flow list

(** The node every {!Convergecast} flow terminates at (exposed for the
    packet-conservation property). *)
val convergecast_sink : int

(** [flash_window ~from_time ~until] bounds when the {!Flash} ignition
    instant can fall; first-flow starts cluster just after it (exposed for
    the arrival-window property). *)
val flash_window : from_time:float -> until:float -> float * float
