(* Pluggable traffic models. Every model compiles to a {!Cbr.flow} list —
   the packet scheduler, the metrics ledger and the (flow, seq) identity
   space are shared — so swapping the model swaps *which* packets exist,
   never how they are accounted. The Cbr instance calls {!Cbr.generate}
   with the undivided traffic substream, byte-identical to the historical
   runner. *)

type id = Cbr_model | Bursty | Convergecast | Flash

let all = [ Cbr_model; Bursty; Convergecast; Flash ]

let default = Cbr_model

let name = function
  | Cbr_model -> "cbr"
  | Bursty -> "bursty"
  | Convergecast -> "convergecast"
  | Flash -> "flash-crowd"

let of_name = function
  | "cbr" -> Some Cbr_model
  | "bursty" -> Some Bursty
  | "convergecast" -> Some Convergecast
  | "flash-crowd" -> Some Flash
  | _ -> None

(* the fixed many-to-one sink: every convergecast flow drains here *)
let convergecast_sink = 0

(* a back-to-back chain of flows in one slot, shared by the non-CBR
   models: [pick] draws the endpoints, [first_start] anchors the chain.
   [next_id] is shared across slots so flow ids (and the per-flow CBR
   phase keyed off them) stay globally unique, as in {!Cbr.generate}. *)
let chain ~next_id ~rng ~until ~mean_duration ~first_start ~pick () =
  let fresh start =
    let src, dst = pick () in
    let duration = Des.Rng.exponential rng ~mean:mean_duration in
    let id = !next_id in
    incr next_id;
    { Cbr.id; src; dst; start; stop = Stdlib.min until (start +. duration) }
  in
  let rec go start acc =
    if start >= until then List.rev acc
    else
      let f = fresh start in
      go f.Cbr.stop (f :: acc)
  in
  go (first_start ()) []

(* ------------------------------------------------------------------ *)
(* Bursty on/off: CBR flow chains, but each flow transmits only during
   exponential on-periods separated by exponential silences. A flow's
   bursts reuse its flow id — one conversation, gappy airtime — so the
   (flow, seq) ledger and per-flow phase stay exactly as CBR's. *)

let burst_frac = 6.0

let burst_segments ~rng ~mean_duration (f : Cbr.flow) =
  let mean = mean_duration /. burst_frac in
  let rec go t on acc =
    if t >= f.Cbr.stop then List.rev acc
    else
      let span = Des.Rng.exponential rng ~mean in
      let t' = Stdlib.min f.Cbr.stop (t +. span) in
      let acc = if on then { f with Cbr.start = t; stop = t' } :: acc else acc in
      go t' (not on) acc
  in
  go f.Cbr.start true []

let generate_bursty ~rng ~nodes ~concurrent ~from_time ~until ~mean_duration =
  let base =
    Cbr.generate
      ~rng:(Des.Rng.split rng "base")
      ~nodes ~concurrent ~from_time ~until ~mean_duration
  in
  let burst_rng = Des.Rng.split rng "bursts" in
  List.concat_map (burst_segments ~rng:burst_rng ~mean_duration) base

(* ------------------------------------------------------------------ *)

let generate id ~rng ~nodes ~concurrent ~from_time ~until ~mean_duration =
  if nodes < 2 then invalid_arg "Model.generate: need at least two nodes";
  match id with
  | Cbr_model ->
      Cbr.generate ~rng ~nodes ~concurrent ~from_time ~until ~mean_duration
  | Bursty ->
      generate_bursty ~rng ~nodes ~concurrent ~from_time ~until ~mean_duration
  | Convergecast ->
      (* many-to-one: every flow drains into the fixed sink *)
      let pick () =
        let src = 1 + Des.Rng.int rng (nodes - 1) in
        (src, convergecast_sink)
      in
      let next_id = ref 0 in
      List.concat
        (List.init concurrent (fun _ ->
             chain ~next_id ~rng ~until ~mean_duration
               ~first_start:(fun () -> from_time)
               ~pick ()))
  | Flash ->
      (* flash-crowd arrival: every slot's first flow lands in a narrow
         window just after the flash instant, then chains normally *)
      let window = 0.25 *. Stdlib.max 0.0 (until -. from_time) in
      let flash_at = from_time +. Des.Rng.float rng window in
      let jitter_mean = Stdlib.max 1e-6 ((until -. from_time) /. 50.0) in
      let pick () =
        let src = Des.Rng.int rng nodes in
        let rec dst () =
          let d = Des.Rng.int rng nodes in
          if d = src then dst () else d
        in
        (src, dst ())
      in
      let next_id = ref 0 in
      List.concat
        (List.init concurrent (fun _ ->
             chain ~next_id ~rng ~until ~mean_duration
               ~first_start:(fun () ->
                 flash_at +. Des.Rng.exponential rng ~mean:jitter_mean)
               ~pick ()))

let flash_window ~from_time ~until =
  (from_time, from_time +. (0.25 *. Stdlib.max 0.0 (until -. from_time)))
