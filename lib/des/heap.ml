(* Parallel-array layout: a [{ key; tie; value }] entry array boxes every
   float key (mixed records keep floats boxed) and costs an allocation per
   push; splitting into a flat [float array] + [int array] + value array
   keeps keys unboxed and makes [add]/[pop] allocation-free. The sifts
   bubble a hole instead of swapping — one array write per level instead
   of three, and at most two comparisons per level on the way down. *)

type 'a t = {
  mutable keys : float array;
  mutable ties : int array;
  mutable vals : 'a array;
  mutable size : int;
}

let initial_capacity = 64

let create () = { keys = [||]; ties = [||]; vals = [||]; size = 0 }

let size t = t.size

let is_empty t = t.size = 0

(* strict (key, tie) lexicographic order; ties are unique, so the order is
   total and every heap arrangement drains in the same sequence *)

let grow t =
  let capacity = Array.length t.keys in
  if t.size >= capacity then begin
    let new_capacity = max initial_capacity (2 * capacity) in
    let keys = Array.make new_capacity 0.0 in
    let ties = Array.make new_capacity 0 in
    (* the dummy cells are never read: size bounds all accesses *)
    let vals = Array.make new_capacity t.vals.(0) in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.ties 0 ties 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.keys <- keys;
    t.ties <- ties;
    t.vals <- vals
  end

let add t ~key ~tie value =
  if Array.length t.keys = 0 then begin
    t.keys <- Array.make initial_capacity 0.0;
    t.ties <- Array.make initial_capacity 0;
    t.vals <- Array.make initial_capacity value
  end
  else grow t;
  let keys = t.keys and ties = t.ties and vals = t.vals in
  (* bubble the hole from the new leaf toward the root; every index is
     bounded by the old size (checked against capacity above), so the
     unchecked accesses cannot stray *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pk = Array.unsafe_get keys parent in
    if key < pk || (key = pk && tie < Array.unsafe_get ties parent) then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set ties !i (Array.unsafe_get ties parent);
      Array.unsafe_set vals !i (Array.unsafe_get vals parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set ties !i tie;
  Array.unsafe_set vals !i value

(* move the last element into the root hole and sift it down, promoting
   the smaller child into the hole at each level *)
let remove_min t =
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    let keys = t.keys and ties = t.ties and vals = t.vals in
    (* every index below is < old size = n + 1 <= capacity *)
    let key = Array.unsafe_get keys n
    and tie = Array.unsafe_get ties n
    and value = Array.unsafe_get vals n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        (* pick the smaller child: one comparison *)
        let c =
          if
            r < n
            && (Array.unsafe_get keys r < Array.unsafe_get keys l
               || (Array.unsafe_get keys r = Array.unsafe_get keys l
                  && Array.unsafe_get ties r < Array.unsafe_get ties l))
          then r
          else l
        in
        let ck = Array.unsafe_get keys c in
        if ck < key || (ck = key && Array.unsafe_get ties c < tie) then begin
          Array.unsafe_set keys !i ck;
          Array.unsafe_set ties !i (Array.unsafe_get ties c);
          Array.unsafe_set vals !i (Array.unsafe_get vals c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set keys !i key;
    Array.unsafe_set ties !i tie;
    Array.unsafe_set vals !i value
  end

let min_key t =
  if t.size = 0 then invalid_arg "Heap.min_key: empty heap";
  t.keys.(0)

let min_value t =
  if t.size = 0 then invalid_arg "Heap.min_value: empty heap";
  t.vals.(0)

let drop_min t =
  if t.size = 0 then invalid_arg "Heap.drop_min: empty heap";
  remove_min t

let peek t =
  if t.size = 0 then None else Some (t.keys.(0), t.ties.(0), t.vals.(0))

let pop t =
  if t.size = 0 then invalid_arg "Heap.pop: empty heap";
  let out = (t.keys.(0), t.ties.(0), t.vals.(0)) in
  remove_min t;
  out

let to_sorted_list t =
  let copy =
    {
      keys = Array.copy t.keys;
      ties = Array.copy t.ties;
      vals = Array.copy t.vals;
      size = t.size;
    }
  in
  let rec drain acc =
    if is_empty copy then List.rev acc else drain (pop copy :: acc)
  in
  drain []
