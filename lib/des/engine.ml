type event = {
  action : unit -> unit;
  mutable live : bool;
  owner : t;
  span : Obs.span;  (* event-kind attribution for --prof dispatch timing *)
}

and t = {
  queue : event Heap.t;
  mutable clock : float;
  mutable seq : int;
  mutable executed : int;
  mutable live_events : int;
}

type handle = event

(* events whose scheduler did not name a kind *)
let span_other = Obs.span "event.other"

let create () =
  {
    queue = Heap.create ();
    clock = 0.0;
    seq = 0;
    executed = 0;
    live_events = 0;
  }

let now t = t.clock

let schedule_at ?(span = span_other) t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  let event = { action = f; live = true; owner = t; span } in
  Heap.add t.queue ~key:time ~tie:t.seq event;
  t.seq <- t.seq + 1;
  t.live_events <- t.live_events + 1;
  event

let schedule ?span t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?span t ~time:(t.clock +. delay) f

let cancel event =
  if event.live then begin
    event.live <- false;
    event.owner.live_events <- event.owner.live_events - 1
  end

let cancelled event = not event.live

let pending t = t.live_events

let executed t = t.executed

(* Drop cancelled entries from the head; true when a live head remains.
   Reads the head in place (no tuple/option per peek) — together with
   {!step} this keeps the dispatch loop allocation-free. *)
let rec skip_dead t =
  if Heap.is_empty t.queue then false
  else if (Heap.min_value t.queue).live then true
  else begin
    Heap.drop_min t.queue;
    skip_dead t
  end

(* Precondition: the head of the queue is live. *)
let step t =
  let event = Heap.min_value t.queue in
  let time = Heap.min_key t.queue in
  Heap.drop_min t.queue;
  event.live <- false;
  t.live_events <- t.live_events - 1;
  t.clock <- time;
  t.executed <- t.executed + 1;
  if Obs.enabled () then begin
    Obs.start event.span;
    event.action ();
    Obs.stop event.span
  end
  else event.action ()

(* how many events run between two watchdog calls: rare enough that the
   hook never shows up in profiles, frequent enough that a wedged run is
   caught within a fraction of a second *)
let watchdog_stride = 4096

let run ?watchdog t ~until =
  (match watchdog with
  | None ->
      let rec loop () =
        if skip_dead t && Heap.min_key t.queue <= until then begin
          step t;
          loop ()
        end
      in
      loop ()
  | Some check ->
      let rec loop budget =
        if budget = 0 then begin
          check ();
          loop watchdog_stride
        end
        else if skip_dead t && Heap.min_key t.queue <= until then begin
          step t;
          loop (budget - 1)
        end
      in
      loop watchdog_stride);
  if t.clock < until then t.clock <- until

let run_all t =
  let rec loop () =
    if skip_dead t then begin
      step t;
      loop ()
    end
  in
  loop ()
