(** Discrete-event simulation engine.

    Events are thunks scheduled at absolute simulated times. Ties are broken
    by scheduling order, so runs are fully deterministic. Cancellation is
    lazy: a cancelled event stays in the queue but is skipped when popped. *)

type t

(** Handle to a scheduled event, usable with {!cancel}. *)
type handle

val create : unit -> t

(** Current simulated time in seconds; 0.0 before any event has run. *)
val now : t -> float

(** [schedule t ~delay f] runs [f ()] at [now t +. delay].

    [span] attributes the event's execution time to a named event kind in
    [--prof] profiles (default ["event.other"]). Purely observational: it
    never affects ordering or outcomes.
    @raise Invalid_argument if [delay < 0]. *)
val schedule : ?span:Obs.span -> t -> delay:float -> (unit -> unit) -> handle

(** [schedule_at t ~time f] runs [f ()] at absolute [time].
    @raise Invalid_argument if [time] is in the past. *)
val schedule_at :
  ?span:Obs.span -> t -> time:float -> (unit -> unit) -> handle

(** [cancel h] prevents the event from firing. Idempotent; cancelling an
    already-fired event is a no-op. *)
val cancel : handle -> unit

(** [cancelled h] is [true] once {!cancel} was called or the event fired. *)
val cancelled : handle -> bool

(** Number of live (not yet fired, not cancelled) events. *)
val pending : t -> int

(** [run t ~until] executes events in time order until the queue is empty or
    the next event is strictly after [until]. Afterwards [now t] is the time
    of the last executed event, capped at [until].

    [watchdog], when given, is called every few thousand executed events —
    without scheduling anything, so event counts and outcomes are untouched.
    It may raise to abort a wedged run (the supervisor's cell timeouts do
    exactly that); the exception propagates to the caller of [run]. *)
val run : ?watchdog:(unit -> unit) -> t -> until:float -> unit

(** [run_all t] executes every event until the queue drains. Intended for
    tests; a self-perpetuating timer makes this loop forever. *)
val run_all : t -> unit

(** Total number of events executed so far. *)
val executed : t -> int
