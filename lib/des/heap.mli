(** Array-backed binary min-heap, specialised to [(float, int)] priorities.

    Elements are ordered by [key] first and, for equal keys, by the integer
    [tie] (insertion sequence in the scheduler), which makes event ordering
    deterministic. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> key:float -> tie:int -> 'a -> unit

(** [peek t] is the minimum element, or [None] when empty. Allocates; the
    scheduler's hot loop uses {!min_key}/{!min_value}/{!drop_min} instead. *)
val peek : 'a t -> (float * int * 'a) option

(** [pop t] removes and returns the minimum element.
    @raise Invalid_argument when empty. *)
val pop : 'a t -> float * int * 'a

(** [min_key t] is the minimum element's key without removing it.
    @raise Invalid_argument when empty. *)
val min_key : 'a t -> float

(** [min_value t] is the minimum element's value without removing it.
    @raise Invalid_argument when empty. *)
val min_value : 'a t -> 'a

(** [drop_min t] removes the minimum element without returning it — the
    allocation-free companion to {!min_key}/{!min_value}.
    @raise Invalid_argument when empty. *)
val drop_min : 'a t -> unit

(** [to_sorted_list t] drains a copy of the heap in ascending order (for
    tests; does not mutate [t]). *)
val to_sorted_list : 'a t -> (float * int * 'a) list
