(* --prof event-kind spans for the MAC's scheduled callbacks *)
let span_backoff = Obs.span "event.mac.backoff"
let span_timeout = Obs.span "event.mac.timeout"
let span_tx = Obs.span "event.mac.tx"
let span_sifs = Obs.span "event.mac.sifs"

type pdu =
  | Mac_rts of { seq : int; to_ : int; nav : float }
  | Mac_cts of { seq : int; to_ : int; nav : float }
  | Mac_data of { seq : int; frame : Frame.t }
  | Mac_ack of { seq : int; to_ : int }

type callbacks = {
  on_receive : src:int -> Frame.t -> unit;
  on_unicast_success : frame:Frame.t -> dst:int -> unit;
  on_unicast_fail : frame:Frame.t -> dst:int -> unit;
}

type outgoing = { frame : Frame.t; seq : int; mutable retries : int }

type state =
  | Idle
  | Contending of Des.Engine.handle
  | Transmitting
  | Awaiting_cts of Des.Engine.handle
  | Awaiting_ack of Des.Engine.handle

type stats = {
  tx_data : int;
  tx_control : int;
  tx_ack : int;
  rx_delivered : int;
  drop_queue_full : int;
  drop_retry : int;
  drop_duplicate : int;
}

type t = {
  engine : Des.Engine.t;
  radio : Radio.t;
  channel : pdu Channel.t;
  id : int;
  rng : Des.Rng.t;
  trace : Trace.t;
  callbacks : callbacks;
  queue : outgoing Queue.t;
  mutable current : outgoing option;
  mutable state : state;
  mutable cw : int;
  mutable next_seq : int;
  (* virtual carrier sense from overheard RTS/CTS *)
  mutable nav_until : float;
  (* the backoff-expiry action never changes, so one closure serves every
     (re)arm — backoff events dominate a congested run's schedule rate *)
  mutable backoff_fire : unit -> unit;
  (* last delivered MAC seq per sender, for duplicate suppression *)
  last_seen : (int, int) Hashtbl.t;
  mutable tx_data : int;
  mutable tx_control : int;
  mutable tx_ack : int;
  mutable rx_delivered : int;
  mutable drop_queue_full : int;
  mutable drop_retry : int;
  mutable drop_duplicate : int;
}

let stats t =
  {
    tx_data = t.tx_data;
    tx_control = t.tx_control;
    tx_ack = t.tx_ack;
    rx_delivered = t.rx_delivered;
    drop_queue_full = t.drop_queue_full;
    drop_retry = t.drop_retry;
    drop_duplicate = t.drop_duplicate;
  }

let drops t = t.drop_queue_full + t.drop_retry

let queue_length t =
  Queue.length t.queue + (match t.current with Some _ -> 1 | None -> 0)

let now t = Des.Engine.now t.engine

let data_duration t frame =
  Radio.tx_duration t.radio ~size:frame.Frame.size

let uses_rts frame =
  match frame.Frame.dst with
  | Frame.Broadcast -> false
  | Frame.Unicast _ -> true

let needs_rts t frame =
  uses_rts frame && frame.Frame.size > t.radio.Radio.rts_threshold

let backoff_delay t =
  t.radio.Radio.difs
  +. (float_of_int (Des.Rng.int t.rng (t.cw + 1)) *. t.radio.Radio.slot)

let count_tx t frame =
  if Frame.is_data frame then t.tx_data <- t.tx_data + 1
  else t.tx_control <- t.tx_control + 1

let addr_id = function Frame.Broadcast -> -1 | Frame.Unicast i -> i

(* Telemetry at actual airtime, one event per (re)transmission/arrival. *)
let trace_tx t frame =
  if Trace.enabled t.trace then begin
    match frame.Frame.payload with
    | Frame.Data data ->
        Trace.pkt_tx t.trace ~node:t.id ~flow:data.Frame.flow
          ~seq:data.Frame.seq ~next:(addr_id frame.Frame.dst)
    | _ ->
        Trace.ctl_tx t.trace ~node:t.id ~kind:frame.Frame.kind
          ~dst:(addr_id frame.Frame.dst)
  end

let trace_rx t ~src frame =
  if Trace.enabled t.trace then begin
    match frame.Frame.payload with
    | Frame.Data data ->
        Trace.pkt_rx t.trace ~node:t.id ~flow:data.Frame.flow
          ~seq:data.Frame.seq ~from:src
    | _ -> Trace.ctl_rx t.trace ~node:t.id ~kind:frame.Frame.kind ~from:src
  end

let rec start_contention t =
  match t.state with
  | Idle -> begin
      match t.current with
      | Some _ -> arm_contention t
      | None ->
          if not (Queue.is_empty t.queue) then begin
            t.current <- Some (Queue.pop t.queue);
            t.cw <- t.radio.Radio.cw_min;
            arm_contention t
          end
    end
  | Contending _ | Transmitting | Awaiting_cts _ | Awaiting_ack _ -> ()

and arm_contention t =
  Trace.mac_backoff t.trace ~node:t.id ~cw:t.cw;
  let handle =
    Des.Engine.schedule ~span:span_backoff t.engine ~delay:(backoff_delay t)
      t.backoff_fire
  in
  t.state <- Contending handle

and attempt t =
  match t.current with
  | None -> start_contention t
  | Some entry ->
      let channel_idle_at = Channel.busy_until t.channel t.id in
      let idle_at =
        if t.nav_until > channel_idle_at then t.nav_until else channel_idle_at
      in
      if idle_at > now t then begin
        (* medium busy (physically or by NAV): re-contend anchored at the
           idle boundary, like DCF's frozen backoff counters *)
        let delay = idle_at -. now t +. backoff_delay t in
        let handle =
          Des.Engine.schedule ~span:span_backoff t.engine ~delay t.backoff_fire
        in
        t.state <- Contending handle
      end
      else if needs_rts t entry.frame then send_rts t entry
      else transmit_frame t entry

(* --- RTS/CTS exchange ------------------------------------------------ *)

and send_rts t entry =
  match entry.frame.Frame.dst with
  | Frame.Broadcast -> assert false
  | Frame.Unicast dst ->
      let r = t.radio in
      let sifs = r.Radio.sifs in
      let nav =
        Radio.cts_duration r +. data_duration t entry.frame
        +. Radio.ack_duration r +. (3.0 *. sifs)
      in
      Channel.transmit t.channel ~src:t.id ~duration:(Radio.rts_duration r)
        (Mac_rts { seq = entry.seq; to_ = dst; nav });
      let timeout =
        Radio.rts_duration r +. sifs +. Radio.cts_duration r
        +. (2.0 *. r.Radio.slot)
      in
      let handle =
        Des.Engine.schedule ~span:span_timeout t.engine ~delay:timeout
          (fun () -> retry t entry dst)
      in
      t.state <- Awaiting_cts handle

and transmit_frame t entry =
  let frame = entry.frame in
  let duration = data_duration t frame in
  count_tx t frame;
  trace_tx t frame;
  Channel.transmit t.channel ~src:t.id ~duration
    (Mac_data { seq = entry.seq; frame });
  match frame.Frame.dst with
  | Frame.Broadcast ->
      t.state <- Transmitting;
      ignore
        (Des.Engine.schedule ~span:span_tx t.engine ~delay:duration
           (fun () ->
             t.state <- Idle;
             t.current <- None;
             start_contention t))
  | Frame.Unicast dst ->
      let timeout =
        duration +. t.radio.Radio.sifs
        +. Radio.ack_duration t.radio
        +. (2.0 *. t.radio.Radio.slot)
      in
      let handle =
        Des.Engine.schedule ~span:span_timeout t.engine ~delay:timeout
          (fun () -> retry t entry dst)
      in
      t.state <- Awaiting_ack handle

and retry t entry dst =
  entry.retries <- entry.retries + 1;
  if entry.retries > t.radio.Radio.retry_limit then begin
    t.drop_retry <- t.drop_retry + 1;
    Trace.mac_retry_drop t.trace ~node:t.id ~dst;
    t.state <- Idle;
    t.current <- None;
    t.cw <- t.radio.Radio.cw_min;
    t.callbacks.on_unicast_fail ~frame:entry.frame ~dst;
    start_contention t
  end
  else begin
    t.cw <- Stdlib.min ((2 * t.cw) + 1) t.radio.Radio.cw_max;
    t.state <- Idle;
    arm_contention t
  end

(* --- reception ------------------------------------------------------- *)

let send_ack t ~to_ ~seq =
  ignore
    (Des.Engine.schedule ~span:span_sifs t.engine ~delay:t.radio.Radio.sifs
       (fun () ->
         t.tx_ack <- t.tx_ack + 1;
         Channel.transmit t.channel ~src:t.id
           ~duration:(Radio.ack_duration t.radio)
           (Mac_ack { seq; to_ })))

let send_cts t ~to_ ~seq ~nav =
  ignore
    (Des.Engine.schedule ~span:span_sifs t.engine ~delay:t.radio.Radio.sifs
       (fun () ->
         Channel.transmit t.channel ~src:t.id
           ~duration:(Radio.cts_duration t.radio)
           (Mac_cts { seq; to_; nav })))

let set_nav t until = if until > t.nav_until then t.nav_until <- until

let deliver_data t ~src ~seq frame =
  match frame.Frame.dst with
  | Frame.Broadcast ->
      t.rx_delivered <- t.rx_delivered + 1;
      trace_rx t ~src frame;
      t.callbacks.on_receive ~src frame
  | Frame.Unicast dst when dst = t.id ->
      send_ack t ~to_:src ~seq;
      let duplicate =
        match Hashtbl.find_opt t.last_seen src with
        | Some s -> s = seq
        | None -> false
      in
      if duplicate then t.drop_duplicate <- t.drop_duplicate + 1
      else begin
        Hashtbl.replace t.last_seen src seq;
        t.rx_delivered <- t.rx_delivered + 1;
        trace_rx t ~src frame;
        t.callbacks.on_receive ~src frame
      end
  | Frame.Unicast _ -> ()

let handle_pdu t ~src pdu =
  match pdu with
  | Mac_rts { seq; to_; nav } ->
      if to_ = t.id then
        (* grant the floor; our CTS silences our own neighbourhood *)
        send_cts t ~to_:src ~seq
          ~nav:(nav -. Radio.cts_duration t.radio -. t.radio.Radio.sifs)
      else set_nav t (now t +. nav)
  | Mac_cts { seq; to_; nav } ->
      if to_ = t.id then begin
        match (t.state, t.current) with
        | Awaiting_cts handle, Some entry when entry.seq = seq ->
            Des.Engine.cancel handle;
            (* data follows one SIFS after the CTS *)
            ignore
              (Des.Engine.schedule ~span:span_sifs t.engine
                 ~delay:t.radio.Radio.sifs (fun () -> transmit_frame t entry));
            t.state <- Transmitting
        | _ -> ()
      end
      else set_nav t (now t +. nav)
  | Mac_data { seq; frame } -> deliver_data t ~src ~seq frame
  | Mac_ack { seq; to_ } ->
      if to_ = t.id then begin
        match (t.state, t.current) with
        | Awaiting_ack handle, Some entry when entry.seq = seq ->
            Des.Engine.cancel handle;
            t.state <- Idle;
            t.current <- None;
            t.cw <- t.radio.Radio.cw_min;
            (match entry.frame.Frame.dst with
            | Frame.Unicast dst ->
                t.callbacks.on_unicast_success ~frame:entry.frame ~dst
            | Frame.Broadcast -> assert false);
            start_contention t
        | _ -> ()
      end

let create ?(trace = Trace.null) engine radio channel ~id ~rng callbacks =
  let t =
    {
      engine;
      radio;
      channel;
      id;
      rng;
      trace;
      callbacks;
      queue = Queue.create ();
      current = None;
      state = Idle;
      cw = radio.Radio.cw_min;
      next_seq = 0;
      nav_until = 0.0;
      backoff_fire = ignore;
      last_seen = Hashtbl.create 16;
      tx_data = 0;
      tx_control = 0;
      tx_ack = 0;
      rx_delivered = 0;
      drop_queue_full = 0;
      drop_retry = 0;
      drop_duplicate = 0;
    }
  in
  t.backoff_fire <-
    (fun () ->
      t.state <- Idle;
      attempt t);
  Channel.set_receiver channel id (fun ~src pdu -> handle_pdu t ~src pdu);
  t

(* Model a node power-cycling: everything volatile — queued frames, the
   frame in flight, contention state, NAV, duplicate tracking — is gone.
   Queued frames are discarded without the unicast-fail callback: the dead
   node has no routing agent to notify. *)
let reset t =
  (match t.state with
  | Contending h | Awaiting_cts h | Awaiting_ack h -> Des.Engine.cancel h
  | Idle | Transmitting -> ());
  t.state <- Idle;
  Queue.clear t.queue;
  t.current <- None;
  t.cw <- t.radio.Radio.cw_min;
  t.nav_until <- 0.0;
  Hashtbl.reset t.last_seen

let send t frame =
  if queue_length t >= t.radio.Radio.queue_limit then begin
    t.drop_queue_full <- t.drop_queue_full + 1;
    if Trace.enabled t.trace then begin
      match frame.Frame.payload with
      | Frame.Data data ->
          Trace.pkt_drop t.trace ~node:t.id ~flow:data.Frame.flow
            ~seq:data.Frame.seq ~reason:"mac queue full"
      | _ -> Trace.mac_queue_drop t.trace ~node:t.id
    end
  end
  else begin
    let entry = { frame; seq = t.next_seq; retries = 0 } in
    t.next_seq <- t.next_seq + 1;
    (if Trace.enabled t.trace then
       match frame.Frame.payload with
       | Frame.Data data ->
           Trace.pkt_enqueue t.trace ~node:t.id ~flow:data.Frame.flow
             ~seq:data.Frame.seq
       | _ -> ());
    Queue.add entry t.queue;
    start_contention t
  end
