type leg = { depart : float; arrive : float; from_p : Vec2.t; to_p : Vec2.t }

(* [cursor] memoises the leg found by the last {!position} query. The
   simulator queries at non-decreasing times, so the next query almost
   always lands on the same leg or the one after — O(1) instead of a
   binary search per call. Queries that jump backwards fall back to the
   search; the answer never depends on the cursor. *)
type t = { initial : Vec2.t; legs : leg array; mutable cursor : int }

let generate ~terrain ~rng ~pause ~speed_min ~speed_max ~duration =
  if speed_min < 0.0 || speed_max < speed_min then
    invalid_arg "Waypoint.generate: need 0 <= speed_min <= speed_max";
  if pause < 0.0 then invalid_arg "Waypoint.generate: negative pause";
  let initial = Terrain.random_point terrain rng in
  if speed_max <= 0.0 then { initial; legs = [||]; cursor = 0 }
  else
    let rec build time pos acc =
      if time >= duration then List.rev acc
      else begin
        let depart = time +. pause in
        let dest = Terrain.random_point terrain rng in
        let speed = Des.Rng.uniform rng ~lo:speed_min ~hi:speed_max in
        (* speed can be 0 when speed_min is 0: the node freezes for the
           rest of the run. An infinite arrival keeps every later time on
           this leg with frac = finite/inf = 0, never 0/0. *)
        let travel =
          if speed > 0.0 then Vec2.dist pos dest /. speed else infinity
        in
        let leg =
          { depart; arrive = depart +. travel; from_p = pos; to_p = dest }
        in
        build leg.arrive dest (leg :: acc)
      end
    in
    { initial; legs = Array.of_list (build 0.0 initial []); cursor = 0 }

let stationary p = { initial = p; legs = [||]; cursor = 0 }

let of_legs ~initial legs =
  let rec check prev_arrive prev_to = function
    | [] -> ()
    | leg :: rest ->
        if leg.depart < prev_arrive then
          invalid_arg "Waypoint.of_legs: legs overlap";
        if leg.arrive < leg.depart then
          invalid_arg "Waypoint.of_legs: leg arrives before it departs";
        if not (Vec2.equal leg.from_p prev_to) then
          invalid_arg "Waypoint.of_legs: leg discontinuous with predecessor";
        check leg.arrive leg.to_p rest
  in
  check 0.0 initial legs;
  { initial; legs = Array.of_list legs; cursor = 0 }

let position t time =
  let n = Array.length t.legs in
  if n = 0 || time <= t.legs.(0).depart then t.initial
  else begin
    (* find the last leg with depart <= time: resume from the cursor for
       the common monotone query, binary-search on a backwards jump *)
    let i =
      if t.legs.(t.cursor).depart <= time then begin
        let i = ref t.cursor in
        while !i + 1 < n && t.legs.(!i + 1).depart <= time do
          incr i
        done;
        !i
      end
      else begin
        let lo = ref 0 and hi = ref (n - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi + 1) / 2 in
          if t.legs.(mid).depart <= time then lo := mid else hi := mid - 1
        done;
        !lo
      end
    in
    t.cursor <- i;
    let leg = t.legs.(i) in
    if time >= leg.arrive then leg.to_p
    else
      let frac = (time -. leg.depart) /. (leg.arrive -. leg.depart) in
      Vec2.lerp leg.from_p leg.to_p ~frac
  end

let legs t = Array.to_list t.legs

let max_speed t =
  Array.fold_left
    (fun acc leg ->
      let travel = leg.arrive -. leg.depart in
      if travel <= 0.0 then acc
      else Stdlib.max acc (Vec2.dist leg.from_p leg.to_p /. travel))
    0.0 t.legs
