type payload = ..

type data = {
  origin : int;
  final_dst : int;
  flow : int;
  seq : int;
  sent_at : float;
  mutable hops : int;
}

type payload += Data of data

type addr = Unicast of int | Broadcast

type cls = Data_frame | Control_frame

type t = {
  src : int;
  dst : addr;
  size : int;
  payload : payload;
  cls : cls;
  kind : string;
}

let make ~src ~dst ~size ~payload =
  if size <= 0 then invalid_arg "Frame.make: non-positive size";
  let cls =
    match payload with Data _ -> Data_frame | _ -> Control_frame
  in
  let kind =
    match cls with Data_frame -> "data" | Control_frame -> "ctl"
  in
  { src; dst; size; payload; cls; kind }

let with_kind t kind = { t with kind }

let with_cls t cls = { t with cls }

let is_data t = t.cls = Data_frame

let pp_addr ppf = function
  | Unicast i -> Format.fprintf ppf "->%d" i
  | Broadcast -> Format.pp_print_string ppf "->*"
