type t = {
  nodes : int;
  position : int -> float -> Vec2.t;
  cell : float;
  max_speed : float;
  epoch : float;
  mutable built_at : float;  (** nan until the first rebuild *)
  mutable ox : float;
  mutable oy : float;
  mutable cols : int;
  mutable rows : int;
  (* CSR layout: bucket b holds ids.(off.(b) .. off.(b+1) - 1), ascending *)
  mutable off : int array;
  ids : int array;
  xs : float array;
  ys : float array;
  (* query scratch: candidates gathered here, then sorted in place *)
  gather : int array;
  (* query scratch for dense candidate sets: membership mask *)
  mask : bool array;
  mutable rebuild_count : int;
}

let create ~nodes ~position ~cell ~max_speed ~epoch =
  if cell <= 0.0 then invalid_arg "Grid.create: cell must be positive";
  if epoch <= 0.0 then invalid_arg "Grid.create: epoch must be positive";
  if max_speed < 0.0 then invalid_arg "Grid.create: negative max_speed";
  {
    nodes;
    position;
    cell;
    max_speed;
    epoch;
    built_at = nan;
    ox = 0.0;
    oy = 0.0;
    cols = 0;
    rows = 0;
    off = [||];
    ids = Array.make (Stdlib.max nodes 1) 0;
    xs = Array.make (Stdlib.max nodes 1) 0.0;
    ys = Array.make (Stdlib.max nodes 1) 0.0;
    gather = Array.make (Stdlib.max nodes 1) 0;
    mask = Array.make (Stdlib.max nodes 1) false;
    rebuild_count = 0;
  }

let bucket t x y =
  let bx = int_of_float ((x -. t.ox) /. t.cell) in
  let by = int_of_float ((y -. t.oy) /. t.cell) in
  (by * t.cols) + bx

let span_rebuild = Obs.span "channel.grid.rebuild"

let rebuild_body t ~now =
  if t.nodes > 0 then begin
    let minx = ref infinity and miny = ref infinity in
    let maxx = ref neg_infinity and maxy = ref neg_infinity in
    for i = 0 to t.nodes - 1 do
      let p = t.position i now in
      t.xs.(i) <- p.Vec2.x;
      t.ys.(i) <- p.Vec2.y;
      if p.Vec2.x < !minx then minx := p.Vec2.x;
      if p.Vec2.x > !maxx then maxx := p.Vec2.x;
      if p.Vec2.y < !miny then miny := p.Vec2.y;
      if p.Vec2.y > !maxy then maxy := p.Vec2.y
    done;
    t.ox <- !minx;
    t.oy <- !miny;
    t.cols <- 1 + int_of_float ((!maxx -. !minx) /. t.cell);
    t.rows <- 1 + int_of_float ((!maxy -. !miny) /. t.cell);
    let buckets = t.cols * t.rows in
    if Array.length t.off <> buckets + 1 then t.off <- Array.make (buckets + 1) 0
    else Array.fill t.off 0 (buckets + 1) 0;
    for i = 0 to t.nodes - 1 do
      let b = bucket t t.xs.(i) t.ys.(i) in
      t.off.(b + 1) <- t.off.(b + 1) + 1
    done;
    for b = 1 to buckets do
      t.off.(b) <- t.off.(b) + t.off.(b - 1)
    done;
    let cursor = Array.copy t.off in
    for i = 0 to t.nodes - 1 do
      let b = bucket t t.xs.(i) t.ys.(i) in
      t.ids.(cursor.(b)) <- i;
      cursor.(b) <- cursor.(b) + 1
    done
  end;
  t.built_at <- now;
  t.rebuild_count <- t.rebuild_count + 1

let rebuild t ~now =
  if Obs.enabled () then begin
    Obs.start span_rebuild;
    rebuild_body t ~now;
    Obs.stop span_rebuild
  end
  else rebuild_body t ~now

let ensure t ~now =
  if Float.is_nan t.built_at || now < t.built_at || now -. t.built_at > t.epoch
  then rebuild t ~now

let clampi v lo hi = if v < lo then lo else if v > hi then hi else v

let iter t ~now ~center ~radius f =
  if t.nodes > 0 then begin
    ensure t ~now;
    (* every node is at most max_speed * (now - built_at) away from the
       position it was bucketed under, so inflating the radius by that
       much makes the bucket sweep a guaranteed superset *)
    let r = radius +. (t.max_speed *. (now -. t.built_at)) in
    let bx0 = clampi (int_of_float ((center.Vec2.x -. r -. t.ox) /. t.cell)) 0 (t.cols - 1) in
    let bx1 = clampi (int_of_float ((center.Vec2.x +. r -. t.ox) /. t.cell)) 0 (t.cols - 1) in
    let by0 = clampi (int_of_float ((center.Vec2.y -. r -. t.oy) /. t.cell)) 0 (t.rows - 1) in
    let by1 = clampi (int_of_float ((center.Vec2.y +. r -. t.oy) /. t.cell)) 0 (t.rows - 1) in
    if bx0 = 0 && by0 = 0 && bx1 = t.cols - 1 && by1 = t.rows - 1 then
      (* the query disc covers the whole occupied area (common when
         cs_range rivals the terrain diagonal): skip the gather, every
         node is a candidate *)
      for j = 0 to t.nodes - 1 do
        f j
      done
    else begin
    let m = ref 0 in
    for by = by0 to by1 do
      for bx = bx0 to bx1 do
        let b = (by * t.cols) + bx in
        for k = t.off.(b) to t.off.(b + 1) - 1 do
          t.gather.(!m) <- t.ids.(k);
          incr m
        done
      done
    done;
    (* buckets interleave ids; visit candidates in ascending node order so
       a grid-backed scan schedules engine events in exactly the order the
       naive 0..N-1 loop does *)
    if !m = t.nodes then
      (* dense query (e.g. cs_range covering the whole terrain): the
         candidate set is every node, already in order by construction *)
      for j = 0 to t.nodes - 1 do
        f j
      done
    else if !m * !m > 4 * t.nodes then begin
      (* many candidates: an O(nodes + m) membership sweep beats the
         quadratic insertion sort *)
      for k = 0 to !m - 1 do
        t.mask.(t.gather.(k)) <- true
      done;
      for j = 0 to t.nodes - 1 do
        if t.mask.(j) then begin
          t.mask.(j) <- false;
          f j
        end
      done
    end
    else begin
      for i = 1 to !m - 1 do
        let v = t.gather.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && t.gather.(!j) > v do
          t.gather.(!j + 1) <- t.gather.(!j);
          decr j
        done;
        t.gather.(!j + 1) <- v
      done;
      for k = 0 to !m - 1 do
        f t.gather.(k)
      done
    end
    end
  end

(* candidate sweep without the ascending-order guarantee: carrier-sense
   queries fold the candidates commutatively, so the sort (and the gather
   pass feeding it) is pure overhead there *)
let iter_unordered t ~now ~center ~radius f =
  if t.nodes > 0 then begin
    ensure t ~now;
    let r = radius +. (t.max_speed *. (now -. t.built_at)) in
    let bx0 = clampi (int_of_float ((center.Vec2.x -. r -. t.ox) /. t.cell)) 0 (t.cols - 1) in
    let bx1 = clampi (int_of_float ((center.Vec2.x +. r -. t.ox) /. t.cell)) 0 (t.cols - 1) in
    let by0 = clampi (int_of_float ((center.Vec2.y -. r -. t.oy) /. t.cell)) 0 (t.rows - 1) in
    let by1 = clampi (int_of_float ((center.Vec2.y +. r -. t.oy) /. t.cell)) 0 (t.rows - 1) in
    for by = by0 to by1 do
      for bx = bx0 to bx1 do
        let b = (by * t.cols) + bx in
        for k = t.off.(b) to t.off.(b + 1) - 1 do
          f t.ids.(k)
        done
      done
    done
  end

let rebuilds t = t.rebuild_count
