(** Simplified 802.11 DCF MAC.

    Models the parts of the DCF that shape the paper's results: carrier
    sense with DIFS + random slotted backoff and binary-exponential
    contention-window growth, unicast DATA/ACK with a retry limit whose
    exhaustion is reported upward (the "link-layer unicast loss detection"
    all on-demand protocols in the paper rely on), unacknowledged broadcast,
    a bounded interface queue, and per-node drop counters (Fig. 3's metric).
    Not modelled: RTS/CTS (frames are below the usual threshold), NAV
    virtual carrier sense, capture, rate adaptation.

    Backoff is implemented by re-sensing: a node picks a uniform backoff,
    sleeps DIFS + backoff, and transmits if the medium is free, otherwise
    re-draws. This approximates counter freezing with far less event churn
    and preserves relative fairness. *)

type t

type callbacks = {
  on_receive : src:int -> Frame.t -> unit;
      (** a frame addressed to this node (or broadcast) arrived intact *)
  on_unicast_success : frame:Frame.t -> dst:int -> unit;
  on_unicast_fail : frame:Frame.t -> dst:int -> unit;
      (** retry limit exhausted — the routing agent's link-break signal *)
}

(** MAC PDU carried by the channel. *)
type pdu

type stats = {
  tx_data : int;  (** DATA transmissions carrying application data *)
  tx_control : int;  (** DATA transmissions carrying routing control *)
  tx_ack : int;
  rx_delivered : int;
  drop_queue_full : int;
  drop_retry : int;
  drop_duplicate : int;  (** retransmitted frames already delivered *)
}

(** [trace] records per-transmission telemetry: backoffs with the live
    contention window, every DATA airtime (packet or control, tagged with
    {!Frame.t}'s [kind]), intact arrivals, queue-overflow and
    retry-exhaustion drops. *)
val create :
  ?trace:Trace.t ->
  Des.Engine.t ->
  Radio.t ->
  pdu Channel.t ->
  id:int ->
  rng:Des.Rng.t ->
  callbacks ->
  t

(** Enqueue a frame for transmission; drops (and counts) when the interface
    queue is full. Destination comes from the frame itself. *)
val send : t -> Frame.t -> unit

(** [reset t] models a power-cycle: discards the queue and the frame in
    flight (no [on_unicast_fail] callbacks), cancels pending timers, and
    clears contention, NAV, and duplicate-suppression state. The MAC is
    immediately usable again. *)
val reset : t -> unit

val queue_length : t -> int

val stats : t -> stats

(** Sender-side drops: queue overflow + retry exhaustion (Fig. 3). *)
val drops : t -> int
