(** Shared broadcast medium with unit-disk propagation and a receiver-side
    collision model.

    The channel is polymorphic in the PDU it carries (the MAC instantiates
    it with its own frame type). Reception of a PDU succeeds iff, for the
    whole airtime, the receiver is (a) within [range] of the sender at
    transmission start, (b) not transmitting itself, and (c) not hit by any
    overlapping transmission from another in-range sender — otherwise the
    PDU is corrupted and silently lost (a collision). Carrier sense reports
    busy when any in-range node is transmitting. Node positions come from a
    mobility lookup evaluated at transmission start (frame airtimes are
    microseconds; node displacement within one frame is negligible). *)

type 'a t

(** Enables the spatial-grid hot path: neighbour scans in [transmit] and
    [neighbors] sweep only hash-grid buckets covering the query disc
    instead of all N nodes. [max_speed] must bound every node's speed and
    [epoch] is the maximum grid staleness before a lazy rebuild; the two
    together size the query slack that keeps the candidate set a superset
    of the exact in-range set, so results are identical to the naive scan
    (enforced by the [channel-grid-equiv] property). *)
type grid = { max_speed : float; epoch : float }

(** @raise Invalid_argument when [cs_range < range]. [trace] records a
    [mac-collision] event at each receiver-side corruption. [grid] switches
    the O(N)-per-frame neighbour scan to the spatial hash grid; omitted,
    the channel scans every node (the reference behaviour). *)
val create :
  ?trace:Trace.t ->
  ?grid:grid ->
  Des.Engine.t ->
  nodes:int ->
  position:(int -> float -> Vec2.t) ->
  range:float ->
  cs_range:float ->
  'a t

(** Install the upper-layer delivery callback for a node. *)
val set_receiver : 'a t -> int -> (src:int -> 'a -> unit) -> unit

(** [set_filter t f] installs a fault-injection veto: a frame that would be
    delivered intact is silently dropped when [f ~src ~dst] is [false],
    evaluated at delivery time. The filter does not affect carrier sense or
    collision accounting — a faulted link still radiates energy. *)
val set_filter : 'a t -> (src:int -> dst:int -> bool) -> unit

(** [transmit t ~src ~duration pdu] starts a transmission now. *)
val transmit : 'a t -> src:int -> duration:float -> 'a -> unit

(** Carrier sense at a node: is any in-range node (or itself) mid-airtime? *)
val busy : 'a t -> int -> bool

(** [busy_until t i] is the absolute time when the medium around [i] goes
    idle (including the post-frame guard); [now] when already idle. Lets a
    MAC anchor its re-contention at the idle boundary the way DCF's frozen
    backoff counters do. *)
val busy_until : 'a t -> int -> float

(** Is the node itself transmitting right now? *)
val transmitting : 'a t -> int -> bool

(** Nodes currently within range of [node] (excluding itself). *)
val neighbors : 'a t -> int -> int list

val in_range : 'a t -> int -> int -> bool

(** Total receiver-side collision corruptions so far. *)
val collisions : 'a t -> int

(** Collisions suffered per node (as receiver). *)
val collisions_at : 'a t -> int -> int

(** Spatial-grid rebuilds performed so far; 0 on a naive-scan channel. *)
val grid_rebuilds : 'a t -> int
