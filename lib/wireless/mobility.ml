module type S = sig
  val name : string

  val generate :
    terrain:Terrain.t ->
    rng:Des.Rng.t ->
    nodes:int ->
    pause:float ->
    speed_min:float ->
    speed_max:float ->
    duration:float ->
    Waypoint.t array
end

type id = Waypoint_rw | Manhattan | Rpgm | Churn

let all = [ Waypoint_rw; Manhattan; Rpgm; Churn ]

let default = Waypoint_rw

let name = function
  | Waypoint_rw -> "waypoint"
  | Manhattan -> "manhattan"
  | Rpgm -> "rpgm"
  | Churn -> "churn"

let of_name = function
  | "waypoint" -> Some Waypoint_rw
  | "manhattan" -> Some Manhattan
  | "rpgm" -> Some Rpgm
  | "churn" -> Some Churn
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Random waypoint — the paper's model, and the default instance. The
   per-node substream split mirrors the historical Sim.Runner loop
   byte-for-byte, so the default scenario's scripts (and every engine
   event downstream of them) are identical to the pre-registry build. *)

module Random_waypoint : S = struct
  let name = "waypoint"

  let generate ~terrain ~rng ~nodes ~pause ~speed_min ~speed_max ~duration =
    Array.init nodes (fun i ->
        Waypoint.generate ~terrain
          ~rng:(Des.Rng.split rng (string_of_int i))
          ~pause ~speed_min ~speed_max ~duration)
end

(* ------------------------------------------------------------------ *)
(* Manhattan-grid street mobility: nodes live on a grid of horizontal and
   vertical streets (spacing ~[block] metres, stretched so the outermost
   streets lie on the terrain boundary) and hop between adjacent
   intersections at a uniform speed, pausing [pause] at each corner.
   Every leg is axis-aligned along one street, so every interpolated
   position sits exactly on a street line — the property the fuzz
   catalogue checks. *)

let block = 150.0

(* street coordinates along one axis: at least two streets (the borders),
   spaced as close to [block] as divides the extent evenly *)
let streets extent =
  let n = 1 + Stdlib.max 1 (int_of_float (extent /. block)) in
  Array.init (n + 1) (fun i -> extent *. float_of_int i /. float_of_int n)

let manhattan_streets (terrain : Terrain.t) =
  (streets terrain.Terrain.width, streets terrain.Terrain.height)

module Manhattan_grid : S = struct
  let name = "manhattan"

  let generate ~terrain ~rng ~nodes ~pause ~speed_min ~speed_max ~duration =
    let xs, ys = manhattan_streets terrain in
    let nx = Array.length xs and ny = Array.length ys in
    let point ix iy = Vec2.make ~x:xs.(ix) ~y:ys.(iy) in
    Array.init nodes (fun i ->
        let rng = Des.Rng.split rng (string_of_int i) in
        let ix = ref (Des.Rng.int rng nx) and iy = ref (Des.Rng.int rng ny) in
        let initial = point !ix !iy in
        if speed_max <= 0.0 then Waypoint.stationary initial
        else begin
          let legs = ref [] in
          let time = ref 0.0 and pos = ref initial in
          while !time < duration do
            let depart = !time +. pause in
            (* neighbouring intersections, ascending (dx, dy) order *)
            let moves =
              List.filter
                (fun (dx, dy) ->
                  let jx = !ix + dx and jy = !iy + dy in
                  jx >= 0 && jx < nx && jy >= 0 && jy < ny)
                [ (-1, 0); (0, -1); (0, 1); (1, 0) ]
            in
            let dx, dy = List.nth moves (Des.Rng.int rng (List.length moves)) in
            ix := !ix + dx;
            iy := !iy + dy;
            let dest = point !ix !iy in
            let speed = Des.Rng.uniform rng ~lo:speed_min ~hi:speed_max in
            let travel =
              if speed > 0.0 then Vec2.dist !pos dest /. speed else infinity
            in
            legs :=
              {
                Waypoint.depart;
                arrive = depart +. travel;
                from_p = !pos;
                to_p = dest;
              }
              :: !legs;
            pos := dest;
            time := depart +. travel
          done;
          Waypoint.of_legs ~initial (List.rev !legs)
        end)
end

(* ------------------------------------------------------------------ *)
(* RPGM group mobility: nodes are partitioned into groups of ~[group_size];
   each group's reference point follows a random-waypoint script and every
   member rides it at a bounded offset. The offset drifts between leg
   boundaries, rate-limited so member speed never exceeds [speed_max] and
   norm-clamped to [radius] — then both leg endpoints are clamped to the
   terrain, which (projection onto a convex set) can only shrink the
   distance to the in-terrain reference point. Members therefore stay
   within [radius] of their leader at every instant. *)

let group_size = 4

let rpgm_radius = 50.0

(* group reference-point scripts — exposed so the group-radius property can
   compare members against the same leaders the model rode *)
let rpgm_leaders ~terrain ~rng ~nodes ~pause ~speed_min ~speed_max ~duration =
  let groups = 1 + ((nodes - 1) / group_size) in
  Array.init groups (fun g ->
      Waypoint.generate ~terrain
        ~rng:(Des.Rng.split rng (Printf.sprintf "leader-%d" g))
        ~pause ~speed_min ~speed_max ~duration)

module Rpgm_groups : S = struct
  let name = "rpgm"

  let clamp (terrain : Terrain.t) (p : Vec2.t) =
    Vec2.make
      ~x:(Float.min terrain.Terrain.width (Float.max 0.0 p.Vec2.x))
      ~y:(Float.min terrain.Terrain.height (Float.max 0.0 p.Vec2.y))

  (* an offset of norm <= radius, drifted from [prev] by at most [budget] *)
  let drift rng ~prev ~budget =
    let angle = Des.Rng.float rng (2.0 *. Float.pi) in
    let step = Des.Rng.float rng (Stdlib.max 0.0 budget) in
    let raw =
      Vec2.add prev (Vec2.make ~x:(step *. cos angle) ~y:(step *. sin angle))
    in
    let n = Vec2.norm raw in
    if n <= rpgm_radius || n <= 0.0 then raw
    else Vec2.scale (rpgm_radius /. n) raw

  let generate ~terrain ~rng ~nodes ~pause ~speed_min ~speed_max ~duration =
    let leaders =
      rpgm_leaders ~terrain ~rng ~nodes ~pause ~speed_min ~speed_max ~duration
    in
    Array.init nodes (fun i ->
        let leader = leaders.(i / group_size) in
        let rng = Des.Rng.split rng (Printf.sprintf "member-%d" i) in
        let off = ref (drift rng ~prev:Vec2.zero ~budget:rpgm_radius) in
        let initial = clamp terrain (Vec2.add (Waypoint.position leader 0.0) !off) in
        let pos = ref initial in
        let legs =
          List.map
            (fun (leg : Waypoint.leg) ->
              let span = leg.Waypoint.arrive -. leg.Waypoint.depart in
              let leader_speed =
                if span > 0.0 && Float.is_finite span then
                  Vec2.dist leg.Waypoint.from_p leg.Waypoint.to_p /. span
                else 0.0
              in
              let budget =
                if Float.is_finite span then
                  Stdlib.max 0.0 (speed_max -. leader_speed) *. span
                else 0.0
              in
              let next = drift rng ~prev:!off ~budget in
              off := next;
              let from_p = !pos in
              let to_p = clamp terrain (Vec2.add leg.Waypoint.to_p next) in
              pos := to_p;
              { leg with Waypoint.from_p; to_p })
            (Waypoint.legs leader)
        in
        Waypoint.of_legs ~initial legs)
end

(* ------------------------------------------------------------------ *)
(* Static-with-churn: the network is parked — each node sits at its spot
   for a long exponential dwell (mean [churn_dwell_frac] of the run, so a
   fair share of nodes never move at all), then relocates once to a fresh
   uniform point at a uniform speed and parks again. Topology changes are
   rare, abrupt and uncorrelated: the regime sequence-numbered protocols
   like best, and the opposite end of workload space from pause-0
   waypoint. *)

let churn_dwell_frac = 0.5

module Static_churn : S = struct
  let name = "churn"

  let generate ~terrain ~rng ~nodes ~pause:_ ~speed_min ~speed_max ~duration =
    Array.init nodes (fun i ->
        let rng = Des.Rng.split rng (string_of_int i) in
        let initial = Terrain.random_point terrain rng in
        if speed_max <= 0.0 then Waypoint.stationary initial
        else begin
          let legs = ref [] in
          let time = ref 0.0 and pos = ref initial in
          while !time < duration do
            let dwell =
              Des.Rng.exponential rng ~mean:(churn_dwell_frac *. duration)
            in
            let depart = !time +. dwell in
            let dest = Terrain.random_point terrain rng in
            let speed = Des.Rng.uniform rng ~lo:speed_min ~hi:speed_max in
            let travel =
              if speed > 0.0 then Vec2.dist !pos dest /. speed else infinity
            in
            legs :=
              {
                Waypoint.depart;
                arrive = depart +. travel;
                from_p = !pos;
                to_p = dest;
              }
              :: !legs;
            pos := dest;
            time := depart +. travel
          done;
          Waypoint.of_legs ~initial (List.rev !legs)
        end)
end

(* ------------------------------------------------------------------ *)

let instance : id -> (module S) = function
  | Waypoint_rw -> (module Random_waypoint)
  | Manhattan -> (module Manhattan_grid)
  | Rpgm -> (module Rpgm_groups)
  | Churn -> (module Static_churn)

let generate id ~terrain ~rng ~nodes ~pause ~speed_min ~speed_max ~duration =
  let (module M : S) = instance id in
  M.generate ~terrain ~rng ~nodes ~pause ~speed_min ~speed_max ~duration
