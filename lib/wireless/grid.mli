(** Spatial hash grid over mobile node positions.

    The grid buckets every node by its position at the last rebuild and
    answers radius queries with a {e superset} of the nodes currently
    within the radius: because nodes move at most [max_speed] and the grid
    is rebuilt whenever a query arrives more than [epoch] seconds after the
    last build, a query inflates its radius by [max_speed * (now -
    built_at)] and is guaranteed to cover every node whose {e current}
    distance to the centre is within the requested radius. Callers re-check
    exact distances; the grid only prunes the candidate set, so swapping it
    in for a full scan cannot change observable behaviour (the
    [channel-grid-equiv] property and the wireless unit tests enforce
    exactly this).

    Rebuilds are lazy: nothing happens until a query (or an explicit
    {!rebuild}) needs fresh buckets. *)

type t

(** [create ~nodes ~position ~cell ~max_speed ~epoch]. [cell] is the
    bucket side length (a radius-sized cell keeps queries to a 3x3
    neighbourhood); [max_speed] bounds any node's speed; [epoch] is the
    maximum bucket staleness before a query forces a rebuild.
    @raise Invalid_argument when [cell <= 0], [epoch <= 0] or
    [max_speed < 0]. *)
val create :
  nodes:int ->
  position:(int -> float -> Vec2.t) ->
  cell:float ->
  max_speed:float ->
  epoch:float ->
  t

(** Force a rebuild of every bucket from positions at [now] (queries do
    this lazily; exposed for benchmarks and tests). *)
val rebuild : t -> now:float -> unit

(** [iter t ~now ~center ~radius f] calls [f j] for every node [j] in the
    candidate buckets, in ascending node order — a superset of [{ j |
    dist(center, position j now) <= radius }]. The querying node itself is
    included when it falls in range; callers skip it. *)
val iter : t -> now:float -> center:Vec2.t -> radius:float -> (int -> unit) -> unit

(** Like {!iter} but with no ordering guarantee (bucket order, duplicates
    impossible): skips the gather-and-sort pass, for commutative folds
    such as carrier-sense queries. *)
val iter_unordered :
  t -> now:float -> center:Vec2.t -> radius:float -> (int -> unit) -> unit

(** Number of rebuilds performed so far (lazy and forced). *)
val rebuilds : t -> int
