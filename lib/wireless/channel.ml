type reception = {
  mutable corrupted : bool;
  rx_end : float;
  dist : float;  (** sender-to-receiver distance at frame start *)
}

type grid = { max_speed : float; epoch : float }

type 'a t = {
  engine : Des.Engine.t;
  trace : Trace.t;
  nodes : int;
  position : int -> float -> Vec2.t;
  range : float;
  cs_range : float;
  capture_ratio : float;
  (* carrier sense reports busy for this long after a frame ends, so that
     SIFS-spaced ACKs win the medium over DIFS-spaced contenders (the
     sampling MAC has no NAV; this restores the DIFS > SIFS protection) *)
  idle_guard : float;
  receivers : (src:int -> 'a -> unit) option array;
  (* fault-injection hook: a frame reaching [dst] intact is still dropped
     when the filter vetoes the (src, dst) pair at delivery time *)
  mutable filter : (src:int -> dst:int -> bool) option;
  tx_until : float array;
  (* in-progress receptions per node, pruned lazily *)
  rx_active : reception list array;
  (* all in-progress transmissions, for carrier sense, as parallel arrays
     compacted in place: [busy_until] runs on every MAC backoff expiry, so
     rebuilding a (src, until) list there dominated kilonode allocation *)
  mutable air_src : int array;
  mutable air_until : float array;
  mutable air_len : int;
  mutable collision_count : int;
  collision_at : int array;
  (* spatial index pruning the per-frame neighbour scan; None = full scan *)
  grid : Grid.t option;
  (* per-(node, time) position memo: one frame event looks the same nodes
     up at the same instant many times, and Waypoint.position is a binary
     search per call. Flat x/y arrays keep the floats unboxed and the
     memo stores free of write barriers. *)
  pos_at : float array;
  pos_x : float array;
  pos_y : float array;
  (* --prof span for the synchronous transmit sweep, named for the
     neighbour-scan strategy so profiles separate grid from naive *)
  span_transmit : Obs.span;
}

(* rx-end delivery events, distinct from the synchronous sweep above *)
let span_rx = Obs.span "event.channel.rx"

let create ?(trace = Trace.null) ?grid engine ~nodes ~position ~range ~cs_range =
  if cs_range < range then invalid_arg "Channel.create: cs_range < range";
  let grid =
    Option.map
      (fun { max_speed; epoch } ->
        Grid.create ~nodes ~position ~cell:(cs_range /. 2.0) ~max_speed ~epoch)
      grid
  in
  {
    engine;
    trace;
    nodes;
    position;
    range;
    cs_range;
    (* ~10 dB capture threshold at path-loss exponent 2 *)
    capture_ratio = 3.0;
    idle_guard = 60e-6;
    receivers = Array.make nodes None;
    filter = None;
    tx_until = Array.make nodes neg_infinity;
    rx_active = Array.make nodes [];
    air_src = Array.make 16 0;
    air_until = Array.make 16 neg_infinity;
    air_len = 0;
    collision_count = 0;
    collision_at = Array.make nodes 0;
    grid;
    pos_at = Array.make (Stdlib.max nodes 1) nan;
    pos_x = Array.make (Stdlib.max nodes 1) 0.0;
    pos_y = Array.make (Stdlib.max nodes 1) 0.0;
    span_transmit =
      Obs.span
        (if Option.is_some grid then "channel.transmit.grid"
         else "channel.transmit.naive");
  }

let set_receiver t i f = t.receivers.(i) <- Some f

let set_filter t f = t.filter <- Some f

let deliverable t ~src ~dst =
  match t.filter with None -> true | Some f -> f ~src ~dst

let now t = Des.Engine.now t.engine

(* nan stamps never compare equal, so the first lookup always misses *)
let refresh_pos t i time =
  if t.pos_at.(i) <> time then begin
    let p = t.position i time in
    t.pos_at.(i) <- time;
    t.pos_x.(i) <- p.Vec2.x;
    t.pos_y.(i) <- p.Vec2.y
  end

(* allocates a fresh pair; hot paths read pos_x/pos_y directly instead *)
let pos t i time =
  refresh_pos t i time;
  Vec2.make ~x:t.pos_x.(i) ~y:t.pos_y.(i)

(* compact the air arrays in place, keeping entries through the guard
   window (busy needs them); entry order never affects results — corrupt
   is idempotent per frame, busy_until takes a max, busy an exists *)
let prune t =
  let time = now t in
  let src = t.air_src and until = t.air_until in
  let k = ref 0 in
  for i = 0 to t.air_len - 1 do
    if until.(i) +. t.idle_guard > time then begin
      if !k <> i then begin
        src.(!k) <- src.(i);
        until.(!k) <- until.(i)
      end;
      incr k
    end
  done;
  t.air_len <- !k

let air_add t s tx_end =
  let capacity = Array.length t.air_src in
  if t.air_len = capacity then begin
    let src = Array.make (2 * capacity) 0 in
    let until = Array.make (2 * capacity) neg_infinity in
    Array.blit t.air_src 0 src 0 t.air_len;
    Array.blit t.air_until 0 until 0 t.air_len;
    t.air_src <- src;
    t.air_until <- until
  end;
  t.air_src.(t.air_len) <- s;
  t.air_until.(t.air_len) <- tx_end;
  t.air_len <- t.air_len + 1

let transmitting t i = t.tx_until.(i) > now t

(* same float expression as Vec2.dist_sq, evaluated on the flat memo *)
let within t a b ~radius =
  let time = now t in
  refresh_pos t a time;
  refresh_pos t b time;
  let dx = t.pos_x.(a) -. t.pos_x.(b) and dy = t.pos_y.(a) -. t.pos_y.(b) in
  (dx *. dx) +. (dy *. dy) <= radius *. radius

let in_range t a b = within t a b ~radius:t.range

let busy t i =
  if transmitting t i then true
  else begin
    prune t;
    let time = now t in
    let found = ref false in
    let k = ref 0 in
    while (not !found) && !k < t.air_len do
      let src = t.air_src.(!k) in
      if
        src <> i
        && t.air_until.(!k) +. t.idle_guard > time
        && within t i src ~radius:t.cs_range
      then found := true
      else incr k
    done;
    !found
  end

let busy_until t i =
  prune t;
  let time = now t in
  let horizon = ref time in
  if t.tx_until.(i) > !horizon then horizon := t.tx_until.(i);
  for k = 0 to t.air_len - 1 do
    let src = t.air_src.(k) in
    let guarded = t.air_until.(k) +. t.idle_guard in
    if src <> i && guarded > !horizon && within t i src ~radius:t.cs_range
    then horizon := guarded
  done;
  !horizon

let neighbors t i =
  let time = now t in
  let pos_i = pos t i time in
  let xi = pos_i.Vec2.x and yi = pos_i.Vec2.y in
  let result = ref [] in
  let consider j =
    if j <> i then begin
      refresh_pos t j time;
      let dx = xi -. t.pos_x.(j) and dy = yi -. t.pos_y.(j) in
      if (dx *. dx) +. (dy *. dy) <= t.range *. t.range then
        result := j :: !result
    end
  in
  match t.grid with
  | None ->
      for j = t.nodes - 1 downto 0 do
        consider j
      done;
      !result
  | Some g ->
      (* candidates arrive ascending, so reversing restores the naive
         ascending result list *)
      Grid.iter g ~now:time ~center:pos_i ~radius:t.range consider;
      List.rev !result

let corrupt t node rx =
  if not rx.corrupted then begin
    rx.corrupted <- true;
    t.collision_count <- t.collision_count + 1;
    t.collision_at.(node) <- t.collision_at.(node) + 1;
    Trace.mac_collision t.trace ~node
  end

(* Capture: a frame whose sender is [capture_ratio] times closer than a
   competing signal survives the overlap; otherwise the overlap corrupts
   it. Applied pairwise between overlapping frames and against
   non-decodable interference. *)
let clash t j ~rx_a ~rx_b =
  if rx_a.dist *. t.capture_ratio <= rx_b.dist then corrupt t j rx_b
  else if rx_b.dist *. t.capture_ratio <= rx_a.dist then corrupt t j rx_a
  else begin
    corrupt t j rx_a;
    corrupt t j rx_b
  end

let interfere t j rx ~interferer_dist =
  if rx.dist *. t.capture_ratio > interferer_dist then corrupt t j rx

(* [List.filter] allocates a fresh list even when nothing is removed;
   most sweeps find no expired reception, so test before rebuilding *)
let prune_rx t j time =
  let l = t.rx_active.(j) in
  if List.exists (fun r -> r.rx_end <= time) l then
    t.rx_active.(j) <- List.filter (fun r -> r.rx_end > time) l

let transmit_body t ~src ~duration pdu =
  let time = now t in
  let tx_end = time +. duration in
  prune t;
  air_add t src tx_end;
  if tx_end > t.tx_until.(src) then t.tx_until.(src) <- tx_end;
  (* half duplex: starting a transmission ruins any reception in progress *)
  prune_rx t src time;
  List.iter (corrupt t src) t.rx_active.(src);
  let pos_src = pos t src time in
  let sx = pos_src.Vec2.x and sy = pos_src.Vec2.y in
  let touch j =
    if j <> src then begin
      refresh_pos t j time;
      let jx = t.pos_x.(j) and jy = t.pos_y.(j) in
      (* sqrt of Vec2.dist_sq's expression == Vec2.dist, bit for bit *)
      let dxj = sx -. jx and dyj = sy -. jy in
      let d = sqrt ((dxj *. dxj) +. (dyj *. dyj)) in
      if d <= t.range then begin
        if transmitting t j then ()
          (* a transmitting node hears nothing; the frame is simply lost *)
        else begin
          let rx = { corrupted = false; rx_end = tx_end; dist = d } in
          prune_rx t j time;
          (* overlap with receptions already in progress: capture decides *)
          List.iter (fun other -> clash t j ~rx_a:rx ~rx_b:other)
            t.rx_active.(j);
          (* interferers already in the air but too far to decode *)
          for k = 0 to t.air_len - 1 do
            let other_src = t.air_src.(k) in
            if other_src <> src && other_src <> j && t.air_until.(k) > time
            then begin
              refresh_pos t other_src time;
              let dxo = t.pos_x.(other_src) -. jx
              and dyo = t.pos_y.(other_src) -. jy in
              let di = sqrt ((dxo *. dxo) +. (dyo *. dyo)) in
              if di > t.range && di <= t.cs_range then
                interfere t j rx ~interferer_dist:di
            end
          done;
          t.rx_active.(j) <- rx :: t.rx_active.(j);
          ignore
            (Des.Engine.schedule ~span:span_rx t.engine ~delay:duration
               (fun () ->
                 t.rx_active.(j) <-
                   List.filter (fun r -> r != rx) t.rx_active.(j);
                 if
                   (not rx.corrupted)
                   && (not (transmitting t j))
                   && deliverable t ~src ~dst:j
                 then begin
                   match t.receivers.(j) with
                   | Some deliver -> deliver ~src pdu
                   | None -> ()
                 end))
        end
      end
      else if d <= t.cs_range then begin
        (* interference zone: undecodable, but can stomp receptions *)
        prune_rx t j time;
        List.iter (fun rx -> interfere t j rx ~interferer_dist:d)
          t.rx_active.(j)
      end
    end
  in
  (* nodes farther than cs_range are untouched by the body above, so
     sweeping only the grid's superset of the cs_range disc is exact *)
  match t.grid with
  | None ->
      for j = 0 to t.nodes - 1 do
        touch j
      done
  | Some g -> Grid.iter g ~now:time ~center:pos_src ~radius:t.cs_range touch

let transmit t ~src ~duration pdu =
  if Obs.enabled () then begin
    Obs.start t.span_transmit;
    transmit_body t ~src ~duration pdu;
    Obs.stop t.span_transmit
  end
  else transmit_body t ~src ~duration pdu

let collisions t = t.collision_count

let collisions_at t i = t.collision_at.(i)

let grid_rebuilds t =
  match t.grid with None -> 0 | Some g -> Grid.rebuilds g
