(** Random-waypoint mobility, generated off-line per trial exactly as the
    paper does ("off-line generated mobility scripts"), so every protocol in
    a trial sees identical node movement.

    A node starts at a uniform point, pauses for [pause], then repeatedly:
    picks a uniform destination, moves toward it in a straight line at a
    uniform speed in [(speed_min, speed_max)], and pauses for [pause]. A
    pause of 900 s over a 900 s run means no mobility. *)

type leg = {
  depart : float;  (** time movement starts *)
  arrive : float;  (** time movement ends; pause follows until next leg *)
  from_p : Vec2.t;
  to_p : Vec2.t;
}

type t

(** [generate ~terrain ~rng ~pause ~speed_min ~speed_max ~duration] builds
    one node's movement script covering at least [0, duration].

    Degenerate configurations stay well-defined: [speed_max = 0] yields a
    stationary script, and a leg that draws speed 0 (possible when
    [speed_min = 0]) freezes the node in place for the rest of the run —
    every emitted position is finite and inside the terrain whatever the
    (pause, speed, duration) combination.
    @raise Invalid_argument on negative speeds, [speed_min > speed_max] or
    a negative pause. *)
val generate :
  terrain:Terrain.t ->
  rng:Des.Rng.t ->
  pause:float ->
  speed_min:float ->
  speed_max:float ->
  duration:float ->
  t

(** A script that never moves — for static scenarios and tests. *)
val stationary : Vec2.t -> t

(** [of_legs ~initial legs] builds a script from explicit legs — the entry
    point for the non-waypoint mobility models ({!Mobility}), which lay out
    their own piecewise-linear trajectories. Legs must be in time order,
    non-overlapping, and continuous ([from_p] of each leg equals the
    previous leg's [to_p], the first one equals [initial]).
    @raise Invalid_argument otherwise. *)
val of_legs : initial:Vec2.t -> leg list -> t

(** Position at time [t >= 0]; constant after the script's last leg. *)
val position : t -> float -> Vec2.t

(** The script's legs (for tests). *)
val legs : t -> leg list

(** Maximum speed occurring in the script (for tests). *)
val max_speed : t -> float
