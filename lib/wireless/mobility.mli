(** Pluggable mobility models behind one interface, keyed by the names the
    scenario registry and [--scenario] accept.

    Every model compiles to per-node {!Waypoint.t} leg scripts generated
    off-line from a dedicated RNG substream — exactly as the paper's
    "off-line generated mobility scripts" — so a trial's movement is
    byte-deterministic per seed, identical across protocols, and always
    bounded by the configured [speed_max] (which is what lets the spatial
    grid keep its candidate-superset guarantee under every model). *)

module type S = sig
  val name : string

  (** Movement scripts for all [nodes] at once (group models correlate
      nodes, so generation cannot be per-node). Node [i]'s script must
      depend only on [(rng, i)] — never on how many other nodes exist
      draws-wise — and must keep every position inside [terrain] and every
      leg speed at or below [speed_max]. *)
  val generate :
    terrain:Terrain.t ->
    rng:Des.Rng.t ->
    nodes:int ->
    pause:float ->
    speed_min:float ->
    speed_max:float ->
    duration:float ->
    Waypoint.t array
end

type id =
  | Waypoint_rw  (** random waypoint — the paper's model, the default *)
  | Manhattan  (** street-grid mobility: axis-aligned hops between corners *)
  | Rpgm  (** reference-point group mobility: members orbit a leader *)
  | Churn  (** static topology with rare one-shot relocations *)

val all : id list

val default : id

val name : id -> string

val of_name : string -> id option

val instance : id -> (module S)

(** Dispatch through {!instance}. The {!Waypoint_rw} instance reproduces
    the historical runner's per-node substream splits byte-for-byte. *)
val generate :
  id ->
  terrain:Terrain.t ->
  rng:Des.Rng.t ->
  nodes:int ->
  pause:float ->
  speed_min:float ->
  speed_max:float ->
  duration:float ->
  Waypoint.t array

(** The street coordinates the {!Manhattan} model lays over a terrain
    (vertical-street x positions, horizontal-street y positions) — exposed
    so the on-street property can check positions against them. *)
val manhattan_streets : Terrain.t -> float array * float array

(** Group radius the {!Rpgm} model confines members to (metres). *)
val rpgm_radius : float

(** Nodes per {!Rpgm} group (node [i] belongs to group [i / group_size]). *)
val group_size : int

(** The group reference-point scripts the {!Rpgm} model rides, given the
    same arguments as [generate] — exposed so the group-radius property can
    check members against the leaders they actually followed. *)
val rpgm_leaders :
  terrain:Terrain.t ->
  rng:Des.Rng.t ->
  nodes:int ->
  pause:float ->
  speed_min:float ->
  speed_max:float ->
  duration:float ->
  Waypoint.t array
