(** Network-layer packets exchanged between routing agents.

    The payload is an extensible variant: each routing protocol adds its own
    control-message constructors, so the wireless substrate never depends on
    any protocol. Application data ([Data]) is the one payload every layer
    understands; anything else is classified as routing control for the
    network-load metric. *)

type payload = ..

(** One end-to-end CBR packet. [sent_at] stamps origination for the latency
    metric; [hops] is incremented by the routing layer on each forward and
    doubles as a TTL guard against transient forwarding loops. *)
type data = {
  origin : int;
  final_dst : int;
  flow : int;
  seq : int;
  sent_at : float;
  mutable hops : int;
}

type payload += Data of data

type addr = Unicast of int | Broadcast

type cls = Data_frame | Control_frame

type t = {
  src : int;
  dst : addr;
  size : int;
  payload : payload;
  cls : cls;
  kind : string;
      (** short human label for telemetry ("data", "rreq", "hello", …);
          carries no protocol semantics *)
}

(** Classification defaults to [Data_frame] for [Data] payloads and
    [Control_frame] otherwise; [kind] defaults to ["data"] or ["ctl"]
    accordingly. *)
val make : src:int -> dst:addr -> size:int -> payload:payload -> t

(** Tag the frame with its message name ("rreq", "hello", …) so traces can
    tell control messages apart without decoding payloads. *)
val with_kind : t -> string -> t

(** Override the classification: protocols that wrap application data in
    their own payloads (e.g. DSR's source-routed header) reclassify the
    frame as [Data_frame] so the network-load metric stays honest. *)
val with_cls : t -> cls -> t

(** [true] exactly for frames classified as data. *)
val is_data : t -> bool

val pp_addr : Format.formatter -> addr -> unit
