(** Deterministic fault schedules.

    A spec describes *how much* adversity to inject (flap rate, crash count,
    partition count, loss-burst rate); {!plan} expands it into a concrete,
    time-sorted event list using a dedicated RNG substream, so the same
    [(seed, spec, nodes, duration)] always yields the same schedule — the
    property the determinism tests rely on. Explicit [extra] events can pin
    exact scenarios (e.g. "flap this one link at t=10 s") for regression
    tests. *)

type event =
  | Link_down of { la : int; lb : int }
      (** the radio link between two nodes goes deaf in both directions *)
  | Link_up of { la : int; lb : int }
  | Crash of { node : int }
      (** the node loses all volatile state (routes, labels, MAC queue) and
          falls silent *)
  | Restart of { node : int }  (** the node reboots with fresh state *)
  | Partition_start of { id : int; members : bool array }
      (** frames between [members] and non-members are lost *)
  | Partition_heal of { id : int }
  | Burst_start of { id : int; drop_p : float }
      (** every frame is independently lost with probability [drop_p] *)
  | Burst_end of { id : int }

type timed = { at : float; ev : event }

type t = {
  flap_rate : float;  (** link flaps per second, network-wide (Poisson) *)
  flap_down_mean : float;  (** mean seconds a flapped link stays down *)
  crashes : int;  (** node crashes over the run *)
  crash_down_mean : float;  (** mean seconds a crashed node stays down *)
  partitions : int;  (** network partitions over the run *)
  partition_mean : float;  (** mean seconds a partition lasts *)
  burst_rate : float;  (** loss bursts per second (Poisson) *)
  burst_mean : float;  (** mean seconds a burst lasts *)
  burst_drop_p : float;  (** per-frame drop probability during a burst *)
  extra : timed list;  (** explicit events appended to the generated plan *)
}

(** No faults at all; {!Sim.Runner} skips the whole subsystem for it. *)
val none : t

val is_none : t -> bool

(** Moderate churn: 0.5 link flaps/s, 2 node crashes, occasional 50%%
    loss bursts. *)
val default : t

(** [plan t ~rng ~nodes ~duration] expands the spec into a time-sorted
    schedule. Paired events (down/up, crash/restart, start/heal) are both
    emitted even when the up event lands past [duration]. *)
val plan : t -> rng:Des.Rng.t -> nodes:int -> duration:float -> timed list

val pp_event : Format.formatter -> event -> unit

(** One-line summary of the spec's knobs (for counterexample reports). *)
val pp : Format.formatter -> t -> unit
