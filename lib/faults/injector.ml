let span_fault = Obs.span "event.fault"

type stats = {
  link_downs : int;
  link_ups : int;
  crashes : int;
  restarts : int;
  partitions : int;
  heals : int;
  bursts : int;
  frames_blocked : int;
}

type t = {
  engine : Des.Engine.t;
  rng : Des.Rng.t;
  trace : Trace.t;
  on_crash : int -> unit;
  on_restart : int -> unit;
  (* down-counters rather than flags: overlapping events nest correctly *)
  node_down : int array;
  blocked_links : (int * int, int) Hashtbl.t;
  mutable active_partitions : (int * bool array) list;
  mutable active_bursts : (int * float) list;
  mutable timers : Des.Engine.handle list;
  mutable link_downs : int;
  mutable link_ups : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable partitions : int;
  mutable heals : int;
  mutable bursts : int;
  mutable frames_blocked : int;
}

let link_key a b = if a < b then (a, b) else (b, a)

let trace_event t (ev : Spec.event) =
  if Trace.enabled t.trace then
    let kind, a, b =
      match ev with
      | Spec.Link_down { la; lb } -> ("link-down", la, lb)
      | Spec.Link_up { la; lb } -> ("link-up", la, lb)
      | Spec.Crash { node } -> ("crash", node, -1)
      | Spec.Restart { node } -> ("restart", node, -1)
      | Spec.Partition_start { id; _ } -> ("partition-start", id, -1)
      | Spec.Partition_heal { id } -> ("partition-heal", id, -1)
      | Spec.Burst_start { id; _ } -> ("burst-start", id, -1)
      | Spec.Burst_end { id } -> ("burst-end", id, -1)
    in
    Trace.fault t.trace ~kind ~a ~b

let apply t (ev : Spec.event) =
  trace_event t ev;
  match ev with
  | Spec.Link_down { la; lb } ->
      let key = link_key la lb in
      let n = Option.value ~default:0 (Hashtbl.find_opt t.blocked_links key) in
      Hashtbl.replace t.blocked_links key (n + 1);
      t.link_downs <- t.link_downs + 1
  | Spec.Link_up { la; lb } ->
      let key = link_key la lb in
      (match Hashtbl.find_opt t.blocked_links key with
      | Some n when n > 1 -> Hashtbl.replace t.blocked_links key (n - 1)
      | Some _ -> Hashtbl.remove t.blocked_links key
      | None -> ());
      t.link_ups <- t.link_ups + 1
  | Spec.Crash { node } ->
      t.node_down.(node) <- t.node_down.(node) + 1;
      t.crashes <- t.crashes + 1;
      if t.node_down.(node) = 1 then t.on_crash node
  | Spec.Restart { node } ->
      if t.node_down.(node) > 0 then begin
        t.node_down.(node) <- t.node_down.(node) - 1;
        t.restarts <- t.restarts + 1;
        if t.node_down.(node) = 0 then t.on_restart node
      end
  | Spec.Partition_start { id; members } ->
      t.active_partitions <- (id, members) :: t.active_partitions;
      t.partitions <- t.partitions + 1
  | Spec.Partition_heal { id } ->
      t.active_partitions <-
        List.filter (fun (i, _) -> i <> id) t.active_partitions;
      t.heals <- t.heals + 1
  | Spec.Burst_start { id; drop_p } ->
      t.active_bursts <- (id, drop_p) :: t.active_bursts;
      t.bursts <- t.bursts + 1
  | Spec.Burst_end { id } ->
      t.active_bursts <- List.filter (fun (i, _) -> i <> id) t.active_bursts

let create ?(trace = Trace.null) engine ~nodes ~rng ~plan ~on_crash ~on_restart =
  let t =
    {
      engine;
      rng;
      trace;
      on_crash;
      on_restart;
      node_down = Array.make nodes 0;
      blocked_links = Hashtbl.create 16;
      active_partitions = [];
      active_bursts = [];
      timers = [];
      link_downs = 0;
      link_ups = 0;
      crashes = 0;
      restarts = 0;
      partitions = 0;
      heals = 0;
      bursts = 0;
      frames_blocked = 0;
    }
  in
  let now = Des.Engine.now engine in
  List.iter
    (fun { Spec.at; ev } ->
      if at >= now then
        t.timers <-
          Des.Engine.schedule_at ~span:span_fault engine ~time:at (fun () ->
              apply t ev)
          :: t.timers)
    plan;
  t

let node_up t i = t.node_down.(i) = 0

let blocked t ~src ~dst =
  t.node_down.(src) > 0
  || t.node_down.(dst) > 0
  || Hashtbl.mem t.blocked_links (link_key src dst)
  || List.exists (fun (_, members) -> members.(src) <> members.(dst))
       t.active_partitions

let frame_ok t ~src ~dst =
  if blocked t ~src ~dst then begin
    t.frames_blocked <- t.frames_blocked + 1;
    false
  end
  else if
    (* draw once per burst so overlapping bursts compound *)
    List.exists (fun (_, p) -> Des.Rng.float t.rng 1.0 < p) t.active_bursts
  then begin
    t.frames_blocked <- t.frames_blocked + 1;
    false
  end
  else true

let stop t =
  List.iter Des.Engine.cancel t.timers;
  t.timers <- []

let stats t =
  {
    link_downs = t.link_downs;
    link_ups = t.link_ups;
    crashes = t.crashes;
    restarts = t.restarts;
    partitions = t.partitions;
    heals = t.heals;
    bursts = t.bursts;
    frames_blocked = t.frames_blocked;
  }

let event_count (s : stats) =
  s.link_downs + s.link_ups + s.crashes + s.restarts + s.partitions + s.heals
  + s.bursts
