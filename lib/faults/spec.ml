type event =
  | Link_down of { la : int; lb : int }
  | Link_up of { la : int; lb : int }
  | Crash of { node : int }
  | Restart of { node : int }
  | Partition_start of { id : int; members : bool array }
  | Partition_heal of { id : int }
  | Burst_start of { id : int; drop_p : float }
  | Burst_end of { id : int }

type timed = { at : float; ev : event }

type t = {
  flap_rate : float;
  flap_down_mean : float;
  crashes : int;
  crash_down_mean : float;
  partitions : int;
  partition_mean : float;
  burst_rate : float;
  burst_mean : float;
  burst_drop_p : float;
  extra : timed list;
}

let none =
  {
    flap_rate = 0.0;
    flap_down_mean = 2.0;
    crashes = 0;
    crash_down_mean = 15.0;
    partitions = 0;
    partition_mean = 10.0;
    burst_rate = 0.0;
    burst_mean = 1.0;
    burst_drop_p = 0.5;
    extra = [];
  }

let is_none t =
  t.flap_rate <= 0.0 && t.crashes = 0 && t.partitions = 0
  && t.burst_rate <= 0.0 && t.extra = []

let default =
  {
    none with
    flap_rate = 0.5;
    flap_down_mean = 2.0;
    crashes = 2;
    crash_down_mean = 15.0;
    burst_rate = 0.05;
    burst_mean = 1.0;
    burst_drop_p = 0.5;
  }

let compare_timed a b =
  match Float.compare a.at b.at with 0 -> compare a.ev b.ev | c -> c

(* Poisson process: exponential inter-arrival times at [rate] per second.
   [make at] emits the paired down/up (or start/end) events for one
   occurrence. *)
let poisson_events ~rng ~rate ~from_time ~until ~make =
  if rate <= 0.0 then []
  else begin
    let events = ref [] in
    let time = ref (from_time +. Des.Rng.exponential rng ~mean:(1.0 /. rate)) in
    while !time < until do
      events := List.rev_append (make !time) !events;
      time := !time +. Des.Rng.exponential rng ~mean:(1.0 /. rate)
    done;
    !events
  end

(* Hold the first second quiet so agents exist, and stop injecting close
   to the end of the run where recovery could never be observed. *)
let horizon duration = Stdlib.max 0.0 (duration -. (0.1 *. duration))

let plan t ~rng ~nodes ~duration =
  if nodes < 2 then []
  else begin
    let until = horizon duration in
    let flap_rng = Des.Rng.split rng "flaps" in
    let flaps =
      poisson_events ~rng:flap_rng ~rate:t.flap_rate ~from_time:1.0 ~until
        ~make:(fun at ->
          let a = Des.Rng.int flap_rng nodes in
          let b = (a + 1 + Des.Rng.int flap_rng (nodes - 1)) mod nodes in
          let down =
            Stdlib.max 0.05 (Des.Rng.exponential flap_rng ~mean:t.flap_down_mean)
          in
          [ { at; ev = Link_down { la = a; lb = b } };
            { at = at +. down; ev = Link_up { la = a; lb = b } } ])
    in
    let crash_rng = Des.Rng.split rng "crashes" in
    let crashes = ref [] in
    for _ = 1 to t.crashes do
      let node = Des.Rng.int crash_rng nodes in
      let at = Des.Rng.uniform crash_rng ~lo:1.0 ~hi:(Stdlib.max 1.0 until) in
      let down =
        Stdlib.max 1.0 (Des.Rng.exponential crash_rng ~mean:t.crash_down_mean)
      in
      crashes :=
        { at; ev = Crash { node } }
        :: { at = at +. down; ev = Restart { node } }
        :: !crashes
    done;
    let part_rng = Des.Rng.split rng "partitions" in
    let partitions = ref [] in
    for id = 1 to t.partitions do
      let members = Array.init nodes (fun _ -> Des.Rng.bool part_rng) in
      let at = Des.Rng.uniform part_rng ~lo:1.0 ~hi:(Stdlib.max 1.0 until) in
      let hold =
        Stdlib.max 0.5 (Des.Rng.exponential part_rng ~mean:t.partition_mean)
      in
      partitions :=
        { at; ev = Partition_start { id; members } }
        :: { at = at +. hold; ev = Partition_heal { id } }
        :: !partitions
    done;
    let burst_rng = Des.Rng.split rng "bursts" in
    let next_burst = ref 0 in
    let bursts =
      poisson_events ~rng:burst_rng ~rate:t.burst_rate ~from_time:1.0 ~until
        ~make:(fun at ->
          incr next_burst;
          let id = !next_burst in
          let hold =
            Stdlib.max 0.1 (Des.Rng.exponential burst_rng ~mean:t.burst_mean)
          in
          [ { at; ev = Burst_start { id; drop_p = t.burst_drop_p } };
            { at = at +. hold; ev = Burst_end { id } } ])
    in
    List.stable_sort compare_timed
      (t.extra @ flaps @ !crashes @ !partitions @ bursts)
  end

let pp_event ppf = function
  | Link_down { la; lb } -> Format.fprintf ppf "link %d-%d down" la lb
  | Link_up { la; lb } -> Format.fprintf ppf "link %d-%d up" la lb
  | Crash { node } -> Format.fprintf ppf "node %d crash" node
  | Restart { node } -> Format.fprintf ppf "node %d restart" node
  | Partition_start { id; _ } -> Format.fprintf ppf "partition %d start" id
  | Partition_heal { id } -> Format.fprintf ppf "partition %d heal" id
  | Burst_start { id; drop_p } ->
      Format.fprintf ppf "loss burst %d start (p=%.2f)" id drop_p
  | Burst_end { id } -> Format.fprintf ppf "loss burst %d end" id

let pp ppf t =
  if is_none t then Format.pp_print_string ppf "no-faults"
  else
    Format.fprintf ppf
      "flap=%.3f/s(down %.1fs) crashes=%d partitions=%d burst=%.3f/s(p=%.2f) \
       extra=%d"
      t.flap_rate t.flap_down_mean t.crashes t.partitions t.burst_rate
      t.burst_drop_p (List.length t.extra)
