(** Executes a {!Spec} plan against a running simulation.

    The injector owns one {!Des.Engine} timer per planned event (cancellable
    via {!stop}) and exposes the *current* fault state as cheap queries: the
    channel consults {!frame_ok} on every frame delivery, instrumentation
    consults {!node_up}. Crash/restart side effects (clearing a node's MAC
    and swapping its agent) are delegated to the host via callbacks so this
    library stays free of any protocol or MAC dependency. *)

type t

type stats = {
  link_downs : int;
  link_ups : int;
  crashes : int;
  restarts : int;
  partitions : int;
  heals : int;
  bursts : int;
  frames_blocked : int;  (** frames suppressed by {!frame_ok} *)
}

(** [create engine ~nodes ~rng ~plan ~on_crash ~on_restart] schedules every
    event of [plan] that is not already in the past. [rng] drives only the
    per-frame loss-burst draws. [on_crash i] fires when node [i] goes down,
    [on_restart i] when it comes back. Each applied event is also reported
    to [trace] as a fault record. *)
val create :
  ?trace:Trace.t ->
  Des.Engine.t ->
  nodes:int ->
  rng:Des.Rng.t ->
  plan:Spec.timed list ->
  on_crash:(int -> unit) ->
  on_restart:(int -> unit) ->
  t

(** Is the frame [src -> dst] deliverable right now? [false] (and counted)
    when either endpoint is crashed, the link is flapped down, a partition
    separates the endpoints, or a loss-burst draw kills it. *)
val frame_ok : t -> src:int -> dst:int -> bool

val node_up : t -> int -> bool

(** Cancel all not-yet-fired fault timers. *)
val stop : t -> unit

val stats : t -> stats

(** Total fault events applied so far. *)
val event_count : stats -> int
